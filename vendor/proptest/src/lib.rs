//! Deterministic in-tree shim for the [`proptest`](https://docs.rs/proptest)
//! property-testing crate.
//!
//! The build environment has no cargo-registry access, so this crate
//! re-implements exactly the API surface the workspace's property tests use:
//! the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! [`ProptestConfig`], `prop_assert*` macros, [`any`], integer-range
//! strategies, and [`collection::vec`] / [`collection::btree_set`].
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with its case index and the
//!   run seed; reruns are bit-identical, which is what CI needs.
//! * **Always seeded.** The RNG is a splitmix64 stream derived from
//!   [`ProptestConfig::seed`], never from the environment.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Run configuration for a [`proptest!`] block.
///
/// Mirrors `proptest::test_runner::Config` for the fields this workspace
/// uses, plus an explicit `seed` (the real crate derives seeds from the
/// environment; this shim is deterministic by construction).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Seed for the case-generation RNG stream.
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, seed: 0x05EE_D1F5 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases with the default seed.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }

    /// A config running `cases` cases from an explicit RNG `seed`.
    pub fn with_cases_and_seed(cases: u32, seed: u64) -> Self {
        ProptestConfig { cases, seed }
    }
}

/// Deterministic splitmix64 generator driving case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a seed.
    pub fn seeded(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below(0)");
        // Multiply-shift rejection-free mapping is fine for test generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// A generator of values of type `Self::Value`.
///
/// The real crate's `Strategy` carries shrinking machinery; this shim only
/// needs generation.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Types with a canonical "anything goes" strategy, à la `proptest::arbitrary`.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Size specification for collection strategies (subset of the real
/// `proptest::collection::SizeRange`).
#[derive(Clone, Debug)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange { start: r.start, end: r.end }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { start: n, end: n + 1 }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of values from `element`.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` strategy with cardinality drawn from `size`. The element
    /// domain must be large enough to reach the requested cardinality.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Bounded retries: duplicate draws don't grow the set.
            for _ in 0..(64 * target + 64) {
                if out.len() == target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            assert_eq!(out.len(), target, "element domain too small for requested set size");
            out
        }
    }
}

/// The usual one-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property (panics on failure, like the real
/// macro does after shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests. Supports the two forms the workspace uses:
/// with and without a leading `#![proptest_config(..)]` attribute.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::seeded(config.seed);
                for case in 0..config.cases {
                    let case_result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)*
                        $body
                    }));
                    if let Err(payload) = case_result {
                        eprintln!(
                            "proptest case {}/{} failed (seed 0x{:X}); rerun is deterministic",
                            case + 1, config.cases, config.seed,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strategy),*) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::seeded(1);
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn determinism() {
        let mut a = TestRng::seeded(42);
        let mut b = TestRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn btree_set_hits_target_size() {
        let mut rng = TestRng::seeded(7);
        for _ in 0..200 {
            let s = collection::btree_set(0u32..64, 1..6).generate(&mut rng);
            assert!((1..6).contains(&s.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases_and_seed(16, 99))]

        #[test]
        fn macro_smoke(x in 0u64..100, v in collection::vec(any::<bool>(), 0..10)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 10);
        }
    }
}
