//! Minimal in-tree shim for the [`criterion`](https://docs.rs/criterion)
//! benchmarking crate.
//!
//! The build environment has no cargo-registry access, so this crate
//! provides the subset of criterion's API that the `ifs-bench` benches use:
//! [`Criterion`], [`criterion_group!`] / [`criterion_main!`],
//! [`BenchmarkId`], [`Throughput`], and benchmark groups.
//!
//! Measurement model: under `--bench` (what `cargo bench` passes) each
//! `Bencher::iter` call warms the closure up, then times geometrically
//! growing batches until a ~25 ms window is filled, and reports nanoseconds
//! per iteration. Without `--bench` (e.g. `cargo test --benches`, which
//! passes no mode flag to `harness = false` targets) every benchmark body
//! runs exactly once as a smoke test and nothing is timed — the same
//! default the real crate uses.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (printed, not analyzed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times one benchmark body.
pub struct Bencher {
    test_mode: bool,
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Runs `f` repeatedly and records the per-iteration wall-clock time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.ns_per_iter = None;
            return;
        }
        for _ in 0..2 {
            black_box(f());
        }
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = start.elapsed();
            if dt >= Duration::from_millis(25) || iters >= 1 << 22 {
                self.ns_per_iter = Some(dt.as_nanos() as f64 / iters as f64);
                return;
            }
            iters = iters.saturating_mul(4);
        }
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        // `cargo bench` passes `--bench`; `cargo test --benches` passes no
        // mode flag at all. Like the real crate, only time when cargo asked
        // for a benchmark run — everything else is a one-pass smoke test.
        let mut test_mode = true;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => test_mode = false,
                "--test" => test_mode = true,
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_owned()),
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    fn should_run(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one(
        &mut self,
        group: Option<&str>,
        id: &str,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        let full = match group {
            Some(g) => format!("{g}/{id}"),
            None => id.to_owned(),
        };
        if !self.should_run(&full) {
            return;
        }
        let mut b = Bencher { test_mode: self.test_mode, ns_per_iter: None };
        f(&mut b);
        match b.ns_per_iter {
            None => println!("bench {full:<50} ok (smoke)"),
            Some(ns) => {
                let rate = match throughput {
                    Some(Throughput::Elements(n)) => {
                        format!("  ({:.1} Melem/s)", n as f64 / ns * 1e3)
                    }
                    Some(Throughput::Bytes(n)) => {
                        format!("  ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1 << 20) as f64)
                    }
                    None => String::new(),
                };
                println!("bench {full:<50} {ns:>14.1} ns/iter{rate}");
            }
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.run_one(None, &id.id, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples adaptively.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let throughput = self.throughput;
        self.criterion.run_one(Some(&self.name), &id.id, throughput, &mut f);
        self
    }

    /// Benchmarks a function parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let throughput = self.throughput;
        self.criterion.run_one(Some(&self.name), &id.id, throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke() {
        let mut c = Criterion { filter: None, test_mode: true };
        c.bench_function("id", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("x", 3), &3u32, |b, &v| b.iter(|| v * 2));
        g.finish();
    }
}
