//! FP-Growth: frequent-pattern mining without candidate generation.
//!
//! Builds an FP-tree — a prefix tree over transactions with items ordered by
//! descending support — then mines it recursively: for each item (bottom-up),
//! extract its conditional pattern base, build the conditional FP-tree, and
//! recurse. Avoids Apriori's candidate explosion; kept here both as the
//! standard baseline and to cross-validate the other miners.

use crate::MinedItemset;
use ifs_database::{Database, Itemset};
use std::collections::HashMap;

/// One FP-tree node: item, count, parent link, children by item.
struct Node {
    item: u32,
    count: usize,
    parent: usize,
    children: HashMap<u32, usize>,
}

/// An FP-tree plus its header table (item → node indices).
struct FpTree {
    nodes: Vec<Node>,
    header: HashMap<u32, Vec<usize>>,
}

impl FpTree {
    fn new() -> Self {
        // Node 0 is the root sentinel.
        Self {
            nodes: vec![Node { item: u32::MAX, count: 0, parent: 0, children: HashMap::new() }],
            header: HashMap::new(),
        }
    }

    /// Inserts a transaction (items pre-sorted in the global order) with a
    /// multiplicity.
    fn insert(&mut self, items: &[u32], count: usize) {
        let mut cur = 0usize;
        for &item in items {
            let next = match self.nodes[cur].children.get(&item) {
                Some(&idx) => {
                    self.nodes[idx].count += count;
                    idx
                }
                None => {
                    let idx = self.nodes.len();
                    self.nodes.push(Node { item, count, parent: cur, children: HashMap::new() });
                    self.nodes[cur].children.insert(item, idx);
                    self.header.entry(item).or_default().push(idx);
                    idx
                }
            };
            cur = next;
        }
    }

    /// Walks from a node to the root collecting the prefix path (excluding
    /// the node's own item).
    fn prefix_path(&self, mut idx: usize) -> Vec<u32> {
        let mut path = Vec::new();
        idx = self.nodes[idx].parent;
        while idx != 0 {
            path.push(self.nodes[idx].item);
            idx = self.nodes[idx].parent;
        }
        path.reverse();
        path
    }
}

/// Mines all itemsets with frequency ≥ `min_frequency`.
pub fn mine(db: &Database, min_frequency: f64, max_len: usize) -> Vec<MinedItemset> {
    assert!((0.0..=1.0).contains(&min_frequency), "min_frequency must be in [0,1]");
    let n = db.rows();
    let mut results = Vec::new();
    if n == 0 || max_len == 0 {
        return results;
    }
    let min_support = (min_frequency * n as f64).ceil().max(1.0) as usize;
    // Item supports for the global ordering.
    let supports: Vec<usize> =
        (0..db.dims()).map(|c| db.support(&Itemset::singleton(c as u32))).collect();
    // Order: descending support, ties by item id (must be consistent!).
    let mut order: Vec<u32> =
        (0..db.dims() as u32).filter(|&i| supports[i as usize] >= min_support).collect();
    order.sort_by(|&a, &b| supports[b as usize].cmp(&supports[a as usize]).then(a.cmp(&b)));
    let rank: HashMap<u32, usize> = order.iter().enumerate().map(|(r, &i)| (i, r)).collect();
    // Build the tree.
    let mut tree = FpTree::new();
    for r in 0..n {
        let mut items: Vec<u32> =
            db.row_itemset(r).items().iter().copied().filter(|i| rank.contains_key(i)).collect();
        items.sort_by_key(|i| rank[i]);
        tree.insert(&items, 1);
    }
    // Mine recursively.
    let mut suffix = Vec::new();
    mine_tree(&tree, min_support, n, max_len, &mut suffix, &mut results);
    results
}

fn mine_tree(
    tree: &FpTree,
    min_support: usize,
    n: usize,
    max_len: usize,
    suffix: &mut Vec<u32>,
    results: &mut Vec<MinedItemset>,
) {
    // Items in the tree with their total counts.
    let mut item_counts: Vec<(u32, usize)> = tree
        .header
        .iter()
        .map(|(&item, idxs)| (item, idxs.iter().map(|&i| tree.nodes[i].count).sum()))
        .collect();
    item_counts.sort_by_key(|&(item, _)| item);
    for (item, count) in item_counts {
        if count < min_support {
            continue;
        }
        suffix.push(item);
        let itemset: Itemset = suffix.iter().copied().collect();
        results.push(MinedItemset { itemset, frequency: count as f64 / n as f64 });
        if suffix.len() < max_len {
            // Conditional pattern base for `item`.
            let mut cond = FpTree::new();
            for &node_idx in &tree.header[&item] {
                let path = tree.prefix_path(node_idx);
                if !path.is_empty() {
                    cond.insert(&path, tree.nodes[node_idx].count);
                }
            }
            mine_tree(&cond, min_support, n, max_len, suffix, results);
        }
        suffix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{apriori, eclat, sort_results};
    use ifs_database::generators;
    use ifs_util::Rng64;

    #[test]
    fn agrees_with_apriori_and_eclat() {
        let mut rng = Rng64::seeded(81);
        for trial in 0..5 {
            let db = generators::uniform(100, 10, 0.35, &mut rng);
            let thresh = 0.15 + 0.05 * trial as f64;
            let mut a = apriori::mine(&db, thresh, usize::MAX);
            let mut e = eclat::mine(&db, thresh, usize::MAX);
            let mut f = mine(&db, thresh, usize::MAX);
            sort_results(&mut a);
            sort_results(&mut e);
            sort_results(&mut f);
            assert_eq!(a.len(), f.len(), "trial {trial}: apriori {} vs fp {}", a.len(), f.len());
            for ((x, y), z) in a.iter().zip(&e).zip(&f) {
                assert_eq!(x.itemset, z.itemset);
                assert_eq!(y.itemset, z.itemset);
                assert!((x.frequency - z.frequency).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn single_path_tree() {
        // All rows identical: one path; all subsets of the row are frequent.
        let db = Database::from_rows(5, &vec![vec![1, 2, 4]; 6]);
        let mut got = mine(&db, 0.9, usize::MAX);
        sort_results(&mut got);
        assert_eq!(got.len(), 7); // 2^3 - 1 nonempty subsets
        assert!(got.iter().all(|m| (m.frequency - 1.0).abs() < 1e-12));
    }

    #[test]
    fn max_len_bounds_depth() {
        let db = Database::from_rows(4, &vec![vec![0, 1, 2, 3]; 4]);
        let got = mine(&db, 0.5, 2);
        assert!(got.iter().all(|m| m.itemset.len() <= 2));
        assert_eq!(got.len(), 4 + 6);
    }

    #[test]
    fn planted_bundle_found() {
        let mut rng = Rng64::seeded(82);
        let bundle = Itemset::new(vec![2, 5, 7]);
        let db = generators::planted(
            500,
            10,
            0.05,
            &[generators::Plant { itemset: bundle.clone(), frequency: 0.5 }],
            &mut rng,
        );
        let got = mine(&db, 0.4, usize::MAX);
        assert!(
            got.iter().any(|m| m.itemset == bundle),
            "bundle not mined; got {} itemsets",
            got.len()
        );
    }
}
