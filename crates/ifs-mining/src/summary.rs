//! Condensed representations: maximal and closed frequent itemsets.
//!
//! §1.1.1 of the paper recalls that even these condensed forms can be
//! exponentially large in the worst case — a motivation for sketches. We
//! implement the standard post-processing filters:
//!
//! * **maximal**: no frequent superset exists;
//! * **closed**: no superset with the *same* frequency exists (closed sets
//!   preserve all frequency information of the full collection).

use crate::MinedItemset;

/// True iff `a` is a strict subset of `b` (as sorted item slices).
fn is_strict_subset(a: &[u32], b: &[u32]) -> bool {
    if a.len() >= b.len() {
        return false;
    }
    let mut bi = 0;
    for &x in a {
        while bi < b.len() && b[bi] < x {
            bi += 1;
        }
        if bi == b.len() || b[bi] != x {
            return false;
        }
        bi += 1;
    }
    true
}

/// Filters to **maximal** frequent itemsets.
pub fn maximal(results: &[MinedItemset]) -> Vec<MinedItemset> {
    results
        .iter()
        .filter(|m| {
            !results.iter().any(|other| is_strict_subset(m.itemset.items(), other.itemset.items()))
        })
        .cloned()
        .collect()
}

/// Filters to **closed** frequent itemsets.
///
/// Frequencies are compared with a small tolerance so estimator-derived
/// results (where frequencies are approximate) behave sensibly.
pub fn closed(results: &[MinedItemset]) -> Vec<MinedItemset> {
    closed_with_tolerance(results, 1e-12)
}

/// [`closed`] with an explicit frequency tolerance.
pub fn closed_with_tolerance(results: &[MinedItemset], tol: f64) -> Vec<MinedItemset> {
    results
        .iter()
        .filter(|m| {
            !results.iter().any(|other| {
                is_strict_subset(m.itemset.items(), other.itemset.items())
                    && (other.frequency - m.frequency).abs() <= tol
            })
        })
        .cloned()
        .collect()
}

/// Checks the defining property of a condensed collection: every frequent
/// itemset is a subset of some maximal one.
pub fn covers_all(maximal_sets: &[MinedItemset], all: &[MinedItemset]) -> bool {
    all.iter().all(|m| {
        maximal_sets.iter().any(|mx| {
            m.itemset == mx.itemset || is_strict_subset(m.itemset.items(), mx.itemset.items())
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori;
    use ifs_database::{Database, Itemset};

    fn mined() -> Vec<MinedItemset> {
        let db = Database::from_rows(4, &[vec![0, 1, 2], vec![0, 1, 2], vec![0, 1], vec![3]]);
        apriori::mine(&db, 0.5, usize::MAX)
    }

    #[test]
    fn maximal_is_the_top_itemset() {
        let all = mined();
        let mx = maximal(&all);
        assert_eq!(mx.len(), 1);
        assert_eq!(mx[0].itemset, Itemset::new(vec![0, 1, 2]));
        assert!(covers_all(&mx, &all));
    }

    #[test]
    fn closed_keeps_distinct_frequencies() {
        let all = mined();
        let cl = closed(&all);
        // {0,1} has frequency 0.75 > {0,1,2}'s 0.5, so it is closed too.
        let names: Vec<String> = cl.iter().map(|m| m.itemset.to_string()).collect();
        assert!(names.contains(&"{0,1}".to_string()));
        assert!(names.contains(&"{0,1,2}".to_string()));
        // Singletons {0},{1} have frequency 0.75 = {0,1}: not closed.
        assert!(!names.contains(&"{0}".to_string()));
        // Closed ⊇ maximal.
        assert!(cl.len() >= maximal(&all).len());
    }

    #[test]
    fn subset_predicate() {
        assert!(is_strict_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_strict_subset(&[1, 4], &[1, 2, 3]));
        assert!(!is_strict_subset(&[1, 2], &[1, 2]));
        assert!(is_strict_subset(&[], &[5]));
    }

    #[test]
    fn closed_tolerance_merges_near_equal() {
        let a = MinedItemset { itemset: Itemset::new(vec![0]), frequency: 0.500001 };
        let b = MinedItemset { itemset: Itemset::new(vec![0, 1]), frequency: 0.5 };
        let strict = closed_with_tolerance(&[a.clone(), b.clone()], 1e-12);
        assert_eq!(strict.len(), 2);
        let loose = closed_with_tolerance(&[a, b], 1e-3);
        assert_eq!(loose.len(), 1, "near-equal frequencies collapse");
    }
}
