//! Association rules — the Mannila–Toivonen [MT96] downstream task.
//!
//! A rule `X ⇒ Y` (X, Y disjoint, X∪Y frequent) has
//! `confidence = f(X∪Y)/f(X)` and `lift = f(X∪Y)/(f(X)·f(Y))`. The paper
//! cites [MT96] for how errors in approximate frequencies propagate into
//! rule-quality measures; experiment E12 measures exactly that propagation,
//! using this module on both exact and sketched frequencies.
//!
//! [MT96]: https://www.aaai.org/Papers/KDD/1996/KDD96-031.pdf

use crate::MinedItemset;
use ifs_database::Itemset;
use std::collections::HashMap;

/// An association rule `antecedent ⇒ consequent`.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// Left-hand side X.
    pub antecedent: Itemset,
    /// Right-hand side Y (disjoint from X).
    pub consequent: Itemset,
    /// Frequency of X ∪ Y.
    pub support: f64,
    /// `f(X∪Y)/f(X)`.
    pub confidence: f64,
    /// `f(X∪Y)/(f(X)·f(Y))`.
    pub lift: f64,
}

/// Derives all rules with confidence ≥ `min_confidence` from a collection of
/// frequent itemsets (which must be downward-closed, as produced by the
/// miners: every subset of a listed itemset with |itemset| ≥ 2 is listed).
pub fn derive(frequent: &[MinedItemset], min_confidence: f64) -> Vec<Rule> {
    let freq: HashMap<&Itemset, f64> = frequent.iter().map(|m| (&m.itemset, m.frequency)).collect();
    let mut rules = Vec::new();
    for m in frequent {
        let items = m.itemset.items();
        if items.len() < 2 {
            continue;
        }
        // All non-trivial bipartitions (antecedent non-empty, consequent non-empty).
        let k = items.len();
        for mask in 1..((1u32 << k) - 1) {
            let antecedent: Itemset = items
                .iter()
                .enumerate()
                .filter(|(i, _)| (mask >> i) & 1 == 1)
                .map(|(_, &x)| x)
                .collect();
            let consequent: Itemset = items
                .iter()
                .enumerate()
                .filter(|(i, _)| (mask >> i) & 1 == 0)
                .map(|(_, &x)| x)
                .collect();
            let Some(&fa) = freq.get(&antecedent) else { continue };
            let Some(&fc) = freq.get(&consequent) else { continue };
            if fa <= 0.0 || fc <= 0.0 {
                continue;
            }
            let confidence = m.frequency / fa;
            if confidence >= min_confidence {
                rules.push(Rule {
                    antecedent,
                    consequent,
                    support: m.frequency,
                    confidence,
                    lift: m.frequency / (fa * fc),
                });
            }
        }
    }
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .expect("confidences are finite")
            .then(a.antecedent.cmp(&b.antecedent))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori;
    use ifs_database::Database;

    fn rules_for(db: &Database, min_freq: f64, min_conf: f64) -> Vec<Rule> {
        derive(&apriori::mine(db, min_freq, usize::MAX), min_conf)
    }

    #[test]
    fn perfect_implication_has_confidence_one() {
        // Item 1 always co-occurs with item 0.
        let db = Database::from_rows(3, &[vec![0, 1], vec![0, 1], vec![0], vec![2]]);
        let rules = rules_for(&db, 0.4, 0.95);
        let r = rules
            .iter()
            .find(|r| r.antecedent == Itemset::singleton(1))
            .expect("1 => 0 should exist");
        assert_eq!(r.consequent, Itemset::singleton(0));
        assert!((r.confidence - 1.0).abs() < 1e-12);
        assert!(r.lift > 1.0, "positively correlated");
    }

    #[test]
    fn confidence_threshold_filters() {
        let db = Database::from_rows(3, &[vec![0, 1], vec![0], vec![0], vec![0, 1]]);
        // 0 => 1 has confidence 0.5; 1 => 0 has confidence 1.
        let low = rules_for(&db, 0.2, 0.4);
        let high = rules_for(&db, 0.2, 0.9);
        assert!(low.len() > high.len());
        assert!(high.iter().all(|r| r.confidence >= 0.9));
    }

    #[test]
    fn independent_items_have_lift_near_one() {
        // Items 0 and 1 independent by construction: all 4 combinations
        // equally frequent.
        let db = Database::from_rows(2, &[vec![0, 1], vec![0], vec![1], vec![]]);
        let rules = rules_for(&db, 0.2, 0.0);
        for r in &rules {
            assert!((r.lift - 1.0).abs() < 1e-9, "rule {r:?}");
        }
    }

    #[test]
    fn multiway_rules_from_triple() {
        let db = Database::from_rows(3, &vec![vec![0, 1, 2]; 4]);
        let rules = rules_for(&db, 0.5, 0.5);
        // From {0,1,2}: 6 bipartitions; from pairs: 2 each × 3 pairs = 6.
        assert_eq!(rules.len(), 12);
        assert!(rules.iter().all(|r| (r.confidence - 1.0).abs() < 1e-12));
    }

    #[test]
    fn singletons_yield_no_rules() {
        let db = Database::from_rows(2, &[vec![0], vec![1]]);
        assert!(rules_for(&db, 0.3, 0.0).is_empty());
    }
}
