//! The §1.1.1 hardness reduction: itemsets ↔ balanced complete bipartite
//! subgraphs.
//!
//! View a database as a bipartite graph with rows on one side and attributes
//! on the other, an edge when the row has a 1 in that attribute. An itemset
//! of cardinality `c` and support `s` is exactly a complete bipartite
//! subgraph `K_{s,c}` (every supporting row connects to every item). The
//! paper uses this to observe that finding an approximately maximum
//! *balanced* frequent itemset is NP-hard (via hardness of Balanced Complete
//! Bipartite Subgraph [FK04]).
//!
//! This module makes the reduction executable: conversions both ways, an
//! exact (exponential) maximum-balanced-biclique search for small instances,
//! and a greedy heuristic — experiment E13 contrasts their runtime growth,
//! which is the point of the hardness discussion.
//!
//! [FK04]: https://www.wisdom.weizmann.ac.il/~feige/TechnicalReports/bipartiteclique.pdf

use ifs_database::{Database, Itemset};
use ifs_util::bits;

/// A complete bipartite subgraph: a set of rows, all containing a set of
/// columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Biclique {
    /// Row indices (sorted).
    pub rows: Vec<usize>,
    /// Column indices (sorted).
    pub cols: Vec<u32>,
}

impl Biclique {
    /// Balanced size: `min(|rows|, |cols|)`.
    pub fn balanced_size(&self) -> usize {
        self.rows.len().min(self.cols.len())
    }

    /// Checks the biclique property against a database.
    pub fn is_valid(&self, db: &Database) -> bool {
        let itemset: Itemset = self.cols.iter().copied().collect();
        self.rows.iter().all(|&r| db.row_contains(r, &itemset))
    }
}

/// The forward reduction: an itemset with support set induces a biclique.
pub fn itemset_to_biclique(db: &Database, itemset: &Itemset) -> Biclique {
    let mask = db.mask_of(itemset);
    let rows: Vec<usize> =
        (0..db.rows()).filter(|&r| db.matrix().row_contains_mask(r, &mask)).collect();
    Biclique { rows, cols: itemset.items().to_vec() }
}

/// The reverse reduction: a biclique's column side is an itemset whose
/// frequency is at least `|rows|/n`.
pub fn biclique_to_itemset(b: &Biclique) -> Itemset {
    b.cols.iter().copied().collect()
}

/// Exact maximum balanced biclique by exhaustive search over column subsets.
///
/// Exponential in `d` by necessity (the problem is NP-hard); intended for
/// `d ≤ 20`. For each column subset we take all supporting rows, so the
/// result is the best balanced biclique with that column set.
pub fn max_balanced_exact(db: &Database) -> Biclique {
    let d = db.dims();
    assert!(d <= 20, "exact search is exponential; d={d} is too large");
    let mut best = Biclique { rows: vec![], cols: vec![] };
    for mask in 1u32..(1 << d) {
        let cols: Vec<u32> = (0..d as u32).filter(|&j| (mask >> j) & 1 == 1).collect();
        // Prune: the balanced size is capped by |cols|.
        if cols.len() <= best.balanced_size() {
            continue;
        }
        let itemset: Itemset = cols.iter().copied().collect();
        let b = itemset_to_biclique(db, &itemset);
        if b.balanced_size() > best.balanced_size() {
            best = b;
        }
    }
    best
}

/// Greedy heuristic: grow the column set in descending-support order,
/// intersecting supporting rows incrementally, and return the prefix with
/// the largest balanced size.
///
/// Linear passes instead of the exact search's `2^d`; finds planted
/// bicliques when the plant's columns dominate the support ranking, but has
/// no approximation guarantee — that gap is the point of §1.1.1.
pub fn max_balanced_greedy(db: &Database) -> Biclique {
    let d = db.dims();
    let n = db.rows();
    let store = db.columns();
    let mut order: Vec<u32> = (0..d as u32).collect();
    let supports: Vec<usize> = (0..d).map(|c| store.item_support(c)).collect();
    order.sort_by(|&a, &b| supports[b as usize].cmp(&supports[a as usize]).then(a.cmp(&b)));
    let mut rows_mask = vec![u64::MAX; ifs_util::bits::words_for(n).max(1)];
    bits::mask_tail(&mut rows_mask, n);
    let mut cols: Vec<u32> = Vec::new();
    let mut best: Option<(usize, Vec<u32>, Vec<u64>)> = None;
    for &c in &order {
        let col = store.tids(c as usize);
        let mut tentative = rows_mask.clone();
        bits::and_assign(&mut tentative, col);
        let support = bits::count_ones(&tentative);
        if support == 0 {
            continue; // adding this column kills the biclique entirely
        }
        rows_mask = tentative;
        cols.push(c);
        let balanced = support.min(cols.len());
        if best.as_ref().is_none_or(|(b, _, _)| balanced > *b) {
            best = Some((balanced, cols.clone(), rows_mask.clone()));
        }
    }
    match best {
        None => Biclique { rows: vec![], cols: vec![] },
        Some((_, mut cols, mask)) => {
            cols.sort_unstable();
            Biclique { rows: bits::ones(&mask).collect(), cols }
        }
    }
}

/// Plants a `K_{rows_size, cols_size}` biclique into an otherwise sparse
/// random database; returns the planted column set.
pub fn plant_biclique(
    db: &mut Database,
    rows_size: usize,
    cols_size: usize,
    rng: &mut ifs_util::Rng64,
) -> Vec<u32> {
    assert!(rows_size <= db.rows() && cols_size <= db.dims());
    let rows = rng.distinct_sorted(db.rows(), rows_size);
    let cols: Vec<u32> =
        rng.distinct_sorted(db.dims(), cols_size).into_iter().map(|c| c as u32).collect();
    for &r in &rows {
        for &c in &cols {
            db.matrix_mut().set(r, c as usize, true);
        }
    }
    cols
}

/// The frequency/cardinality correspondence from §1.1.1: an itemset of
/// cardinality `⌈εn⌉` with frequency ≥ ε exists iff a balanced biclique of
/// size `⌈εn⌉` exists (on the `n`-row side).
pub fn has_eps_square(db: &Database, eps: f64) -> bool {
    let target = (eps * db.rows() as f64).ceil() as usize;
    if target == 0 {
        return true;
    }
    if db.dims() <= 20 {
        max_balanced_exact(db).balanced_size() >= target
    } else {
        max_balanced_greedy(db).balanced_size() >= target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_database::generators;
    use ifs_util::Rng64;

    #[test]
    fn reduction_roundtrip() {
        let db = Database::from_rows(4, &[vec![0, 1], vec![0, 1, 2], vec![0, 1], vec![3]]);
        let t = Itemset::new(vec![0, 1]);
        let b = itemset_to_biclique(&db, &t);
        assert_eq!(b.rows, vec![0, 1, 2]);
        assert!(b.is_valid(&db));
        assert_eq!(biclique_to_itemset(&b), t);
        // Frequency = |rows|/n.
        assert_eq!(db.frequency(&t), b.rows.len() as f64 / db.rows() as f64);
    }

    #[test]
    fn exact_finds_planted_biclique() {
        let mut rng = Rng64::seeded(91);
        let mut db = generators::uniform(24, 10, 0.08, &mut rng);
        plant_biclique(&mut db, 6, 6, &mut rng);
        let best = max_balanced_exact(&db);
        assert!(best.balanced_size() >= 6, "found only {}", best.balanced_size());
        assert!(best.is_valid(&db));
    }

    #[test]
    fn greedy_finds_planted_biclique_when_clean() {
        let mut rng = Rng64::seeded(92);
        // No background noise: greedy column-dropping recovers the plant.
        let mut db = Database::zeros(30, 16);
        plant_biclique(&mut db, 8, 8, &mut rng);
        let best = max_balanced_greedy(&db);
        assert!(best.balanced_size() >= 8, "greedy found {}", best.balanced_size());
        assert!(best.is_valid(&db));
    }

    #[test]
    fn greedy_never_beats_exact() {
        let mut rng = Rng64::seeded(93);
        for _ in 0..5 {
            let db = generators::uniform(16, 8, 0.4, &mut rng);
            let exact = max_balanced_exact(&db).balanced_size();
            let greedy = max_balanced_greedy(&db).balanced_size();
            assert!(greedy <= exact, "greedy {greedy} > exact {exact}?!");
        }
    }

    #[test]
    fn eps_square_detection() {
        let mut rng = Rng64::seeded(94);
        let mut db = Database::zeros(20, 10);
        plant_biclique(&mut db, 5, 5, &mut rng);
        // ε = 0.25 -> target 5: present.
        assert!(has_eps_square(&db, 0.25));
        // ε = 0.4 -> target 8 > 5 columns planted: absent.
        assert!(!has_eps_square(&db, 0.4));
    }

    #[test]
    fn empty_database_trivial() {
        let db = Database::zeros(5, 4);
        let b = max_balanced_exact(&db);
        assert_eq!(b.balanced_size(), 0);
    }

    #[test]
    fn bits_layout_assumption() {
        // itemset_to_biclique relies on mask layout matching row layout.
        let db = Database::from_rows(70, &[vec![0, 65, 69], vec![65, 69]]);
        let t = Itemset::new(vec![65, 69]);
        let b = itemset_to_biclique(&db, &t);
        assert_eq!(b.rows, vec![0, 1]);
        let _ = bits::words_for(70);
    }
}
