//! Eclat: depth-first vertical mining over packed tid-sets.
//!
//! Each item maps to the bitset of rows containing it ("tid-set"); the
//! frequency of an itemset is the popcount of the intersection of its
//! items' tid-sets. Depth-first extension with intersection reuse makes
//! this the fastest of the three miners on dense laptop-scale data. The
//! tid-sets are the database's shared [`ifs_database::ColumnStore`]
//! (DESIGN.md §7), so the transpose is built once per database and reused
//! across miners, sketch queries, and repeated mining runs.

use crate::MinedItemset;
use ifs_database::{Database, Itemset};
use ifs_util::bits;
use ifs_util::threads::{clamp_threads, parallel_map_indexed};

/// Mines all itemsets with frequency ≥ `min_frequency`, depth-first.
pub fn mine(db: &Database, min_frequency: f64, max_len: usize) -> Vec<MinedItemset> {
    mine_with_threads(db, min_frequency, max_len, 1)
}

/// [`mine`] with a thread-count knob (DESIGN.md §8).
///
/// Each frequent single item roots an independent DFS subtree (its
/// extensions only look rightward in the item order), so the top-level
/// prefixes form a natural work queue: up to `threads` workers pull prefix
/// indices and mine their subtrees with the serial `extend` into per-slot
/// buffers, which are then concatenated **in prefix order**. Because every
/// subtree's internal order is the serial DFS order and the concatenation
/// order is the serial prefix order, the result vector is identical — same
/// itemsets, same `f64` frequency bits, same positions — to [`mine`] at
/// every thread count (enforced by `tests/sharded_queries.rs`).
pub fn mine_with_threads(
    db: &Database,
    min_frequency: f64,
    max_len: usize,
    threads: usize,
) -> Vec<MinedItemset> {
    assert!((0.0..=1.0).contains(&min_frequency), "min_frequency must be in [0,1]");
    let threads = clamp_threads(threads);
    let n = db.rows();
    if n == 0 || max_len == 0 {
        return Vec::new();
    }
    let min_support = (min_frequency * n as f64).ceil().max(1.0) as usize;
    // Vertical representation: the database's cached per-item tid-sets.
    let store = db.columns();
    let frequent_items: Vec<(u32, &[u64], usize)> = (0..db.dims())
        .filter_map(|c| {
            let tids = store.tids(c);
            let support = bits::count_ones(tids);
            (support >= min_support).then_some((c as u32, tids, support))
        })
        .collect();
    if threads == 1 || frequent_items.len() <= 1 {
        let mut results = Vec::new();
        // DFS stack holds (prefix itemset, prefix tidset, start index).
        for (idx, &(item, tids, support)) in frequent_items.iter().enumerate() {
            let prefix = Itemset::singleton(item);
            results.push(MinedItemset {
                itemset: prefix.clone(),
                frequency: support as f64 / n as f64,
            });
            extend(&prefix, tids, &frequent_items, idx + 1, min_support, n, max_len, &mut results);
        }
        return results;
    }
    // Per-prefix work queue ([`parallel_map_indexed`]): workers race for
    // indices, but each subtree's results land in the slot of its prefix,
    // so the flattening below is independent of scheduling.
    let items = &frequent_items;
    parallel_map_indexed(items.len(), threads, |idx| {
        let (item, tids, support) = items[idx];
        let prefix = Itemset::singleton(item);
        let mut local =
            vec![MinedItemset { itemset: prefix.clone(), frequency: support as f64 / n as f64 }];
        extend(&prefix, tids, items, idx + 1, min_support, n, max_len, &mut local);
        local
    })
    .into_iter()
    .flatten()
    .collect()
}

#[allow(clippy::too_many_arguments)]
fn extend(
    prefix: &Itemset,
    prefix_tids: &[u64],
    items: &[(u32, &[u64], usize)],
    start: usize,
    min_support: usize,
    n: usize,
    max_len: usize,
    results: &mut Vec<MinedItemset>,
) {
    if prefix.len() >= max_len {
        return;
    }
    for (idx, &(item, tids, _)) in items.iter().enumerate().skip(start) {
        let mut inter = prefix_tids.to_vec();
        // Fused AND+popcount: one pass over the tid words instead of an
        // `and_assign` pass followed by a `count_ones` pass.
        let support = bits::and_count_into(&mut inter, tids);
        if support >= min_support {
            let extended = prefix.union(&Itemset::singleton(item));
            results.push(MinedItemset {
                itemset: extended.clone(),
                frequency: support as f64 / n as f64,
            });
            extend(&extended, &inter, items, idx + 1, min_support, n, max_len, results);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{apriori, sort_results};
    use ifs_database::generators;
    use ifs_util::Rng64;

    #[test]
    fn agrees_with_apriori_on_random_data() {
        let mut rng = Rng64::seeded(71);
        for trial in 0..5 {
            let db = generators::uniform(120, 12, 0.3, &mut rng);
            let thresh = 0.1 + 0.05 * trial as f64;
            let mut a = apriori::mine(&db, thresh, usize::MAX);
            let mut e = mine(&db, thresh, usize::MAX);
            sort_results(&mut a);
            sort_results(&mut e);
            assert_eq!(a.len(), e.len(), "trial {trial}");
            for (x, y) in a.iter().zip(&e) {
                assert_eq!(x.itemset, y.itemset);
                assert!((x.frequency - y.frequency).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn respects_max_len() {
        let mut rng = Rng64::seeded(72);
        let db = generators::uniform(60, 8, 0.6, &mut rng);
        let got = mine(&db, 0.2, 2);
        assert!(got.iter().all(|m| m.itemset.len() <= 2));
        assert!(got.iter().any(|m| m.itemset.len() == 2));
    }

    #[test]
    fn min_frequency_one_requires_full_support() {
        let db = Database::from_rows(3, &[vec![0, 1], vec![0, 1], vec![0, 2]]);
        let got = mine(&db, 1.0, usize::MAX);
        let names: Vec<String> = got.iter().map(|m| m.itemset.to_string()).collect();
        assert_eq!(names, vec!["{0}"]);
    }

    #[test]
    fn empty_results_below_any_support() {
        let db = Database::zeros(10, 5);
        assert!(mine(&db, 0.1, usize::MAX).is_empty());
    }

    #[test]
    fn threaded_mining_is_bit_identical_in_order() {
        let mut rng = Rng64::seeded(73);
        for trial in 0..3 {
            let db = generators::uniform(150, 14, 0.35, &mut rng);
            let thresh = 0.08 + 0.04 * trial as f64;
            let serial = mine(&db, thresh, usize::MAX);
            for threads in [2, 4, 8] {
                let par = mine_with_threads(&db, thresh, usize::MAX, threads);
                // Same itemsets, same frequency bits, same ORDER — the
                // unsorted vectors must be equal element for element.
                assert_eq!(par, serial, "threads={threads} trial={trial}");
            }
        }
    }
}
