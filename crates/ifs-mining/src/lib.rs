//! Frequent itemset mining — the workloads that motivate the paper (§1.1).
//!
//! The paper's introduction frames itemset frequency sketches as the
//! substrate for classical mining tasks: market-basket analysis (Agrawal et
//! al.), rule identification (Mannila–Toivonen), and the hardness discussion
//! of §1.1.1 (maximal frequent itemsets ↔ balanced bicliques). This crate
//! implements those consumers so the examples and experiments can run real
//! mining pipelines both on raw databases and on sketches:
//!
//! * [`apriori`] — level-wise mining with prefix-join candidate generation.
//! * [`eclat`] — depth-first vertical mining over packed tid-sets.
//! * [`fpgrowth`] — FP-tree based mining without candidate generation.
//!   All three return identical result sets (cross-checked in tests).
//! * [`summary`] — maximal- and closed-itemset condensation (§1.1.1's
//!   "condensed representations").
//! * [`rules`] — association rules with support/confidence/lift.
//! * [`biclique`] — the §1.1.1 reduction between frequent itemsets and
//!   balanced complete bipartite subgraphs, with exact and greedy finders.
//! * [`oracle`] — Apriori against *any* frequency estimator, the
//!   ε-adequate-representation workflow of [MT96]: mine from a sketch
//!   instead of the database.
//!
//! [MT96]: https://www.aaai.org/Papers/KDD/1996/KDD96-031.pdf

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apriori;
pub mod biclique;
pub mod eclat;
pub mod fpgrowth;
pub mod oracle;
pub mod rules;
pub mod summary;

use ifs_database::Itemset;

/// A mined itemset with its (exact or estimated) frequency.
#[derive(Clone, Debug, PartialEq)]
pub struct MinedItemset {
    /// The itemset.
    pub itemset: Itemset,
    /// Its frequency in the mined source.
    pub frequency: f64,
}

/// Canonical ordering for result comparison across algorithms.
pub fn sort_results(results: &mut [MinedItemset]) {
    results.sort_by(|a, b| a.itemset.cmp(&b.itemset));
}
