//! Mining from a sketch — the ε-adequate representation workflow of [MT96].
//!
//! Mannila–Toivonen define an ε-adequate representation as any structure
//! answering itemset frequency queries to within ε; the paper's
//! For-All-Estimator sketches are exactly that. This module runs Apriori
//! level-wise search against **any** [`FrequencyEstimator`], so the sketch
//! replaces the database entirely — the "interactive knowledge discovery"
//! scenario of §1.1.2.
//!
//! Guarantee inherited from [MT96]: with a threshold `θ` and a sketch of
//! additive error ε, mining at `θ − ε` returns every itemset with true
//! frequency ≥ θ and nothing with true frequency < θ − 2ε.
//!
//! [MT96]: https://www.aaai.org/Papers/KDD/1996/KDD96-031.pdf

use crate::MinedItemset;
use ifs_core::FrequencyEstimator;
use ifs_database::Itemset;

/// Level-wise mining against a frequency estimator.
///
/// `dims` is the attribute count `d` of the sketched database; candidates
/// whose estimate falls below `min_frequency` are pruned exactly as in
/// Apriori (downward closure holds for the *estimates* only approximately,
/// which is the error-propagation phenomenon E12 measures).
///
/// Each level issues **one** [`FrequencyEstimator::estimate_batch`] call
/// over all surviving candidates, so sketches with a columnar query engine
/// (e.g. `Subsample`, `ReleaseDb`) answer the whole level on shared
/// tid-sets; the batching contract guarantees the mined output is identical
/// to the scalar per-candidate loop.
pub fn mine_with_estimator<E: FrequencyEstimator>(
    sketch: &E,
    dims: usize,
    min_frequency: f64,
    max_len: usize,
) -> Vec<MinedItemset> {
    let mut results = Vec::new();
    if max_len == 0 {
        return results;
    }
    // Level 1: every singleton is a candidate.
    let mut current: Vec<Itemset> = (0..dims as u32).map(Itemset::singleton).collect();
    let mut k = 0usize;
    while !current.is_empty() && k < max_len {
        let estimates = sketch.estimate_batch(&current);
        let mut next = Vec::new();
        for (cand, f) in current.into_iter().zip(estimates) {
            if f >= min_frequency {
                results.push(MinedItemset { itemset: cand.clone(), frequency: f });
                next.push(cand);
            }
        }
        k += 1;
        current = if k < max_len { crate::apriori::generate_candidates(&next) } else { Vec::new() };
    }
    results
}

/// Recall/precision of sketch-mined itemsets against exact mining at a
/// reference threshold, ignoring frequency values (set comparison).
pub fn recall_precision(sketched: &[MinedItemset], exact: &[MinedItemset]) -> (f64, f64) {
    use std::collections::HashSet;
    let s: HashSet<_> = sketched.iter().map(|m| m.itemset.clone()).collect();
    let e: HashSet<_> = exact.iter().map(|m| m.itemset.clone()).collect();
    let inter = s.intersection(&e).count() as f64;
    let recall = if e.is_empty() { 1.0 } else { inter / e.len() as f64 };
    let precision = if s.is_empty() { 1.0 } else { inter / s.len() as f64 };
    (recall, precision)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{apriori, sort_results};
    use ifs_core::{Guarantee, ReleaseDb, SketchParams, Subsample};
    use ifs_database::generators::{self, Plant};
    use ifs_util::Rng64;

    #[test]
    fn release_db_oracle_matches_direct_mining() {
        let mut rng = Rng64::seeded(101);
        let db = generators::uniform(150, 10, 0.3, &mut rng);
        let sketch = ReleaseDb::build(&db, 0.2);
        let mut via_oracle = mine_with_estimator(&sketch, 10, 0.2, usize::MAX);
        let mut direct = apriori::mine(&db, 0.2, usize::MAX);
        sort_results(&mut via_oracle);
        sort_results(&mut direct);
        assert_eq!(via_oracle, direct, "exact oracle must reproduce Apriori");
    }

    #[test]
    fn subsample_oracle_finds_planted_bundles() {
        let mut rng = Rng64::seeded(102);
        let bundle = ifs_database::Itemset::new(vec![1, 4, 7]);
        let db = generators::planted(
            20_000,
            12,
            0.02,
            &[Plant { itemset: bundle.clone(), frequency: 0.35 }],
            &mut rng,
        );
        let params = SketchParams::new(3, 0.05, 0.05);
        let sketch = Subsample::build(&db, &params, Guarantee::ForAllEstimator, &mut rng);
        // Mine at θ − ε per [MT96].
        let mined = mine_with_estimator(&sketch, 12, 0.3 - 0.05, usize::MAX);
        assert!(mined.iter().any(|m| m.itemset == bundle), "bundle lost in sketch mining");
        let exact = apriori::mine(&db, 0.3, usize::MAX);
        let (recall, _prec) = recall_precision(&mined, &exact);
        assert!(recall >= 0.99, "recall {recall}");
    }

    #[test]
    fn recall_precision_edge_cases() {
        assert_eq!(recall_precision(&[], &[]), (1.0, 1.0));
        let m = MinedItemset { itemset: ifs_database::Itemset::singleton(0), frequency: 0.5 };
        assert_eq!(recall_precision(std::slice::from_ref(&m), &[]), (1.0, 0.0));
        assert_eq!(recall_precision(&[], &[m]), (0.0, 1.0));
    }

    #[test]
    fn max_len_zero_returns_empty() {
        let db = ifs_database::Database::zeros(5, 3);
        let sketch = ReleaseDb::build(&db, 0.5);
        assert!(mine_with_estimator(&sketch, 3, 0.1, 0).is_empty());
    }
}
