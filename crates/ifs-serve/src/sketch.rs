//! Admission and query dispatch over the servable sketch kinds.
//!
//! The serving tier answers queries from exactly the finished
//! frequency-sketch kinds of the snapshot registry: `Subsample`,
//! `ReleaseDb`, and the two `ReleaseAnswers` stores. The remaining
//! registry kinds are *mergeable partials or counter sketches* — bytes
//! that ship to an ingestion merger, not to a query server — and a frame
//! carrying one is refused at admission with a typed
//! [`ServeError::UnservableKind`], never half-served.
//!
//! Dispatch also owns the safety boundary the offline query paths do not
//! need: those paths `assert!` on out-of-contract queries (an item beyond
//! `dims`, the wrong cardinality for a RELEASE-ANSWERS store), which is
//! correct for in-process callers and fatal for a server fed by a socket.
//! [`ServedSketch::answer`] validates every query against the admitted
//! sketch's contract first and refuses with [`ServeError::BadQuery`], so
//! no byte string a client sends can reach a panic.

use crate::error::ServeError;
use crate::protocol::QueryMode;
use ifs_core::snapshot::{
    KIND_COUNT_MIN, KIND_COUNT_SKETCH, KIND_RELEASE_ANSWERS_ESTIMATOR,
    KIND_RELEASE_ANSWERS_INDICATOR, KIND_RELEASE_DB, KIND_SUBSAMPLE, KIND_SUBSAMPLE_BUILDER,
};
use ifs_core::{
    FrequencyEstimator, FrequencyIndicator, Parallel, ReleaseAnswersEstimator,
    ReleaseAnswersIndicator, ReleaseDb, Snapshot, Subsample,
};
use ifs_database::codec::{DecodeError, SNAPSHOT_MAGIC};
use ifs_database::Itemset;

/// Answers to one query batch.
#[derive(Debug, Clone, PartialEq)]
pub enum Answers {
    /// Estimate-mode answers, in query order.
    Estimates(Vec<f64>),
    /// Indicator-mode answers, in query order.
    Indicators(Vec<bool>),
}

/// A decoded sketch the server can answer queries from.
#[derive(Debug, Clone)]
pub enum ServedSketch {
    /// SUBSAMPLE (kind 1): estimator and indicator, sharded batches.
    Subsample(Subsample),
    /// RELEASE-DB (kind 2): exact estimator and indicator, sharded batches.
    ReleaseDb(ReleaseDb),
    /// RELEASE-ANSWERS indicator store (kind 3): `k`-itemsets only.
    AnswersIndicator(ReleaseAnswersIndicator),
    /// RELEASE-ANSWERS estimator store (kind 4): `k`-itemsets only.
    AnswersEstimator(ReleaseAnswersEstimator),
}

/// Reads the kind tag of a snapshot frame without decoding it — the
/// admission switch. Refuses short or mis-magicked prefixes with the
/// usual taxonomy.
pub fn peek_kind(frame: &[u8]) -> Result<u16, DecodeError> {
    if frame.len() < 6 {
        return Err(DecodeError::Truncated { needed: 6, available: frame.len() });
    }
    let magic = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes"));
    if magic != SNAPSHOT_MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    Ok(u16::from_le_bytes(frame[4..6].try_into().expect("2 bytes")))
}

impl ServedSketch {
    /// Decodes one servable frame from the front of `bytes`, returning the
    /// sketch and the bytes consumed — the entry point for streams of
    /// concatenated frames (a snapshot file on disk). Unservable kinds and
    /// every decode failure refuse typed.
    pub fn decode_prefix(bytes: &[u8]) -> Result<(Self, usize), ServeError> {
        match peek_kind(bytes)? {
            KIND_SUBSAMPLE => {
                let (s, n) = Subsample::decode_from(bytes)?;
                Ok((ServedSketch::Subsample(s), n))
            }
            KIND_RELEASE_DB => {
                let (s, n) = ReleaseDb::decode_from(bytes)?;
                Ok((ServedSketch::ReleaseDb(s), n))
            }
            KIND_RELEASE_ANSWERS_INDICATOR => {
                let (s, n) = ReleaseAnswersIndicator::decode_from(bytes)?;
                Ok((ServedSketch::AnswersIndicator(s), n))
            }
            KIND_RELEASE_ANSWERS_ESTIMATOR => {
                let (s, n) = ReleaseAnswersEstimator::decode_from(bytes)?;
                Ok((ServedSketch::AnswersEstimator(s), n))
            }
            kind @ (KIND_COUNT_MIN | KIND_COUNT_SKETCH | KIND_SUBSAMPLE_BUILDER) => {
                Err(ServeError::UnservableKind { kind })
            }
            kind => Err(ServeError::UnservableKind { kind }),
        }
    }

    /// Admits a frame spanning exactly all of `bytes` and applies the
    /// per-sketch thread knob (a no-op for the scalar-lookup stores).
    pub fn admit(bytes: &[u8], threads: usize) -> Result<Self, ServeError> {
        let (mut sketch, consumed) = Self::decode_prefix(bytes)?;
        if consumed != bytes.len() {
            return Err(ServeError::Decode(DecodeError::TrailingBytes {
                extra: bytes.len() - consumed,
            }));
        }
        sketch.set_threads(threads);
        Ok(sketch)
    }

    /// This sketch's tag in the snapshot kind registry.
    pub fn kind(&self) -> u16 {
        match self {
            ServedSketch::Subsample(_) => KIND_SUBSAMPLE,
            ServedSketch::ReleaseDb(_) => KIND_RELEASE_DB,
            ServedSketch::AnswersIndicator(_) => KIND_RELEASE_ANSWERS_INDICATOR,
            ServedSketch::AnswersEstimator(_) => KIND_RELEASE_ANSWERS_ESTIMATOR,
        }
    }

    /// Attribute count `d` queries must respect.
    pub fn dims(&self) -> usize {
        match self {
            ServedSketch::Subsample(s) => s.sample().dims(),
            ServedSketch::ReleaseDb(s) => s.database().dims(),
            ServedSketch::AnswersIndicator(s) => s.dims(),
            ServedSketch::AnswersEstimator(s) => s.dims(),
        }
    }

    /// The exact query cardinality this sketch demands, if it demands one
    /// (the RELEASE-ANSWERS stores answer only `k`-itemsets).
    pub fn required_len(&self) -> Option<usize> {
        match self {
            ServedSketch::Subsample(_) | ServedSketch::ReleaseDb(_) => None,
            ServedSketch::AnswersIndicator(s) => Some(s.k()),
            ServedSketch::AnswersEstimator(s) => Some(s.k()),
        }
    }

    /// Applies the sharded-engine thread knob where the sketch has one.
    pub fn set_threads(&mut self, threads: usize) {
        match self {
            ServedSketch::Subsample(s) => s.set_threads(threads),
            ServedSketch::ReleaseDb(s) => s.set_threads(threads),
            // Scalar bitset lookups: no batched engine underneath.
            ServedSketch::AnswersIndicator(_) | ServedSketch::AnswersEstimator(_) => {}
        }
    }

    /// True iff this sketch's contract can answer `mode` queries at all
    /// (the mode half of [`answer`](Self::answer)'s refusal surface,
    /// checkable without a batch — the pool's micro-batcher pre-screens
    /// requests with it before aggregating across connections).
    pub fn supports(&self, mode: QueryMode) -> bool {
        match mode {
            QueryMode::Estimate => !matches!(self, ServedSketch::AnswersIndicator(_)),
            QueryMode::Indicator => !matches!(self, ServedSketch::AnswersEstimator(_)),
        }
    }

    /// Refuses any query outside this sketch's contract — the checks the
    /// offline paths perform with `assert!`, as typed errors. Public so
    /// the micro-batcher can validate each connection's request *before*
    /// aggregation: a bad query then refuses only its own request, never
    /// a batch another connection contributed to.
    pub fn validate(&self, queries: &[Itemset]) -> Result<(), ServeError> {
        let dims = self.dims();
        let required = self.required_len();
        for (i, q) in queries.iter().enumerate() {
            if let Some(k) = required {
                if q.len() != k {
                    return Err(ServeError::BadQuery {
                        index: i as u64,
                        reason: format!("sketch answers only {k}-itemsets, got {} items", q.len()),
                    });
                }
            }
            if let Some(m) = q.max_item() {
                if m as usize >= dims {
                    return Err(ServeError::BadQuery {
                        index: i as u64,
                        reason: format!("item {m} out of range for {dims} attributes"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Answers one validated batch in `mode`; modes the sketch's contract
    /// cannot provide refuse with [`ServeError::Unanswerable`].
    pub fn answer(&self, mode: QueryMode, queries: &[Itemset]) -> Result<Answers, ServeError> {
        self.validate(queries)?;
        match (mode, self) {
            (QueryMode::Estimate, ServedSketch::Subsample(s)) => {
                Ok(Answers::Estimates(s.estimate_batch(queries)))
            }
            (QueryMode::Estimate, ServedSketch::ReleaseDb(s)) => {
                Ok(Answers::Estimates(s.estimate_batch(queries)))
            }
            (QueryMode::Estimate, ServedSketch::AnswersEstimator(s)) => {
                Ok(Answers::Estimates(s.estimate_batch(queries)))
            }
            (QueryMode::Indicator, ServedSketch::Subsample(s)) => {
                Ok(Answers::Indicators(s.is_frequent_batch(queries)))
            }
            (QueryMode::Indicator, ServedSketch::ReleaseDb(s)) => {
                Ok(Answers::Indicators(s.is_frequent_batch(queries)))
            }
            (QueryMode::Indicator, ServedSketch::AnswersIndicator(s)) => {
                Ok(Answers::Indicators(s.is_frequent_batch(queries)))
            }
            // The quantized estimator store cannot provide threshold bits
            // (no ε dead-zone survives quantization), and the indicator
            // store cannot provide estimates (it only ever stored bits).
            (mode, other) => Err(ServeError::Unanswerable { kind: other.kind(), mode }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_database::Database;

    fn demo_db() -> Database {
        Database::from_rows(
            6,
            &[vec![0, 1, 2], vec![0, 1], vec![2, 3], vec![], vec![1], vec![0, 1, 5]],
        )
    }

    #[test]
    fn admission_dispatches_on_kind() {
        let db = demo_db();
        let rdb = ReleaseDb::build(&db, 0.3);
        let admitted = ServedSketch::admit(&rdb.snapshot_bytes(), 2).expect("servable frame");
        assert_eq!(admitted.kind(), KIND_RELEASE_DB);
        assert_eq!(admitted.dims(), 6);
        assert_eq!(admitted.required_len(), None);
        let rai = ReleaseAnswersIndicator::build(&db, 2, 0.3);
        let admitted = ServedSketch::admit(&rai.snapshot_bytes(), 0).expect("servable frame");
        assert_eq!(admitted.kind(), KIND_RELEASE_ANSWERS_INDICATOR);
        assert_eq!(admitted.required_len(), Some(2));
    }

    #[test]
    fn unservable_kinds_refuse_typed() {
        use ifs_core::streaming::StreamingBuild;
        let builder = ifs_core::SubsampleBuilder::begin(
            4,
            7,
            &ifs_core::SubsampleParams { sample_rows: 2, epsilon: 0.1 },
        );
        let err = ServedSketch::admit(&builder.snapshot_bytes(), 1).expect_err("partial build");
        assert_eq!(err, ServeError::UnservableKind { kind: KIND_SUBSAMPLE_BUILDER });
    }

    #[test]
    fn admission_refuses_malformed_frames() {
        assert!(matches!(
            ServedSketch::admit(&[], 1),
            Err(ServeError::Decode(DecodeError::Truncated { .. }))
        ));
        assert!(matches!(
            ServedSketch::admit(b"not a frame", 1),
            Err(ServeError::Decode(DecodeError::BadMagic(_)))
        ));
        let db = demo_db();
        let mut bytes = ReleaseDb::build(&db, 0.3).snapshot_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(
            ServedSketch::admit(&bytes, 1),
            Err(ServeError::Decode(DecodeError::ChecksumMismatch { .. } | DecodeError::Corrupt(_)))
        ));
        let mut long = ReleaseDb::build(&db, 0.3).snapshot_bytes();
        long.extend_from_slice(b"xy");
        assert!(matches!(
            ServedSketch::admit(&long, 1),
            Err(ServeError::Decode(DecodeError::TrailingBytes { extra: 2 }))
        ));
    }

    #[test]
    fn out_of_contract_queries_refuse_instead_of_panicking() {
        let db = demo_db();
        let rdb = ServedSketch::admit(&ReleaseDb::build(&db, 0.3).snapshot_bytes(), 1).unwrap();
        let err = rdb
            .answer(QueryMode::Estimate, &[Itemset::empty(), Itemset::singleton(6)])
            .expect_err("item 6 is out of range for 6 attributes");
        assert!(matches!(err, ServeError::BadQuery { index: 1, .. }), "{err}");

        let rai =
            ServedSketch::admit(&ReleaseAnswersIndicator::build(&db, 2, 0.3).snapshot_bytes(), 1)
                .unwrap();
        let err = rai
            .answer(QueryMode::Indicator, &[Itemset::new(vec![0, 1]), Itemset::singleton(2)])
            .expect_err("wrong cardinality");
        assert!(matches!(err, ServeError::BadQuery { index: 1, .. }), "{err}");
        let err = rai.answer(QueryMode::Estimate, &[]).expect_err("indicator-only sketch");
        assert_eq!(
            err,
            ServeError::Unanswerable {
                kind: KIND_RELEASE_ANSWERS_INDICATOR,
                mode: QueryMode::Estimate
            }
        );
    }

    #[test]
    fn empty_batches_answer_empty() {
        let db = demo_db();
        let rdb = ServedSketch::admit(&ReleaseDb::build(&db, 0.3).snapshot_bytes(), 1).unwrap();
        assert_eq!(rdb.answer(QueryMode::Estimate, &[]), Ok(Answers::Estimates(vec![])));
        assert_eq!(rdb.answer(QueryMode::Indicator, &[]), Ok(Answers::Indicators(vec![])));
    }

    #[test]
    fn answers_match_the_offline_sketch_at_every_thread_count() {
        let db = demo_db();
        let offline = ReleaseDb::build(&db, 0.3);
        let queries = vec![Itemset::empty(), Itemset::singleton(1), Itemset::new(vec![0, 1, 2])];
        for threads in [0, 1, 4] {
            let served = ServedSketch::admit(&offline.snapshot_bytes(), threads).expect("admit");
            assert_eq!(
                served.answer(QueryMode::Estimate, &queries),
                Ok(Answers::Estimates(offline.estimate_batch(&queries))),
                "threads={threads}"
            );
        }
    }
}
