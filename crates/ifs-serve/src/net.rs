//! Blocking TCP transport for the serving protocol.
//!
//! The wire carries exactly the byte strings [`crate::protocol`] produces:
//! self-delimiting frames (8-byte header, varint body length, body, 8-byte
//! checksum), so the transport's only jobs are to find frame boundaries in
//! the stream and to bound how much a peer can make the server buffer.
//! Everything semantic — checksums, kinds, versions, body tags — is judged
//! by the codec layer after the frame is reassembled, which keeps the
//! adversarial-input story in one place.
//!
//! A framing-level problem (wrong magic, a declared length over
//! [`MAX_WIRE_FRAME`]) leaves the stream position meaningless, so the
//! server answers with one typed error response and closes the connection;
//! in-frame corruption (bad checksum, unknown tag) is recoverable and the
//! connection stays open.

use crate::protocol::{EncodeBuf, Request, Response};
use crate::server::SketchServer;
use ifs_database::codec::{DecodeError, SNAPSHOT_MAGIC};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};

/// Upper bound on a single wire frame's declared body length, in bytes
/// (1 GiB). A peer can therefore never make the transport buffer more
/// than this (plus the fixed header/checksum overhead) per frame.
pub const MAX_WIRE_FRAME: usize = 1 << 30;

/// Reads one complete frame from `stream`.
///
/// - `Ok(None)` — the peer closed the connection cleanly at a frame
///   boundary.
/// - `Ok(Some(Ok(bytes)))` — one whole frame, ready for the codec layer.
/// - `Ok(Some(Err(e)))` — the stream is not speaking the frame format
///   (bad magic, oversized or malformed length); the caller should answer
///   once and close, since the next frame boundary is unknowable.
/// - `Err(_)` — transport failure (including mid-frame EOF).
pub fn read_frame<R: Read>(stream: &mut R) -> io::Result<Option<Result<Vec<u8>, DecodeError>>> {
    let mut frame = Vec::new();
    Ok(read_frame_into(stream, &mut frame)?.map(|r| r.map(|()| frame)))
}

/// [`read_frame`] into a caller-owned buffer: `frame` is cleared and
/// overwritten with the complete frame bytes, retaining its capacity, so a
/// connection that reads every frame through one buffer stops allocating
/// once it has seen its largest frame. The `Option`/`Result` layering is
/// exactly [`read_frame`]'s; on `Some(Ok(()))` the frame spans all of
/// `frame`.
pub fn read_frame_into<R: Read>(
    stream: &mut R,
    frame: &mut Vec<u8>,
) -> io::Result<Option<Result<(), DecodeError>>> {
    frame.clear();
    // Header: magic u32 + kind u16 + version u16. EOF before the first
    // byte is a clean close; EOF after it is a truncated frame.
    let mut header = [0u8; 8];
    match stream.read_exact(&mut header[..1]) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    stream.read_exact(&mut header[1..])?;
    let magic = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    if magic != SNAPSHOT_MAGIC {
        return Ok(Some(Err(DecodeError::BadMagic(magic))));
    }
    frame.extend_from_slice(&header);
    // Varint body length, byte-wise off the stream.
    let mut body_len = 0u64;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        stream.read_exact(&mut b)?;
        frame.push(b[0]);
        let payload = u64::from(b[0] & 0x7F);
        if shift >= 63 && payload > 1 {
            return Ok(Some(Err(DecodeError::Corrupt("frame length varint overflows u64".into()))));
        }
        body_len |= payload << shift;
        if b[0] & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 63 {
            return Ok(Some(Err(DecodeError::Corrupt(
                "frame length varint continues beyond 10 bytes".into(),
            ))));
        }
    }
    if body_len > MAX_WIRE_FRAME as u64 {
        return Ok(Some(Err(DecodeError::Corrupt(format!(
            "frame declares a {body_len}-byte body, transport cap is {MAX_WIRE_FRAME}"
        )))));
    }
    // Body + trailing u64 checksum; validated by the codec layer.
    let start = frame.len();
    frame.resize(start + body_len as usize + 8, 0);
    stream.read_exact(&mut frame[start..])?;
    Ok(Some(Ok(())))
}

/// Writes one already-framed message and flushes it.
pub fn write_frame<W: Write>(stream: &mut W, frame: &[u8]) -> io::Result<()> {
    stream.write_all(frame)?;
    stream.flush()
}

/// Finds the first frame boundary in a buffered prefix of a byte stream —
/// the incremental-parse form of [`read_frame_into`] the pooled
/// (nonblocking) transport uses, where bytes arrive in arbitrary chunks
/// and a partial frame must simply wait for more.
///
/// - `Ok(Some(len))` — `buf[..len]` is one complete frame.
/// - `Ok(None)` — `buf` is a valid but incomplete prefix; read more.
/// - `Err(_)` — `buf` can never extend to a frame (bad magic, malformed
///   or oversized length); the stream position is meaningless and the
///   connection should be closed after one typed error response.
///
/// Exactly the checks [`read_frame_into`] performs, judged over a slice:
/// both transports refuse the same streams with the same errors.
pub fn frame_boundary(buf: &[u8]) -> Result<Option<usize>, DecodeError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let magic = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
    if magic != SNAPSHOT_MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    // Header is magic u32 + kind u16 + version u16; varint length follows.
    let mut body_len = 0u64;
    let mut shift = 0u32;
    let mut at = 8;
    loop {
        let Some(&b) = buf.get(at) else {
            return Ok(None);
        };
        at += 1;
        let payload = u64::from(b & 0x7F);
        if shift >= 63 && payload > 1 {
            return Err(DecodeError::Corrupt("frame length varint overflows u64".into()));
        }
        body_len |= payload << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeError::Corrupt(
                "frame length varint continues beyond 10 bytes".into(),
            ));
        }
    }
    if body_len > MAX_WIRE_FRAME as u64 {
        return Err(DecodeError::Corrupt(format!(
            "frame declares a {body_len}-byte body, transport cap is {MAX_WIRE_FRAME}"
        )));
    }
    // Body + trailing u64 checksum.
    let total = at + body_len as usize + 8;
    Ok(if buf.len() >= total { Some(total) } else { None })
}

/// Serves one connection to completion: one response frame per request
/// frame, in order. Returns when the peer closes, the transport fails, or
/// an unframeable byte stream forces a close (after a final typed error
/// response). No peer input panics this loop.
pub fn serve_connection(server: &SketchServer, stream: &mut TcpStream) -> io::Result<()> {
    // Per-connection reusable buffers: the inbound frame and the encode
    // scratch. A warm request/response cycle allocates nothing at the
    // transport and framing layers (DESIGN.md §12).
    let mut frame = Vec::new();
    let mut buf = EncodeBuf::new();
    loop {
        match read_frame_into(stream, &mut frame)? {
            None => return Ok(()),
            Some(Ok(())) => {
                let response = server.handle_into(&frame, &mut buf);
                write_frame(stream, response)?;
            }
            Some(Err(e)) => {
                write_frame(stream, Response::Error(e.into()).encode_into(&mut buf))?;
                return Ok(());
            }
        }
    }
}

/// Accept loop: serves each connection on its own scoped thread, sharing
/// one [`SketchServer`] (and therefore one hot set and one in-flight
/// bound) across all of them. With `accept_limit = Some(n)`, returns after
/// `n` connections have been accepted *and served* — the shape CI's e2e
/// smoke uses; `None` loops forever.
pub fn serve_listener(
    server: &SketchServer,
    listener: &TcpListener,
    accept_limit: Option<usize>,
) -> io::Result<()> {
    std::thread::scope(|scope| {
        let mut accepted = 0usize;
        loop {
            if let Some(limit) = accept_limit {
                if accepted >= limit {
                    break;
                }
            }
            let (mut stream, _peer) = listener.accept()?;
            accepted += 1;
            scope.spawn(move || {
                // A connection dying mid-write only affects that peer.
                let _ = serve_connection(server, &mut stream);
            });
        }
        Ok(())
    })
}

/// A blocking client for the serving protocol: one call, one response.
/// Holds per-connection reusable encode/decode buffers, so a client
/// issuing many calls stops allocating at the framing layer once warm.
pub struct Client {
    stream: TcpStream,
    frame: Vec<u8>,
    buf: EncodeBuf,
}

impl Client {
    /// Wraps an established connection.
    pub fn new(stream: TcpStream) -> Self {
        Self { stream, frame: Vec::new(), buf: EncodeBuf::new() }
    }

    /// Connects to `addr`, retrying for roughly `retry_ms` milliseconds —
    /// enough slack for a just-spawned server process to reach `bind`.
    pub fn connect(addr: &str, retry_ms: u64) -> io::Result<Self> {
        let mut waited = 0u64;
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => return Ok(Self::new(stream)),
                Err(e) if waited >= retry_ms => return Err(e),
                Err(_) => {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    waited += 50;
                }
            }
        }
    }

    /// Sends one request and blocks for its response. The outer `Err` is
    /// transport failure (including the server closing mid-call); the
    /// inner `Err` means the response bytes refused to decode.
    pub fn call(&mut self, request: &Request) -> io::Result<Result<Response, DecodeError>> {
        self.send(request)?;
        self.recv()
    }

    /// Writes one request frame without waiting for its response — the
    /// pipelined half of [`call`](Self::call). The server answers strictly
    /// in send order on this connection, so `k` sends followed by `k`
    /// [`recv`](Self::recv)s pair up positionally.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        write_frame(&mut self.stream, request.encode_into(&mut self.buf))
    }

    /// Blocks for the next in-order response to a previous
    /// [`send`](Self::send). Error layering as in [`call`](Self::call).
    pub fn recv(&mut self) -> io::Result<Result<Response, DecodeError>> {
        match read_frame_into(&mut self.stream, &mut self.frame)? {
            None => {
                Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed before responding"))
            }
            Some(Ok(())) => Ok(Response::from_bytes(&self.frame)),
            Some(Err(e)) => Ok(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ServerStats;
    use crate::server::ServeConfig;

    #[test]
    fn frames_roundtrip_over_a_byte_stream() {
        let frame = Request::Stats.to_bytes();
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        write_frame(&mut wire, &frame).unwrap();
        let mut cursor = &wire[..];
        for _ in 0..2 {
            let got = read_frame(&mut cursor).unwrap().expect("frame").expect("well-formed");
            assert_eq!(got, frame);
        }
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF after the last frame");
    }

    #[test]
    fn unframeable_streams_refuse_without_panicking() {
        // Wrong magic.
        let mut junk = &b"NOTAFRAMEATALL!!"[..];
        assert!(matches!(read_frame(&mut junk).unwrap(), Some(Err(DecodeError::BadMagic(_)))));
        // A declared body length over the transport cap.
        let mut frame = SNAPSHOT_MAGIC.to_le_bytes().to_vec();
        frame.extend_from_slice(&64u16.to_le_bytes());
        frame.extend_from_slice(&1u16.to_le_bytes());
        frame.extend_from_slice(&[0xFF; 9]); // huge varint
        frame.push(0x01);
        let mut cursor = &frame[..];
        assert!(matches!(read_frame(&mut cursor).unwrap(), Some(Err(DecodeError::Corrupt(_)))));
        // Mid-frame EOF is a transport error, not a panic.
        let whole = Request::Stats.to_bytes();
        let mut cut = &whole[..whole.len() - 3];
        assert!(read_frame(&mut cut).is_err());
    }

    /// The incremental parser must agree with the blocking reader on
    /// every prefix: incomplete prefixes wait, the exact frame length is
    /// found, trailing bytes are left alone, and unframeable prefixes
    /// refuse with the same errors.
    #[test]
    fn frame_boundary_agrees_with_the_blocking_reader() {
        let frame = Request::Stats.to_bytes();
        for cut in 0..frame.len() {
            assert_eq!(frame_boundary(&frame[..cut]), Ok(None), "prefix of {cut} bytes");
        }
        assert_eq!(frame_boundary(&frame), Ok(Some(frame.len())));
        // A second frame's bytes behind the first are not consumed.
        let mut two = frame.clone();
        two.extend_from_slice(&frame);
        assert_eq!(frame_boundary(&two), Ok(Some(frame.len())));
        // Bad magic refuses as soon as 4 bytes are visible.
        assert!(matches!(frame_boundary(b"NOTAFRAME"), Err(DecodeError::BadMagic(_))));
        // Oversized declared length refuses like the blocking reader.
        let mut huge = SNAPSHOT_MAGIC.to_le_bytes().to_vec();
        huge.extend_from_slice(&64u16.to_le_bytes());
        huge.extend_from_slice(&1u16.to_le_bytes());
        huge.extend_from_slice(&[0xFF; 9]);
        huge.push(0x01);
        assert!(matches!(frame_boundary(&huge), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn tcp_end_to_end_stats_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap().to_string();
        let server = SketchServer::new(ServeConfig::default());
        std::thread::scope(|scope| {
            scope.spawn(|| serve_listener(&server, &listener, Some(1)).expect("serve one"));
            let mut client = Client::connect(&addr, 2_000).expect("connect");
            let resp = client.call(&Request::Stats).expect("transport").expect("decode");
            assert_eq!(
                resp,
                Response::Stats(ServerStats {
                    budget_bits: ServeConfig::default().budget_bits,
                    max_in_flight: ServeConfig::default().max_in_flight as u64,
                    ..ServerStats::default()
                })
            );
        });
    }
}
