//! The sketch-serving tier: a long-running process that loads versioned
//! snapshot frames, keeps a bounded hot set decoded, and answers batched
//! itemset queries over the wire (DESIGN.md §11).
//!
//! The paper's object of study is an *offline* artifact — a sketch small
//! enough to retain per user at scale. This crate is the online half of
//! that story: the process those retained sketches are served *from*.
//! Three invariants carry over from the offline stack unchanged:
//!
//! 1. **Bit identity.** A served answer equals the offline sketch's answer
//!    for the same query, at every thread count and across hot-set
//!    eviction/reload cycles — serving is an execution strategy, never an
//!    approximation (`tests/serving_protocol.rs` proves it against the
//!    sharded engine directly).
//! 2. **Measured bits.** The hot set's memory bound is the sum of measured
//!    `size_bits()` over decoded sketches — the exact quantity the paper's
//!    space accounting reports, not an estimate.
//! 3. **Typed refusals.** Every malformed, skewed, out-of-contract, or
//!    over-limit input — truncated frames, version skew, unknown ids,
//!    queries off the sketch's contract, saturation — maps to a typed
//!    error ([`DecodeError`](ifs_database::codec::DecodeError) or
//!    [`ServeError`]); no client bytes can panic the server.
//!
//! Layering, bottom up:
//!
//! - [`error`] — [`ServeError`], the serving-layer refusal taxonomy, with
//!   its own lossless wire codec (refusals travel to clients intact).
//! - [`protocol`] — [`Request`]/[`Response`] frames on the snapshot codec
//!   substrate, under kind tags disjoint from the sketch registry.
//! - [`sketch`] — [`ServedSketch`], the kind-dispatched union of servable
//!   snapshot types, with query validation at the trust boundary.
//! - [`hot`] — [`HotSet`], the LRU over decoded sketches bounded by
//!   measured bits.
//! - [`server`] — [`SketchServer`], gluing the above behind one
//!   `handle(request bytes) -> response bytes` entry point, with explicit
//!   backpressure ([`BatchSlot`]).
//! - [`net`] — blocking TCP transport and a [`Client`], plus the
//!   `ifs-serve` and `ifs-loadgen` binaries on top.
//! - [`pool`] — the pooled transport (DESIGN.md §13): a fixed worker
//!   pool multiplexing nonblocking connections with pipelining,
//!   cross-connection micro-batching, and hot-reload-safe dispatch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod hot;
pub mod net;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod sketch;

pub use error::ServeError;
pub use hot::HotSet;
pub use net::{Client, MAX_WIRE_FRAME};
pub use pool::{serve_pooled, PoolConfig, PoolWorker};
pub use protocol::{
    EncodeBuf, QueryMode, Request, Response, ServerStats, PROTOCOL_VERSION, REQUEST_KIND,
    RESPONSE_KIND,
};
pub use server::{BatchSlot, LoadOutcome, ServeConfig, SketchServer};
pub use sketch::{Answers, ServedSketch};
