//! `ifs-loadgen` — deterministic load generator and identity checker for
//! `ifs-serve`.
//!
//! ```text
//! ifs-loadgen --write-snapshots FILE [--seed N]
//! ifs-loadgen --write-log FILE [--seed N]
//! ifs-loadgen --connect ADDR [--assume-loaded] [--connections N]
//!             [--pipeline M] [--batches N] [--batch-size N] [--threads N]
//!             [--seed N] [--json PATH]
//! ifs-loadgen --bench-matrix [--connections N] [--pipeline M]
//!             [--batches N] [--batch-size N] [--seed N] [--json PATH]
//! ```
//!
//! The first form writes the demo sketch fleet (one frame per servable
//! kind, built from a seeded database) as concatenated snapshot frames —
//! the file `ifs-serve --snapshots` preloads. `--write-log` writes the
//! *same fleet* as a durable sketch log (`ifs-serve --log`), but through
//! the store's lifecycle ops: the RELEASE-DB arrives as a two-shard merge
//! run, one id is shadowed by a later `Put`, and an unservable ingestion
//! partial rides along for the server to skip — so an end-to-end run over
//! the log proves the materialize fold reproduces the one-shot fleet
//! bit-identically, not just that bytes round-trip. The second form drives a
//! running server over `--connections` concurrent connections, each
//! keeping up to `--pipeline` requests in flight, and **verifies every
//! answer bit-identically** against the same sketches rebuilt locally:
//! the loadgen is an end-to-end oracle, not just a traffic source. With
//! `--assume-loaded` the fleet is expected to be preloaded (ids `0..4` in
//! fleet order); otherwise the loadgen sends `Load` requests itself. An
//! `Overloaded` refusal is retried (and counted), so backpressure under
//! saturation shows up as `overload_retries`, not as a failed run.
//!
//! The third form is the perf-trajectory harness: it spins up in-process
//! servers over loopback TCP — thread-per-connection and pooled, at
//! engine thread counts 1 and 4 — drives each with the identical
//! workload, and writes one JSON with all four runs plus each pooled
//! run's speedup over its thread-count-matched baseline. That file is
//! the committed `bench_results/BENCH_serving.json`.
//!
//! Latency is measured per batch round-trip; p50/p99/p99.9 and aggregate
//! queries/sec land in `--json PATH` with a `mode` field recording
//! whether a debug or release build produced the numbers, plus the
//! `connections`/`pipeline_depth` shape of the run.

use ifs_core::{ReleaseAnswersEstimator, ReleaseAnswersIndicator, ReleaseDb, Snapshot, Subsample};
use ifs_database::{generators, Itemset};
use ifs_serve::{
    net, pool, Answers, Client, PoolConfig, QueryMode, Request, Response, ServeConfig,
    ServedSketch, SketchServer,
};
use ifs_util::Rng64;
use std::collections::VecDeque;
use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: ifs-loadgen --write-snapshots FILE [--seed N]\n       \
                     ifs-loadgen --write-log FILE [--seed N]\n       \
                     ifs-loadgen --connect ADDR [--assume-loaded] [--connections N] \
                     [--pipeline M] [--batches N] [--batch-size N] [--threads N] [--seed N] \
                     [--json PATH]\n       \
                     ifs-loadgen --bench-matrix [--connections N] [--pipeline M] [--batches N] \
                     [--batch-size N] [--seed N] [--json PATH]";

/// Fleet shape: one database, one sketch per servable kind.
const FLEET_ROWS: usize = 400;
const FLEET_DIMS: usize = 48;
const FLEET_DENSITY: f64 = 0.25;
const FLEET_EPSILON: f64 = 0.1;
const FLEET_SAMPLE_ROWS: usize = 64;
const FLEET_ANSWERS_K: usize = 2;

struct Args {
    write_snapshots: Option<String>,
    write_log: Option<String>,
    connect: Option<String>,
    bench_matrix: bool,
    assume_loaded: bool,
    connections: usize,
    pipeline: usize,
    batches: usize,
    batch_size: usize,
    threads: usize,
    seed: u64,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        write_snapshots: None,
        write_log: None,
        connect: None,
        bench_matrix: false,
        assume_loaded: false,
        connections: 1,
        pipeline: 1,
        batches: 64,
        batch_size: 256,
        threads: 2,
        seed: 0x5EED,
        json: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or(format!("{name} needs a value\n{USAGE}"));
        match flag.as_str() {
            "--write-snapshots" => args.write_snapshots = Some(value("--write-snapshots")?),
            "--write-log" => args.write_log = Some(value("--write-log")?),
            "--connect" => args.connect = Some(value("--connect")?),
            "--bench-matrix" => args.bench_matrix = true,
            "--assume-loaded" => args.assume_loaded = true,
            "--connections" => {
                args.connections =
                    value("--connections")?.parse().map_err(|e| format!("--connections: {e}"))?;
            }
            "--pipeline" => {
                args.pipeline =
                    value("--pipeline")?.parse().map_err(|e| format!("--pipeline: {e}"))?;
            }
            "--batches" => {
                args.batches =
                    value("--batches")?.parse().map_err(|e| format!("--batches: {e}"))?;
            }
            "--batch-size" => {
                args.batch_size =
                    value("--batch-size")?.parse().map_err(|e| format!("--batch-size: {e}"))?;
            }
            "--threads" => {
                args.threads =
                    value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--json" => args.json = Some(value("--json")?),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    let modes = args.write_snapshots.is_some() as u8
        + args.write_log.is_some() as u8
        + args.connect.is_some() as u8
        + args.bench_matrix as u8;
    if modes != 1 {
        return Err(format!(
            "exactly one of --write-snapshots, --write-log, --connect, or --bench-matrix\n{USAGE}"
        ));
    }
    if args.connections == 0 || args.pipeline == 0 {
        return Err("--connections and --pipeline must be at least 1".into());
    }
    Ok(args)
}

/// The deterministic demo fleet: the frames a given seed always produces,
/// in id order. Both the snapshot writer and the oracle rebuild from here,
/// which is what makes cross-process identity checkable at all.
fn fleet_frames(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = Rng64::seeded(seed);
    let db = generators::uniform(FLEET_ROWS, FLEET_DIMS, FLEET_DENSITY, &mut rng);
    vec![
        ReleaseDb::build(&db, FLEET_EPSILON).snapshot_bytes(),
        Subsample::with_sample_count_seeded(&db, FLEET_SAMPLE_ROWS, FLEET_EPSILON, seed ^ 0x51)
            .snapshot_bytes(),
        ReleaseAnswersIndicator::build(&db, FLEET_ANSWERS_K, FLEET_EPSILON).snapshot_bytes(),
        ReleaseAnswersEstimator::build(&db, FLEET_ANSWERS_K, FLEET_EPSILON).snapshot_bytes(),
    ]
}

fn write_snapshots(path: &str, seed: u64) -> Result<(), String> {
    let frames = fleet_frames(seed);
    let mut bytes = Vec::new();
    for frame in &frames {
        bytes.extend_from_slice(frame);
    }
    std::fs::write(path, &bytes).map_err(|e| format!("{path}: {e}"))?;
    println!("ifs-loadgen wrote {} frames ({} bytes) to {path}", frames.len(), bytes.len());
    Ok(())
}

/// Writes the fleet as a sketch log whose *materialization* is the fleet:
/// the RELEASE-DB arrives as a two-shard merge run, id 1 is first written
/// as a decoy and then shadowed by the real frame, and an unservable
/// SUBSAMPLE partial rides along under a high id for the server to skip.
/// An `ifs-serve --log` boot over this file must serve answers
/// bit-identical to `--snapshots` over [`write_snapshots`]'s output.
fn write_log(path: &str, seed: u64) -> Result<(), String> {
    use ifs_core::{StreamingBuild, SubsampleBuilder, SubsampleParams};
    use ifs_store::{LogOp, SketchLog};
    let frames = fleet_frames(seed);
    let mut log = SketchLog::create(path).map_err(|e| e.to_string())?;
    let fail = |e: ifs_store::StoreError| e.to_string();
    // The fleet database again, split into two row shards: §9 merge
    // identity makes the folded sketch bit-identical to fleet frame 0.
    let mut rng = Rng64::seeded(seed);
    let db = generators::uniform(FLEET_ROWS, FLEET_DIMS, FLEET_DENSITY, &mut rng);
    let rows: Vec<Vec<u32>> = (0..db.rows()).map(|r| db.row_itemset(r).items().to_vec()).collect();
    let (front, back) = rows.split_at(FLEET_ROWS / 2);
    for shard in [front, back] {
        let part =
            ReleaseDb::build(&ifs_database::Database::from_rows(FLEET_DIMS, shard), FLEET_EPSILON);
        log.append(LogOp::Merge, 0, &part.snapshot_bytes()).map_err(fail)?;
    }
    // Id 1 exercises Put shadowing: a decoy first, the real frame second.
    let decoy = ReleaseDb::build(&ifs_database::Database::from_rows(FLEET_DIMS, &[vec![0]]), 0.5);
    log.append(LogOp::Put, 1, &decoy.snapshot_bytes()).map_err(fail)?;
    for (id, frame) in frames.iter().enumerate().skip(1) {
        log.append(LogOp::Put, id as u64, frame).map_err(fail)?;
    }
    // An ingestion partial the server must skip, not refuse.
    let mut partial = SubsampleBuilder::begin(
        FLEET_DIMS,
        seed,
        &SubsampleParams { sample_rows: 4, epsilon: 0.1 },
    );
    partial.observe_row(&Itemset::new(vec![0, 2]));
    log.append(LogOp::Put, 999, &partial.snapshot_bytes()).map_err(fail)?;
    println!(
        "ifs-loadgen wrote {} log records ({} bytes) to {path}",
        log.record_count(),
        log.len_bytes()
    );
    Ok(())
}

/// The modes a sketch's contract can answer (fleet order mirrors ids).
fn supported_modes(sketch: &ServedSketch) -> &'static [QueryMode] {
    match sketch {
        ServedSketch::Subsample(_) | ServedSketch::ReleaseDb(_) => {
            &[QueryMode::Estimate, QueryMode::Indicator]
        }
        ServedSketch::AnswersIndicator(_) => &[QueryMode::Indicator],
        ServedSketch::AnswersEstimator(_) => &[QueryMode::Estimate],
    }
}

/// One deterministic query batch for `sketch` (respecting its cardinality
/// contract, so every query is answerable).
fn batch_for(sketch: &ServedSketch, size: usize, rng: &mut Rng64) -> Vec<Itemset> {
    let dims = sketch.dims();
    (0..size)
        .map(|_| {
            let len = sketch.required_len().unwrap_or_else(|| rng.below(4));
            Itemset::new(rng.distinct_sorted(dims, len).iter().map(|&i| i as u32).collect())
        })
        .collect()
}

/// True iff the served answers equal the oracle's, bit for bit (estimates
/// compare by IEEE-754 bit pattern, so NaN payloads and signed zeros
/// count too).
fn identical(served: &Response, oracle: &Answers) -> bool {
    match (served, oracle) {
        (Response::Estimates(got), Answers::Estimates(want)) => {
            got.len() == want.len() && got.iter().zip(want).all(|(g, w)| g.to_bits() == w.to_bits())
        }
        (Response::Indicators(got), Answers::Indicators(want)) => got == want,
        _ => false,
    }
}

fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

/// The shape of one measured run.
struct RunShape {
    connections: usize,
    pipeline: usize,
    batches: usize,
    batch_size: usize,
    threads: usize,
    seed: u64,
}

/// What one run measured.
struct Measured {
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    qps: f64,
    overload_retries: u64,
}

/// Drives one connection: `batches` query batches, keeping up to
/// `pipeline` requests outstanding, verifying every answer against the
/// local oracle and retrying (and counting) `Overloaded` refusals.
/// Returns the per-batch round-trip latencies and the retry count.
fn drive_connection(
    addr: &str,
    oracle: &[ServedSketch],
    shape: &RunShape,
    conn_index: usize,
) -> Result<(Vec<f64>, u64), String> {
    let mut client = Client::connect(addr, 10_000)
        .map_err(|e| format!("connection {conn_index}: {addr}: {e}"))?;
    let mut rng = Rng64::seeded(
        shape.seed ^ 0x10AD ^ (conn_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let mut latencies_ms = Vec::with_capacity(shape.batches);
    let mut retries = 0u64;
    // Requests awaiting an answer (responses arrive strictly in send
    // order) and requests refused with `Overloaded`, to re-send.
    let mut outstanding: VecDeque<(Request, Answers, Instant)> = VecDeque::new();
    let mut resend: VecDeque<(Request, Answers)> = VecDeque::new();
    let mut built = 0usize;
    let mut answered = 0usize;
    while answered < shape.batches {
        while outstanding.len() < shape.pipeline && (built < shape.batches || !resend.is_empty()) {
            let (request, expected) = match resend.pop_front() {
                Some(pair) => pair,
                None => {
                    let b = built;
                    built += 1;
                    let id = b % oracle.len();
                    let sketch = &oracle[id];
                    let modes = supported_modes(sketch);
                    let mode = modes[(b / oracle.len()) % modes.len()];
                    let queries = batch_for(sketch, shape.batch_size, &mut rng);
                    let expected =
                        sketch.answer(mode, &queries).map_err(|e| format!("oracle: {e}"))?;
                    (Request::Query { id: id as u64, mode, queries }, expected)
                }
            };
            client.send(&request).map_err(|e| format!("connection {conn_index}: send: {e}"))?;
            outstanding.push_back((request, expected, Instant::now()));
        }
        let (request, expected, sent) =
            outstanding.pop_front().expect("window is non-empty while batches remain");
        let resp = client
            .recv()
            .map_err(|e| format!("connection {conn_index}: {e}"))?
            .map_err(|e| format!("connection {conn_index}: response refused to decode: {e}"))?;
        match resp {
            Response::Error(e) if e.is_retryable() => {
                retries += 1;
                resend.push_back((request, expected));
            }
            resp => {
                latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                if !identical(&resp, &expected) {
                    return Err(format!(
                        "connection {conn_index}: served answers diverge from the offline \
                         oracle ({resp:?} for {request:?})"
                    ));
                }
                answered += 1;
            }
        }
    }
    Ok((latencies_ms, retries))
}

/// Drives a server at `addr` with the full workload shape: optionally
/// loads the fleet, then runs `shape.connections` concurrent connections
/// and aggregates their measurements.
fn drive(
    addr: &str,
    oracle: &[ServedSketch],
    frames: &[Vec<u8>],
    shape: &RunShape,
    load: bool,
) -> Result<Measured, String> {
    if load {
        let mut loader = Client::connect(addr, 10_000).map_err(|e| format!("{addr}: {e}"))?;
        for (id, frame) in frames.iter().enumerate() {
            let resp = loader
                .call(&Request::Load {
                    id: id as u64,
                    threads: shape.threads,
                    frame: frame.clone(),
                })
                .map_err(|e| format!("load {id}: {e}"))?
                .map_err(|e| format!("load {id}: response refused to decode: {e}"))?;
            match resp {
                Response::Loaded { size_bits, .. } | Response::Reloaded { size_bits, .. } => {
                    if size_bits != frame.len() as u64 * 8 {
                        return Err(format!(
                            "load {id}: server measured {size_bits} bits, frame is {} bits",
                            frame.len() * 8
                        ));
                    }
                }
                other => return Err(format!("load {id}: unexpected response {other:?}")),
            }
        }
    }
    let started = Instant::now();
    let per_conn: Vec<Result<(Vec<f64>, u64), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shape.connections)
            .map(|c| scope.spawn(move || drive_connection(addr, oracle, shape, c)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("connection thread panicked")).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let mut latencies_ms = Vec::with_capacity(shape.connections * shape.batches);
    let mut overload_retries = 0u64;
    for result in per_conn {
        let (lat, retries) = result?;
        latencies_ms.extend(lat);
        overload_retries += retries;
    }
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let queries_total = (shape.connections * shape.batches * shape.batch_size) as f64;
    Ok(Measured {
        p50_ms: percentile_ms(&latencies_ms, 50.0),
        p99_ms: percentile_ms(&latencies_ms, 99.0),
        p999_ms: percentile_ms(&latencies_ms, 99.9),
        qps: queries_total / elapsed.max(1e-9),
        overload_retries,
    })
}

fn build_mode() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

fn write_json(path: &str, body: String) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, body).map_err(|e| format!("{path}: {e}"))?;
    println!("ifs-loadgen wrote {path}");
    Ok(())
}

fn run_load(args: &Args) -> Result<(), String> {
    let addr = args.connect.as_deref().expect("run mode requires --connect");
    let frames = fleet_frames(args.seed);
    // The local oracle: the same frames admitted through the same dispatch
    // the server uses, so "bit-identical to the offline sharded engine" is
    // checked end to end, process boundary included.
    let oracle: Vec<ServedSketch> = frames
        .iter()
        .map(|f| ServedSketch::admit(f, args.threads).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let shape = RunShape {
        connections: args.connections,
        pipeline: args.pipeline,
        batches: args.batches,
        batch_size: args.batch_size,
        threads: args.threads,
        seed: args.seed,
    };
    let m = drive(addr, &oracle, &frames, &shape, !args.assume_loaded)?;
    println!(
        "ifs-loadgen: {} connections x {} batches x {} queries (pipeline {}) over {} \
         sketches, all answers bit-identical to the offline oracle; p50 {:.3} ms, \
         p99 {:.3} ms, p99.9 {:.3} ms, {:.0} queries/s, {} overload retries",
        args.connections,
        args.batches,
        args.batch_size,
        args.pipeline,
        oracle.len(),
        m.p50_ms,
        m.p99_ms,
        m.p999_ms,
        m.qps,
        m.overload_retries
    );
    let mut stats_client = Client::connect(addr, 2_000).map_err(|e| format!("{addr}: {e}"))?;
    if let Ok(Response::Stats(stats)) =
        stats_client.call(&Request::Stats).map_err(|e| e.to_string())?.map_err(|e| e.to_string())
    {
        println!(
            "ifs-loadgen: server stats: {} admitted, {} hot ({} / {} bits), \
             {} dispatches served, {} evictions, {} reloads",
            stats.admitted,
            stats.hot,
            stats.hot_bits,
            stats.budget_bits,
            stats.served_batches,
            stats.evictions,
            stats.reloads
        );
    }
    if let Some(path) = &args.json {
        let queries_total = args.connections * args.batches * args.batch_size;
        let json = format!(
            "{{\n  \"bench\": \"serving_load\",\n  \"mode\": \"{}\",\n  \
             \"source\": \"loadgen\",\n  \"sketches\": {},\n  \
             \"connections\": {},\n  \"pipeline_depth\": {},\n  \
             \"batches\": {},\n  \"batch_size\": {},\n  \
             \"queries_total\": {queries_total},\n  \"p50_ms\": {:.3},\n  \
             \"p99_ms\": {:.3},\n  \"p999_ms\": {:.3},\n  \
             \"queries_per_sec\": {:.1},\n  \"overload_retries\": {},\n  \
             \"identity_checked\": true\n}}\n",
            build_mode(),
            oracle.len(),
            args.connections,
            args.pipeline,
            args.batches,
            args.batch_size,
            m.p50_ms,
            m.p99_ms,
            m.p999_ms,
            m.qps,
            m.overload_retries
        );
        write_json(path, json)?;
    }
    Ok(())
}

/// One matrix cell: transport x engine thread count, measured in-process
/// over loopback TCP.
struct MatrixRun {
    transport: &'static str,
    threads: usize,
    pipeline: usize,
    measured: Measured,
}

/// Runs the 2x2 perf matrix — {thread-per-connection, pooled} x
/// {1, 4 engine threads} — with the identical workload, and writes one
/// JSON recording every run plus each pooled run's speedup over its
/// thread-count-matched baseline. The baseline keeps pipeline depth 1
/// (its natural call/response shape); the pooled runs use
/// `--pipeline`.
fn bench_matrix(args: &Args) -> Result<(), String> {
    let frames = fleet_frames(args.seed);
    let mut runs: Vec<MatrixRun> = Vec::new();
    for threads in [1usize, 4] {
        for pooled in [false, true] {
            let oracle: Vec<ServedSketch> = frames
                .iter()
                .map(|f| ServedSketch::admit(f, threads).map_err(|e| e.to_string()))
                .collect::<Result<_, _>>()?;
            let server = SketchServer::new(ServeConfig {
                default_threads: threads,
                ..ServeConfig::default()
            });
            let listener =
                TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind loopback: {e}"))?;
            let addr = listener.local_addr().map_err(|e| e.to_string())?.to_string();
            let shape = RunShape {
                connections: args.connections,
                pipeline: if pooled { args.pipeline } else { 1 },
                batches: args.batches,
                batch_size: args.batch_size,
                threads,
                seed: args.seed,
            };
            // The loader client plus the driving connections.
            let accept = Some(args.connections + 1);
            let pool_config = PoolConfig::default();
            let measured = std::thread::scope(|scope| {
                let server = &server;
                let listener = &listener;
                let pool_config = &pool_config;
                scope.spawn(move || {
                    let served = if pooled {
                        pool::serve_pooled(server, listener, pool_config, accept)
                    } else {
                        net::serve_listener(server, listener, accept)
                    };
                    served.expect("in-process server serves its connections");
                });
                drive(&addr, &oracle, &frames, &shape, true)
            })?;
            let transport = if pooled { "pooled" } else { "threaded" };
            println!(
                "ifs-loadgen matrix: {transport} threads={threads} pipeline={}: \
                 {:.0} queries/s (p50 {:.3} ms, p99 {:.3} ms, p99.9 {:.3} ms, {} retries)",
                shape.pipeline,
                measured.qps,
                measured.p50_ms,
                measured.p99_ms,
                measured.p999_ms,
                measured.overload_retries
            );
            runs.push(MatrixRun { transport, threads, pipeline: shape.pipeline, measured });
        }
    }
    let baseline_qps = |threads: usize| {
        runs.iter()
            .find(|r| r.transport == "threaded" && r.threads == threads)
            .map(|r| r.measured.qps)
            .expect("matrix ran the threaded baseline")
    };
    let mut min_pooled_speedup = f64::INFINITY;
    let mut run_objects = Vec::new();
    for run in &runs {
        let speedup = run.measured.qps / baseline_qps(run.threads);
        if run.transport == "pooled" {
            min_pooled_speedup = min_pooled_speedup.min(speedup);
        }
        run_objects.push(format!(
            "    {{\n      \"transport\": \"{}\",\n      \"threads\": {},\n      \
             \"pipeline_depth\": {},\n      \"p50_ms\": {:.3},\n      \
             \"p99_ms\": {:.3},\n      \"p999_ms\": {:.3},\n      \
             \"queries_per_sec\": {:.1},\n      \"overload_retries\": {},\n      \
             \"speedup_vs_threaded\": {:.2}\n    }}",
            run.transport,
            run.threads,
            run.pipeline,
            run.measured.p50_ms,
            run.measured.p99_ms,
            run.measured.p999_ms,
            run.measured.qps,
            run.measured.overload_retries,
            speedup
        ));
    }
    println!("ifs-loadgen matrix: min pooled speedup {min_pooled_speedup:.2}x over the baseline");
    if let Some(path) = &args.json {
        let queries_total = args.connections * args.batches * args.batch_size;
        let json = format!(
            "{{\n  \"bench\": \"serving_load\",\n  \"mode\": \"{}\",\n  \
             \"source\": \"loadgen-matrix\",\n  \"sketches\": {},\n  \
             \"connections\": {},\n  \"pipeline_depth\": {},\n  \
             \"batches\": {},\n  \"batch_size\": {},\n  \
             \"queries_total\": {queries_total},\n  \"identity_checked\": true,\n  \
             \"min_pooled_speedup\": {min_pooled_speedup:.2},\n  \"runs\": [\n{}\n  ]\n}}\n",
            build_mode(),
            frames.len(),
            args.connections,
            args.pipeline,
            args.batches,
            args.batch_size,
            run_objects.join(",\n")
        );
        write_json(path, json)?;
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    match (&args.write_snapshots, &args.write_log) {
        (Some(path), _) => write_snapshots(path, args.seed),
        (_, Some(path)) => write_log(path, args.seed),
        _ if args.bench_matrix => bench_matrix(&args),
        _ => run_load(&args),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ifs-loadgen: {msg}");
            ExitCode::from(1)
        }
    }
}
