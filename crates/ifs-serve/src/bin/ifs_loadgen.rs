//! `ifs-loadgen` — deterministic load generator and identity checker for
//! `ifs-serve`.
//!
//! ```text
//! ifs-loadgen --write-snapshots FILE [--seed N]
//! ifs-loadgen --connect ADDR [--assume-loaded] [--batches N]
//!             [--batch-size N] [--threads N] [--seed N] [--json PATH]
//! ```
//!
//! The first form writes the demo sketch fleet (one frame per servable
//! kind, built from a seeded database) as concatenated snapshot frames —
//! the file `ifs-serve --snapshots` preloads. The second form drives a
//! running server with batched queries and **verifies every answer
//! bit-identically** against the same sketches rebuilt locally: the
//! loadgen is an end-to-end oracle, not just a traffic source. With
//! `--assume-loaded` the fleet is expected to be preloaded (ids `0..4` in
//! fleet order); otherwise the loadgen sends `Load` requests itself.
//!
//! Latency is measured per batch round-trip; the run's p50/p99 and
//! aggregate queries/sec land in `--json PATH` (the
//! `bench_results/BENCH_serving.json` artifact in CI) with a `mode` field
//! recording whether a debug or release build produced the numbers.

use ifs_core::{ReleaseAnswersEstimator, ReleaseAnswersIndicator, ReleaseDb, Snapshot, Subsample};
use ifs_database::{generators, Itemset};
use ifs_serve::{Answers, Client, QueryMode, Request, Response, ServedSketch};
use ifs_util::Rng64;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: ifs-loadgen --write-snapshots FILE [--seed N]\n       \
                     ifs-loadgen --connect ADDR [--assume-loaded] [--batches N] \
                     [--batch-size N] [--threads N] [--seed N] [--json PATH]";

/// Fleet shape: one database, one sketch per servable kind.
const FLEET_ROWS: usize = 400;
const FLEET_DIMS: usize = 48;
const FLEET_DENSITY: f64 = 0.25;
const FLEET_EPSILON: f64 = 0.1;
const FLEET_SAMPLE_ROWS: usize = 64;
const FLEET_ANSWERS_K: usize = 2;

struct Args {
    write_snapshots: Option<String>,
    connect: Option<String>,
    assume_loaded: bool,
    batches: usize,
    batch_size: usize,
    threads: usize,
    seed: u64,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        write_snapshots: None,
        connect: None,
        assume_loaded: false,
        batches: 64,
        batch_size: 256,
        threads: 2,
        seed: 0x5EED,
        json: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or(format!("{name} needs a value\n{USAGE}"));
        match flag.as_str() {
            "--write-snapshots" => args.write_snapshots = Some(value("--write-snapshots")?),
            "--connect" => args.connect = Some(value("--connect")?),
            "--assume-loaded" => args.assume_loaded = true,
            "--batches" => {
                args.batches =
                    value("--batches")?.parse().map_err(|e| format!("--batches: {e}"))?;
            }
            "--batch-size" => {
                args.batch_size =
                    value("--batch-size")?.parse().map_err(|e| format!("--batch-size: {e}"))?;
            }
            "--threads" => {
                args.threads =
                    value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--json" => args.json = Some(value("--json")?),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.write_snapshots.is_some() == args.connect.is_some() {
        return Err(format!("exactly one of --write-snapshots or --connect\n{USAGE}"));
    }
    Ok(args)
}

/// The deterministic demo fleet: the frames a given seed always produces,
/// in id order. Both the snapshot writer and the oracle rebuild from here,
/// which is what makes cross-process identity checkable at all.
fn fleet_frames(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = Rng64::seeded(seed);
    let db = generators::uniform(FLEET_ROWS, FLEET_DIMS, FLEET_DENSITY, &mut rng);
    vec![
        ReleaseDb::build(&db, FLEET_EPSILON).snapshot_bytes(),
        Subsample::with_sample_count_seeded(&db, FLEET_SAMPLE_ROWS, FLEET_EPSILON, seed ^ 0x51)
            .snapshot_bytes(),
        ReleaseAnswersIndicator::build(&db, FLEET_ANSWERS_K, FLEET_EPSILON).snapshot_bytes(),
        ReleaseAnswersEstimator::build(&db, FLEET_ANSWERS_K, FLEET_EPSILON).snapshot_bytes(),
    ]
}

fn write_snapshots(path: &str, seed: u64) -> Result<(), String> {
    let frames = fleet_frames(seed);
    let mut bytes = Vec::new();
    for frame in &frames {
        bytes.extend_from_slice(frame);
    }
    std::fs::write(path, &bytes).map_err(|e| format!("{path}: {e}"))?;
    println!("ifs-loadgen wrote {} frames ({} bytes) to {path}", frames.len(), bytes.len());
    Ok(())
}

/// The modes a sketch's contract can answer (fleet order mirrors ids).
fn supported_modes(sketch: &ServedSketch) -> &'static [QueryMode] {
    match sketch {
        ServedSketch::Subsample(_) | ServedSketch::ReleaseDb(_) => {
            &[QueryMode::Estimate, QueryMode::Indicator]
        }
        ServedSketch::AnswersIndicator(_) => &[QueryMode::Indicator],
        ServedSketch::AnswersEstimator(_) => &[QueryMode::Estimate],
    }
}

/// One deterministic query batch for `sketch` (respecting its cardinality
/// contract, so every query is answerable).
fn batch_for(sketch: &ServedSketch, size: usize, rng: &mut Rng64) -> Vec<Itemset> {
    let dims = sketch.dims();
    (0..size)
        .map(|_| {
            let len = sketch.required_len().unwrap_or_else(|| rng.below(4));
            Itemset::new(rng.distinct_sorted(dims, len).iter().map(|&i| i as u32).collect())
        })
        .collect()
}

/// True iff the served answers equal the oracle's, bit for bit (estimates
/// compare by IEEE-754 bit pattern, so NaN payloads and signed zeros
/// count too).
fn identical(served: &Response, oracle: &Answers) -> bool {
    match (served, oracle) {
        (Response::Estimates(got), Answers::Estimates(want)) => {
            got.len() == want.len() && got.iter().zip(want).all(|(g, w)| g.to_bits() == w.to_bits())
        }
        (Response::Indicators(got), Answers::Indicators(want)) => got == want,
        _ => false,
    }
}

fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    batches: usize,
    batch_size: usize,
    sketches: usize,
    p50_ms: f64,
    p99_ms: f64,
    qps: f64,
) -> Result<(), String> {
    let mode = if cfg!(debug_assertions) { "debug" } else { "release" };
    let queries_total = batches * batch_size;
    let json = format!(
        "{{\n  \"bench\": \"serving_load\",\n  \"mode\": \"{mode}\",\n  \
         \"source\": \"loadgen\",\n  \"sketches\": {sketches},\n  \
         \"batches\": {batches},\n  \"batch_size\": {batch_size},\n  \
         \"queries_total\": {queries_total},\n  \"p50_ms\": {p50_ms:.3},\n  \
         \"p99_ms\": {p99_ms:.3},\n  \"queries_per_sec\": {qps:.1},\n  \
         \"identity_checked\": true\n}}\n"
    );
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
    println!("ifs-loadgen wrote {path}");
    Ok(())
}

fn run_load(args: &Args) -> Result<(), String> {
    let addr = args.connect.as_deref().expect("run mode requires --connect");
    let frames = fleet_frames(args.seed);
    // The local oracle: the same frames admitted through the same dispatch
    // the server uses, so "bit-identical to the offline sharded engine" is
    // checked end to end, process boundary included.
    let oracle: Vec<ServedSketch> = frames
        .iter()
        .map(|f| ServedSketch::admit(f, args.threads).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;

    let mut client = Client::connect(addr, 10_000).map_err(|e| format!("{addr}: {e}"))?;
    if !args.assume_loaded {
        for (id, frame) in frames.iter().enumerate() {
            let resp = client
                .call(&Request::Load { id: id as u64, threads: args.threads, frame: frame.clone() })
                .map_err(|e| format!("load {id}: {e}"))?
                .map_err(|e| format!("load {id}: response refused to decode: {e}"))?;
            match resp {
                Response::Loaded { size_bits, .. } => {
                    if size_bits != frame.len() as u64 * 8 {
                        return Err(format!(
                            "load {id}: server measured {size_bits} bits, frame is {} bits",
                            frame.len() * 8
                        ));
                    }
                }
                other => return Err(format!("load {id}: unexpected response {other:?}")),
            }
        }
    }

    let mut rng = Rng64::seeded(args.seed ^ 0x10AD);
    let mut latencies_ms = Vec::with_capacity(args.batches);
    let started = Instant::now();
    for b in 0..args.batches {
        let id = b % oracle.len();
        let sketch = &oracle[id];
        let modes = supported_modes(sketch);
        let mode = modes[(b / oracle.len()) % modes.len()];
        let queries = batch_for(sketch, args.batch_size, &mut rng);
        let expected = sketch.answer(mode, &queries).map_err(|e| format!("oracle: {e}"))?;
        let sent = Instant::now();
        let resp = client
            .call(&Request::Query { id: id as u64, mode, queries })
            .map_err(|e| format!("batch {b}: {e}"))?
            .map_err(|e| format!("batch {b}: response refused to decode: {e}"))?;
        latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
        if !identical(&resp, &expected) {
            return Err(format!(
                "batch {b}: served answers diverge from the offline oracle \
                 (sketch {id}, mode {mode}, {} queries)",
                args.batch_size
            ));
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let qps = (args.batches * args.batch_size) as f64 / elapsed.max(1e-9);

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let p50 = percentile_ms(&latencies_ms, 50.0);
    let p99 = percentile_ms(&latencies_ms, 99.0);
    println!(
        "ifs-loadgen: {} batches x {} queries over {} sketches, all answers \
         bit-identical to the offline oracle; p50 {p50:.3} ms, p99 {p99:.3} ms, \
         {qps:.0} queries/s",
        args.batches,
        args.batch_size,
        oracle.len()
    );
    if let Ok(Response::Stats(stats)) =
        client.call(&Request::Stats).map_err(|e| e.to_string())?.map_err(|e| e.to_string())
    {
        println!(
            "ifs-loadgen: server stats: {} admitted, {} hot ({} / {} bits), \
             {} batches served, {} evictions",
            stats.admitted,
            stats.hot,
            stats.hot_bits,
            stats.budget_bits,
            stats.served_batches,
            stats.evictions
        );
    }
    if let Some(path) = &args.json {
        write_json(path, args.batches, args.batch_size, oracle.len(), p50, p99, qps)?;
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    match &args.write_snapshots {
        Some(path) => write_snapshots(path, args.seed),
        None => run_load(&args),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ifs-loadgen: {msg}");
            ExitCode::from(1)
        }
    }
}
