//! `ifs-serve` — the long-running sketch server.
//!
//! ```text
//! ifs-serve --listen 127.0.0.1:7464 [--snapshots FILE] [--budget-bits N]
//!           [--max-in-flight N] [--threads N] [--accept N]
//!           [--workers N] [--threaded]
//! ```
//!
//! `--snapshots FILE` preloads a file of concatenated snapshot frames
//! (as `ifs-loadgen --write-snapshots` produces), admitting them under
//! ids `0, 1, 2, …` in file order before the listener opens. `--accept N`
//! serves exactly `N` connections and exits — the shape CI's end-to-end
//! smoke uses; omit it to serve forever.
//!
//! The transport is the **pooled** one (DESIGN.md §13) by default:
//! `--workers N` sizes the handler pool (`0` = auto from the machine's
//! parallelism; the `IFS_SERVE_WORKERS` environment variable is the
//! flag's default). `--threaded` selects the legacy thread-per-connection
//! transport — the baseline `ifs-loadgen --bench-matrix` measures the
//! pool against.
//!
//! Operational inputs refuse with a message and a nonzero exit, never a
//! panic: a malformed `IFS_THREADS` or `IFS_SERVE_WORKERS`, an unreadable
//! or corrupt snapshot file, or an unbindable address all exit 2 with the
//! typed error printed.

use ifs_serve::{net, pool, PoolConfig, ServeConfig, SketchServer};
use ifs_util::threads::{try_env_threads, try_env_threads_var};
use std::net::TcpListener;
use std::process::ExitCode;

const USAGE: &str = "usage: ifs-serve --listen ADDR [--snapshots FILE] [--budget-bits N] \
                     [--max-in-flight N] [--threads N] [--accept N] [--workers N] [--threaded]";

struct Args {
    listen: String,
    snapshots: Option<String>,
    budget_bits: u64,
    max_in_flight: usize,
    threads: usize,
    accept: Option<usize>,
    workers: Option<usize>,
    threaded: bool,
}

fn parse_args() -> Result<Args, String> {
    let defaults = ServeConfig::default();
    let mut args = Args {
        listen: String::new(),
        snapshots: None,
        budget_bits: defaults.budget_bits,
        max_in_flight: defaults.max_in_flight,
        threads: 0,
        accept: None,
        workers: None,
        threaded: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or(format!("{name} needs a value\n{USAGE}"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--snapshots" => args.snapshots = Some(value("--snapshots")?),
            "--budget-bits" => {
                args.budget_bits =
                    value("--budget-bits")?.parse().map_err(|e| format!("--budget-bits: {e}"))?;
            }
            "--max-in-flight" => {
                args.max_in_flight = value("--max-in-flight")?
                    .parse()
                    .map_err(|e| format!("--max-in-flight: {e}"))?;
            }
            "--threads" => {
                args.threads =
                    value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            "--accept" => {
                args.accept =
                    Some(value("--accept")?.parse().map_err(|e| format!("--accept: {e}"))?);
            }
            "--workers" => {
                args.workers =
                    Some(value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?);
            }
            "--threaded" => args.threaded = true,
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.listen.is_empty() {
        return Err(format!("--listen is required\n{USAGE}"));
    }
    if args.max_in_flight == 0 {
        return Err("--max-in-flight must be at least 1".into());
    }
    Ok(args)
}

/// Admits every frame in `path` (concatenated snapshot frames) under ids
/// `0, 1, 2, …`, reporting how many were loaded.
fn preload(server: &SketchServer, path: &str) -> Result<u64, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut reader = std::io::BufReader::new(file);
    let mut id = 0u64;
    loop {
        match net::read_frame(&mut reader).map_err(|e| format!("{path}: {e}"))? {
            None => return Ok(id),
            Some(Err(e)) => return Err(format!("{path}: frame {id}: {e}")),
            Some(Ok(frame)) => {
                server.load_frame(id, 0, &frame).map_err(|e| format!("{path}: frame {id}: {e}"))?;
                id += 1;
            }
        }
    }
}

fn run() -> Result<(), String> {
    // The non-panicking env parses: a bad IFS_THREADS or IFS_SERVE_WORKERS
    // refuses the whole process startup with a message instead of a panic
    // mid-serve.
    let env_threads = try_env_threads().map_err(|e| e.to_string())?;
    let env_workers = try_env_threads_var("IFS_SERVE_WORKERS").map_err(|e| e.to_string())?;
    let mut args = parse_args()?;
    if args.threads == 0 {
        args.threads = env_threads;
    }
    let server = SketchServer::new(ServeConfig {
        budget_bits: args.budget_bits,
        max_in_flight: args.max_in_flight,
        default_threads: args.threads,
    });
    if let Some(path) = &args.snapshots {
        let loaded = preload(&server, path)?;
        eprintln!("ifs-serve preloaded {loaded} sketches from {path}");
    }
    let listener = TcpListener::bind(&args.listen).map_err(|e| format!("{}: {e}", args.listen))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    if args.threaded {
        // Announce readiness on stdout so scripts can wait for this line.
        println!("ifs-serve listening on {local} (thread-per-connection)");
        net::serve_listener(&server, &listener, args.accept).map_err(|e| e.to_string())
    } else {
        // Flag beats environment beats auto, like --threads/IFS_THREADS.
        let config = PoolConfig {
            workers: args.workers.or(env_workers).unwrap_or(0),
            ..PoolConfig::default()
        };
        println!("ifs-serve listening on {local} (pooled, {} workers)", config.resolved_workers());
        pool::serve_pooled(&server, &listener, &config, args.accept).map_err(|e| e.to_string())
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ifs-serve: {msg}");
            ExitCode::from(2)
        }
    }
}
