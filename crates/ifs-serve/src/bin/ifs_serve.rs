//! `ifs-serve` — the long-running sketch server.
//!
//! ```text
//! ifs-serve --listen 127.0.0.1:7464 [--snapshots FILE | --log FILE]
//!           [--budget-bits N] [--max-in-flight N] [--threads N]
//!           [--accept N] [--workers N] [--threaded]
//! ```
//!
//! `--snapshots FILE` preloads a file of concatenated snapshot frames
//! (as `ifs-loadgen --write-snapshots` produces), admitting them under
//! ids `0, 1, 2, …` in file order before the listener opens. A malformed
//! frame refuses startup with a diagnostic naming the frame index *and
//! its byte offset* in the file, so the bad bytes can be inspected
//! directly. `--accept N` serves exactly `N` connections and exits — the
//! shape CI's end-to-end smoke uses; omit it to serve forever.
//!
//! `--log FILE` boots from a durable sketch log (DESIGN.md §14) instead:
//! the log is opened with crash recovery (a torn tail is truncated and
//! noted on stderr), materialized — `Put`s shadow, merge runs fold — and
//! every live id is admitted under its *log* id. Records holding
//! unservable kinds (ingestion partials, counter sketches) are skipped
//! with a note, since a shared log legitimately carries both; any other
//! admission failure refuses startup. The two preload flags are mutually
//! exclusive.
//!
//! The transport is the **pooled** one (DESIGN.md §13) by default:
//! `--workers N` sizes the handler pool (`0` = auto from the machine's
//! parallelism; the `IFS_SERVE_WORKERS` environment variable is the
//! flag's default). `--threaded` selects the legacy thread-per-connection
//! transport — the baseline `ifs-loadgen --bench-matrix` measures the
//! pool against.
//!
//! Operational inputs refuse with a message and a nonzero exit, never a
//! panic: a malformed `IFS_THREADS` or `IFS_SERVE_WORKERS`, an unreadable
//! or corrupt snapshot file, or an unbindable address all exit 2 with the
//! typed error printed.

use ifs_serve::{net, pool, PoolConfig, ServeConfig, ServeError, SketchServer};
use ifs_store::SketchLog;
use ifs_util::threads::{try_env_threads, try_env_threads_var};
use std::net::TcpListener;
use std::process::ExitCode;

const USAGE: &str = "usage: ifs-serve --listen ADDR [--snapshots FILE | --log FILE] \
                     [--budget-bits N] [--max-in-flight N] [--threads N] [--accept N] \
                     [--workers N] [--threaded]";

struct Args {
    listen: String,
    snapshots: Option<String>,
    log: Option<String>,
    budget_bits: u64,
    max_in_flight: usize,
    threads: usize,
    accept: Option<usize>,
    workers: Option<usize>,
    threaded: bool,
}

fn parse_args() -> Result<Args, String> {
    let defaults = ServeConfig::default();
    let mut args = Args {
        listen: String::new(),
        snapshots: None,
        log: None,
        budget_bits: defaults.budget_bits,
        max_in_flight: defaults.max_in_flight,
        threads: 0,
        accept: None,
        workers: None,
        threaded: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or(format!("{name} needs a value\n{USAGE}"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--snapshots" => args.snapshots = Some(value("--snapshots")?),
            "--log" => args.log = Some(value("--log")?),
            "--budget-bits" => {
                args.budget_bits =
                    value("--budget-bits")?.parse().map_err(|e| format!("--budget-bits: {e}"))?;
            }
            "--max-in-flight" => {
                args.max_in_flight = value("--max-in-flight")?
                    .parse()
                    .map_err(|e| format!("--max-in-flight: {e}"))?;
            }
            "--threads" => {
                args.threads =
                    value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            "--accept" => {
                args.accept =
                    Some(value("--accept")?.parse().map_err(|e| format!("--accept: {e}"))?);
            }
            "--workers" => {
                args.workers =
                    Some(value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?);
            }
            "--threaded" => args.threaded = true,
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.listen.is_empty() {
        return Err(format!("--listen is required\n{USAGE}"));
    }
    if args.snapshots.is_some() && args.log.is_some() {
        return Err(format!("--snapshots and --log are mutually exclusive\n{USAGE}"));
    }
    if args.max_in_flight == 0 {
        return Err("--max-in-flight must be at least 1".into());
    }
    Ok(args)
}

/// Admits every frame in `path` (concatenated snapshot frames) under ids
/// `0, 1, 2, …`, reporting how many were loaded. Each diagnostic names
/// the frame index *and the byte offset* the frame starts at, so a bad
/// frame in a multi-megabyte file can be located without re-parsing.
fn preload(server: &SketchServer, path: &str) -> Result<u64, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut reader = std::io::BufReader::new(file);
    let mut id = 0u64;
    let mut offset = 0u64;
    loop {
        let at =
            |e: &dyn std::fmt::Display| format!("{path}: frame {id} at byte offset {offset}: {e}");
        match net::read_frame(&mut reader).map_err(|e| at(&e))? {
            None => return Ok(id),
            Some(Err(e)) => return Err(at(&e)),
            Some(Ok(frame)) => {
                server.load_frame(id, 0, &frame).map_err(|e| at(&e))?;
                offset += frame.len() as u64;
                id += 1;
            }
        }
    }
}

/// Boots the fleet from a durable sketch log (DESIGN.md §14): recover,
/// materialize, admit each live id. Unservable kinds — a shared log
/// carries ingestion partials and counter sketches too — are skipped
/// with a note rather than refusing the whole boot.
fn preload_log(server: &SketchServer, path: &str) -> Result<(u64, u64), String> {
    let (log, report) = SketchLog::open(path).map_err(|e| e.to_string())?;
    if !report.clean() {
        eprintln!(
            "ifs-serve: {path}: recovered {} records, truncated {} bytes ({})",
            report.records,
            report.truncated_bytes,
            report.reason.as_deref().unwrap_or("torn tail")
        );
    }
    let live = log.materialize().map_err(|e| format!("{path}: {e}"))?;
    let mut loaded = 0u64;
    let mut skipped = 0u64;
    for (id, frame) in &live {
        match server.load_frame(*id, 0, frame) {
            Ok(_) => loaded += 1,
            Err(ServeError::UnservableKind { kind }) => {
                eprintln!(
                    "ifs-serve: {path}: id {id}: skipping unservable kind {kind} \
                     (ingestion partial or counter sketch)"
                );
                skipped += 1;
            }
            Err(e) => return Err(format!("{path}: id {id}: {e}")),
        }
    }
    Ok((loaded, skipped))
}

fn run() -> Result<(), String> {
    // The non-panicking env parses: a bad IFS_THREADS or IFS_SERVE_WORKERS
    // refuses the whole process startup with a message instead of a panic
    // mid-serve.
    let env_threads = try_env_threads().map_err(|e| e.to_string())?;
    let env_workers = try_env_threads_var("IFS_SERVE_WORKERS").map_err(|e| e.to_string())?;
    let mut args = parse_args()?;
    if args.threads == 0 {
        args.threads = env_threads;
    }
    let server = SketchServer::new(ServeConfig {
        budget_bits: args.budget_bits,
        max_in_flight: args.max_in_flight,
        default_threads: args.threads,
    });
    if let Some(path) = &args.snapshots {
        let loaded = preload(&server, path)?;
        eprintln!("ifs-serve preloaded {loaded} sketches from {path}");
    }
    if let Some(path) = &args.log {
        let (loaded, skipped) = preload_log(&server, path)?;
        eprintln!("ifs-serve preloaded {loaded} sketches from log {path} ({skipped} skipped)");
    }
    let listener = TcpListener::bind(&args.listen).map_err(|e| format!("{}: {e}", args.listen))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    if args.threaded {
        // Announce readiness on stdout so scripts can wait for this line.
        println!("ifs-serve listening on {local} (thread-per-connection)");
        net::serve_listener(&server, &listener, args.accept).map_err(|e| e.to_string())
    } else {
        // Flag beats environment beats auto, like --threads/IFS_THREADS.
        let config = PoolConfig {
            workers: args.workers.or(env_workers).unwrap_or(0),
            ..PoolConfig::default()
        };
        println!("ifs-serve listening on {local} (pooled, {} workers)", config.resolved_workers());
        pool::serve_pooled(&server, &listener, &config, args.accept).map_err(|e| e.to_string())
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ifs-serve: {msg}");
            ExitCode::from(2)
        }
    }
}
