//! The serving tier's refusal taxonomy.
//!
//! Everything a [`SketchServer`](crate::server::SketchServer) can refuse is
//! one of these variants, and every variant crosses the wire losslessly
//! inside [`Response::Error`](crate::protocol::Response::Error): a client
//! sees the *same* typed refusal the server produced, not a stringly
//! flattened copy. Nothing on these paths panics — a long-running process
//! answering untrusted bytes must refuse, never die (DESIGN.md §11).

use crate::protocol::QueryMode;
use ifs_database::codec::{DecodeError, Reader, Writer};

/// Why the serving tier refused a request (or a snapshot frame).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Bytes failed to decode — a malformed request frame, or a snapshot
    /// frame refused at admission by the [`DecodeError`] taxonomy
    /// (truncation, bad magic, version skew, checksum mismatch, …).
    Decode(DecodeError),
    /// The snapshot frame is well-formed but its kind is not one the
    /// serving tier can answer queries from (partial builds and the
    /// counter sketches are shipped to mergers, not servers).
    UnservableKind {
        /// Kind tag found in the frame.
        kind: u16,
    },
    /// No sketch is admitted under this id.
    UnknownSketch {
        /// The id the query named.
        id: u64,
    },
    /// A single frame larger than the whole hot-set budget can never be
    /// decoded without blowing the memory bound, so admission refuses it
    /// up front instead of thrashing the LRU forever.
    FrameOverBudget {
        /// Measured size of the offered frame, in bits.
        size_bits: u64,
        /// The configured hot-set budget, in bits.
        budget_bits: u64,
    },
    /// The sketch exists but its contract cannot answer this query mode
    /// (e.g. estimate queries against a pure indicator sketch).
    Unanswerable {
        /// Kind tag of the admitted sketch.
        kind: u16,
        /// The query mode that was requested.
        mode: QueryMode,
    },
    /// A query in the batch is outside the sketch's contract — an item out
    /// of range, or the wrong cardinality for a RELEASE-ANSWERS sketch.
    /// Refused *before* dispatch: the offline query paths assert on such
    /// inputs, and a server must refuse rather than die.
    BadQuery {
        /// Index of the offending query within the batch.
        index: u64,
        /// What the query violated.
        reason: String,
    },
    /// The server is at its bounded in-flight batch limit; the client
    /// should back off and retry. This is the explicit backpressure that
    /// replaces unbounded queueing.
    Overloaded {
        /// Batches in flight when the request arrived.
        in_flight: u64,
        /// The configured bound.
        limit: u64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Decode(e) => write!(f, "refused to decode: {e}"),
            ServeError::UnservableKind { kind } => {
                write!(
                    f,
                    "kind-{kind} frames are not servable (mergeable partials and counter \
                           sketches ship to mergers, not servers)"
                )
            }
            ServeError::UnknownSketch { id } => write!(f, "no sketch admitted under id {id}"),
            ServeError::FrameOverBudget { size_bits, budget_bits } => {
                write!(f, "frame of {size_bits} bits exceeds the {budget_bits}-bit hot-set budget")
            }
            ServeError::Unanswerable { kind, mode } => {
                write!(f, "kind-{kind} sketches cannot answer {mode} queries")
            }
            ServeError::BadQuery { index, reason } => {
                write!(f, "query {index} outside the sketch's contract: {reason}")
            }
            ServeError::Overloaded { in_flight, limit } => {
                write!(f, "server overloaded: {in_flight} batches in flight (limit {limit})")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    /// True iff retrying the *same* request later can succeed.
    ///
    /// Only [`Overloaded`](ServeError::Overloaded) qualifies: it refuses a
    /// well-formed request purely because of the server's momentary
    /// in-flight occupancy, so backing off and resending is the intended
    /// client response (`ifs-loadgen` does exactly that under pipelined
    /// load). Every other variant condemns the request or frame itself —
    /// malformed bytes, an unknown id, an out-of-contract query — and
    /// resending identical bytes refuses identically.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ServeError::Overloaded { .. })
    }
}

impl From<DecodeError> for ServeError {
    fn from(e: DecodeError) -> Self {
        ServeError::Decode(e)
    }
}

// Wire tags. A `ServeError` rides inside `Response::Error`, so its codec
// lives here next to the type; the framing is the response's.
const TAG_DECODE: u8 = 1;
const TAG_UNSERVABLE: u8 = 2;
const TAG_UNKNOWN: u8 = 3;
const TAG_OVER_BUDGET: u8 = 4;
const TAG_UNANSWERABLE: u8 = 5;
const TAG_BAD_QUERY: u8 = 6;
const TAG_OVERLOADED: u8 = 7;

// DecodeError subtags.
const DTAG_TRUNCATED: u8 = 1;
const DTAG_BAD_MAGIC: u8 = 2;
const DTAG_WRONG_KIND: u8 = 3;
const DTAG_UNSUPPORTED_VERSION: u8 = 4;
const DTAG_TRAILING: u8 = 5;
const DTAG_CHECKSUM: u8 = 6;
const DTAG_CORRUPT: u8 = 7;

fn write_str(w: &mut Writer, s: &str) {
    w.varint(s.len() as u64);
    w.bytes(s.as_bytes());
}

fn read_str(r: &mut Reader) -> Result<String, DecodeError> {
    let len = r.varint_usize()?;
    let raw = r.bytes(len)?;
    String::from_utf8(raw.to_vec())
        .map_err(|_| DecodeError::Corrupt("error message is not UTF-8".into()))
}

impl ServeError {
    /// Encodes the refusal into a response body fragment.
    pub(crate) fn encode(&self, w: &mut Writer) {
        match self {
            ServeError::Decode(e) => {
                w.u8(TAG_DECODE);
                match e {
                    DecodeError::Truncated { needed, available } => {
                        w.u8(DTAG_TRUNCATED);
                        w.varint(*needed as u64);
                        w.varint(*available as u64);
                    }
                    DecodeError::BadMagic(m) => {
                        w.u8(DTAG_BAD_MAGIC);
                        w.u32(*m);
                    }
                    DecodeError::WrongKind { expected, got } => {
                        w.u8(DTAG_WRONG_KIND);
                        w.varint(u64::from(*expected));
                        w.varint(u64::from(*got));
                    }
                    DecodeError::UnsupportedVersion { kind, got, supported } => {
                        w.u8(DTAG_UNSUPPORTED_VERSION);
                        w.varint(u64::from(*kind));
                        w.varint(u64::from(*got));
                        w.varint(u64::from(*supported));
                    }
                    DecodeError::TrailingBytes { extra } => {
                        w.u8(DTAG_TRAILING);
                        w.varint(*extra as u64);
                    }
                    DecodeError::ChecksumMismatch { expected, actual } => {
                        w.u8(DTAG_CHECKSUM);
                        w.u64(*expected);
                        w.u64(*actual);
                    }
                    DecodeError::Corrupt(what) => {
                        w.u8(DTAG_CORRUPT);
                        write_str(w, what);
                    }
                }
            }
            ServeError::UnservableKind { kind } => {
                w.u8(TAG_UNSERVABLE);
                w.varint(u64::from(*kind));
            }
            ServeError::UnknownSketch { id } => {
                w.u8(TAG_UNKNOWN);
                w.varint(*id);
            }
            ServeError::FrameOverBudget { size_bits, budget_bits } => {
                w.u8(TAG_OVER_BUDGET);
                w.varint(*size_bits);
                w.varint(*budget_bits);
            }
            ServeError::Unanswerable { kind, mode } => {
                w.u8(TAG_UNANSWERABLE);
                w.varint(u64::from(*kind));
                w.u8(mode.wire_tag());
            }
            ServeError::BadQuery { index, reason } => {
                w.u8(TAG_BAD_QUERY);
                w.varint(*index);
                write_str(w, reason);
            }
            ServeError::Overloaded { in_flight, limit } => {
                w.u8(TAG_OVERLOADED);
                w.varint(*in_flight);
                w.varint(*limit);
            }
        }
    }

    /// Decodes a refusal written by [`encode`](Self::encode).
    pub(crate) fn decode(r: &mut Reader) -> Result<Self, DecodeError> {
        let u16_of = |v: u64, what: &str| {
            u16::try_from(v).map_err(|_| DecodeError::Corrupt(format!("{what} exceeds u16")))
        };
        match r.u8()? {
            TAG_DECODE => {
                let inner = match r.u8()? {
                    DTAG_TRUNCATED => DecodeError::Truncated {
                        needed: r.varint_usize()?,
                        available: r.varint_usize()?,
                    },
                    DTAG_BAD_MAGIC => DecodeError::BadMagic(r.u32()?),
                    DTAG_WRONG_KIND => DecodeError::WrongKind {
                        expected: u16_of(r.varint()?, "expected kind")?,
                        got: u16_of(r.varint()?, "got kind")?,
                    },
                    DTAG_UNSUPPORTED_VERSION => DecodeError::UnsupportedVersion {
                        kind: u16_of(r.varint()?, "kind")?,
                        got: u16_of(r.varint()?, "version")?,
                        supported: u16_of(r.varint()?, "supported version")?,
                    },
                    DTAG_TRAILING => DecodeError::TrailingBytes { extra: r.varint_usize()? },
                    DTAG_CHECKSUM => {
                        DecodeError::ChecksumMismatch { expected: r.u64()?, actual: r.u64()? }
                    }
                    DTAG_CORRUPT => DecodeError::Corrupt(read_str(r)?),
                    t => return Err(DecodeError::Corrupt(format!("unknown decode-error tag {t}"))),
                };
                Ok(ServeError::Decode(inner))
            }
            TAG_UNSERVABLE => Ok(ServeError::UnservableKind { kind: u16_of(r.varint()?, "kind")? }),
            TAG_UNKNOWN => Ok(ServeError::UnknownSketch { id: r.varint()? }),
            TAG_OVER_BUDGET => {
                Ok(ServeError::FrameOverBudget { size_bits: r.varint()?, budget_bits: r.varint()? })
            }
            TAG_UNANSWERABLE => Ok(ServeError::Unanswerable {
                kind: u16_of(r.varint()?, "kind")?,
                mode: QueryMode::from_wire_tag(r.u8()?)?,
            }),
            TAG_BAD_QUERY => Ok(ServeError::BadQuery { index: r.varint()?, reason: read_str(r)? }),
            TAG_OVERLOADED => {
                Ok(ServeError::Overloaded { in_flight: r.varint()?, limit: r.varint()? })
            }
            t => Err(DecodeError::Corrupt(format!("unknown serve-error tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_roundtrips_on_the_wire() {
        let cases = vec![
            ServeError::Decode(DecodeError::Truncated { needed: 8, available: 3 }),
            ServeError::Decode(DecodeError::BadMagic(0xDEAD_BEEF)),
            ServeError::Decode(DecodeError::WrongKind { expected: 64, got: 7 }),
            ServeError::Decode(DecodeError::UnsupportedVersion { kind: 1, got: 9, supported: 1 }),
            ServeError::Decode(DecodeError::TrailingBytes { extra: 4 }),
            ServeError::Decode(DecodeError::ChecksumMismatch { expected: 1, actual: 2 }),
            ServeError::Decode(DecodeError::Corrupt("field x".into())),
            ServeError::UnservableKind { kind: 7 },
            ServeError::UnknownSketch { id: 42 },
            ServeError::FrameOverBudget { size_bits: 1 << 40, budget_bits: 1 << 20 },
            ServeError::Unanswerable { kind: 3, mode: QueryMode::Estimate },
            ServeError::Unanswerable { kind: 4, mode: QueryMode::Indicator },
            ServeError::BadQuery { index: 17, reason: "item 99 out of range".into() },
            ServeError::Overloaded { in_flight: 64, limit: 64 },
        ];
        for e in cases {
            let mut w = Writer::new();
            e.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(ServeError::decode(&mut r).expect("roundtrip"), e);
            assert_eq!(r.remaining(), 0, "{e}: codec must consume exactly its bytes");
        }
    }

    #[test]
    fn only_overload_is_retryable() {
        assert!(ServeError::Overloaded { in_flight: 4, limit: 4 }.is_retryable());
        for e in [
            ServeError::Decode(DecodeError::BadMagic(7)),
            ServeError::UnknownSketch { id: 1 },
            ServeError::UnservableKind { kind: 5 },
            ServeError::FrameOverBudget { size_bits: 9, budget_bits: 8 },
            ServeError::Unanswerable { kind: 3, mode: QueryMode::Estimate },
            ServeError::BadQuery { index: 0, reason: "x".into() },
        ] {
            assert!(!e.is_retryable(), "{e} must not invite a retry");
        }
    }

    #[test]
    fn unknown_tags_refuse() {
        let mut r = Reader::new(&[0xEE]);
        assert!(matches!(ServeError::decode(&mut r), Err(DecodeError::Corrupt(_))));
        let mut r = Reader::new(&[TAG_DECODE, 0xEE]);
        assert!(matches!(ServeError::decode(&mut r), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn truncated_error_bytes_refuse() {
        let mut w = Writer::new();
        ServeError::BadQuery { index: 3, reason: "too long".into() }.encode(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(ServeError::decode(&mut r).is_err(), "prefix {cut} decoded");
        }
    }
}
