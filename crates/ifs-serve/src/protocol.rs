//! The serving tier's length-prefixed request/response wire protocol.
//!
//! Both directions reuse the snapshot codec substrate
//! ([`ifs_database::codec`]): every message is one self-describing frame —
//! magic, a protocol kind tag, a format version, a varint body length, and
//! an FNV-1a-64 checksum — so a serving connection inherits the exact
//! adversarial-input behavior the sketch snapshots already have. Truncated,
//! corrupted, skewed, or cross-kind request bytes decode to the same
//! [`DecodeError`] taxonomy, and never panic.
//!
//! Kind tags `1..=7` belong to the sketch snapshot registry
//! (`ifs_core::snapshot`); the protocol claims a disjoint range from
//! [`REQUEST_KIND`] (64) so a sketch frame mistakenly sent as a request is
//! refused as [`DecodeError::WrongKind`], not misparsed.
//!
//! Request bodies (after the shared frame header):
//!
//! ```text
//! LOAD   u8=1  id varint · threads varint · frame_len varint · frame bytes
//! QUERY  u8=2  id varint · mode u8 (1=estimate, 2=indicator) ·
//!              count varint · count delta-coded itemsets
//! STATS  u8=3  (empty)
//! ```
//!
//! Response bodies:
//!
//! ```text
//! LOADED      u8=1  id varint · kind varint · size_bits varint ·
//!                   evicted count varint · evicted ids varints
//! ESTIMATES   u8=2  count varint · count f64 bit patterns
//! INDICATORS  u8=3  count varint · packed bitset (⌈count/8⌉ bytes)
//! STATS       u8=4  nine varint counters (see [`ServerStats`])
//! ERROR       u8=5  a [`ServeError`], losslessly (see `error.rs`)
//! RELOADED    u8=6  id varint · kind varint · size_bits varint ·
//!                   generation varint · previous_kind varint ·
//!                   evicted count varint · evicted ids varints
//! ```
//!
//! `RELOADED` is the hot-reload half of the `Load` surface: admitting a
//! frame under an id that is *already* admitted answers `Reloaded` instead
//! of `Loaded`, carrying the bumped generation and the kind the id served
//! before — the typed signal a client needs to detect version skew across
//! a fleet of replicas (DESIGN.md §13).

use crate::error::ServeError;
use ifs_database::codec::{self, decode_frame, encode_frame_into, DecodeError, Reader, Writer};
use ifs_database::Itemset;
use ifs_util::bits;

/// Frame kind tag of every request (client → server) message.
pub const REQUEST_KIND: u16 = 64;
/// Frame kind tag of every response (server → client) message.
pub const RESPONSE_KIND: u16 = 65;
/// Wire-format version both directions currently speak.
pub const PROTOCOL_VERSION: u16 = 1;

/// Items in query itemsets are `u32`s; the protocol-level bound handed to
/// the itemset codec. The *sketch*-level bound (its real `dims`) is
/// enforced by the server before dispatch, with a typed refusal.
const ITEM_BOUND: usize = 1 << 32;

const REQ_LOAD: u8 = 1;
const REQ_QUERY: u8 = 2;
const REQ_STATS: u8 = 3;

const RESP_LOADED: u8 = 1;
const RESP_ESTIMATES: u8 = 2;
const RESP_INDICATORS: u8 = 3;
const RESP_STATS: u8 = 4;
const RESP_ERROR: u8 = 5;
const RESP_RELOADED: u8 = 6;

/// Which query procedure a batch runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// `Q(S, T) ∈ [0, 1]` per itemset — answered as a vector of `f64`s.
    Estimate,
    /// The threshold bit per itemset — answered as a packed bit vector.
    Indicator,
}

impl QueryMode {
    pub(crate) fn wire_tag(self) -> u8 {
        match self {
            QueryMode::Estimate => 1,
            QueryMode::Indicator => 2,
        }
    }

    pub(crate) fn from_wire_tag(tag: u8) -> Result<Self, DecodeError> {
        match tag {
            1 => Ok(QueryMode::Estimate),
            2 => Ok(QueryMode::Indicator),
            t => Err(DecodeError::Corrupt(format!("unknown query mode tag {t}"))),
        }
    }
}

impl std::fmt::Display for QueryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryMode::Estimate => write!(f, "estimate"),
            QueryMode::Indicator => write!(f, "indicator"),
        }
    }
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit a snapshot frame under `id` (replacing any previous sketch at
    /// that id). `threads` is the per-sketch knob for the sharded query
    /// engine; `0` means "server default".
    Load {
        /// Id the sketch will answer queries under.
        id: u64,
        /// Worker threads for this sketch's batched query paths.
        threads: usize,
        /// The complete snapshot frame, exactly as `snapshot_bytes()`
        /// produced it.
        frame: Vec<u8>,
    },
    /// Answer a batch of itemset queries from the sketch at `id`.
    Query {
        /// Id of an admitted sketch.
        id: u64,
        /// Which query procedure to run.
        mode: QueryMode,
        /// The query log, answered in order.
        queries: Vec<Itemset>,
    },
    /// Report occupancy and traffic counters.
    Stats,
}

/// Occupancy and traffic counters of a running server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Sketches admitted (frames retained, hot or not).
    pub admitted: u64,
    /// Sketches currently decoded in the hot set.
    pub hot: u64,
    /// Sum of measured `size_bits` over the hot set.
    pub hot_bits: u64,
    /// The configured hot-set budget, in bits.
    pub budget_bits: u64,
    /// Query batches currently executing.
    pub in_flight: u64,
    /// The configured in-flight bound.
    pub max_in_flight: u64,
    /// Query batch dispatches answered since startup (refusals excluded;
    /// a micro-batched dispatch aggregating several connections' requests
    /// counts once — see `pool.rs`).
    pub served_batches: u64,
    /// Hot-set evictions since startup.
    pub evictions: u64,
    /// Hot reloads since startup: frames admitted under an id that was
    /// already admitted, bumping its generation.
    pub reloads: u64,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The frame was admitted.
    Loaded {
        /// Id the sketch is now admitted under.
        id: u64,
        /// Kind tag the frame carried.
        kind: u16,
        /// Measured size of the frame, in bits — what the sketch charges
        /// against the hot-set budget.
        size_bits: u64,
        /// Ids evicted from the hot set to make room, oldest first.
        evicted: Vec<u64>,
    },
    /// The frame was admitted under an id that was already serving — the
    /// hot-reload path. Batches in flight when this response was produced
    /// drain against the previous sketch (they hold its `Arc`); every
    /// later query answers from the new frame.
    Reloaded {
        /// Id the new sketch is now admitted under.
        id: u64,
        /// Kind tag the new frame carried.
        kind: u16,
        /// Measured size of the new frame, in bits.
        size_bits: u64,
        /// Admission generation of this id, starting at 1 for the first
        /// `Load` and incremented by every reload.
        generation: u64,
        /// Kind tag the id served before this reload — a client comparing
        /// this against `kind` detects a sketch-type skew typed, without
        /// re-querying.
        previous_kind: u16,
        /// Ids evicted from the hot set to make room, oldest first.
        evicted: Vec<u64>,
    },
    /// Answers to an estimate batch, in query order.
    Estimates(Vec<f64>),
    /// Answers to an indicator batch, in query order.
    Indicators(Vec<bool>),
    /// Counters in response to [`Request::Stats`].
    Stats(ServerStats),
    /// A typed refusal; the request changed nothing.
    Error(ServeError),
}

fn encode_request_body(req: &Request, w: &mut Writer) {
    match req {
        Request::Load { id, threads, frame } => {
            w.u8(REQ_LOAD);
            w.varint(*id);
            w.varint(*threads as u64);
            w.varint(frame.len() as u64);
            w.bytes(frame);
        }
        Request::Query { id, mode, queries } => {
            w.u8(REQ_QUERY);
            w.varint(*id);
            w.u8(mode.wire_tag());
            w.varint(queries.len() as u64);
            for q in queries {
                codec::write_itemset(w, q);
            }
        }
        Request::Stats => w.u8(REQ_STATS),
    }
}

fn decode_request_body(r: &mut Reader) -> Result<Request, DecodeError> {
    match r.u8()? {
        REQ_LOAD => {
            let id = r.varint()?;
            let threads = r.varint_usize()?;
            let len = r.varint_usize()?;
            let frame = r.bytes(len)?.to_vec();
            Ok(Request::Load { id, threads, frame })
        }
        REQ_QUERY => {
            let id = r.varint()?;
            let mode = QueryMode::from_wire_tag(r.u8()?)?;
            let count = r.varint_usize()?;
            r.require(count)?; // each itemset costs >= 1 byte
            let mut queries = Vec::with_capacity(count);
            for _ in 0..count {
                queries.push(codec::read_itemset(r, ITEM_BOUND)?);
            }
            Ok(Request::Query { id, mode, queries })
        }
        REQ_STATS => Ok(Request::Stats),
        t => Err(DecodeError::Corrupt(format!("unknown request tag {t}"))),
    }
}

fn encode_response_body(resp: &Response, w: &mut Writer) {
    match resp {
        Response::Loaded { id, kind, size_bits, evicted } => {
            w.u8(RESP_LOADED);
            w.varint(*id);
            w.varint(u64::from(*kind));
            w.varint(*size_bits);
            w.varint(evicted.len() as u64);
            for e in evicted {
                w.varint(*e);
            }
        }
        Response::Estimates(v) => {
            w.u8(RESP_ESTIMATES);
            w.varint(v.len() as u64);
            for f in v {
                w.f64_bits(*f);
            }
        }
        Response::Indicators(v) => {
            w.u8(RESP_INDICATORS);
            w.varint(v.len() as u64);
            let mut words = vec![0u64; bits::words_for(v.len()).max(1)];
            for (i, &b) in v.iter().enumerate() {
                if b {
                    bits::set(&mut words, i, true);
                }
            }
            codec::write_bitset(w, &words, v.len());
        }
        Response::Reloaded { id, kind, size_bits, generation, previous_kind, evicted } => {
            w.u8(RESP_RELOADED);
            w.varint(*id);
            w.varint(u64::from(*kind));
            w.varint(*size_bits);
            w.varint(*generation);
            w.varint(u64::from(*previous_kind));
            w.varint(evicted.len() as u64);
            for e in evicted {
                w.varint(*e);
            }
        }
        Response::Stats(s) => {
            w.u8(RESP_STATS);
            for c in [
                s.admitted,
                s.hot,
                s.hot_bits,
                s.budget_bits,
                s.in_flight,
                s.max_in_flight,
                s.served_batches,
                s.evictions,
                s.reloads,
            ] {
                w.varint(c);
            }
        }
        Response::Error(e) => {
            w.u8(RESP_ERROR);
            e.encode(w);
        }
    }
}

fn decode_response_body(r: &mut Reader) -> Result<Response, DecodeError> {
    match r.u8()? {
        RESP_LOADED => {
            let id = r.varint()?;
            let kind = u16::try_from(r.varint()?)
                .map_err(|_| DecodeError::Corrupt("kind tag exceeds u16".into()))?;
            let size_bits = r.varint()?;
            let count = r.varint_usize()?;
            r.require(count)?;
            let evicted = (0..count).map(|_| r.varint()).collect::<Result<Vec<_>, _>>()?;
            Ok(Response::Loaded { id, kind, size_bits, evicted })
        }
        RESP_ESTIMATES => {
            let count = r.varint_usize()?;
            let needed = count.checked_mul(8).ok_or_else(|| {
                DecodeError::Corrupt(format!("{count} estimates overflow a byte length"))
            })?;
            r.require(needed)?;
            let v = (0..count).map(|_| r.f64_bits()).collect::<Result<Vec<_>, _>>()?;
            Ok(Response::Estimates(v))
        }
        RESP_INDICATORS => {
            let count = r.varint_usize()?;
            let words = codec::read_bitset(r, count)?;
            Ok(Response::Indicators((0..count).map(|i| bits::get(&words, i)).collect()))
        }
        RESP_RELOADED => {
            let id = r.varint()?;
            let kind = u16::try_from(r.varint()?)
                .map_err(|_| DecodeError::Corrupt("kind tag exceeds u16".into()))?;
            let size_bits = r.varint()?;
            let generation = r.varint()?;
            let previous_kind = u16::try_from(r.varint()?)
                .map_err(|_| DecodeError::Corrupt("previous kind tag exceeds u16".into()))?;
            let count = r.varint_usize()?;
            r.require(count)?;
            let evicted = (0..count).map(|_| r.varint()).collect::<Result<Vec<_>, _>>()?;
            Ok(Response::Reloaded { id, kind, size_bits, generation, previous_kind, evicted })
        }
        RESP_STATS => {
            let mut c = [0u64; 9];
            for slot in &mut c {
                *slot = r.varint()?;
            }
            Ok(Response::Stats(ServerStats {
                admitted: c[0],
                hot: c[1],
                hot_bits: c[2],
                budget_bits: c[3],
                in_flight: c[4],
                max_in_flight: c[5],
                served_batches: c[6],
                evictions: c[7],
                reloads: c[8],
            }))
        }
        RESP_ERROR => Ok(Response::Error(ServeError::decode(r)?)),
        t => Err(DecodeError::Corrupt(format!("unknown response tag {t}"))),
    }
}

fn decode_exact<T>(
    bytes: &[u8],
    kind: u16,
    body: impl FnOnce(&mut Reader) -> Result<T, DecodeError>,
) -> Result<T, DecodeError> {
    let (frame_body, consumed) = decode_frame(bytes, kind, PROTOCOL_VERSION)?;
    if consumed != bytes.len() {
        return Err(DecodeError::TrailingBytes { extra: bytes.len() - consumed });
    }
    let mut r = Reader::new(frame_body);
    let decoded = body(&mut r)?;
    if r.remaining() != 0 {
        return Err(DecodeError::Corrupt(format!(
            "{} unconsumed bytes inside the message body",
            r.remaining()
        )));
    }
    Ok(decoded)
}

/// Per-connection reusable encode scratch: one writer for message bodies
/// and one buffer for the finished frame. Both retain capacity across
/// messages, so once a connection has encoded its largest message, every
/// later encode through the same buffer is allocation-free (DESIGN.md
/// §12). One `EncodeBuf` per connection — the frames it returns are only
/// valid until its next encode.
#[derive(Debug, Default)]
pub struct EncodeBuf {
    body: Writer,
    frame: Vec<u8>,
}

impl EncodeBuf {
    /// An empty buffer pair; capacity grows to the largest message seen.
    pub fn new() -> Self {
        Self::default()
    }
}

fn frame_into(kind: u16, buf: &mut EncodeBuf, body: impl FnOnce(&mut Writer)) -> &[u8] {
    buf.body.clear();
    body(&mut buf.body);
    encode_frame_into(kind, PROTOCOL_VERSION, buf.body.as_slice(), &mut buf.frame);
    &buf.frame
}

impl Request {
    /// The complete framed request — length-prefixed and checksummed, ready
    /// for a socket.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = EncodeBuf::new();
        self.encode_into(&mut buf);
        buf.frame
    }

    /// [`to_bytes`](Self::to_bytes) through a reusable [`EncodeBuf`]:
    /// identical bytes, no allocation once the buffer is warm. The
    /// returned slice is valid until the buffer's next encode.
    pub fn encode_into<'a>(&self, buf: &'a mut EncodeBuf) -> &'a [u8] {
        frame_into(REQUEST_KIND, buf, |w| encode_request_body(self, w))
    }

    /// Decodes exactly one request spanning all of `bytes`; every
    /// malformation is a typed [`DecodeError`], never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        decode_exact(bytes, REQUEST_KIND, decode_request_body)
    }
}

impl Response {
    /// The complete framed response.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = EncodeBuf::new();
        self.encode_into(&mut buf);
        buf.frame
    }

    /// [`to_bytes`](Self::to_bytes) through a reusable [`EncodeBuf`]:
    /// identical bytes, no allocation once the buffer is warm. The
    /// returned slice is valid until the buffer's next encode.
    pub fn encode_into<'a>(&self, buf: &'a mut EncodeBuf) -> &'a [u8] {
        frame_into(RESPONSE_KIND, buf, |w| encode_response_body(self, w))
    }

    /// Decodes exactly one response spanning all of `bytes`.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        decode_exact(bytes, RESPONSE_KIND, decode_response_body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_database::codec::encode_frame;

    fn roundtrip_request(req: &Request) {
        let bytes = req.to_bytes();
        assert_eq!(&Request::from_bytes(&bytes).expect("roundtrip"), req);
        for cut in 0..bytes.len() {
            assert!(Request::from_bytes(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn requests_roundtrip_and_refuse_truncation() {
        roundtrip_request(&Request::Stats);
        roundtrip_request(&Request::Load { id: 9, threads: 4, frame: vec![1, 2, 3, 4, 5] });
        roundtrip_request(&Request::Query {
            id: 3,
            mode: QueryMode::Estimate,
            queries: vec![Itemset::empty(), Itemset::new(vec![0, 5, 63]), Itemset::singleton(7)],
        });
        roundtrip_request(&Request::Query { id: 0, mode: QueryMode::Indicator, queries: vec![] });
    }

    #[test]
    fn responses_roundtrip_and_refuse_truncation() {
        for resp in [
            Response::Loaded { id: 1, kind: 2, size_bits: 1024, evicted: vec![7, 8] },
            Response::Reloaded {
                id: 1,
                kind: 2,
                size_bits: 2048,
                generation: 3,
                previous_kind: 1,
                evicted: vec![9],
            },
            Response::Reloaded {
                id: 0,
                kind: 4,
                size_bits: 8,
                generation: u64::MAX,
                previous_kind: 4,
                evicted: vec![],
            },
            Response::Estimates(vec![0.0, 0.5, f64::from_bits(0x7FF8_0000_0000_0001)]),
            Response::Indicators(vec![true, false, true, true, false, false, true, false, true]),
            Response::Indicators(vec![]),
            Response::Stats(ServerStats {
                admitted: 3,
                hot: 2,
                hot_bits: 4096,
                budget_bits: 1 << 20,
                in_flight: 1,
                max_in_flight: 64,
                served_batches: 17,
                evictions: 2,
                reloads: 5,
            }),
            Response::Error(ServeError::UnknownSketch { id: 5 }),
        ] {
            let bytes = resp.to_bytes();
            match (Response::from_bytes(&bytes).expect("roundtrip"), &resp) {
                // NaN payloads compare by bits through the codec, not by ==.
                (Response::Estimates(got), Response::Estimates(want)) => {
                    let got: Vec<u64> = got.iter().map(|f| f.to_bits()).collect();
                    let want: Vec<u64> = want.iter().map(|f| f.to_bits()).collect();
                    assert_eq!(got, want);
                }
                (got, want) => assert_eq!(&got, want),
            }
            for cut in 0..bytes.len() {
                assert!(Response::from_bytes(&bytes[..cut]).is_err(), "prefix {cut} decoded");
            }
        }
    }

    #[test]
    fn cross_direction_frames_refuse_as_wrong_kind() {
        let req = Request::Stats.to_bytes();
        assert!(matches!(
            Response::from_bytes(&req),
            Err(DecodeError::WrongKind { expected: RESPONSE_KIND, got: REQUEST_KIND })
        ));
        // A sketch snapshot sent as a request is also just a wrong kind.
        let resp = Response::Stats(ServerStats::default()).to_bytes();
        assert!(matches!(
            Request::from_bytes(&resp),
            Err(DecodeError::WrongKind { expected: REQUEST_KIND, got: RESPONSE_KIND })
        ));
    }

    #[test]
    fn corrupted_and_trailing_request_bytes_refuse() {
        let mut bytes = Request::Stats.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(Request::from_bytes(&bytes), Err(DecodeError::ChecksumMismatch { .. })));
        let mut long = Request::Stats.to_bytes();
        long.push(0);
        assert!(matches!(Request::from_bytes(&long), Err(DecodeError::TrailingBytes { extra: 1 })));
        // An unknown body tag inside a valid frame is Corrupt.
        let framed = encode_frame(REQUEST_KIND, PROTOCOL_VERSION, &[0xAB]);
        assert!(matches!(Request::from_bytes(&framed), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn reused_encode_buf_produces_identical_frames() {
        // One buffer, many messages of different shapes and sizes: every
        // encode must equal the allocating `to_bytes` byte for byte, even
        // after the buffer has held a longer frame.
        let mut buf = EncodeBuf::new();
        let requests = [
            Request::Stats,
            Request::Load { id: 2, threads: 3, frame: vec![0xAB; 300] },
            Request::Query {
                id: 1,
                mode: QueryMode::Indicator,
                queries: vec![Itemset::new(vec![1, 4, 9]), Itemset::empty()],
            },
            Request::Stats, // shorter than what the buffer last held
        ];
        for req in &requests {
            assert_eq!(req.encode_into(&mut buf), req.to_bytes(), "{req:?}");
        }
        let responses = [
            Response::Estimates(vec![0.25; 100]),
            Response::Error(ServeError::UnknownSketch { id: 9 }),
            Response::Indicators(vec![true; 17]),
        ];
        for resp in &responses {
            assert_eq!(resp.encode_into(&mut buf), resp.to_bytes(), "{resp:?}");
        }
    }

    #[test]
    fn indicator_bits_pack_tightly() {
        // 9 bools must cost 2 bytes of payload, not 9.
        let nine = Response::Indicators(vec![true; 9]).to_bytes();
        let one = Response::Indicators(vec![true; 1]).to_bytes();
        assert_eq!(nine.len(), one.len() + 1);
    }
}
