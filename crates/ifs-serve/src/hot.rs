//! The hot set: decoded sketches under an LRU bound measured in bits.
//!
//! The serving tier retains every *admitted frame* (cheap: encoded bytes),
//! but only a bounded working set stays **decoded**. The bound is the sum
//! of measured `size_bits()` over decoded entries — the same measured
//! quantity the paper's `|S|` experiments report, so the memory ceiling an
//! operator configures is the ceiling the sketches actually charge.
//! Eviction drops the decoded form only; the frame bytes remain admitted,
//! and the next query re-decodes them — bit-identically, by the snapshot
//! layer's round-trip contract (DESIGN.md §10), which is what makes
//! eviction an execution detail rather than an approximation (asserted by
//! `tests/serving_protocol.rs`).

use crate::sketch::ServedSketch;
use std::collections::BTreeMap;
use std::sync::Arc;

struct HotEntry {
    sketch: Arc<ServedSketch>,
    size_bits: u64,
}

/// Decoded sketches, recency-ordered, bounded by total measured bits.
///
/// Entries hand out [`Arc`]s so a query batch keeps executing on a sketch
/// even if a concurrent load evicts it mid-batch; the memory is reclaimed
/// when the last in-flight batch drops its handle.
pub struct HotSet {
    budget_bits: u64,
    hot_bits: u64,
    evictions: u64,
    entries: BTreeMap<u64, HotEntry>,
    /// Recency order: least-recently-used first.
    recency: Vec<u64>,
}

impl HotSet {
    /// An empty hot set with the given budget, in bits.
    pub fn new(budget_bits: u64) -> Self {
        Self {
            budget_bits,
            hot_bits: 0,
            evictions: 0,
            entries: BTreeMap::new(),
            recency: Vec::new(),
        }
    }

    /// The configured budget, in bits.
    pub fn budget_bits(&self) -> u64 {
        self.budget_bits
    }

    /// Sum of measured `size_bits` over decoded entries.
    pub fn hot_bits(&self) -> u64 {
        self.hot_bits
    }

    /// Number of decoded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff nothing is decoded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Evictions performed since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Ids currently decoded, least-recently-used first.
    pub fn ids_by_recency(&self) -> &[u64] {
        &self.recency
    }

    fn touch(&mut self, id: u64) {
        if let Some(pos) = self.recency.iter().position(|&x| x == id) {
            self.recency.remove(pos);
        }
        self.recency.push(id);
    }

    /// The decoded sketch at `id`, marking it most recently used.
    pub fn get(&mut self, id: u64) -> Option<Arc<ServedSketch>> {
        let sketch = Arc::clone(&self.entries.get(&id)?.sketch);
        self.touch(id);
        Some(sketch)
    }

    /// The decoded sketch at `id` *without* touching recency — for
    /// observers (hot-reload tests, stats probes) that must not perturb
    /// the LRU order the serving path maintains.
    pub fn peek(&self, id: u64) -> Option<Arc<ServedSketch>> {
        self.entries.get(&id).map(|e| Arc::clone(&e.sketch))
    }

    /// Drops the decoded form of `id` (the admitted frame, which this type
    /// never held, stays behind). Returns whether it was decoded.
    pub fn remove(&mut self, id: u64) -> bool {
        match self.entries.remove(&id) {
            Some(e) => {
                self.hot_bits -= e.size_bits;
                if let Some(pos) = self.recency.iter().position(|&x| x == id) {
                    self.recency.remove(pos);
                }
                true
            }
            None => false,
        }
    }

    /// Inserts a decoded sketch as most recently used, evicting
    /// least-recently-used entries until it fits, and returns the evicted
    /// ids, oldest first. Replaces any previous entry at `id`.
    ///
    /// Callers must have refused frames over the whole budget up front
    /// ([`ServeError::FrameOverBudget`](crate::ServeError::FrameOverBudget));
    /// given that, the loop always terminates with the new entry resident.
    pub fn insert(&mut self, id: u64, sketch: Arc<ServedSketch>, size_bits: u64) -> Vec<u64> {
        debug_assert!(size_bits <= self.budget_bits, "admission must refuse over-budget frames");
        self.remove(id);
        let mut evicted = Vec::new();
        while self.hot_bits + size_bits > self.budget_bits && !self.recency.is_empty() {
            let victim = self.recency[0];
            self.remove(victim);
            self.evictions += 1;
            evicted.push(victim);
        }
        self.hot_bits += size_bits;
        self.entries.insert(id, HotEntry { sketch, size_bits });
        self.recency.push(id);
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_core::ReleaseDb;
    use ifs_database::Database;

    fn sketch() -> Arc<ServedSketch> {
        Arc::new(ServedSketch::ReleaseDb(ReleaseDb::build(&Database::zeros(1, 4), 0.1)))
    }

    #[test]
    fn lru_evicts_oldest_first_and_touch_reorders() {
        let mut hot = HotSet::new(300);
        assert_eq!(hot.insert(1, sketch(), 100), Vec::<u64>::new());
        assert_eq!(hot.insert(2, sketch(), 100), Vec::<u64>::new());
        assert_eq!(hot.insert(3, sketch(), 100), Vec::<u64>::new());
        assert_eq!(hot.hot_bits(), 300);
        // Touch 1: now 2 is the LRU victim.
        assert!(hot.get(1).is_some());
        assert_eq!(hot.insert(4, sketch(), 100), vec![2]);
        assert_eq!(hot.ids_by_recency(), &[3, 1, 4]);
        assert_eq!(hot.evictions(), 1);
        // A big insert evicts several, oldest first.
        assert_eq!(hot.insert(5, sketch(), 250), vec![3, 1, 4]);
        assert_eq!(hot.hot_bits(), 250);
        assert_eq!(hot.len(), 1);
    }

    #[test]
    fn replacing_an_id_keeps_accounting_exact() {
        let mut hot = HotSet::new(300);
        hot.insert(1, sketch(), 120);
        hot.insert(1, sketch(), 80);
        assert_eq!(hot.hot_bits(), 80);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot.ids_by_recency(), &[1]);
        assert!(hot.remove(1));
        assert!(!hot.remove(1));
        assert_eq!(hot.hot_bits(), 0);
        assert!(hot.is_empty());
    }

    #[test]
    fn exact_fit_does_not_evict() {
        let mut hot = HotSet::new(200);
        hot.insert(1, sketch(), 100);
        assert_eq!(hot.insert(2, sketch(), 100), Vec::<u64>::new());
        assert_eq!(hot.hot_bits(), 200);
    }
}
