//! The sketch server: admitted frames, a hot set, and bounded in-flight
//! query batches.
//!
//! [`SketchServer`] is transport-agnostic — [`handle`](SketchServer::handle)
//! maps one request frame to one response frame, and the TCP layer
//! ([`crate::net`]) is just a loop around it. All state sits behind one
//! mutex, but query batches execute *outside* it on an [`Arc`]'d sketch,
//! so concurrent connections overlap their (dominant) batch work and the
//! lock guards only admissions and LRU bookkeeping.
//!
//! Backpressure is explicit: at most
//! [`max_in_flight`](ServeConfig::max_in_flight) query batches may be
//! executing (or waiting on the state lock) at once. The slot is taken
//! *before* any work and released when the batch's answers are encoded;
//! a request arriving with every slot taken is answered immediately with
//! a typed [`ServeError::Overloaded`] instead of joining an unbounded
//! queue — under saturation the server's latency stays bounded and the
//! refusal tells the client to back off.

use crate::error::ServeError;
use crate::hot::HotSet;
use crate::protocol::{EncodeBuf, QueryMode, Request, Response, ServerStats};
use crate::sketch::{Answers, ServedSketch};
use ifs_database::Itemset;
use ifs_util::threads::clamp_threads;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Operator knobs of a [`SketchServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Hot-set budget: the sum of measured `size_bits` over decoded
    /// sketches never exceeds this.
    pub budget_bits: u64,
    /// Bound on concurrently executing query batches; the explicit
    /// backpressure limit.
    pub max_in_flight: usize,
    /// Thread knob applied to sketches loaded with `threads = 0`.
    pub default_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        // 512 MiB of decoded sketches, 64 concurrent batches, serial
        // queries unless a load says otherwise.
        Self { budget_bits: 1 << 32, max_in_flight: 64, default_threads: 1 }
    }
}

/// One admitted frame: the encoded bytes (always retained; the hot set
/// only ever holds the decoded form) plus the knobs to re-decode it.
struct AdmittedFrame {
    bytes: Vec<u8>,
    threads: usize,
    size_bits: u64,
    kind: u16,
    /// How many times this id has been (re-)admitted; 1 on first load.
    generation: u64,
}

struct ServeState {
    admitted: std::collections::BTreeMap<u64, AdmittedFrame>,
    hot: HotSet,
    served_batches: u64,
    reloads: u64,
}

/// What a successful [`SketchServer::load_frame`] did: the admitted
/// sketch's identity plus the hot-reload bookkeeping the response surface
/// reports. `generation` counts admissions of the id (1 on first load);
/// `previous_kind` is `Some` exactly when this load *replaced* a live id —
/// the hot-reload case, answered on the wire as [`Response::Reloaded`]
/// instead of [`Response::Loaded`] so a client that believed it knew the
/// sketch under that id learns its knowledge is stale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadOutcome {
    /// Snapshot kind tag of the newly admitted sketch.
    pub kind: u16,
    /// Measured size of the admitted frame, in bits.
    pub size_bits: u64,
    /// Admission count for this id: 1 for a first load, ≥ 2 for a reload.
    pub generation: u64,
    /// Kind tag of the sketch this load replaced, if the id was live.
    pub previous_kind: Option<u16>,
    /// Ids whose decoded forms were evicted to fit the new entry.
    pub evicted: Vec<u64>,
}

/// A long-running sketch-serving process: loads versioned snapshot frames,
/// keeps a hot set decoded under an LRU bit budget, and answers batched
/// itemset queries on the sharded engine.
pub struct SketchServer {
    config: ServeConfig,
    state: Mutex<ServeState>,
    in_flight: AtomicUsize,
}

/// An occupied in-flight slot; dropping it releases the slot. Holding one
/// is what admits a query batch past the backpressure bound.
pub struct BatchSlot<'a> {
    counter: &'a AtomicUsize,
}

impl Drop for BatchSlot<'_> {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::AcqRel);
    }
}

impl SketchServer {
    /// A server with the given knobs and an empty hot set.
    pub fn new(config: ServeConfig) -> Self {
        let budget = config.budget_bits;
        Self {
            config,
            state: Mutex::new(ServeState {
                admitted: std::collections::BTreeMap::new(),
                hot: HotSet::new(budget),
                served_batches: 0,
                reloads: 0,
            }),
            in_flight: AtomicUsize::new(0),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Tries to occupy an in-flight batch slot, refusing with a typed
    /// [`ServeError::Overloaded`] when the bound is reached. The TCP layer
    /// and [`handle`](Self::handle) call this per query batch; tests hold
    /// slots directly to drive the server to saturation deterministically.
    pub fn try_begin_batch(&self) -> Result<BatchSlot<'_>, ServeError> {
        let limit = self.config.max_in_flight;
        let mut current = self.in_flight.load(Ordering::Acquire);
        loop {
            if current >= limit {
                return Err(ServeError::Overloaded {
                    in_flight: current as u64,
                    limit: limit as u64,
                });
            }
            match self.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(BatchSlot { counter: &self.in_flight }),
                Err(seen) => current = seen,
            }
        }
    }

    /// Admits a snapshot frame under `id`, validating it end to end
    /// (framing, checksum, body, servable kind) and warming the hot set
    /// with the decoded sketch.
    ///
    /// Re-admitting a live id is **hot-reload**: the new entry replaces
    /// the old atomically under the state lock, while any in-flight batch
    /// keeps its [`Arc`] to the old decoded form and completes against it
    /// — no request ever observes a torn state, because every dispatch
    /// resolves its sketch exactly once. The returned [`LoadOutcome`]
    /// reports the bump in `generation` and the `previous_kind`.
    pub fn load_frame(
        &self,
        id: u64,
        threads: usize,
        frame: &[u8],
    ) -> Result<LoadOutcome, ServeError> {
        let size_bits = frame.len() as u64 * 8;
        if size_bits > self.config.budget_bits {
            return Err(ServeError::FrameOverBudget {
                size_bits,
                budget_bits: self.config.budget_bits,
            });
        }
        let threads = if threads == 0 {
            clamp_threads(self.config.default_threads)
        } else {
            clamp_threads(threads)
        };
        // Decode outside the lock: admission of a large frame must not
        // stall queries against other sketches.
        let sketch = ServedSketch::admit(frame, threads)?;
        let kind = sketch.kind();
        let mut state = self.state.lock().expect("server state poisoned");
        let previous = state.admitted.get(&id);
        let previous_kind = previous.map(|p| p.kind);
        let generation = previous.map_or(1, |p| p.generation + 1);
        if previous_kind.is_some() {
            state.reloads += 1;
        }
        state.admitted.insert(
            id,
            AdmittedFrame { bytes: frame.to_vec(), threads, size_bits, kind, generation },
        );
        let evicted = state.hot.insert(id, Arc::new(sketch), size_bits);
        Ok(LoadOutcome { kind, size_bits, generation, previous_kind, evicted })
    }

    /// The decoded sketch at `id`, reloading it from the admitted frame
    /// bytes (and evicting as needed) if it is not hot. This is the one
    /// place a dispatch resolves id → sketch; the pooled path calls it
    /// once per aggregated micro-batch so every request in the batch
    /// answers against the same snapshot generation.
    pub fn sketch(&self, id: u64) -> Result<Arc<ServedSketch>, ServeError> {
        self.hot_or_reload(id)
    }

    /// Counts one served dispatch. [`query`](Self::query) calls this
    /// internally; the pooled path, which executes batches on the [`Arc`]
    /// from [`sketch`](Self::sketch) directly, calls it once per
    /// aggregated dispatch — so `served_batches` counts *dispatches on
    /// the engine*, not client-visible query responses.
    pub fn record_dispatch(&self) {
        self.state.lock().expect("server state poisoned").served_batches += 1;
    }

    fn hot_or_reload(&self, id: u64) -> Result<Arc<ServedSketch>, ServeError> {
        let mut state = self.state.lock().expect("server state poisoned");
        if let Some(sketch) = state.hot.get(id) {
            return Ok(sketch);
        }
        let frame = state.admitted.get(&id).ok_or(ServeError::UnknownSketch { id })?;
        // Admission already validated these bytes; a failure here would
        // mean in-memory corruption, which still must not panic a server.
        let sketch = Arc::new(ServedSketch::admit(&frame.bytes, frame.threads)?);
        let size_bits = frame.size_bits;
        state.hot.insert(id, Arc::clone(&sketch), size_bits);
        Ok(sketch)
    }

    /// Answers one query batch from the sketch at `id`. The caller must
    /// hold a [`BatchSlot`]; batch execution runs outside the state lock.
    pub fn query(
        &self,
        _slot: &BatchSlot<'_>,
        id: u64,
        mode: QueryMode,
        queries: &[Itemset],
    ) -> Result<Answers, ServeError> {
        let sketch = self.hot_or_reload(id)?;
        let answers = sketch.answer(mode, queries)?;
        self.record_dispatch();
        Ok(answers)
    }

    /// Occupancy and traffic counters.
    pub fn stats(&self) -> ServerStats {
        let state = self.state.lock().expect("server state poisoned");
        ServerStats {
            admitted: state.admitted.len() as u64,
            hot: state.hot.len() as u64,
            hot_bits: state.hot.hot_bits(),
            budget_bits: state.hot.budget_bits(),
            in_flight: self.in_flight.load(Ordering::Acquire) as u64,
            max_in_flight: self.config.max_in_flight as u64,
            served_batches: state.served_batches,
            evictions: state.hot.evictions(),
            reloads: state.reloads,
        }
    }

    /// Ids currently decoded, least-recently-used first (observability for
    /// tests and operators; not part of the wire protocol).
    pub fn hot_ids(&self) -> Vec<u64> {
        self.state.lock().expect("server state poisoned").hot.ids_by_recency().to_vec()
    }

    /// Maps one request frame to one response frame — the whole serving
    /// tier as a pure function over byte strings. Malformed requests,
    /// refusals, and answers all come back as encoded [`Response`]s; no
    /// input can panic this path.
    pub fn handle(&self, request: &[u8]) -> Vec<u8> {
        let mut buf = EncodeBuf::new();
        self.handle_into(request, &mut buf).to_vec()
    }

    /// [`handle`](Self::handle) through a per-connection reusable
    /// [`EncodeBuf`]: identical response bytes, but the response frame is
    /// built in the buffer instead of a fresh allocation, so a warm
    /// connection's encode path stops touching the allocator. The returned
    /// slice is valid until the buffer's next encode.
    pub fn handle_into<'a>(&self, request: &[u8], buf: &'a mut EncodeBuf) -> &'a [u8] {
        let response = match Request::from_bytes(request) {
            Err(e) => Response::Error(ServeError::Decode(e)),
            Ok(Request::Load { id, threads, frame }) => {
                match self.load_frame(id, threads, &frame) {
                    Ok(LoadOutcome {
                        kind,
                        size_bits,
                        generation,
                        previous_kind: Some(previous_kind),
                        evicted,
                    }) => Response::Reloaded {
                        id,
                        kind,
                        size_bits,
                        generation,
                        previous_kind,
                        evicted,
                    },
                    Ok(LoadOutcome { kind, size_bits, evicted, .. }) => {
                        Response::Loaded { id, kind, size_bits, evicted }
                    }
                    Err(e) => Response::Error(e),
                }
            }
            Ok(Request::Query { id, mode, queries }) => match self.try_begin_batch() {
                Err(e) => Response::Error(e),
                Ok(slot) => match self.query(&slot, id, mode, &queries) {
                    Ok(Answers::Estimates(v)) => Response::Estimates(v),
                    Ok(Answers::Indicators(v)) => Response::Indicators(v),
                    Err(e) => Response::Error(e),
                },
            },
            Ok(Request::Stats) => Response::Stats(self.stats()),
        };
        response.encode_into(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_core::{FrequencyEstimator, ReleaseDb, Snapshot};
    use ifs_database::Database;

    fn demo() -> (ReleaseDb, Vec<u8>) {
        let db = Database::from_rows(5, &[vec![0, 1], vec![0], vec![1, 2], vec![0, 1, 4], vec![3]]);
        let sketch = ReleaseDb::build(&db, 0.3);
        let bytes = sketch.snapshot_bytes();
        (sketch, bytes)
    }

    #[test]
    fn load_then_query_matches_offline_answers() {
        let (offline, frame) = demo();
        let server = SketchServer::new(ServeConfig::default());
        let out = server.load_frame(7, 2, &frame).expect("admit");
        assert_eq!(out.kind, ifs_core::snapshot::KIND_RELEASE_DB);
        assert_eq!(out.size_bits, frame.len() as u64 * 8);
        assert_eq!(out.generation, 1);
        assert_eq!(out.previous_kind, None);
        assert!(out.evicted.is_empty());
        let queries = vec![Itemset::empty(), Itemset::singleton(0), Itemset::new(vec![0, 1])];
        let slot = server.try_begin_batch().expect("idle server has slots");
        let answers = server.query(&slot, 7, QueryMode::Estimate, &queries).expect("served");
        assert_eq!(answers, Answers::Estimates(offline.estimate_batch(&queries)));
        assert_eq!(server.stats().served_batches, 1);
    }

    /// Hot-reload at the server level: re-admitting a live id bumps the
    /// generation and names the replaced kind, a dispatch that resolved
    /// its `Arc` before the reload drains against the *old* decoded form,
    /// and dispatches after the reload answer the new one — never a blend.
    #[test]
    fn reload_bumps_generation_and_drains_in_flight_on_old_arc() {
        let (old_offline, old_frame) = demo();
        let new_db =
            Database::from_rows(5, &[vec![2, 3], vec![2], vec![3], vec![2, 3, 4], vec![4]]);
        let new_offline = ReleaseDb::build(&new_db, 0.3);
        let new_frame = new_offline.snapshot_bytes();

        let server = SketchServer::new(ServeConfig::default());
        assert_eq!(server.load_frame(7, 1, &old_frame).expect("first load").generation, 1);
        // An in-flight batch resolves its sketch once, before the reload.
        let in_flight = server.sketch(7).expect("admitted id resolves");

        let out = server.load_frame(7, 1, &new_frame).expect("reload");
        assert_eq!(out.generation, 2);
        assert_eq!(out.previous_kind, Some(ifs_core::snapshot::KIND_RELEASE_DB));
        assert_eq!(server.stats().reloads, 1);

        let queries = vec![Itemset::empty(), Itemset::singleton(2), Itemset::new(vec![2, 3])];
        // The drained batch answers the old snapshot, bit-identically.
        assert_eq!(
            in_flight.answer(QueryMode::Estimate, &queries).expect("old arc answers"),
            Answers::Estimates(old_offline.estimate_batch(&queries))
        );
        // A fresh dispatch answers the new one.
        let slot = server.try_begin_batch().unwrap();
        assert_eq!(
            server.query(&slot, 7, QueryMode::Estimate, &queries).expect("served"),
            Answers::Estimates(new_offline.estimate_batch(&queries))
        );
    }

    #[test]
    fn unknown_ids_and_empty_hot_sets_refuse_typed() {
        let server = SketchServer::new(ServeConfig::default());
        let slot = server.try_begin_batch().unwrap();
        assert_eq!(
            server.query(&slot, 3, QueryMode::Estimate, &[]),
            Err(ServeError::UnknownSketch { id: 3 })
        );
    }

    #[test]
    fn over_budget_frames_refuse_at_admission() {
        let (_, frame) = demo();
        let budget = frame.len() as u64 * 8 - 1;
        let server =
            SketchServer::new(ServeConfig { budget_bits: budget, ..ServeConfig::default() });
        assert_eq!(
            server.load_frame(0, 1, &frame),
            Err(ServeError::FrameOverBudget {
                size_bits: frame.len() as u64 * 8,
                budget_bits: budget
            })
        );
        // Nothing was admitted: the id is still unknown.
        assert_eq!(server.stats().admitted, 0);
    }

    #[test]
    fn saturation_refuses_instead_of_queueing() {
        let (_, frame) = demo();
        let server = SketchServer::new(ServeConfig { max_in_flight: 2, ..ServeConfig::default() });
        server.load_frame(0, 1, &frame).expect("admit");
        let a = server.try_begin_batch().expect("slot 1");
        let _b = server.try_begin_batch().expect("slot 2");
        assert_eq!(
            server.try_begin_batch().map(|_| ()),
            Err(ServeError::Overloaded { in_flight: 2, limit: 2 })
        );
        drop(a);
        let c = server.try_begin_batch().expect("released slot is reusable");
        assert!(server.query(&c, 0, QueryMode::Estimate, &[Itemset::empty()]).is_ok());
    }

    #[test]
    fn handle_is_total_over_byte_strings() {
        let server = SketchServer::new(ServeConfig::default());
        // Garbage, truncation, and a valid frame all produce decodable
        // responses.
        for input in [&b""[..], b"garbage", &Request::Stats.to_bytes()] {
            let out = server.handle(input);
            Response::from_bytes(&out).expect("every response must decode");
        }
    }

    #[test]
    fn handle_into_reusing_one_buffer_matches_handle() {
        let (_, frame) = demo();
        // Two identical servers, fed the same request sequence: one
        // through the reusable buffer, one through the allocating path.
        // (One server would see the second Load of each pair as a
        // reload and answer a different generation.)
        let reusing = SketchServer::new(ServeConfig::default());
        let allocating = SketchServer::new(ServeConfig::default());
        let mut buf = EncodeBuf::new();
        // One buffer across loads, queries of both modes, stats, and
        // refusals — every response must equal the allocating path's bytes
        // even after the buffer has held a longer frame.
        let requests = [
            Request::Load { id: 0, threads: 1, frame: frame.clone() },
            Request::Query {
                id: 0,
                mode: QueryMode::Estimate,
                queries: vec![Itemset::empty(), Itemset::new(vec![0, 1])],
            },
            Request::Stats,
            Request::Query { id: 9, mode: QueryMode::Indicator, queries: vec![] },
        ];
        for req in &requests {
            let bytes = req.to_bytes();
            assert_eq!(reusing.handle_into(&bytes, &mut buf), allocating.handle(&bytes), "{req:?}");
        }
        assert_eq!(reusing.handle_into(b"garbage", &mut buf), allocating.handle(b"garbage"));
    }
}
