//! Pooled, pipelined transport: a fixed worker pool multiplexing many
//! connections, with cross-connection micro-batching (DESIGN.md §13).
//!
//! [`crate::net::serve_listener`] spends one OS thread (and stack) per
//! connection and answers one frame at a time, so at high fan-in the
//! syscall and dispatch overhead — not the kernels — bound throughput.
//! This module replaces that shape with [`serve_pooled`]: a fixed set of
//! [`PoolWorker`]s, each owning a disjoint set of nonblocking connections
//! and their reusable buffers, polled in a read → dispatch → write loop.
//!
//! Three properties define the hot path, and each is load-bearing for the
//! tier's bit-identity contract:
//!
//! - **Pipelining.** A connection may write many request frames before
//!   reading. The worker parses read-ahead bytes into a per-connection
//!   queue ([`frame_boundary`] finds boundaries incrementally, so a
//!   partial frame on one connection never blocks another) and answers
//!   strictly in arrival order per connection.
//! - **Micro-batching.** Within one dispatch sub-round, the maximal
//!   *prefix run* of Query requests at each connection's queue head is
//!   taken, and runs across connections are grouped by `(id, mode)` into
//!   one engine dispatch under one [`BatchSlot`](crate::server::BatchSlot).
//!   Aggregation only regroups work — per-query supports are independent
//!   of batch composition, so scattering the concatenated answers back is
//!   bit-identical to answering each request alone. Requests are
//!   validated *individually* before joining an aggregate, so one
//!   malformed query refuses only its own request.
//! - **Ordering across kinds.** Non-query requests (Load, Stats) act as
//!   sub-round barriers: a queue's head is handled before any later query
//!   in that queue joins an aggregate, so a pipelined
//!   `[Query, Load, Query]` observes exactly the sequential semantics —
//!   the second query answers the just-(re)loaded snapshot.
//!
//! Snapshot hot-reload composes with this for free: a dispatch resolves
//! `id → Arc<ServedSketch>` exactly once (per group, per sub-round), so a
//! concurrent re-admit under the same id lets in-flight batches drain on
//! the old decoded form while the next sub-round answers the new one —
//! no request ever observes a torn state.

use crate::net::frame_boundary;
use crate::protocol::{EncodeBuf, QueryMode, Request, Response};
use crate::server::{LoadOutcome, SketchServer};
use crate::sketch::Answers;
use ifs_database::Itemset;
use ifs_util::threads::clamp_threads;
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Operator knobs of the pooled transport.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Handler workers. `0` means auto: `available_parallelism`, clamped
    /// like every other worker-count knob. The `ifs-serve` binary feeds
    /// `IFS_SERVE_WORKERS` through here.
    pub workers: usize,
    /// Read-ahead bound: parsed-but-unanswered requests buffered per
    /// connection. A pipelining client deeper than this is simply not
    /// read from until responses drain — flow control, not an error.
    pub readahead: usize,
    /// How long an idle worker sleeps between polls of its connections.
    pub idle_sleep: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self { workers: 0, readahead: 64, idle_sleep: Duration::from_micros(50) }
    }
}

impl PoolConfig {
    /// The worker count this config resolves to: `workers` if nonzero,
    /// otherwise the machine's available parallelism, clamped either way.
    pub fn resolved_workers(&self) -> usize {
        let n = if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.workers
        };
        clamp_threads(n)
    }
}

/// One parsed inbound item, queued in arrival order. A complete frame
/// that fails request decoding (bad checksum, unknown tag) still occupies
/// its arrival slot, as the typed error response it will be answered with
/// — in-order responses are the pipelining contract.
enum Pending {
    Request(Request),
    Immediate(Response),
}

/// One multiplexed connection: the stream plus every per-connection
/// reusable buffer (inbound bytes, parsed queue, outbound bytes, encode
/// scratch). A warm connection allocates nothing at the framing layer.
struct Conn<S> {
    stream: S,
    /// Unparsed inbound bytes (a partial frame at most `MAX_WIRE_FRAME`).
    inbuf: Vec<u8>,
    /// Parsed, not yet answered, in arrival order.
    queue: VecDeque<Pending>,
    /// Encoded responses not yet fully written.
    outbuf: Vec<u8>,
    /// Prefix of `outbuf` already written to the stream.
    written: usize,
    buf: EncodeBuf,
    /// Peer closed its write side (or transport failed): answer what is
    /// queued, flush, then drop.
    eof: bool,
    /// The stream is unframeable: stop reading, answer queued items
    /// (ending with the typed framing error), flush, then drop.
    closing: bool,
}

impl<S> Conn<S> {
    fn new(stream: S) -> Self {
        Self {
            stream,
            inbuf: Vec::new(),
            queue: VecDeque::new(),
            outbuf: Vec::new(),
            written: 0,
            buf: EncodeBuf::new(),
            eof: false,
            closing: false,
        }
    }

    /// Done: nothing queued, nothing to flush, and no more bytes coming.
    fn finished(&self) -> bool {
        (self.eof || self.closing) && self.queue.is_empty() && self.written == self.outbuf.len()
    }
}

fn mode_tag(mode: QueryMode) -> u8 {
    match mode {
        QueryMode::Estimate => 1,
        QueryMode::Indicator => 2,
    }
}

/// One handler worker: a disjoint set of connections polled in a
/// read → dispatch → write loop. Generic over the stream type so the
/// loop's ordering, fairness, and blast-radius properties are testable
/// deterministically on scripted in-memory streams; the TCP shape is
/// [`serve_pooled`].
pub struct PoolWorker<'s, S> {
    server: &'s SketchServer,
    conns: Vec<Conn<S>>,
    readahead: usize,
    chunk: Vec<u8>,
}

impl<'s, S: Read + Write> PoolWorker<'s, S> {
    /// A worker with no connections yet.
    pub fn new(server: &'s SketchServer, config: &PoolConfig) -> Self {
        Self {
            server,
            conns: Vec::new(),
            readahead: config.readahead.max(1),
            chunk: vec![0; 16 * 1024],
        }
    }

    /// Adopts a connection. For TCP the stream must already be
    /// nonblocking; any stream whose `read`/`write` return
    /// [`io::ErrorKind::WouldBlock`] instead of blocking works.
    pub fn push(&mut self, stream: S) {
        self.conns.push(Conn::new(stream));
    }

    /// Live connections.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// True iff no connections remain.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// One poll over every connection: read available bytes and parse
    /// frames, run dispatch sub-rounds until every queue is empty, write
    /// what can be written, drop finished connections. Returns whether
    /// any byte moved or any request was answered — `false` means the
    /// caller may sleep before polling again.
    pub fn pass(&mut self) -> bool {
        let mut did = false;
        for conn in &mut self.conns {
            did |= Self::read_and_parse(conn, self.readahead, &mut self.chunk);
        }
        did |= self.dispatch();
        for conn in &mut self.conns {
            did |= Self::write_some(conn);
        }
        self.conns.retain(|c| !c.finished());
        did
    }

    /// Nonblocking read into the connection's inbound buffer, then parse
    /// complete frames into its queue. A partial frame stays buffered —
    /// and costs the *other* connections nothing, because this never
    /// blocks. An unframeable prefix queues one typed error response and
    /// marks the connection closing (the stream position is meaningless,
    /// exactly the blocking transport's contract).
    fn read_and_parse(conn: &mut Conn<S>, readahead: usize, chunk: &mut [u8]) -> bool {
        let mut did = false;
        if !conn.eof && !conn.closing && conn.queue.len() < readahead {
            loop {
                match conn.stream.read(chunk) {
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.inbuf.extend_from_slice(&chunk[..n]);
                        did = true;
                        if n < chunk.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.eof = true;
                        break;
                    }
                }
            }
        }
        let mut consumed = 0;
        while !conn.closing && conn.queue.len() < readahead {
            match frame_boundary(&conn.inbuf[consumed..]) {
                Ok(None) => break,
                Ok(Some(len)) => {
                    let frame = &conn.inbuf[consumed..consumed + len];
                    conn.queue.push_back(match Request::from_bytes(frame) {
                        Ok(req) => Pending::Request(req),
                        Err(e) => Pending::Immediate(Response::Error(e.into())),
                    });
                    consumed += len;
                    did = true;
                }
                Err(e) => {
                    conn.queue.push_back(Pending::Immediate(Response::Error(e.into())));
                    conn.closing = true;
                    did = true;
                }
            }
        }
        if consumed > 0 {
            conn.inbuf.drain(..consumed);
        }
        did
    }

    /// Dispatch sub-rounds until every queue is empty. Each sub-round:
    /// (a) answer every non-query queue head (Load/Stats and queued
    /// decode errors) in order — these are the barriers; (b) take each
    /// queue's maximal prefix run of Query requests, group the runs
    /// across connections by `(id, mode)`, execute each group as one
    /// engine dispatch, and scatter answers back in arrival order.
    fn dispatch(&mut self) -> bool {
        let mut did = false;
        loop {
            let mut round = false;
            for conn in &mut self.conns {
                loop {
                    match conn.queue.front() {
                        Some(Pending::Request(Request::Query { .. })) | None => break,
                        Some(_) => {}
                    }
                    let resp = match conn.queue.pop_front().expect("front was Some") {
                        Pending::Immediate(resp) => resp,
                        Pending::Request(req) => Self::respond_control(self.server, req),
                    };
                    let frame = resp.encode_into(&mut conn.buf);
                    conn.outbuf.extend_from_slice(frame);
                    round = true;
                }
            }
            // Maximal prefix runs of queries, taken per connection in
            // arrival order; `taken`'s order within one connection is
            // therefore that connection's response order.
            let mut taken: Vec<(usize, u64, QueryMode, Vec<Itemset>)> = Vec::new();
            for (ci, conn) in self.conns.iter_mut().enumerate() {
                while matches!(conn.queue.front(), Some(Pending::Request(Request::Query { .. }))) {
                    let Some(Pending::Request(Request::Query { id, mode, queries })) =
                        conn.queue.pop_front()
                    else {
                        unreachable!("front matched Query")
                    };
                    taken.push((ci, id, mode, queries));
                }
            }
            if !taken.is_empty() {
                round = true;
                let responses = self.execute(&taken);
                for ((ci, _, _, _), resp) in taken.iter().zip(responses) {
                    let conn = &mut self.conns[*ci];
                    let frame = resp.encode_into(&mut conn.buf);
                    conn.outbuf.extend_from_slice(frame);
                }
            }
            did |= round;
            if !round {
                return did;
            }
        }
    }

    /// Answers one non-query request — identical response surface to
    /// [`SketchServer::handle_into`]'s Load and Stats arms.
    fn respond_control(server: &SketchServer, req: Request) -> Response {
        match req {
            Request::Load { id, threads, frame } => match server.load_frame(id, threads, &frame) {
                Ok(LoadOutcome {
                    kind,
                    size_bits,
                    generation,
                    previous_kind: Some(previous_kind),
                    evicted,
                }) => {
                    Response::Reloaded { id, kind, size_bits, generation, previous_kind, evicted }
                }
                Ok(LoadOutcome { kind, size_bits, evicted, .. }) => {
                    Response::Loaded { id, kind, size_bits, evicted }
                }
                Err(e) => Response::Error(e),
            },
            Request::Stats => Response::Stats(server.stats()),
            Request::Query { .. } => unreachable!("queries go through execute()"),
        }
    }

    /// Executes one sub-round's taken queries: groups by `(id, mode)`,
    /// resolves each group's sketch `Arc` once (so every request in the
    /// group answers the same snapshot generation), validates each
    /// request individually, then runs the group's survivors as one
    /// concatenated batch under one in-flight slot and scatters the
    /// answers back. Returns one response per taken request, aligned.
    fn execute(&self, taken: &[(usize, u64, QueryMode, Vec<Itemset>)]) -> Vec<Response> {
        let mut responses: Vec<Option<Response>> = (0..taken.len()).map(|_| None).collect();
        let mut groups: BTreeMap<(u64, u8), Vec<usize>> = BTreeMap::new();
        for (i, (_, id, mode, _)) in taken.iter().enumerate() {
            groups.entry((*id, mode_tag(*mode))).or_default().push(i);
        }
        for ((id, _), members) in groups {
            let mode = taken[members[0]].2;
            let sketch = match self.server.sketch(id) {
                Ok(sketch) => sketch,
                Err(e) => {
                    for &m in &members {
                        responses[m] = Some(Response::Error(e.clone()));
                    }
                    continue;
                }
            };
            // Pre-validate each request alone: a bad query refuses only
            // its own request (with the same typed error the unpooled
            // path produces) and never joins the aggregate.
            let mut valid = Vec::with_capacity(members.len());
            for &m in &members {
                let queries = &taken[m].3;
                if !sketch.supports(mode) {
                    let err = sketch.answer(mode, queries).expect_err("unsupported mode refuses");
                    responses[m] = Some(Response::Error(err));
                } else if let Err(e) = sketch.validate(queries) {
                    responses[m] = Some(Response::Error(e));
                } else {
                    valid.push(m);
                }
            }
            if valid.is_empty() {
                continue;
            }
            // One backpressure slot and one engine dispatch for the whole
            // aggregated group — the point of micro-batching.
            let slot = match self.server.try_begin_batch() {
                Ok(slot) => slot,
                Err(e) => {
                    for &m in &valid {
                        responses[m] = Some(Response::Error(e.clone()));
                    }
                    continue;
                }
            };
            let mut all: Vec<Itemset> = Vec::new();
            for &m in &valid {
                all.extend_from_slice(&taken[m].3);
            }
            match sketch.answer(mode, &all) {
                Ok(answers) => {
                    self.server.record_dispatch();
                    let mut at = 0;
                    for &m in &valid {
                        let n = taken[m].3.len();
                        responses[m] = Some(match &answers {
                            Answers::Estimates(v) => Response::Estimates(v[at..at + n].to_vec()),
                            Answers::Indicators(v) => Response::Indicators(v[at..at + n].to_vec()),
                        });
                        at += n;
                    }
                }
                // Unreachable given per-request validation, but a server
                // must degrade to per-request answers, not panic.
                Err(_) => {
                    for &m in &valid {
                        responses[m] = Some(match sketch.answer(mode, &taken[m].3) {
                            Ok(Answers::Estimates(v)) => Response::Estimates(v),
                            Ok(Answers::Indicators(v)) => Response::Indicators(v),
                            Err(e) => Response::Error(e),
                        });
                        self.server.record_dispatch();
                    }
                }
            }
            drop(slot);
        }
        responses.into_iter().map(|r| r.expect("every taken request answered")).collect()
    }

    /// Writes as much buffered output as the stream accepts without
    /// blocking, tracking the partial-write position.
    fn write_some(conn: &mut Conn<S>) -> bool {
        let mut did = false;
        while conn.written < conn.outbuf.len() {
            match conn.stream.write(&conn.outbuf[conn.written..]) {
                Ok(0) => {
                    conn.eof = true;
                    conn.queue.clear();
                    conn.written = conn.outbuf.len();
                    break;
                }
                Ok(n) => {
                    conn.written += n;
                    did = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.eof = true;
                    conn.queue.clear();
                    conn.written = conn.outbuf.len();
                    break;
                }
            }
        }
        if conn.written == conn.outbuf.len() && !conn.outbuf.is_empty() {
            conn.outbuf.clear();
            conn.written = 0;
            let _ = conn.stream.flush();
        }
        did
    }
}

/// Pooled accept loop: `workers` handler threads (see
/// [`PoolConfig::resolved_workers`]) each multiplex a share of the
/// accepted connections; the calling thread accepts and deals
/// connections round-robin. With `accept_limit = Some(n)`, returns after
/// `n` connections have been accepted *and served to completion* —
/// the same contract as [`crate::net::serve_listener`]; `None` loops
/// forever.
pub fn serve_pooled(
    server: &SketchServer,
    listener: &TcpListener,
    config: &PoolConfig,
    accept_limit: Option<usize>,
) -> io::Result<()> {
    let workers = config.resolved_workers();
    let inboxes: Vec<Mutex<Vec<TcpStream>>> =
        (0..workers).map(|_| Mutex::new(Vec::new())).collect();
    let accepting = AtomicBool::new(true);
    let mut accept_result = Ok(());
    std::thread::scope(|scope| {
        for inbox in &inboxes {
            let accepting = &accepting;
            let idle = config.idle_sleep;
            scope.spawn(move || {
                let mut worker = PoolWorker::new(server, config);
                loop {
                    {
                        let mut inbox = inbox.lock().expect("pool inbox poisoned");
                        for stream in inbox.drain(..) {
                            worker.push(stream);
                        }
                    }
                    let did = worker.pass();
                    if worker.is_empty() && !accepting.load(Ordering::Acquire) {
                        let drained = inbox.lock().expect("pool inbox poisoned").is_empty();
                        if drained {
                            break;
                        }
                    }
                    if !did {
                        std::thread::sleep(idle);
                    }
                }
            });
        }
        let mut accepted = 0usize;
        loop {
            if let Some(limit) = accept_limit {
                if accepted >= limit {
                    break;
                }
            }
            let (stream, _peer) = match listener.accept() {
                Ok(pair) => pair,
                Err(e) => {
                    accept_result = Err(e);
                    break;
                }
            };
            // Nagle would hold small response frames hostage to the next
            // read; every frame here is latency-sensitive.
            let _ = stream.set_nodelay(true);
            if let Err(e) = stream.set_nonblocking(true) {
                accept_result = Err(e);
                break;
            }
            inboxes[accepted % workers].lock().expect("pool inbox poisoned").push(stream);
            accepted += 1;
        }
        accepting.store(false, Ordering::Release);
    });
    accept_result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ServeError;
    use crate::server::ServeConfig;
    use ifs_core::{FrequencyEstimator, ReleaseDb, Snapshot};
    use ifs_database::Database;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A deterministic in-memory stream: `read` delivers the scripted
    /// chunks in order, one per call, with `None` entries yielding
    /// `WouldBlock` and the exhausted script yielding EOF (peer close) —
    /// so a test controls exactly how many bytes arrive per worker pass.
    /// Writes append to a shared buffer the test inspects.
    struct ScriptStream {
        script: VecDeque<Option<Vec<u8>>>,
        written: Rc<RefCell<Vec<u8>>>,
    }

    impl ScriptStream {
        fn new(script: Vec<Option<Vec<u8>>>) -> (Self, Rc<RefCell<Vec<u8>>>) {
            let written = Rc::new(RefCell::new(Vec::new()));
            (Self { script: script.into(), written: Rc::clone(&written) }, written)
        }

        /// A script delivering `bytes` whole, then dribbling nothing.
        fn whole(bytes: Vec<u8>) -> Vec<Option<Vec<u8>>> {
            vec![Some(bytes)]
        }

        /// A slowloris script: one byte per worker pass.
        fn dribble(bytes: &[u8]) -> Vec<Option<Vec<u8>>> {
            let mut script = Vec::new();
            for &b in bytes {
                script.push(Some(vec![b]));
                script.push(None);
            }
            script
        }
    }

    impl Read for ScriptStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.script.pop_front() {
                Some(Some(chunk)) => {
                    assert!(chunk.len() <= buf.len(), "script chunk fits the read buffer");
                    buf[..chunk.len()].copy_from_slice(&chunk);
                    Ok(chunk.len())
                }
                Some(None) => Err(io::Error::from(io::ErrorKind::WouldBlock)),
                None => Ok(0),
            }
        }
    }

    impl Write for ScriptStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.written.borrow_mut().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn decode_responses(wire: &[u8]) -> Vec<Response> {
        let mut out = Vec::new();
        let mut at = 0;
        while at < wire.len() {
            let len = frame_boundary(&wire[at..]).expect("well-formed").expect("complete");
            out.push(Response::from_bytes(&wire[at..at + len]).expect("decodes"));
            at += len;
        }
        out
    }

    fn demo() -> (ReleaseDb, Vec<u8>) {
        let db = Database::from_rows(5, &[vec![0, 1], vec![0], vec![1, 2], vec![0, 1, 4], vec![3]]);
        let sketch = ReleaseDb::build(&db, 0.3);
        let bytes = sketch.snapshot_bytes();
        (sketch, bytes)
    }

    fn query(id: u64, queries: Vec<Itemset>) -> Vec<u8> {
        Request::Query { id, mode: QueryMode::Estimate, queries }.to_bytes()
    }

    fn run_until_drained<S: Read + Write>(worker: &mut PoolWorker<'_, S>) {
        // Every pass makes progress on a scripted stream; cap the loop so
        // a livelock fails the test instead of hanging it.
        for _ in 0..10_000 {
            worker.pass();
            if worker.is_empty() {
                return;
            }
        }
        panic!("worker did not drain its scripted connections");
    }

    /// A byte-dribbling connection must not stall a whole connection on
    /// the same worker: the fast peer's response is written while the
    /// slow peer's frame is still arriving, and the slow peer still gets
    /// the right answer in the end.
    #[test]
    fn slowloris_does_not_stall_the_worker() {
        let (offline, frame) = demo();
        let server = SketchServer::new(ServeConfig::default());
        server.load_frame(1, 1, &frame).expect("admit");
        let queries = vec![Itemset::empty(), Itemset::new(vec![0, 1])];
        let expected = Response::Estimates(offline.estimate_batch(&queries));

        let mut worker = PoolWorker::new(&server, &PoolConfig::default());
        let (slow, slow_out) = ScriptStream::new(ScriptStream::dribble(&query(1, queries.clone())));
        let (fast, fast_out) = ScriptStream::new(ScriptStream::whole(query(1, queries.clone())));
        worker.push(slow);
        worker.push(fast);

        // One pass: the fast connection is fully answered; the slow one
        // has delivered exactly one byte.
        worker.pass();
        assert_eq!(decode_responses(&fast_out.borrow()), vec![expected.clone()]);
        assert!(slow_out.borrow().is_empty());

        run_until_drained(&mut worker);
        assert_eq!(decode_responses(&slow_out.borrow()), vec![expected]);
    }

    /// Queries arriving across connections in the same pass aggregate
    /// into ONE engine dispatch (`served_batches` counts dispatches),
    /// and every connection still receives exactly its own answers.
    #[test]
    fn cross_connection_queries_aggregate_into_one_dispatch() {
        let (offline, frame) = demo();
        let server = SketchServer::new(ServeConfig::default());
        server.load_frame(1, 1, &frame).expect("admit");
        let qa = vec![Itemset::empty(), Itemset::singleton(0)];
        let qb = vec![Itemset::new(vec![0, 1])];

        let mut worker = PoolWorker::new(&server, &PoolConfig::default());
        let (a, a_out) = ScriptStream::new(ScriptStream::whole(query(1, qa.clone())));
        let (b, b_out) = ScriptStream::new(ScriptStream::whole(query(1, qb.clone())));
        worker.push(a);
        worker.push(b);
        worker.pass();

        assert_eq!(server.stats().served_batches, 1, "two requests, one aggregated dispatch");
        assert_eq!(
            decode_responses(&a_out.borrow()),
            vec![Response::Estimates(offline.estimate_batch(&qa))]
        );
        assert_eq!(
            decode_responses(&b_out.borrow()),
            vec![Response::Estimates(offline.estimate_batch(&qb))]
        );
    }

    /// A pipelined `[Query, Load(reload), Query]` answers in order, with
    /// the Load acting as a barrier: the first query answers the old
    /// snapshot, the second answers the reloaded one.
    #[test]
    fn loads_are_ordering_barriers_within_a_pipeline() {
        let (old_offline, old_frame) = demo();
        let new_db = Database::from_rows(5, &[vec![2], vec![2, 3], vec![3], vec![4], vec![2, 4]]);
        let new_offline = ReleaseDb::build(&new_db, 0.3);
        let new_frame = new_offline.snapshot_bytes();
        let queries = vec![Itemset::empty(), Itemset::singleton(2), Itemset::new(vec![2, 3])];

        let server = SketchServer::new(ServeConfig::default());
        server.load_frame(1, 1, &old_frame).expect("admit");

        let mut wire = query(1, queries.clone());
        wire.extend_from_slice(
            &Request::Load { id: 1, threads: 1, frame: new_frame.clone() }.to_bytes(),
        );
        wire.extend_from_slice(&query(1, queries.clone()));

        let mut worker = PoolWorker::new(&server, &PoolConfig::default());
        let (conn, out) = ScriptStream::new(ScriptStream::whole(wire));
        worker.push(conn);
        run_until_drained(&mut worker);

        let responses = decode_responses(&out.borrow());
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[0], Response::Estimates(old_offline.estimate_batch(&queries)));
        assert!(
            matches!(&responses[1], Response::Reloaded { id: 1, generation: 2, .. }),
            "{:?}",
            responses[1]
        );
        assert_eq!(responses[2], Response::Estimates(new_offline.estimate_batch(&queries)));
    }

    /// Mid-pipeline garbage: requests before the garbage are answered,
    /// one typed framing error follows, and only that connection closes —
    /// a healthy connection on the same worker is unaffected.
    #[test]
    fn garbage_closes_only_the_offending_connection() {
        let (offline, frame) = demo();
        let server = SketchServer::new(ServeConfig::default());
        server.load_frame(1, 1, &frame).expect("admit");
        let queries = vec![Itemset::empty()];
        let expected = Response::Estimates(offline.estimate_batch(&queries));

        let mut bad_wire = query(1, queries.clone());
        bad_wire.extend_from_slice(b"!!!! this is not a frame");
        let mut worker = PoolWorker::new(&server, &PoolConfig::default());
        let (bad, bad_out) = ScriptStream::new(ScriptStream::whole(bad_wire));
        let (good, good_out) = ScriptStream::new(ScriptStream::whole(query(1, queries.clone())));
        worker.push(bad);
        worker.push(good);
        worker.pass();

        let bad_responses = decode_responses(&bad_out.borrow());
        assert_eq!(bad_responses.len(), 2);
        assert_eq!(bad_responses[0], expected);
        assert!(
            matches!(&bad_responses[1], Response::Error(ServeError::Decode(_))),
            "{:?}",
            bad_responses[1]
        );
        assert_eq!(decode_responses(&good_out.borrow()), vec![expected.clone()]);
        // The offending connection is gone after one pass; the healthy
        // one lingers (its script has not reached EOF yet).
        assert_eq!(worker.len(), 1);
    }

    /// In-frame corruption (checksum flip) refuses that one request with
    /// a typed error and keeps the connection open for the next frame.
    #[test]
    fn checksum_corruption_is_recoverable_in_a_pipeline() {
        let (offline, frame) = demo();
        let server = SketchServer::new(ServeConfig::default());
        server.load_frame(1, 1, &frame).expect("admit");
        let queries = vec![Itemset::empty()];

        let mut corrupt = query(1, queries.clone());
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        let mut wire = corrupt;
        wire.extend_from_slice(&query(1, queries.clone()));

        let mut worker = PoolWorker::new(&server, &PoolConfig::default());
        let (conn, out) = ScriptStream::new(ScriptStream::whole(wire));
        worker.push(conn);
        worker.pass();

        let responses = decode_responses(&out.borrow());
        assert_eq!(responses.len(), 2);
        assert!(matches!(&responses[0], Response::Error(ServeError::Decode(_))));
        assert_eq!(responses[1], Response::Estimates(offline.estimate_batch(&queries)));
        assert_eq!(worker.len(), 1, "the connection stays open");
    }

    /// Saturation under the pool: with every in-flight slot held, queries
    /// refuse with `Overloaded`; when slots free, the same connection's
    /// next queries succeed — backpressure saturates and recovers.
    #[test]
    fn overload_refuses_then_recovers_under_the_pool() {
        let (offline, frame) = demo();
        let server = SketchServer::new(ServeConfig { max_in_flight: 1, ..ServeConfig::default() });
        server.load_frame(1, 1, &frame).expect("admit");
        let queries = vec![Itemset::empty()];

        let mut worker = PoolWorker::new(&server, &PoolConfig::default());
        let (conn, out) = ScriptStream::new(vec![
            Some(query(1, queries.clone())),
            None,
            Some(query(1, queries.clone())),
        ]);
        worker.push(conn);

        let held = server.try_begin_batch().expect("take the only slot");
        worker.pass();
        assert!(
            matches!(
                decode_responses(&out.borrow()).as_slice(),
                [Response::Error(ServeError::Overloaded { .. })]
            ),
            "saturated pool refuses"
        );
        drop(held);
        run_until_drained_or(&mut worker, &out, 2);
        let responses = decode_responses(&out.borrow());
        assert_eq!(responses[1], Response::Estimates(offline.estimate_batch(&queries)));
    }

    fn run_until_drained_or(
        worker: &mut PoolWorker<'_, ScriptStream>,
        out: &Rc<RefCell<Vec<u8>>>,
        responses: usize,
    ) {
        for _ in 0..10_000 {
            worker.pass();
            if decode_responses(&out.borrow()).len() >= responses {
                return;
            }
        }
        panic!("worker never produced {responses} responses");
    }
}
