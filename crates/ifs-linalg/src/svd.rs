//! One-sided Jacobi singular value decomposition.
//!
//! Lemma 26 of the paper (Rudelson) asserts that the Hadamard row-product of
//! independent random 0/1 matrices has smallest singular value
//! `σ_min = Ω(√(d^{k−1}))` with high probability. Experiment E8 samples that
//! ensemble and *measures* σ_min, which requires an SVD that is accurate for
//! small singular values. One-sided Jacobi iteration is the standard choice
//! for high relative accuracy: it orthogonalizes the columns of `A` by plane
//! rotations; on convergence the column norms are the singular values.

use crate::matrix::{dot, norm2};
use crate::Matrix;

/// Result of [`decompose`]: `A = U · diag(σ) · Vᵀ` with `σ` non-increasing.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors, `m × r` where `r = min(m, n)` (columns).
    pub u: Matrix,
    /// Singular values in non-increasing order, length `min(m, n)`.
    pub sigma: Vec<f64>,
    /// Right singular vectors, `n × r` (columns).
    pub v: Matrix,
}

impl Svd {
    /// Numerical rank at relative tolerance `tol` (default callers use
    /// `1e-10`): count of `σᵢ > tol · σ₀`.
    pub fn rank(&self, tol: f64) -> usize {
        let cutoff = tol * self.sigma.first().copied().unwrap_or(0.0);
        self.sigma.iter().filter(|&&s| s > cutoff).count()
    }

    /// Smallest singular value (0 when the matrix has a nontrivial kernel in
    /// the square case; for `m ≥ n` this is `σ_n`, the Lemma 26 quantity).
    pub fn sigma_min(&self) -> f64 {
        self.sigma.last().copied().unwrap_or(0.0)
    }

    /// Largest singular value (spectral norm).
    pub fn sigma_max(&self) -> f64 {
        self.sigma.first().copied().unwrap_or(0.0)
    }

    /// Moore–Penrose pseudo-inverse `A⁺ = V · diag(σ⁺) · Uᵀ`, inverting only
    /// singular values above `tol · σ_max`.
    pub fn pseudo_inverse(&self, tol: f64) -> Matrix {
        let cutoff = tol * self.sigma_max();
        let r = self.sigma.len();
        // V (n×r) · diag(1/σ) · Uᵀ (r×m)
        let mut scaled_vt = Matrix::zeros(r, self.v.rows());
        for i in 0..r {
            let inv = if self.sigma[i] > cutoff { 1.0 / self.sigma[i] } else { 0.0 };
            for j in 0..self.v.rows() {
                scaled_vt[(i, j)] = self.v[(j, i)] * inv;
            }
        }
        // A+ = V Σ⁺ Uᵀ = (scaled_vt)ᵀ · Uᵀ  computed as V·Σ⁺ then times Uᵀ.
        let v_sigma = scaled_vt.transpose(); // n × r
        v_sigma.matmul(&self.u.transpose())
    }

    /// Applies the pseudo-inverse to a vector without forming the matrix.
    pub fn pinv_apply(&self, b: &[f64], tol: f64) -> Vec<f64> {
        let cutoff = tol * self.sigma_max();
        let utb = self.u.t_matvec(b);
        let mut scaled: Vec<f64> = utb
            .iter()
            .zip(&self.sigma)
            .map(|(c, &s)| if s > cutoff { c / s } else { 0.0 })
            .collect();
        // Pad in case r < sigma.len() mismatch (never by construction).
        scaled.resize(self.sigma.len(), 0.0);
        self.v.matvec(&scaled)
    }
}

/// Computes the SVD of `a` by one-sided Jacobi iteration.
///
/// Handles arbitrary shapes by transposing internally so the iteration runs
/// on an `m ≥ n` matrix. Converges when every column pair is orthogonal to
/// relative tolerance `1e-12`, with a generous sweep cap.
pub fn decompose(a: &Matrix) -> Svd {
    if a.rows() < a.cols() {
        // SVD(Aᵀ) = (V, σ, U).
        let t = decompose(&a.transpose());
        return Svd { u: t.v, sigma: t.sigma, v: t.u };
    }
    let m = a.rows();
    let n = a.cols();
    // Work on columns: w is m×n, v accumulates right rotations (n×n).
    let mut w = a.clone();
    let mut v = Matrix::identity(n);
    let tol = 1e-12;
    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = 0.0;
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    app += wp * wp;
                    aqq += wq * wq;
                    apq += wp * wq;
                }
                if apq.abs() <= tol * (app * aqq).sqrt() || apq == 0.0 {
                    continue;
                }
                off = off.max(apq.abs() / (app * aqq).sqrt().max(f64::MIN_POSITIVE));
                // Jacobi rotation zeroing the (p,q) Gram entry.
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    w[(i, p)] = c * wp - s * wq;
                    w[(i, q)] = s * wp + c * wq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
            }
        }
        if off <= tol {
            break;
        }
    }
    // Singular values are the column norms; U columns are normalized w.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n).map(|j| norm2(&w.col(j))).collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).expect("no NaN singular values"));
    let mut u = Matrix::zeros(m, n);
    let mut vv = Matrix::zeros(n, n);
    let mut sigma = Vec::with_capacity(n);
    for (out_j, &j) in order.iter().enumerate() {
        let s = norms[j];
        sigma.push(s);
        for i in 0..m {
            u[(i, out_j)] = if s > 0.0 { w[(i, j)] / s } else { 0.0 };
        }
        for i in 0..n {
            vv[(i, out_j)] = v[(i, j)];
        }
    }
    Svd { u, sigma, v: vv }
}

/// Largest singular value via power iteration on `AᵀA` — cheap when only
/// `σ_max` is needed for large matrices.
pub fn sigma_max_power(a: &Matrix, iters: usize, rng: &mut ifs_util::Rng64) -> f64 {
    let n = a.cols();
    if n == 0 || a.rows() == 0 {
        return 0.0;
    }
    let mut x: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
    let nx = norm2(&x).max(f64::MIN_POSITIVE);
    x.iter_mut().for_each(|v| *v /= nx);
    let mut lambda = 0.0;
    for _ in 0..iters {
        let ax = a.matvec(&x);
        let mut y = a.t_matvec(&ax);
        let ny = norm2(&y);
        if ny == 0.0 {
            return 0.0;
        }
        y.iter_mut().for_each(|v| *v /= ny);
        lambda = dot(&y, &a.t_matvec(&a.matvec(&y)));
        x = y;
    }
    lambda.max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_util::Rng64;

    fn reconstruct(svd: &Svd) -> Matrix {
        let r = svd.sigma.len();
        let mut us = svd.u.clone();
        for j in 0..r {
            for i in 0..us.rows() {
                us[(i, j)] *= svd.sigma[j];
            }
        }
        us.matmul(&svd.v.transpose())
    }

    #[test]
    fn diagonal_matrix_svd() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        let svd = decompose(&a);
        assert!((svd.sigma[0] - 4.0).abs() < 1e-10);
        assert!((svd.sigma[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_error_small() {
        let mut rng = Rng64::seeded(11);
        for (m, n) in [(6usize, 4usize), (4, 6), (5, 5), (10, 3)] {
            let a = Matrix::from_fn(m, n, |_, _| rng.gaussian());
            let svd = decompose(&a);
            let err = reconstruct(&svd).sub(&a).max_abs();
            assert!(err < 1e-9, "{m}x{n}: reconstruction error {err}");
        }
    }

    #[test]
    fn singular_values_nonincreasing_and_nonnegative() {
        let mut rng = Rng64::seeded(12);
        let a = Matrix::from_fn(8, 6, |_, _| rng.gaussian());
        let svd = decompose(&a);
        assert!(svd.sigma.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        assert!(svd.sigma.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn rank_deficient_detected() {
        // Rank-1 matrix.
        let a = Matrix::from_fn(5, 4, |r, c| ((r + 1) * (c + 1)) as f64);
        let svd = decompose(&a);
        assert_eq!(svd.rank(1e-10), 1);
        assert!(svd.sigma_min() < 1e-9 * svd.sigma_max());
    }

    #[test]
    fn orthogonality_of_factors() {
        let mut rng = Rng64::seeded(13);
        let a = Matrix::from_fn(7, 5, |_, _| rng.gaussian());
        let svd = decompose(&a);
        let utu = svd.u.transpose().matmul(&svd.u);
        let vtv = svd.v.transpose().matmul(&svd.v);
        let id = Matrix::identity(5);
        assert!(utu.sub(&id).max_abs() < 1e-9, "UᵀU ≠ I");
        assert!(vtv.sub(&id).max_abs() < 1e-9, "VᵀV ≠ I");
    }

    #[test]
    fn pseudo_inverse_solves_full_rank_system() {
        let mut rng = Rng64::seeded(14);
        let a = Matrix::from_fn(6, 4, |_, _| rng.gaussian());
        let x_true = vec![1.0, -0.5, 2.0, 0.25];
        let b = a.matvec(&x_true);
        let svd = decompose(&a);
        let x = svd.pinv_apply(&b, 1e-10);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
        // Matrix form agrees with operator form.
        let pinv = svd.pseudo_inverse(1e-10);
        let x2 = pinv.matvec(&b);
        for (xi, ti) in x2.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }

    #[test]
    fn power_iteration_matches_jacobi_sigma_max() {
        let mut rng = Rng64::seeded(15);
        let a = Matrix::from_fn(12, 9, |_, _| rng.gaussian());
        let svd = decompose(&a);
        let pm = sigma_max_power(&a, 200, &mut rng);
        assert!(
            (pm - svd.sigma_max()).abs() < 1e-6 * svd.sigma_max(),
            "power {pm} vs jacobi {}",
            svd.sigma_max()
        );
    }

    #[test]
    fn wide_matrix_transposed_correctly() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0, 0.0], vec![0.0, 2.0, 0.0]]);
        let svd = decompose(&a);
        assert_eq!(svd.sigma.len(), 2);
        assert!((svd.sigma[0] - 2.0).abs() < 1e-10);
        assert!((svd.sigma[1] - 1.0).abs() < 1e-10);
        assert_eq!(svd.u.rows(), 2);
        assert_eq!(svd.v.rows(), 3);
    }
}
