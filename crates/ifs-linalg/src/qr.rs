//! Householder QR factorization and least-squares solves.
//!
//! The KRSU-style decoder (§4.1.1 of the paper) reconstructs a database
//! column via `ẑ = A⁺y`, i.e. an L2-distance minimization. For full-column-
//! rank `A` that is exactly the least-squares solve provided here; the
//! rank-deficient case goes through [`crate::svd`]'s pseudo-inverse.

use crate::matrix::norm2;
use crate::Matrix;

/// Compact QR factorization of an `m × n` matrix with `m ≥ n`.
///
/// Householder reflectors are stored in the lower trapezoid of `qr`; `R` sits
/// in the upper triangle. `apply_qt` replays the reflectors on a right-hand
/// side without materializing `Q`.
#[derive(Clone, Debug)]
pub struct Qr {
    qr: Matrix,
    betas: Vec<f64>,
}

impl Qr {
    /// Factorizes `a`. Panics if `a.rows() < a.cols()`.
    pub fn factor(a: &Matrix) -> Self {
        let (m, n) = (a.rows(), a.cols());
        assert!(m >= n, "QR requires rows >= cols (got {m}x{n})");
        let mut qr = a.clone();
        let mut betas = vec![0.0; n];
        for k in 0..n {
            // Build the Householder vector for column k below the diagonal.
            let mut norm = 0.0;
            for i in k..m {
                norm += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                betas[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // Normalize so v[k] = 1; beta = -v0/alpha is the standard scaling.
            for i in (k + 1)..m {
                let val = qr[(i, k)] / v0;
                qr[(i, k)] = val;
            }
            betas[k] = -v0 / alpha;
            qr[(k, k)] = alpha;
            // Apply reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut s = qr[(k, j)];
                for i in (k + 1)..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= betas[k];
                qr[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
        }
        Self { qr, betas }
    }

    /// Applies `Qᵀ` to `b` in place (length must be `m`).
    pub fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        assert_eq!(b.len(), m);
        for k in 0..n {
            if self.betas[k] == 0.0 {
                continue;
            }
            let mut s = b[k];
            for (i, bv) in b.iter().enumerate().take(m).skip(k + 1) {
                s += self.qr[(i, k)] * bv;
            }
            s *= self.betas[k];
            b[k] -= s;
            for (i, bv) in b.iter_mut().enumerate().take(m).skip(k + 1) {
                *bv -= s * self.qr[(i, k)];
            }
        }
    }

    /// Solves the least-squares problem `min ‖Ax − b‖₂`.
    ///
    /// Returns `None` if `R` is numerically singular (|R\[j,j\]| below
    /// `1e-12 · max|R|`), in which case callers should fall back to the SVD
    /// pseudo-inverse.
    pub fn solve_least_squares(&self, b: &[f64]) -> Option<Vec<f64>> {
        let n = self.qr.cols();
        let mut rhs = b.to_vec();
        self.apply_qt(&mut rhs);
        // Back-substitution on R x = rhs[..n].
        let scale = self.qr.max_abs();
        let tol = 1e-12 * scale.max(1.0);
        let mut x = vec![0.0; n];
        for j in (0..n).rev() {
            let mut s = rhs[j];
            for (l, xl) in x.iter().enumerate().take(n).skip(j + 1) {
                s -= self.qr[(j, l)] * xl;
            }
            let diag = self.qr[(j, j)];
            if diag.abs() < tol {
                return None;
            }
            x[j] = s / diag;
        }
        Some(x)
    }

    /// The residual norm `‖Ax − b‖₂` for a candidate solution.
    pub fn residual_norm(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x);
        let diff: Vec<f64> = ax.iter().zip(b).map(|(p, q)| p - q).collect();
        norm2(&diff)
    }
}

/// Convenience wrapper: least-squares solve of `min ‖Ax − b‖₂`.
pub fn least_squares(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    Qr::factor(a).solve_least_squares(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_util::Rng64;

    #[test]
    fn solves_square_system_exactly() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0, 0.0], vec![1.0, 3.0, 1.0], vec![0.0, 1.0, 4.0]]);
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = least_squares(&a, &b).expect("nonsingular");
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn overdetermined_consistent_system() {
        // 6 equations, 3 unknowns, consistent by construction.
        let mut rng = Rng64::seeded(7);
        let a = Matrix::from_fn(6, 3, |_, _| rng.gaussian());
        let x_true = vec![0.3, -1.1, 2.0];
        let b = a.matvec(&x_true);
        let x = least_squares(&a, &b).expect("full rank whp");
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Inconsistent system: solution must beat nearby perturbations.
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]]);
        let b = vec![1.0, 3.0, 5.0];
        let x = least_squares(&a, &b).unwrap();
        // Analytic answer: x = (2, 5).
        assert!((x[0] - 2.0).abs() < 1e-10 && (x[1] - 5.0).abs() < 1e-10);
        let base = Qr::residual_norm(&a, &x, &b);
        for d in [[1e-3, 0.0], [0.0, 1e-3], [-1e-3, 1e-3]] {
            let xp = vec![x[0] + d[0], x[1] + d[1]];
            assert!(Qr::residual_norm(&a, &xp, &b) >= base - 1e-12);
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(least_squares(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn qt_preserves_norm() {
        let mut rng = Rng64::seeded(9);
        let a = Matrix::from_fn(8, 5, |_, _| rng.gaussian());
        let qr = Qr::factor(&a);
        let b: Vec<f64> = (0..8).map(|_| rng.gaussian()).collect();
        let mut tb = b.clone();
        qr.apply_qt(&mut tb);
        assert!((norm2(&b) - norm2(&tb)).abs() < 1e-10, "Q must be orthogonal");
    }

    #[test]
    #[should_panic(expected = "rows >= cols")]
    fn underdetermined_panics() {
        Qr::factor(&Matrix::zeros(2, 3));
    }
}
