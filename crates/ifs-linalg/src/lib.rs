//! Dense linear algebra for the Theorem 16 machinery.
//!
//! The paper's For-All-Estimator lower bound (Theorem 16, via De [De12] and
//! KRSU [KRSU10]) rests on spectral properties of *Hadamard row-products* of
//! random 0/1 matrices (Definition 22), their smallest singular values
//! (Rudelson's Lemma 26), and the *Euclidean section* property of their
//! ranges (Definition 23). Reproducing those measurements needs a small,
//! dependable dense linear-algebra kernel, which this crate provides from
//! scratch:
//!
//! * [`Matrix`] — row-major dense `f64` matrix with the usual operations.
//! * [`qr`] — Householder QR and least-squares solves (the L2/KRSU decoder).
//! * [`svd`] — one-sided Jacobi SVD: singular values, rank, pseudo-inverse.
//!   Chosen over Golub–Kahan for robustness at the small/medium sizes we
//!   need; accuracy is what matters for σ_min measurements.
//! * [`products`] — Hadamard (row-tensor) products of matrices.
//! * [`sections`] — empirical Euclidean-section ratios of a matrix range.
//!
//! [De12]: https://doi.org/10.1007/978-3-642-28914-9_18
//! [KRSU10]: https://doi.org/10.1145/1806689.1806795

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matrix;
pub mod products;
pub mod qr;
pub mod sections;
pub mod svd;

pub use matrix::Matrix;
