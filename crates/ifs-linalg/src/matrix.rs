//! Row-major dense matrix.

use ifs_util::Rng64;

/// A dense `rows × cols` matrix of `f64`, stored row-major.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a per-cell closure.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds from nested rows (all rows must have equal length).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Self { rows: r, cols: c, data: rows.concat() }
    }

    /// Random 0/1 matrix with i.i.d. unbiased entries — the ensemble of
    /// Lemma 26.
    pub fn random_binary(rows: usize, cols: usize, rng: &mut Rng64) -> Self {
        Self::from_fn(rows, cols, |_, _| if rng.bernoulli(0.5) { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Column `c` copied into a vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Matrix–vector product `A·x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows).map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum()).collect()
    }

    /// Transposed product `Aᵀ·x`.
    pub fn t_matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "t_matvec dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            for (o, a) in out.iter_mut().zip(self.row(r)) {
                *o += a * xr;
            }
        }
        out
    }

    /// Matrix product `A·B`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(r);
                for (o, b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// Scales every entry in place.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Entry-wise difference `self − other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Raw data (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(10) {
                write!(f, " {:9.4}", self[(r, c)])?;
            }
            writeln!(f, "{}]", if self.cols > 10 { " …" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  … ({} more rows)", self.rows - 8)?;
        }
        Ok(())
    }
}

/// Euclidean norm of a vector.
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// L1 norm of a vector.
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_id() {
        let m = Matrix::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(m.matvec(&x), x);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn t_matvec_matches_transpose_matvec() {
        let m = Matrix::from_fn(3, 4, |r, c| (r + 2 * c) as f64);
        let x = vec![1.0, -1.0, 0.5];
        assert_eq!(m.t_matvec(&x), m.transpose().matvec(&x));
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!((m.frobenius() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm1(&[1.0, -2.0, 3.0]), 6.0);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn random_binary_is_binary_and_balanced() {
        let mut rng = Rng64::seeded(5);
        let m = Matrix::random_binary(40, 40, &mut rng);
        assert!(m.data().iter().all(|&x| x == 0.0 || x == 1.0));
        let ones: f64 = m.data().iter().sum();
        let frac = ones / 1600.0;
        assert!((frac - 0.5).abs() < 0.06, "ones fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn sub_and_scale() {
        let a = Matrix::from_rows(&[vec![2.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 1.0]]);
        let mut c = a.sub(&b);
        assert_eq!(c.row(0), &[1.0, 3.0]);
        c.scale(2.0);
        assert_eq!(c.row(0), &[2.0, 6.0]);
    }
}
