//! Empirical Euclidean-section measurement — Definition 23 of the paper.
//!
//! A subspace `V ⊆ R^z` is a `(δ, d′, z)` Euclidean section when every
//! `x ∈ V` satisfies `√z‖x‖₂ ≥ ‖x‖₁ ≥ δ√z‖x‖₂`. Lemma 26 asserts the range
//! of a random Hadamard row-product is such a section with constant δ; the
//! LP-decoding argument needs exactly this to control L1 reconstruction.
//!
//! The section constant of a subspace is a minimum over infinitely many
//! directions, so we *estimate* it by sampling: random Gaussian coefficient
//! vectors (a uniform direction in the range) plus a directed local search
//! that greedily worsens the ratio. The reported value is an upper bound on
//! δ; the experiment checks it stays bounded away from 0 as dimensions grow.

use crate::matrix::{norm1, norm2};
use crate::Matrix;
use ifs_util::Rng64;

/// The L1/L2 ratio `‖y‖₁ / (√z · ‖y‖₂)` of a vector, the quantity bounded by
/// the Euclidean-section property (1 for the all-equal vector, `1/√z` for a
/// coordinate vector).
pub fn section_ratio(y: &[f64]) -> f64 {
    let n2 = norm2(y);
    if n2 == 0.0 {
        return 1.0;
    }
    norm1(y) / ((y.len() as f64).sqrt() * n2)
}

/// Estimates the section constant δ of `range(A)` by random sampling.
///
/// Draws `samples` Gaussian coefficient vectors `x`, maps through `A`, and
/// returns the smallest ratio seen.
pub fn estimate_delta_sampling(a: &Matrix, samples: usize, rng: &mut Rng64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let x: Vec<f64> = (0..a.cols()).map(|_| rng.gaussian()).collect();
        let y = a.matvec(&x);
        let r = section_ratio(&y);
        if r < best {
            best = r;
        }
    }
    if best.is_finite() {
        best
    } else {
        1.0
    }
}

/// Sharpens [`estimate_delta_sampling`] with coordinate descent: starting
/// from the worst sampled direction, greedily perturbs single coefficients to
/// reduce the ratio further. Returns the improved (smaller) estimate.
pub fn estimate_delta_descent(
    a: &Matrix,
    samples: usize,
    descent_steps: usize,
    rng: &mut Rng64,
) -> f64 {
    let n = a.cols();
    let mut best_x: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
    let mut best = section_ratio(&a.matvec(&best_x));
    for _ in 0..samples {
        let x: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let r = section_ratio(&a.matvec(&x));
        if r < best {
            best = r;
            best_x = x;
        }
    }
    let mut step = 1.0;
    for _ in 0..descent_steps {
        let mut improved = false;
        for j in 0..n {
            for dir in [step, -step] {
                let mut cand = best_x.clone();
                cand[j] += dir;
                let r = section_ratio(&a.matvec(&cand));
                if r < best - 1e-15 {
                    best = r;
                    best_x = cand;
                    improved = true;
                }
            }
        }
        if !improved {
            step *= 0.5;
            if step < 1e-6 {
                break;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_extremes() {
        // All-equal vector achieves ratio 1.
        assert!((section_ratio(&[1.0; 16]) - 1.0).abs() < 1e-12);
        // A coordinate vector achieves 1/sqrt(z).
        let mut e = vec![0.0; 16];
        e[3] = 2.5;
        assert!((section_ratio(&e) - 0.25).abs() < 1e-12);
        // Zero vector: defined as 1 (no direction).
        assert_eq!(section_ratio(&[0.0; 4]), 1.0);
    }

    #[test]
    fn identity_range_has_tiny_delta() {
        // range(I) = R^z contains coordinate vectors, so δ = 1/√z; the
        // descent estimator should get well below the random-sample value.
        let a = Matrix::identity(16);
        let mut rng = Rng64::seeded(3);
        let sampled = estimate_delta_sampling(&a, 50, &mut rng);
        let descended = estimate_delta_descent(&a, 50, 100, &mut rng);
        assert!(descended <= sampled + 1e-12);
        assert!(descended < 0.55, "descent should approach 1/sqrt(16)=0.25, got {descended}");
    }

    #[test]
    fn repeated_rows_give_large_delta() {
        // A maps x to (x,x,...,x)/1: every range vector has identical blocks,
        // so the L1/L2 ratio never degenerates; δ stays ≥ ratio of the base.
        let base = Matrix::identity(2);
        let mut stacked_rows = Vec::new();
        for _ in 0..8 {
            stacked_rows.push(vec![1.0, 0.0]);
            stacked_rows.push(vec![0.0, 1.0]);
        }
        let a = Matrix::from_rows(&stacked_rows);
        let mut rng = Rng64::seeded(4);
        let delta = estimate_delta_descent(&a, 100, 50, &mut rng);
        // Worst case in this range is a coordinate pattern repeated 8 times:
        // ratio = 8 / (sqrt(16)*sqrt(8)) = 0.707…
        assert!(delta > 0.6, "delta {delta}");
        let _ = base;
    }

    #[test]
    fn estimates_are_upper_bounds_of_truth_for_identity() {
        // For identity the true δ is exactly 1/√z; estimators may only
        // overestimate.
        let a = Matrix::identity(9);
        let mut rng = Rng64::seeded(5);
        let est = estimate_delta_descent(&a, 200, 200, &mut rng);
        assert!(est >= 1.0 / 3.0 - 1e-9, "estimate {est} below true min");
    }
}
