//! Hadamard (row-tensor) products of matrices — Definition 22 of the paper.
//!
//! Given `A₁,…,A_s` with `Aⱼ ∈ R^{ℓⱼ×n}`, the Hadamard product
//! `A = A₁ ∘ ⋯ ∘ A_s ∈ R^{L×n}` (`L = ℓ₁⋯ℓ_s`) has one row per tuple
//! `(i₁,…,i_s)` with entries `A[(i₁,…,i_s), h] = Π_j Aⱼ[iⱼ, h]`.
//!
//! For 0/1 matrices this is exactly the answer operator of `k`-itemset
//! frequency queries on the KRSU-style databases of Lemma 24: choosing one
//! attribute from each of `k−1` blocks and multiplying picks out the rows
//! (columns `h`) containing all of them.

use crate::Matrix;

/// Computes the Hadamard row-product of the given matrices.
///
/// All inputs must share the same column count `n`. Row index order is
/// lexicographic in the tuple `(i₁,…,i_s)` with `i₁` the most significant —
/// i.e. row `i = ((i₁·ℓ₂ + i₂)·ℓ₃ + i₃)…`.
///
/// # Panics
/// If no matrices are given or column counts disagree.
pub fn hadamard_product(mats: &[&Matrix]) -> Matrix {
    assert!(!mats.is_empty(), "need at least one factor");
    let n = mats[0].cols();
    assert!(mats.iter().all(|m| m.cols() == n), "column counts must agree");
    let total_rows: usize = mats.iter().map(|m| m.rows()).product();
    let mut out = Matrix::zeros(total_rows, n);
    let mut idx = vec![0usize; mats.len()];
    for r in 0..total_rows {
        {
            let row = out.row_mut(r);
            row.fill(1.0);
            for (j, m) in mats.iter().enumerate() {
                let src = m.row(idx[j]);
                for (o, s) in row.iter_mut().zip(src) {
                    *o *= s;
                }
            }
        }
        // Increment the mixed-radix tuple (last factor is least significant).
        for j in (0..mats.len()).rev() {
            idx[j] += 1;
            if idx[j] < mats[j].rows() {
                break;
            }
            idx[j] = 0;
        }
    }
    out
}

/// Row index of tuple `(i₁,…,i_s)` in [`hadamard_product`] output.
pub fn tuple_to_row(tuple: &[usize], dims: &[usize]) -> usize {
    assert_eq!(tuple.len(), dims.len());
    let mut r = 0usize;
    for (t, d) in tuple.iter().zip(dims) {
        assert!(t < d, "tuple index {t} out of factor dimension {d}");
        r = r * d + t;
    }
    r
}

/// Inverse of [`tuple_to_row`].
pub fn row_to_tuple(mut row: usize, dims: &[usize]) -> Vec<usize> {
    let mut tuple = vec![0usize; dims.len()];
    for j in (0..dims.len()).rev() {
        tuple[j] = row % dims[j];
        row /= dims[j];
    }
    assert_eq!(row, 0, "row index out of range");
    tuple
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_util::Rng64;

    #[test]
    fn product_of_single_matrix_is_itself() {
        let mut rng = Rng64::seeded(1);
        let a = Matrix::random_binary(3, 5, &mut rng);
        let p = hadamard_product(&[&a]);
        assert_eq!(p, a);
    }

    #[test]
    fn two_factor_entries_are_products() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 0.0], vec![0.0, 1.0]]);
        let p = hadamard_product(&[&a, &b]);
        assert_eq!(p.rows(), 6);
        for i1 in 0..2 {
            for i2 in 0..3 {
                let r = tuple_to_row(&[i1, i2], &[2, 3]);
                for h in 0..2 {
                    assert_eq!(p[(r, h)], a[(i1, h)] * b[(i2, h)], "({i1},{i2},{h})");
                }
            }
        }
    }

    #[test]
    fn tuple_row_roundtrip() {
        let dims = [3usize, 4, 2];
        for r in 0..24 {
            let t = row_to_tuple(r, &dims);
            assert_eq!(tuple_to_row(&t, &dims), r);
        }
    }

    #[test]
    fn binary_products_stay_binary() {
        let mut rng = Rng64::seeded(2);
        let a = Matrix::random_binary(4, 6, &mut rng);
        let b = Matrix::random_binary(4, 6, &mut rng);
        let p = hadamard_product(&[&a, &b]);
        assert!(p.data().iter().all(|&x| x == 0.0 || x == 1.0));
    }

    #[test]
    fn product_row_is_conjunction() {
        // For 0/1 factors, the product row is the AND of the factor rows —
        // exactly the itemset-containment semantics the construction needs.
        let mut rng = Rng64::seeded(3);
        let a = Matrix::random_binary(3, 8, &mut rng);
        let b = Matrix::random_binary(3, 8, &mut rng);
        let p = hadamard_product(&[&a, &b]);
        for i1 in 0..3 {
            for i2 in 0..3 {
                let r = tuple_to_row(&[i1, i2], &[3, 3]);
                for h in 0..8 {
                    let expect = (a[(i1, h)] == 1.0 && b[(i2, h)] == 1.0) as u8 as f64;
                    assert_eq!(p[(r, h)], expect);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "column counts")]
    fn mismatched_columns_panic() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        hadamard_product(&[&a, &b]);
    }
}
