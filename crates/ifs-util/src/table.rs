//! Minimal plain-text and CSV table rendering for the experiment harness.
//!
//! The `tables` binary prints every experiment both as an aligned console
//! table (for eyeballing) and as CSV (for plotting). We deliberately avoid a
//! serialization dependency: the outputs are flat rows of scalars.

use std::fmt::Write as _;

/// A rectangular table with a header row and homogeneous string cells.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the arity does not match the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table holds no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders an aligned, boxed console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:>w$} |", w = w);
            }
            line
        };
        let sep = {
            let mut line = String::from("|");
            for w in &widths {
                let _ = write!(line, "{}|", "-".repeat(w + 2));
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Formats a float with a sensible fixed precision for table cells.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 || x.abs() < 0.001 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats an integer cell.
pub fn i(x: u64) -> String {
    x.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "long_column"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        // Header + separator + 2 rows + title line.
        assert_eq!(lines.len(), 5);
        // All table lines the same width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["va,l".into(), "quo\"te".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"va,l\""));
        assert!(csv.contains("\"quo\"\"te\""));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1.5), "1.5000");
        assert!(f(12345.0).contains('e'));
        assert!(f(0.00001).contains('e'));
    }
}
