//! Shared utilities for the `itemset-sketches` workspace.
//!
//! This crate deliberately has no dependency on the rest of the workspace so
//! that every other crate can lean on it. It provides:
//!
//! * [`rng`] — deterministic, seedable random number generation. Every
//!   randomized component in the reproduction threads a seed through so that
//!   experiments are exactly replayable.
//! * [`combin`] — binomial coefficients, combination ranking/unranking in
//!   colexicographic order, and combination iteration. These power the
//!   `RELEASE-ANSWERS` sketch (which stores one slot per `k`-itemset) and the
//!   shattered-set constructions.
//! * [`bits`] — bit-level helpers used by the packed database representation.
//! * [`hash`] — a seeded, toolchain-independent hasher ([`hash::StableHasher`])
//!   for the streaming sketches, golden-value pinned like the generator
//!   (DESIGN.md §3); `std::hash::DefaultHasher` explicitly reserves the right
//!   to change between Rust releases, which would silently relocate every
//!   Count-Min/Count-Sketch bucket.
//! * [`threads`] — the thread-count knob shared by the parallel execution
//!   layer (DESIGN.md §8): clamping and the `IFS_THREADS` environment
//!   override used by CI's determinism matrix.
//! * [`tail`] — the Chernoff bounds of Lemmas 10 and 11 of the paper, exact
//!   binomial tails for small sample counts, and the sample-size calculators
//!   behind the `SUBSAMPLE` sketch (Lemma 9).
//! * [`stats`] — summary statistics, medians, and the log–log slope fits used
//!   by EXPERIMENTS.md to validate asymptotic shapes.
//! * [`table`] — a tiny plain-text/CSV table writer used by the `tables`
//!   experiment binary (we avoid serde on purpose; see DESIGN.md §6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod combin;
pub mod hash;
pub mod rng;
pub mod stats;
pub mod table;
pub mod tail;
pub mod threads;

pub use hash::StableHasher;
pub use rng::Rng64;
