//! Bit-vector helpers shared by the packed database representation.
//!
//! Bit-vectors are stored little-endian in `u64` words: bit `i` lives in word
//! `i / 64` at position `i % 64`. All helpers treat the slice as exactly
//! `words.len() * 64` bits; higher layers are responsible for keeping the
//! tail bits of the last word clear (see [`mask_tail`]).

/// Number of 64-bit words needed to hold `bits` bits.
#[inline]
pub fn words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

/// Reads bit `i`.
#[inline]
pub fn get(words: &[u64], i: usize) -> bool {
    (words[i / 64] >> (i % 64)) & 1 == 1
}

/// Sets bit `i` to `value`.
#[inline]
pub fn set(words: &mut [u64], i: usize, value: bool) {
    let mask = 1u64 << (i % 64);
    if value {
        words[i / 64] |= mask;
    } else {
        words[i / 64] &= !mask;
    }
}

/// Clears any bits at positions `>= len` in the final word.
#[inline]
pub fn mask_tail(words: &mut [u64], len: usize) {
    if !len.is_multiple_of(64) {
        if let Some(last) = words.last_mut() {
            *last &= (1u64 << (len % 64)) - 1;
        }
    }
}

/// Population count across the slice.
#[inline]
pub fn count_ones(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Returns true iff `sub` is a subset of `sup` bit-wise
/// (i.e. `sub & !sup == 0`). Slices must have equal length.
#[inline]
pub fn is_subset(sub: &[u64], sup: &[u64]) -> bool {
    debug_assert_eq!(sub.len(), sup.len());
    sub.iter().zip(sup).all(|(a, b)| a & !b == 0)
}

/// `dst &= src` element-wise.
#[inline]
pub fn and_assign(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d &= s;
    }
}

/// `dst |= src` element-wise.
#[inline]
pub fn or_assign(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// Popcount of the intersection `a & b` without allocating.
#[inline]
pub fn and_count(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x & y).count_ones() as usize).sum()
}

/// Iterates the positions of set bits in increasing order.
pub fn ones(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &w)| {
        let mut rem = w;
        std::iter::from_fn(move || {
            if rem == 0 {
                None
            } else {
                let tz = rem.trailing_zeros() as usize;
                rem &= rem - 1;
                Some(wi * 64 + tz)
            }
        })
    })
}

/// Hamming distance between two equal-length slices.
#[inline]
pub fn hamming(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones() as usize).sum()
}

/// Packs a `&[bool]` into words.
pub fn pack(bits: &[bool]) -> Vec<u64> {
    let mut words = vec![0u64; words_for(bits.len())];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            words[i / 64] |= 1 << (i % 64);
        }
    }
    words
}

/// Unpacks `len` bits into a `Vec<bool>`.
pub fn unpack(words: &[u64], len: usize) -> Vec<bool> {
    (0..len).map(|i| get(words, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut w = vec![0u64; 3];
        for i in [0usize, 1, 63, 64, 65, 127, 128, 191] {
            assert!(!get(&w, i));
            set(&mut w, i, true);
            assert!(get(&w, i));
        }
        assert_eq!(count_ones(&w), 8);
        set(&mut w, 64, false);
        assert!(!get(&w, 64));
        assert_eq!(count_ones(&w), 7);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let bits: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let words = pack(&bits);
        assert_eq!(unpack(&words, bits.len()), bits);
    }

    /// Seeded round-trips at word-boundary lengths, so a packing regression
    /// is reproducible from the printed seed alone.
    #[test]
    fn pack_unpack_roundtrip_seeded_boundaries() {
        let mut rng = crate::Rng64::seeded(0xB175);
        for len in [0usize, 1, 63, 64, 65, 127, 128, 129, 300] {
            let bits: Vec<bool> = (0..len).map(|_| rng.bernoulli(0.5)).collect();
            let words = pack(&bits);
            assert_eq!(words.len(), words_for(len), "len {len}");
            assert_eq!(unpack(&words, len), bits, "len {len}");
            // Tail bits beyond `len` must be zero so word-wise ops agree.
            let mut masked = words.clone();
            mask_tail(&mut masked, len);
            assert_eq!(masked, words, "len {len} tail must already be clear");
        }
    }

    #[test]
    fn subset_relation() {
        let a = pack(&[true, false, true, false]);
        let b = pack(&[true, true, true, false]);
        assert!(is_subset(&a, &b));
        assert!(!is_subset(&b, &a));
        assert!(is_subset(&a, &a));
    }

    #[test]
    fn ones_iterates_in_order() {
        let mut w = vec![0u64; 2];
        for i in [3usize, 64, 70, 127] {
            set(&mut w, i, true);
        }
        assert_eq!(ones(&w).collect::<Vec<_>>(), vec![3, 64, 70, 127]);
    }

    #[test]
    fn hamming_distance() {
        let a = pack(&[true, false, true, true]);
        let b = pack(&[true, true, false, true]);
        assert_eq!(hamming(&a, &b), 2);
        assert_eq!(hamming(&a, &a), 0);
    }

    #[test]
    fn and_count_matches_manual() {
        let a = pack(&(0..200).map(|i| i % 2 == 0).collect::<Vec<_>>());
        let b = pack(&(0..200).map(|i| i % 3 == 0).collect::<Vec<_>>());
        let expect = (0..200).filter(|i| i % 2 == 0 && i % 3 == 0).count();
        assert_eq!(and_count(&a, &b), expect);
    }

    #[test]
    fn mask_tail_clears_high_bits() {
        let mut w = vec![u64::MAX; 2];
        mask_tail(&mut w, 70);
        assert_eq!(w[1], (1u64 << 6) - 1);
        assert_eq!(w[0], u64::MAX);
    }

    #[test]
    fn or_and_assign() {
        let mut a = pack(&[true, false, false, true]);
        let b = pack(&[false, true, false, true]);
        or_assign(&mut a, &b);
        assert_eq!(unpack(&a, 4), vec![true, true, false, true]);
        and_assign(&mut a, &b);
        assert_eq!(unpack(&a, 4), vec![false, true, false, true]);
    }
}
