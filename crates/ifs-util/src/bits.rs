//! Bit-vector helpers shared by the packed database representation.
//!
//! Bit-vectors are stored little-endian in `u64` words: bit `i` lives in word
//! `i / 64` at position `i % 64`. All helpers treat the slice as exactly
//! `words.len() * 64` bits; higher layers are responsible for keeping the
//! tail bits of the last word clear (see [`mask_tail`]).
//!
//! # Kernel layout (DESIGN.md §12)
//!
//! The AND+popcount folds here are the innermost loops of the whole
//! workspace — every `ColumnStore` support query, every Eclat tid-set
//! intersection, every Hamming-distance decode bottoms out in them — so
//! they are written as explicitly *wide* loops over `u64x4`-style lanes
//! (`chunks_exact`, plain `[u64; 4]` arrays, independent accumulators),
//! with the counting kernels going one step further: a **Harley–Seal
//! carry-save tree** folds `CSA_BLOCK` words at a time into bit-sliced
//! counters of weight 1/2/4/8/16, so the expensive per-word popcount runs
//! on one sixteenth of the data. This matters because without a popcount
//! instruction (baseline x86-64) `count_ones` compiles to a ~15-op SWAR
//! sequence per word that the compiler already auto-vectorizes in the
//! naive fold — plain unrolling is not faster, but replacing fifteen of
//! every sixteen popcounts with five bitwise vector ops is. Sub-block
//! tails fall back to unroll-by-[`LANES`] loops, and ragged remainders to
//! scalar; nothing here is `unsafe` and nothing depends on target
//! features. The narrow reference implementations live in [`scalar`] and
//! every wide kernel is asserted bit-identical to its scalar twin (unit
//! tests here, proptests in `tests/kernel_identity.rs`, and the
//! `kernel_throughput` bench gate).
//!
//! The fused kernels ([`and3_count`], [`and_write`], [`and_count_into`])
//! exist so callers intersecting `k` tid-sets touch memory `k − 2` times
//! instead of `k` times: fusing the final AND with the popcount (or the
//! first two ANDs with each other) removes whole passes, which on a
//! memory-bound workload is worth more than any in-register trick.

/// Accumulator lanes per unrolled chunk. Four `u64`s is one cache line
/// half: wide enough to saturate the popcount units and legal to
/// auto-vectorize, small enough that the ragged tail stays cheap.
pub const LANES: usize = 4;

/// Words per Harley–Seal block: 16 vectors of [`LANES`] words. The
/// carry-save tree reduces a whole block to one `sixteens` vector plus
/// running `ones/twos/fours/eights` carries, so only **one** vector
/// popcount is paid per 64 words instead of 64 scalar popcounts.
const CSA_BLOCK: usize = 16 * LANES;

/// A `u64x4`-style vector: plain arrays of words, so every operation
/// below is safe stable Rust that LLVM lowers to SIMD where available.
type V = [u64; LANES];

#[inline(always)]
fn vload(s: &[u64]) -> V {
    [s[0], s[1], s[2], s[3]]
}

#[inline(always)]
fn vstore(s: &mut [u64], v: V) {
    s[0] = v[0];
    s[1] = v[1];
    s[2] = v[2];
    s[3] = v[3];
}

#[inline(always)]
fn vand(a: V, b: V) -> V {
    [a[0] & b[0], a[1] & b[1], a[2] & b[2], a[3] & b[3]]
}

#[inline(always)]
fn vxor(a: V, b: V) -> V {
    [a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]]
}

#[inline(always)]
fn vor(a: V, b: V) -> V {
    [a[0] | b[0], a[1] | b[1], a[2] | b[2], a[3] | b[3]]
}

#[inline(always)]
fn vpop(v: V) -> usize {
    (v[0].count_ones() + v[1].count_ones()) as usize
        + (v[2].count_ones() + v[3].count_ones()) as usize
}

/// Carry-save adder: `(high, low)` such that per bit position
/// `2·high + low = a + b + c`. Five bitwise vector ops replace three
/// popcounts — the core trick of the Harley–Seal kernels.
#[inline(always)]
fn csa(a: V, b: V, c: V) -> (V, V) {
    let u = vxor(a, b);
    (vor(vand(a, b), vand(u, c)), vxor(u, c))
}

/// Running Harley–Seal state: bit-sliced counters of weight 1/2/4/8 plus
/// the popcount of every completed `sixteens` vector. Exact by
/// construction — `finish` recombines the weighted counters into the same
/// integer a per-word popcount fold produces.
struct CsaState {
    ones: V,
    twos: V,
    fours: V,
    eights: V,
    sixteens_pop: usize,
}

impl CsaState {
    #[inline(always)]
    fn new() -> Self {
        let z = [0u64; LANES];
        Self { ones: z, twos: z, fours: z, eights: z, sixteens_pop: 0 }
    }

    #[inline(always)]
    fn finish(self) -> usize {
        16 * self.sixteens_pop
            + 8 * vpop(self.eights)
            + 4 * vpop(self.fours)
            + 2 * vpop(self.twos)
            + vpop(self.ones)
    }
}

/// Folds one 16-vector block into a [`CsaState`]; exactly one vector
/// popcount (the `sixteens` carry) per expansion. A macro, not a method
/// taking a closure or a `[V; 16]`: the leaf expression `$leaf` is spliced
/// textually at each of the sixteen loads (with `$i` bound to the vector
/// index), so the block never materializes as a 512-byte stack array and
/// there is no closure for the inliner to outline — both of which were
/// measured to cost 2–4x in the hot loop. Leaves are evaluated in pairs as
/// the tree consumes them, keeping the live vector set small.
macro_rules! csa_absorb {
    ($st:ident, $i:ident => $leaf:expr) => {{
        let $i = 0usize;
        let a = $leaf;
        let $i = 1usize;
        let b = $leaf;
        let (ta, ones) = csa($st.ones, a, b);
        let $i = 2usize;
        let a = $leaf;
        let $i = 3usize;
        let b = $leaf;
        let (tb, ones) = csa(ones, a, b);
        let (fa, twos) = csa($st.twos, ta, tb);
        let $i = 4usize;
        let a = $leaf;
        let $i = 5usize;
        let b = $leaf;
        let (ta, ones) = csa(ones, a, b);
        let $i = 6usize;
        let a = $leaf;
        let $i = 7usize;
        let b = $leaf;
        let (tb, ones) = csa(ones, a, b);
        let (fb, twos) = csa(twos, ta, tb);
        let (ea, fours) = csa($st.fours, fa, fb);
        let $i = 8usize;
        let a = $leaf;
        let $i = 9usize;
        let b = $leaf;
        let (ta, ones) = csa(ones, a, b);
        let $i = 10usize;
        let a = $leaf;
        let $i = 11usize;
        let b = $leaf;
        let (tb, ones) = csa(ones, a, b);
        let (fa, twos) = csa(twos, ta, tb);
        let $i = 12usize;
        let a = $leaf;
        let $i = 13usize;
        let b = $leaf;
        let (ta, ones) = csa(ones, a, b);
        let $i = 14usize;
        let a = $leaf;
        let $i = 15usize;
        let b = $leaf;
        let (tb, ones) = csa(ones, a, b);
        let (fb, twos) = csa(twos, ta, tb);
        let (eb, fours) = csa(fours, fa, fb);
        let (sixteens, eights) = csa($st.eights, ea, eb);
        $st.ones = ones;
        $st.twos = twos;
        $st.fours = fours;
        $st.eights = eights;
        $st.sixteens_pop += vpop(sixteens);
    }};
}

/// Number of 64-bit words needed to hold `bits` bits.
#[inline]
pub fn words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

/// Reads bit `i`.
#[inline]
pub fn get(words: &[u64], i: usize) -> bool {
    (words[i / 64] >> (i % 64)) & 1 == 1
}

/// Sets bit `i` to `value`.
#[inline]
pub fn set(words: &mut [u64], i: usize, value: bool) {
    let mask = 1u64 << (i % 64);
    if value {
        words[i / 64] |= mask;
    } else {
        words[i / 64] &= !mask;
    }
}

/// Clears any bits at positions `>= len` in the final word.
#[inline]
pub fn mask_tail(words: &mut [u64], len: usize) {
    if !len.is_multiple_of(64) {
        if let Some(last) = words.last_mut() {
            *last &= (1u64 << (len % 64)) - 1;
        }
    }
}

/// Unrolled-by-[`LANES`] popcount for sub-block tails.
#[inline]
fn count_ones_unrolled(words: &[u64]) -> usize {
    let mut chunks = words.chunks_exact(LANES);
    let mut acc = [0usize; LANES];
    for c in chunks.by_ref() {
        acc[0] += c[0].count_ones() as usize;
        acc[1] += c[1].count_ones() as usize;
        acc[2] += c[2].count_ones() as usize;
        acc[3] += c[3].count_ones() as usize;
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for w in chunks.remainder() {
        total += w.count_ones() as usize;
    }
    total
}

/// Population count across the slice (wide: Harley–Seal carry-save blocks
/// of `CSA_BLOCK` words, unrolled-by-[`LANES`] tail).
#[inline]
pub fn count_ones(words: &[u64]) -> usize {
    let mut blocks = words.chunks_exact(CSA_BLOCK);
    let mut st = CsaState::new();
    for blk in blocks.by_ref() {
        csa_absorb!(st, i => vload(&blk[LANES * i..]));
    }
    st.finish() + count_ones_unrolled(blocks.remainder())
}

/// Returns true iff `sub` is a subset of `sup` bit-wise
/// (i.e. `sub & !sup == 0`). Slices must have equal length.
///
/// The wide loop ORs the violation words of a whole chunk together before
/// testing, so the hot path is branch-free per word; short-circuiting per
/// chunk keeps the early-exit behavior callers rely on for speed.
#[inline]
pub fn is_subset(sub: &[u64], sup: &[u64]) -> bool {
    debug_assert_eq!(sub.len(), sup.len());
    let mut a = sub.chunks_exact(LANES);
    let mut b = sup.chunks_exact(LANES);
    for (x, y) in a.by_ref().zip(b.by_ref()) {
        let v = (x[0] & !y[0]) | (x[1] & !y[1]) | (x[2] & !y[2]) | (x[3] & !y[3]);
        if v != 0 {
            return false;
        }
    }
    a.remainder().iter().zip(b.remainder()).all(|(x, y)| x & !y == 0)
}

/// `dst &= src` element-wise (wide: unrolled by [`LANES`]).
#[inline]
pub fn and_assign(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (x, y) in d.by_ref().zip(s.by_ref()) {
        x[0] &= y[0];
        x[1] &= y[1];
        x[2] &= y[2];
        x[3] &= y[3];
    }
    for (x, y) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *x &= y;
    }
}

/// `dst |= src` element-wise.
#[inline]
pub fn or_assign(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// Unrolled-by-[`LANES`] intersection popcount for sub-block tails.
#[inline]
fn and_count_unrolled(a: &[u64], b: &[u64]) -> usize {
    let mut xs = a.chunks_exact(LANES);
    let mut ys = b.chunks_exact(LANES);
    let mut acc = [0usize; LANES];
    for (x, y) in xs.by_ref().zip(ys.by_ref()) {
        acc[0] += (x[0] & y[0]).count_ones() as usize;
        acc[1] += (x[1] & y[1]).count_ones() as usize;
        acc[2] += (x[2] & y[2]).count_ones() as usize;
        acc[3] += (x[3] & y[3]).count_ones() as usize;
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in xs.remainder().iter().zip(ys.remainder()) {
        total += (x & y).count_ones() as usize;
    }
    total
}

/// Popcount of the intersection `a & b` without allocating (wide:
/// Harley–Seal blocks, each word ANDed as it is loaded).
#[inline]
pub fn and_count(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut xs = a.chunks_exact(CSA_BLOCK);
    let mut ys = b.chunks_exact(CSA_BLOCK);
    let mut st = CsaState::new();
    for (x, y) in xs.by_ref().zip(ys.by_ref()) {
        csa_absorb!(st, i => vand(vload(&x[LANES * i..]), vload(&y[LANES * i..])));
    }
    st.finish() + and_count_unrolled(xs.remainder(), ys.remainder())
}

#[inline]
fn and3_count_unrolled(a: &[u64], b: &[u64], c: &[u64]) -> usize {
    let mut xs = a.chunks_exact(LANES);
    let mut ys = b.chunks_exact(LANES);
    let mut zs = c.chunks_exact(LANES);
    let mut acc = [0usize; LANES];
    for ((x, y), z) in xs.by_ref().zip(ys.by_ref()).zip(zs.by_ref()) {
        acc[0] += (x[0] & y[0] & z[0]).count_ones() as usize;
        acc[1] += (x[1] & y[1] & z[1]).count_ones() as usize;
        acc[2] += (x[2] & y[2] & z[2]).count_ones() as usize;
        acc[3] += (x[3] & y[3] & z[3]).count_ones() as usize;
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for ((x, y), z) in xs.remainder().iter().zip(ys.remainder()).zip(zs.remainder()) {
        total += (x & y & z).count_ones() as usize;
    }
    total
}

/// Fused three-operand kernel: popcount of `a & b & c` in **one** pass
/// over memory — a 3-itemset support query needs no scratch buffer and no
/// second traversal.
#[inline]
pub fn and3_count(a: &[u64], b: &[u64], c: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    let mut xs = a.chunks_exact(CSA_BLOCK);
    let mut ys = b.chunks_exact(CSA_BLOCK);
    let mut zs = c.chunks_exact(CSA_BLOCK);
    let mut st = CsaState::new();
    for ((x, y), z) in xs.by_ref().zip(ys.by_ref()).zip(zs.by_ref()) {
        csa_absorb!(st, i => vand(
            vand(vload(&x[LANES * i..]), vload(&y[LANES * i..])),
            vload(&z[LANES * i..])
        ));
    }
    st.finish() + and3_count_unrolled(xs.remainder(), ys.remainder(), zs.remainder())
}

/// Fused write kernel: `dst = a & b` element-wise in one pass — the
/// opening move of a `k ≥ 4` intersection, replacing the historical
/// copy-then-AND (two passes) with one.
#[inline]
pub fn and_write(dst: &mut [u64], a: &[u64], b: &[u64]) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    let mut d = dst.chunks_exact_mut(LANES);
    let mut xs = a.chunks_exact(LANES);
    let mut ys = b.chunks_exact(LANES);
    for ((o, x), y) in d.by_ref().zip(xs.by_ref()).zip(ys.by_ref()) {
        o[0] = x[0] & y[0];
        o[1] = x[1] & y[1];
        o[2] = x[2] & y[2];
        o[3] = x[3] & y[3];
    }
    for ((o, x), y) in d.into_remainder().iter_mut().zip(xs.remainder()).zip(ys.remainder()) {
        *o = x & y;
    }
}

#[inline]
fn and_count_into_unrolled(dst: &mut [u64], src: &[u64]) -> usize {
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    let mut acc = [0usize; LANES];
    for (x, y) in d.by_ref().zip(s.by_ref()) {
        x[0] &= y[0];
        x[1] &= y[1];
        x[2] &= y[2];
        x[3] &= y[3];
        acc[0] += x[0].count_ones() as usize;
        acc[1] += x[1].count_ones() as usize;
        acc[2] += x[2].count_ones() as usize;
        acc[3] += x[3].count_ones() as usize;
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *x &= y;
        total += x.count_ones() as usize;
    }
    total
}

/// Fused update kernel: `dst &= src` while counting — returns the
/// popcount of the updated `dst` in the same pass. An Eclat-style
/// intersect-then-support step pays one traversal instead of two.
#[inline]
pub fn and_count_into(dst: &mut [u64], src: &[u64]) -> usize {
    debug_assert_eq!(dst.len(), src.len());
    let mut d = dst.chunks_exact_mut(CSA_BLOCK);
    let mut s = src.chunks_exact(CSA_BLOCK);
    let mut st = CsaState::new();
    for (x, y) in d.by_ref().zip(s.by_ref()) {
        csa_absorb!(st, i => {
            let v = vand(vload(&x[LANES * i..]), vload(&y[LANES * i..]));
            vstore(&mut x[LANES * i..], v);
            v
        });
    }
    st.finish() + and_count_into_unrolled(d.into_remainder(), s.remainder())
}

/// Iterates the positions of set bits in increasing order.
pub fn ones(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &w)| {
        let mut rem = w;
        std::iter::from_fn(move || {
            if rem == 0 {
                None
            } else {
                let tz = rem.trailing_zeros() as usize;
                rem &= rem - 1;
                Some(wi * 64 + tz)
            }
        })
    })
}

#[inline]
fn hamming_unrolled(a: &[u64], b: &[u64]) -> usize {
    let mut xs = a.chunks_exact(LANES);
    let mut ys = b.chunks_exact(LANES);
    let mut acc = [0usize; LANES];
    for (x, y) in xs.by_ref().zip(ys.by_ref()) {
        acc[0] += (x[0] ^ y[0]).count_ones() as usize;
        acc[1] += (x[1] ^ y[1]).count_ones() as usize;
        acc[2] += (x[2] ^ y[2]).count_ones() as usize;
        acc[3] += (x[3] ^ y[3]).count_ones() as usize;
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in xs.remainder().iter().zip(ys.remainder()) {
        total += (x ^ y).count_ones() as usize;
    }
    total
}

/// Hamming distance between two equal-length slices (wide: Harley–Seal
/// blocks over the XOR of the operands).
#[inline]
pub fn hamming(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut xs = a.chunks_exact(CSA_BLOCK);
    let mut ys = b.chunks_exact(CSA_BLOCK);
    let mut st = CsaState::new();
    for (x, y) in xs.by_ref().zip(ys.by_ref()) {
        csa_absorb!(st, i => vxor(vload(&x[LANES * i..]), vload(&y[LANES * i..])));
    }
    st.finish() + hamming_unrolled(xs.remainder(), ys.remainder())
}

/// Packs a `&[bool]` into words.
pub fn pack(bits: &[bool]) -> Vec<u64> {
    let mut words = vec![0u64; words_for(bits.len())];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            words[i / 64] |= 1 << (i % 64);
        }
    }
    words
}

/// Unpacks `len` bits into a `Vec<bool>`.
pub fn unpack(words: &[u64], len: usize) -> Vec<bool> {
    (0..len).map(|i| get(words, i)).collect()
}

/// Narrow single-accumulator reference kernels — the semantics the wide
/// loops above must reproduce **bit-identically** on every input.
///
/// These are the seed implementations, kept verbatim: a plain fold per
/// word, no unrolling, no fusion. They exist only so the equivalence can
/// be *asserted* rather than claimed — the bit-identity proptests
/// (`tests/kernel_identity.rs`) and the `kernel_throughput` bench gate
/// compare every wide kernel against its twin here, on ragged tails and
/// empty slices included. Compiled for this crate's unit tests and for
/// downstream test/bench crates via the `scalar-reference` feature; the
/// production build never links them.
#[cfg(any(test, feature = "scalar-reference"))]
pub mod scalar {
    /// Reference for [`super::count_ones`].
    pub fn count_ones(words: &[u64]) -> usize {
        words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Reference for [`super::is_subset`].
    pub fn is_subset(sub: &[u64], sup: &[u64]) -> bool {
        sub.iter().zip(sup).all(|(a, b)| a & !b == 0)
    }

    /// Reference for [`super::and_assign`].
    pub fn and_assign(dst: &mut [u64], src: &[u64]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d &= s;
        }
    }

    /// Reference for [`super::and_count`].
    pub fn and_count(a: &[u64], b: &[u64]) -> usize {
        a.iter().zip(b).map(|(x, y)| (x & y).count_ones() as usize).sum()
    }

    /// Reference for [`super::and3_count`]: the unfused two-pass
    /// composition (AND into a temporary, then popcount the final AND).
    pub fn and3_count(a: &[u64], b: &[u64], c: &[u64]) -> usize {
        let mut tmp = a.to_vec();
        and_assign(&mut tmp, b);
        and_count(&tmp, c)
    }

    /// Reference for [`super::and_write`].
    pub fn and_write(dst: &mut [u64], a: &[u64], b: &[u64]) {
        for ((o, x), y) in dst.iter_mut().zip(a).zip(b) {
            *o = x & y;
        }
    }

    /// Reference for [`super::and_count_into`]: the unfused AND-then-count.
    pub fn and_count_into(dst: &mut [u64], src: &[u64]) -> usize {
        and_assign(dst, src);
        count_ones(dst)
    }

    /// Reference for [`super::hamming`].
    pub fn hamming(a: &[u64], b: &[u64]) -> usize {
        a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut w = vec![0u64; 3];
        for i in [0usize, 1, 63, 64, 65, 127, 128, 191] {
            assert!(!get(&w, i));
            set(&mut w, i, true);
            assert!(get(&w, i));
        }
        assert_eq!(count_ones(&w), 8);
        set(&mut w, 64, false);
        assert!(!get(&w, 64));
        assert_eq!(count_ones(&w), 7);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let bits: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let words = pack(&bits);
        assert_eq!(unpack(&words, bits.len()), bits);
    }

    /// Seeded round-trips at word-boundary lengths, so a packing regression
    /// is reproducible from the printed seed alone.
    #[test]
    fn pack_unpack_roundtrip_seeded_boundaries() {
        let mut rng = crate::Rng64::seeded(0xB175);
        for len in [0usize, 1, 63, 64, 65, 127, 128, 129, 300] {
            let bits: Vec<bool> = (0..len).map(|_| rng.bernoulli(0.5)).collect();
            let words = pack(&bits);
            assert_eq!(words.len(), words_for(len), "len {len}");
            assert_eq!(unpack(&words, len), bits, "len {len}");
            // Tail bits beyond `len` must be zero so word-wise ops agree.
            let mut masked = words.clone();
            mask_tail(&mut masked, len);
            assert_eq!(masked, words, "len {len} tail must already be clear");
        }
    }

    #[test]
    fn subset_relation() {
        let a = pack(&[true, false, true, false]);
        let b = pack(&[true, true, true, false]);
        assert!(is_subset(&a, &b));
        assert!(!is_subset(&b, &a));
        assert!(is_subset(&a, &a));
    }

    #[test]
    fn ones_iterates_in_order() {
        let mut w = vec![0u64; 2];
        for i in [3usize, 64, 70, 127] {
            set(&mut w, i, true);
        }
        assert_eq!(ones(&w).collect::<Vec<_>>(), vec![3, 64, 70, 127]);
    }

    #[test]
    fn hamming_distance() {
        let a = pack(&[true, false, true, true]);
        let b = pack(&[true, true, false, true]);
        assert_eq!(hamming(&a, &b), 2);
        assert_eq!(hamming(&a, &a), 0);
    }

    #[test]
    fn and_count_matches_manual() {
        let a = pack(&(0..200).map(|i| i % 2 == 0).collect::<Vec<_>>());
        let b = pack(&(0..200).map(|i| i % 3 == 0).collect::<Vec<_>>());
        let expect = (0..200).filter(|i| i % 2 == 0 && i % 3 == 0).count();
        assert_eq!(and_count(&a, &b), expect);
    }

    #[test]
    fn and3_count_matches_manual() {
        let a = pack(&(0..300).map(|i| i % 2 == 0).collect::<Vec<_>>());
        let b = pack(&(0..300).map(|i| i % 3 == 0).collect::<Vec<_>>());
        let c = pack(&(0..300).map(|i| i % 5 == 0).collect::<Vec<_>>());
        let expect = (0..300).filter(|i| i % 30 == 0).count();
        assert_eq!(and3_count(&a, &b, &c), expect);
    }

    #[test]
    fn fused_kernels_match_their_compositions() {
        let mut rng = crate::Rng64::seeded(0xFACE);
        for len in [0usize, 1, 3, 4, 5, 7, 8, 9, 16, 31, 100] {
            let a: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
            let b: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
            let c: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
            assert_eq!(and3_count(&a, &b, &c), scalar::and3_count(&a, &b, &c), "len {len}");
            let mut dst = vec![0u64; len];
            and_write(&mut dst, &a, &b);
            let mut want = vec![0u64; len];
            scalar::and_write(&mut want, &a, &b);
            assert_eq!(dst, want, "len {len}");
            let mut wide = a.clone();
            let mut narrow = a.clone();
            let n = and_count_into(&mut wide, &b);
            let m = scalar::and_count_into(&mut narrow, &b);
            assert_eq!((wide, n), (narrow, m), "len {len}");
        }
    }

    /// Every wide kernel must agree with its scalar reference bit for bit,
    /// across chunk boundaries (lengths around multiples of [`LANES`]) and
    /// the empty slice. The proptest version with random lengths lives in
    /// `tests/kernel_identity.rs`; this is the fast deterministic sweep.
    #[test]
    fn wide_kernels_match_scalar_reference() {
        let mut rng = crate::Rng64::seeded(0x31DE);
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 11, 12, 13, 15, 16, 17, 64, 65, 129] {
            let a: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
            let b: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
            assert_eq!(count_ones(&a), scalar::count_ones(&a), "count_ones len {len}");
            assert_eq!(and_count(&a, &b), scalar::and_count(&a, &b), "and_count len {len}");
            assert_eq!(hamming(&a, &b), scalar::hamming(&a, &b), "hamming len {len}");
            assert_eq!(is_subset(&a, &b), scalar::is_subset(&a, &b), "is_subset len {len}");
            let mut x = a.clone();
            let mut y = a.clone();
            and_assign(&mut x, &b);
            scalar::and_assign(&mut y, &b);
            assert_eq!(x, y, "and_assign len {len}");
            // is_subset must also agree on true cases, not just random ones.
            assert!(is_subset(&x, &a), "a&b ⊆ a, len {len}");
            assert!(scalar::is_subset(&x, &b), "a&b ⊆ b, len {len}");
        }
    }

    #[test]
    fn mask_tail_clears_high_bits() {
        let mut w = vec![u64::MAX; 2];
        mask_tail(&mut w, 70);
        assert_eq!(w[1], (1u64 << 6) - 1);
        assert_eq!(w[0], u64::MAX);
    }

    #[test]
    fn or_and_assign() {
        let mut a = pack(&[true, false, false, true]);
        let b = pack(&[false, true, false, true]);
        or_assign(&mut a, &b);
        assert_eq!(unpack(&a, 4), vec![true, true, false, true]);
        and_assign(&mut a, &b);
        assert_eq!(unpack(&a, 4), vec![false, true, false, true]);
    }
}
