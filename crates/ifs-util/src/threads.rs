//! Thread-count plumbing for the parallel execution layer (DESIGN.md §8).
//!
//! Every parallel code path in the workspace takes an explicit thread-count
//! knob defaulting to 1, and its results are required to be bit-identical
//! to the serial path at every thread count. This module holds the helpers
//! that keep that knob consistent across crates: clamping, the
//! `IFS_THREADS` environment override the integration suites (and CI's
//! determinism matrix) use to re-run every test under a different worker
//! count, and the index work queue ([`parallel_map_indexed`]) behind every
//! "race for work, assemble results in order" site (shard builds, eclat's
//! per-prefix mining).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Hard cap on worker threads: far above any sensible setting, low enough
/// that a typo (`IFS_THREADS=1000000`) cannot exhaust the process.
pub const MAX_THREADS: usize = 256;

/// Normalizes a requested thread count: `0` means "one thread" (the serial
/// path), and requests above [`MAX_THREADS`] are clamped down.
#[inline]
pub fn clamp_threads(threads: usize) -> usize {
    threads.clamp(1, MAX_THREADS)
}

/// A worker-count environment value that did not parse as an integer.
///
/// Carries the variable name and the offending value so a boundary that
/// refuses to start (a long-running server, say) can name exactly what
/// was malformed; the [`Display`](std::fmt::Display) text is the same
/// sentence [`parse_threads`] panics with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadsParseError {
    /// The environment variable that carried the value.
    pub var: String,
    /// The malformed value, verbatim.
    pub value: String,
}

impl std::fmt::Display for ThreadsParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} must be an integer in 0..={MAX_THREADS} (0 means serial), \
             got {:?} — unset it to default to 1 thread",
            self.var, self.value
        )
    }
}

impl std::error::Error for ThreadsParseError {}

/// [`try_parse_threads`] for an arbitrarily named worker-count variable:
/// the same integer-parse-and-clamp, with the refusal naming `var`
/// instead of `IFS_THREADS`. The serving tier's `IFS_SERVE_WORKERS` knob
/// parses through here so every worker-count variable refuses with the
/// same sentence shape.
pub fn try_parse_threads_var(var: &str, value: &str) -> Result<usize, ThreadsParseError> {
    match value.trim().parse::<usize>() {
        Ok(n) => Ok(clamp_threads(n)),
        Err(_) => Err(ThreadsParseError { var: var.to_owned(), value: value.to_owned() }),
    }
}

/// Parses an `IFS_THREADS` value, clamping it like [`clamp_threads`] —
/// the non-panicking form for process boundaries.
///
/// CLI and bench tools want the [`parse_threads`] panic (fail loud, right
/// now, in the operator's face); a long-running server must instead refuse
/// to *start* with a typed error and keep its ability to report it over
/// its own channels. Both behaviors share this parse.
pub fn try_parse_threads(value: &str) -> Result<usize, ThreadsParseError> {
    try_parse_threads_var("IFS_THREADS", value)
}

/// Reads and parses an arbitrarily named worker-count environment
/// variable: `Ok(None)` when unset (the caller picks its own default),
/// `Ok(Some(clamped))` when well-formed, and a typed
/// [`ThreadsParseError`] naming the variable when set but malformed.
pub fn try_env_threads_var(var: &str) -> Result<Option<usize>, ThreadsParseError> {
    match std::env::var(var) {
        Ok(v) => try_parse_threads_var(var, &v).map(Some),
        Err(_) => Ok(None),
    }
}

/// Parses an `IFS_THREADS` value, clamping it like [`clamp_threads`].
///
/// A value that does not parse **panics**, and the message names the
/// offending value and the accepted range: silently falling back to serial
/// would skip exactly the configuration the knob exists to test, and a bare
/// parse error would leave the operator hunting for which variable was
/// malformed. Servers use [`try_parse_threads`] instead.
pub fn parse_threads(value: &str) -> usize {
    match try_parse_threads(value) {
        Ok(n) => n,
        Err(e) => panic!("{e}"),
    }
}

/// The `IFS_THREADS` environment override as a `Result`: `Ok(1)` when
/// unset, `Ok(clamped)` when well-formed, and a typed
/// [`ThreadsParseError`] when set but malformed — the startup check for
/// processes that must not die on a bad env var (see [`try_parse_threads`]).
pub fn try_env_threads() -> Result<usize, ThreadsParseError> {
    Ok(try_env_threads_var("IFS_THREADS")?.unwrap_or(1))
}

/// The thread count requested via the `IFS_THREADS` environment variable,
/// defaulting to 1 (serial) when unset.
///
/// The integration suites build their sketches and miners with this value,
/// so CI can run the same tests under `IFS_THREADS=1` and `IFS_THREADS=4`
/// and enforce the determinism contract on every push. A value that is set
/// but malformed panics via [`parse_threads`].
pub fn env_threads() -> usize {
    match std::env::var("IFS_THREADS") {
        Ok(v) => parse_threads(&v),
        Err(_) => 1,
    }
}

/// Maps `f` over `0..n` with up to `threads` workers, returning results in
/// index order.
///
/// Workers drain an atomic index queue (good load balance when per-index
/// cost varies, as with mining subtrees) and each result lands in the slot
/// of its index, so the assembled vector is independent of scheduling —
/// identical to the serial `(0..n).map(f)` at every thread count.
/// `threads <= 1` (or `n <= 1`) runs exactly that serial map, with no
/// queue, locks, or spawned threads.
pub fn parallel_map_indexed<R: Send>(
    n: usize,
    threads: usize,
    f: impl Fn(usize) -> R + Sync,
) -> Vec<R> {
    let threads = clamp_threads(threads).min(n.max(1));
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *slots[i].lock().expect("result slot poisoned") = Some(f(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("result slot poisoned").expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_means_serial() {
        assert_eq!(clamp_threads(0), 1);
    }

    #[test]
    fn sane_values_pass_through() {
        assert_eq!(clamp_threads(1), 1);
        assert_eq!(clamp_threads(4), 4);
        assert_eq!(clamp_threads(8), 8);
    }

    #[test]
    fn absurd_values_are_capped() {
        assert_eq!(clamp_threads(usize::MAX), MAX_THREADS);
    }

    #[test]
    fn env_default_is_one() {
        // The test harness does not set IFS_THREADS for unit tests; if a
        // developer exports it the value must still be clamped and sane.
        let t = env_threads();
        assert!((1..=MAX_THREADS).contains(&t));
    }

    #[test]
    fn parse_accepts_integers_and_clamps() {
        assert_eq!(parse_threads("0"), 1);
        assert_eq!(parse_threads(" 4 "), 4);
        assert_eq!(parse_threads("999999"), MAX_THREADS);
    }

    /// The panic message must name the offending value and the accepted
    /// range, so a malformed `IFS_THREADS` in CI is diagnosable from the
    /// failure output alone.
    #[test]
    #[should_panic(expected = "in 0..=256 (0 means serial), got \"soup\"")]
    fn parse_panic_names_value_and_range() {
        parse_threads("soup");
    }

    #[test]
    #[should_panic(expected = "got \"-3\"")]
    fn parse_rejects_negative_values() {
        parse_threads("-3");
    }

    #[test]
    fn try_parse_is_the_non_panicking_form() {
        assert_eq!(try_parse_threads("0"), Ok(1));
        assert_eq!(try_parse_threads(" 4 "), Ok(4));
        assert_eq!(try_parse_threads("999999"), Ok(MAX_THREADS));
        let err = try_parse_threads("soup").expect_err("malformed value must refuse");
        assert_eq!(err.value, "soup");
        // The refusal text matches the panic text, value and range included.
        let msg = err.to_string();
        assert!(msg.contains("0..=256"), "{msg}");
        assert!(msg.contains("\"soup\""), "{msg}");
    }

    /// The named-variable form refuses with the caller's variable name,
    /// so a malformed `IFS_SERVE_WORKERS` is diagnosable without grepping
    /// for which knob produced the sentence.
    #[test]
    fn named_var_parse_names_the_variable() {
        assert_eq!(try_parse_threads_var("IFS_SERVE_WORKERS", "8"), Ok(8));
        assert_eq!(try_parse_threads_var("IFS_SERVE_WORKERS", "0"), Ok(1));
        let err = try_parse_threads_var("IFS_SERVE_WORKERS", "many").expect_err("malformed");
        assert_eq!(err.var, "IFS_SERVE_WORKERS");
        assert_eq!(err.value, "many");
        let msg = err.to_string();
        assert!(msg.contains("IFS_SERVE_WORKERS"), "{msg}");
        assert!(msg.contains("\"many\""), "{msg}");
    }

    #[test]
    fn named_env_var_is_none_when_unset() {
        assert_eq!(
            try_env_threads_var("IFS_THREADS_SURELY_UNSET_IN_ANY_HARNESS"),
            Ok(None),
            "an unset variable must let the caller pick its own default"
        );
    }

    #[test]
    fn env_try_parse_defaults_to_serial_when_unset() {
        // The harness does not set IFS_THREADS for unit tests; a developer
        // override must still land in the clamped range.
        let t = try_env_threads().expect("unset or well-formed in the test env");
        assert!((1..=MAX_THREADS).contains(&t));
    }

    #[test]
    fn parallel_map_matches_serial_map() {
        let f = |i: usize| i * i + 1;
        let serial: Vec<usize> = (0..37).map(f).collect();
        for threads in [0usize, 1, 2, 3, 8, 64] {
            assert_eq!(parallel_map_indexed(37, threads, f), serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_edge_sizes() {
        for n in [0usize, 1, 2] {
            let serial: Vec<usize> = (0..n).collect();
            assert_eq!(parallel_map_indexed(n, 4, |i| i), serial, "n={n}");
        }
    }

    #[test]
    fn parallel_map_balances_uneven_work() {
        // Index 0 is much slower than the rest; the queue must still fill
        // every slot with the right value.
        let out = parallel_map_indexed(16, 4, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i * 3
        });
        assert_eq!(out, (0..16).map(|i| i * 3).collect::<Vec<_>>());
    }
}
