//! Seeded, release-stable hashing for the streaming sketches.
//!
//! `std::hash::DefaultHasher` is SipHash with an explicitly *unstable*
//! algorithm: the standard library documents that it may change between
//! Rust releases. A Count-Min or Count-Sketch summary hashed through it
//! would place items in different buckets after a toolchain upgrade, so
//! sketch contents — and every golden value recorded in EXPERIMENTS.md —
//! would silently change. This module provides [`StableHasher`], an
//! in-tree seeded mixer built from the same splitmix64 constants as
//! [`crate::Rng64`]'s seeding path (Blackman & Vigna), whose output is
//! pinned by golden-value tests exactly like the generator's stream
//! (DESIGN.md §3).
//!
//! The hasher folds input 64 bits at a time through a splitmix64 step and
//! finalizes with one more step over the accumulated length, so streams
//! that differ only in chunking or in trailing zero bytes still hash
//! differently. Every fixed-width `write_*` method is overridden to feed
//! little-endian bytes (and `usize` is widened to `u64`), so the digest is
//! identical across platforms, word sizes, and endiannesses.

use std::hash::Hasher;

/// One splitmix64 step (Blackman & Vigna): advance by the golden-ratio
/// increment, then scramble. This is the single in-tree copy of the mixer;
/// [`crate::Rng64::seeded`] expands seeds through it and [`StableHasher`]
/// folds input through it, so the golden-value tests of both pin the same
/// constants.
#[inline]
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded 64-bit hasher with a toolchain-independent digest.
///
/// Implements [`std::hash::Hasher`], so any `T: Hash` can be hashed; the
/// streaming sketches derive one seed per row and hash items through this
/// instead of `DefaultHasher`.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
    len: u64,
}

impl StableHasher {
    /// Creates a hasher whose digest stream is keyed by `seed`.
    pub fn seeded(seed: u64) -> Self {
        Self { state: splitmix64(seed), len: 0 }
    }

    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = splitmix64(self.state ^ word);
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        // Mix the total byte count so inputs that are prefixes of each
        // other (or differ only in zero padding) diverge.
        splitmix64(self.state ^ self.len)
    }

    fn write(&mut self, bytes: &[u8]) {
        self.len = self.len.wrapping_add(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.fold(u64::from_le_bytes(chunk.try_into().expect("chunked 8 bytes")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.fold(u64::from_le_bytes(tail));
        }
    }

    // Fixed-width writes feed little-endian bytes explicitly: the default
    // implementations use native endianness, which would make digests
    // differ between little- and big-endian platforms.
    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }

    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }

    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }

    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }

    fn write_usize(&mut self, i: usize) {
        // Widen to u64 so 32- and 64-bit targets agree.
        self.write_u64(i as u64);
    }

    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }

    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }

    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }

    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }

    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }

    fn write_isize(&mut self, i: isize) {
        self.write_u64(i as u64);
    }
}

/// Convenience: the stable digest of one `Hash` value under `seed`.
pub fn stable_hash<T: std::hash::Hash + ?Sized>(seed: u64, value: &T) -> u64 {
    let mut h = StableHasher::seeded(seed);
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden values pin the digest across platforms and toolchains — the
    /// whole reason this hasher exists. If these change, every streaming
    /// sketch's bucket layout changes with them.
    #[test]
    fn golden_digests() {
        assert_eq!(stable_hash(0, &0u64), 0xBD44_9C3F_7EB5_0D12);
        assert_eq!(stable_hash(0, &1u64), 0x00EF_FADF_18A7_1004);
        assert_eq!(stable_hash(42, &0xDEAD_BEEFu32), 0xE60D_72F4_A5A3_AFC7);
        assert_eq!(stable_hash(7, &"itemset"), 0x0724_CD05_A954_BA89);
        assert_eq!(stable_hash(7, &[1u32, 2, 3][..]), 0x4100_2352_BE7F_0B7D);
    }

    #[test]
    fn seed_changes_digest() {
        let a = stable_hash(1, &123u64);
        let b = stable_hash(2, &123u64);
        assert_ne!(a, b);
    }

    #[test]
    fn length_breaks_zero_padding_collisions() {
        // One zero byte vs two zero bytes vs a zero u64: all distinct.
        let mut h1 = StableHasher::seeded(9);
        h1.write(&[0u8]);
        let mut h2 = StableHasher::seeded(9);
        h2.write(&[0u8, 0u8]);
        let mut h3 = StableHasher::seeded(9);
        h3.write_u64(0);
        assert_ne!(h1.finish(), h2.finish());
        assert_ne!(h2.finish(), h3.finish());
        assert_ne!(h1.finish(), h3.finish());
    }

    #[test]
    fn chunking_does_not_matter_within_a_write_width() {
        // The same logical u64 fed as one write_u64 or as its le bytes.
        let mut a = StableHasher::seeded(3);
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = StableHasher::seeded(3);
        b.write(&0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn usize_matches_u64() {
        let mut a = StableHasher::seeded(5);
        a.write_usize(12345);
        let mut b = StableHasher::seeded(5);
        b.write_u64(12345);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn digests_are_well_distributed() {
        // Cheap avalanche check: bucket 4096 consecutive keys into 64
        // buckets; no bucket should be empty or grossly overloaded.
        let mut counts = [0usize; 64];
        for i in 0..4096u64 {
            counts[(stable_hash(11, &i) % 64) as usize] += 1;
        }
        for (b, &c) in counts.iter().enumerate() {
            assert!(c > 32 && c < 128, "bucket {b} has {c} of 4096 keys");
        }
    }
}
