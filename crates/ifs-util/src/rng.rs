//! Deterministic random number generation.
//!
//! All randomized algorithms in this workspace take a seed (or an `&mut`
//! generator) explicitly. This module implements its own generator (no
//! external crates, by the workspace's zero-dependency rule) so that every
//! experiment in EXPERIMENTS.md states its seed and can be replayed
//! bit-for-bit on any platform and toolchain.

/// A seedable pseudo-random generator with the handful of draws the
/// workspace needs.
///
/// Internally this is xoshiro256** seeded through splitmix64 (Blackman &
/// Vigna). Cryptographic strength is irrelevant here but determinism and
/// statistical quality are, and xoshiro256** passes BigCrush.
#[derive(Clone, Debug)]
pub struct Rng64 {
    state: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        // Expand the seed with splitmix64 (the crate's one shared copy, in
        // `hash`), as the xoshiro authors recommend, so that nearby seeds
        // give unrelated streams.
        let mut sm = seed;
        let mut next = || {
            let out = crate::hash::splitmix64(sm);
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            out
        };
        Self { state: [next(), next(), next(), next()] }
    }

    /// Derives an independent child generator. Used to give each repetition
    /// of an experiment its own stream without correlation.
    pub fn fork(&mut self) -> Self {
        Self::seeded(self.next_u64())
    }

    /// Uniform `u64` (one xoshiro256** step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng64::below called with n == 0");
        // Lemire's multiply-shift with rejection: unbiased for every n.
        let n = n as u64;
        let mut m = u128::from(self.next_u64()) * u128::from(n);
        if (m as u64) < n {
            let threshold = n.wrapping_neg() % n;
            while (m as u64) < threshold {
                m = u128::from(self.next_u64()) * u128::from(n);
            }
        }
        (m >> 64) as usize
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // unit() < 1.0 always holds, so p = 1.0 always succeeds and
        // p = 0.0 never does.
        self.unit() < p
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard normal draw via Box–Muller (sufficient for the spectral
    /// experiments; we do not need ziggurat-level throughput).
    pub fn gaussian(&mut self) -> f64 {
        // Draw u in (0,1] to avoid ln(0).
        let u = 1.0 - self.unit();
        let v = self.unit();
        (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `m` distinct indices from `[0, n)` in increasing order.
    ///
    /// Uses Floyd's algorithm: O(m) expected draws, no O(n) allocation.
    pub fn distinct_sorted(&mut self, n: usize, m: usize) -> Vec<usize> {
        assert!(m <= n, "cannot sample {m} distinct values from [0,{n})");
        let mut chosen = std::collections::BTreeSet::new();
        for j in (n - m)..n {
            let t = self.below(j + 1);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }

    /// A random bit-vector of length `len`, packed little-endian into `u64`s.
    pub fn bit_words(&mut self, len: usize) -> Vec<u64> {
        let words = len.div_ceil(64);
        let mut out = Vec::with_capacity(words);
        for w in 0..words {
            let mut word = self.next_u64();
            if w == words - 1 && !len.is_multiple_of(64) {
                word &= (1u64 << (len % 64)) - 1;
            }
            out.push(word);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = Rng64::seeded(42);
        let mut b = Rng64::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Golden values pin the exact output stream across platforms and
    /// toolchains: EXPERIMENTS.md quotes seeds, so a silent generator change
    /// would invalidate every recorded number.
    #[test]
    fn seeded_golden_values() {
        let mut r = Rng64::seeded(42);
        assert_eq!(r.next_u64(), 0x1578_0B2E_0C2E_C716);
        assert_eq!(r.next_u64(), 0x6104_D986_6D11_3A7E);
        assert_eq!(r.next_u64(), 0xAE17_5332_39E4_99A1);
        assert_eq!(r.next_u64(), 0xECB8_AD47_03B3_60A1);
        let mut z = Rng64::seeded(0);
        assert_eq!(z.next_u64(), 0x99EC_5F36_CB75_F2B4);
        assert_eq!(z.next_u64(), 0xBF6E_1F78_4956_452A);
    }

    #[test]
    fn fork_streams_are_decorrelated() {
        let mut parent = Rng64::seeded(23);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::seeded(1);
        let mut b = Rng64::seeded(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn below_is_in_range() {
        let mut r = Rng64::seeded(7);
        for n in 1..50 {
            for _ in 0..20 {
                assert!(r.below(n) < n);
            }
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = Rng64::seeded(3);
        assert!(!(0..100).any(|_| r.bernoulli(0.0)));
        assert!((0..100).all(|_| r.bernoulli(1.0)));
    }

    #[test]
    fn bernoulli_mean_close() {
        let mut r = Rng64::seeded(11);
        let hits = (0..20_000).filter(|_| r.bernoulli(0.3)).count();
        let mean = hits as f64 / 20_000.0;
        assert!((mean - 0.3).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn distinct_sorted_properties() {
        let mut r = Rng64::seeded(5);
        for _ in 0..50 {
            let v = r.distinct_sorted(100, 10);
            assert_eq!(v.len(), 10);
            assert!(v.windows(2).all(|w| w[0] < w[1]));
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn distinct_sorted_full_range() {
        let mut r = Rng64::seeded(5);
        let v = r.distinct_sorted(8, 8);
        assert_eq!(v, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn bit_words_masks_tail() {
        let mut r = Rng64::seeded(9);
        for len in [1usize, 63, 64, 65, 130] {
            let w = r.bit_words(len);
            assert_eq!(w.len(), len.div_ceil(64));
            if len % 64 != 0 {
                let tail = w.last().unwrap();
                assert_eq!(tail >> (len % 64), 0, "tail bits must be clear");
            }
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng64::seeded(13);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng64::seeded(17);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..64).collect::<Vec<_>>());
    }
}
