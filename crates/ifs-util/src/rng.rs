//! Deterministic random number generation.
//!
//! All randomized algorithms in this workspace take a seed (or an `&mut`
//! generator) explicitly. This module wraps the `rand` crate behind a small
//! façade so that (a) the rest of the workspace is insulated from `rand` API
//! churn and (b) every experiment in EXPERIMENTS.md states its seed and can be
//! replayed bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seedable pseudo-random generator with the handful of draws the
/// workspace needs.
///
/// Internally this is `rand`'s `StdRng` (a cryptographically strong PRNG);
/// strength is irrelevant here but determinism and statistical quality are.
#[derive(Clone, Debug)]
pub struct Rng64 {
    inner: StdRng,
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        Self { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derives an independent child generator. Used to give each repetition
    /// of an experiment its own stream without correlation.
    pub fn fork(&mut self) -> Self {
        Self::seeded(self.next_u64())
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng64::below called with n == 0");
        self.inner.random_range(0..n)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.random_bool(p)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random()
    }

    /// Standard normal draw via Box–Muller (sufficient for the spectral
    /// experiments; we do not need ziggurat-level throughput).
    pub fn gaussian(&mut self) -> f64 {
        // Draw u in (0,1] to avoid ln(0).
        let u = 1.0 - self.unit();
        let v = self.unit();
        (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `m` distinct indices from `[0, n)` in increasing order.
    ///
    /// Uses Floyd's algorithm: O(m) expected draws, no O(n) allocation.
    pub fn distinct_sorted(&mut self, n: usize, m: usize) -> Vec<usize> {
        assert!(m <= n, "cannot sample {m} distinct values from [0,{n})");
        let mut chosen = std::collections::BTreeSet::new();
        for j in (n - m)..n {
            let t = self.below(j + 1);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }

    /// A random bit-vector of length `len`, packed little-endian into `u64`s.
    pub fn bit_words(&mut self, len: usize) -> Vec<u64> {
        let words = len.div_ceil(64);
        let mut out = Vec::with_capacity(words);
        for w in 0..words {
            let mut word = self.next_u64();
            if w == words - 1 && len % 64 != 0 {
                word &= (1u64 << (len % 64)) - 1;
            }
            out.push(word);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = Rng64::seeded(42);
        let mut b = Rng64::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::seeded(1);
        let mut b = Rng64::seeded(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn below_is_in_range() {
        let mut r = Rng64::seeded(7);
        for n in 1..50 {
            for _ in 0..20 {
                assert!(r.below(n) < n);
            }
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = Rng64::seeded(3);
        assert!(!(0..100).any(|_| r.bernoulli(0.0)));
        assert!((0..100).all(|_| r.bernoulli(1.0)));
    }

    #[test]
    fn bernoulli_mean_close() {
        let mut r = Rng64::seeded(11);
        let hits = (0..20_000).filter(|_| r.bernoulli(0.3)).count();
        let mean = hits as f64 / 20_000.0;
        assert!((mean - 0.3).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn distinct_sorted_properties() {
        let mut r = Rng64::seeded(5);
        for _ in 0..50 {
            let v = r.distinct_sorted(100, 10);
            assert_eq!(v.len(), 10);
            assert!(v.windows(2).all(|w| w[0] < w[1]));
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn distinct_sorted_full_range() {
        let mut r = Rng64::seeded(5);
        let v = r.distinct_sorted(8, 8);
        assert_eq!(v, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn bit_words_masks_tail() {
        let mut r = Rng64::seeded(9);
        for len in [1usize, 63, 64, 65, 130] {
            let w = r.bit_words(len);
            assert_eq!(w.len(), len.div_ceil(64));
            if len % 64 != 0 {
                let tail = w.last().unwrap();
                assert_eq!(tail >> (len % 64), 0, "tail bits must be clear");
            }
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng64::seeded(13);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng64::seeded(17);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..64).collect::<Vec<_>>());
    }
}
