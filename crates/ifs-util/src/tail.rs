//! Tail bounds and sample-size calculators (Lemmas 9–11 of the paper).
//!
//! `SUBSAMPLE` (Definition 8) draws `s` rows uniformly with replacement. The
//! paper's Lemma 10 (multiplicative Chernoff) and Lemma 11 (additive
//! Hoeffding) bound the failure probability of the resulting estimates; the
//! four clauses of Lemma 9 then pick `s` for each sketch contract. This
//! module exposes both directions — failure probability for a given `s`, and
//! the minimal `s` for a target failure probability — plus exact binomial
//! tails used by tests to check the bounds are actually *bounds*.
//!
//! Every sample-size calculator is clamped to at least 1: a sketch of zero
//! rows answers no query (and historically let `Subsample` build an empty
//! sample), so no `(ε, δ, d, k)` combination may round down to `s = 0`.

use crate::combin::ln_gamma;

/// Lemma 10 (multiplicative Chernoff): for i.i.d. Bernoulli(p) mean `X` of
/// `s` draws, `P[X ∉ [(1−ε)p, (1+ε)p]] ≤ 2·exp(−s·p·ε²/4)` for `ε < 2e−1`.
pub fn chernoff_multiplicative_bound(s: u64, p: f64, eps: f64) -> f64 {
    (2.0 * (-(s as f64) * p * eps * eps / 4.0).exp()).min(1.0)
}

/// Lemma 11 (additive Hoeffding): `P[X ∉ [p−ε, p+ε]] ≤ 2·exp(−2sε²)`.
pub fn hoeffding_additive_bound(s: u64, eps: f64) -> f64 {
    (2.0 * (-2.0 * s as f64 * eps * eps).exp()).min(1.0)
}

/// Sample count for the **For-Each-Indicator** guarantee (Lemma 9, first
/// clause): `s ≥ 16·ln(2/δ)/ε` suffices to separate `f_T > ε` from
/// `f_T < ε/2` with failure probability ≤ δ.
pub fn samples_foreach_indicator(eps: f64, delta: f64) -> u64 {
    assert!(eps > 0.0 && delta > 0.0 && delta < 1.0);
    ((16.0 * (2.0 / delta).ln() / eps).ceil() as u64).max(1)
}

/// Sample count for the **For-Each-Estimator** guarantee (Lemma 9, second
/// clause): `s ≥ ε⁻²·ln(2/δ)` gives additive error ≤ ε w.p. ≥ 1−δ.
pub fn samples_foreach_estimator(eps: f64, delta: f64) -> u64 {
    assert!(eps > 0.0 && delta > 0.0 && delta < 1.0);
    (((2.0 / delta).ln() / (eps * eps)).ceil() as u64).max(1)
}

/// Sample count for the **For-All-Indicator** guarantee (Lemma 9, third
/// clause): union bound over all `C(d,k)` itemsets.
pub fn samples_forall_indicator(d: u64, k: u64, eps: f64, delta: f64) -> u64 {
    let log_count = crate::combin::log2_binomial(d, k) * std::f64::consts::LN_2;
    assert!(eps > 0.0 && delta > 0.0 && delta < 1.0);
    (((16.0 / eps) * ((2.0f64).ln() + log_count + (1.0 / delta).ln())).ceil() as u64).max(1)
}

/// Sample count for the **For-All-Estimator** guarantee (Lemma 9, fourth
/// clause): union bound over all `C(d,k)` itemsets with additive error.
pub fn samples_forall_estimator(d: u64, k: u64, eps: f64, delta: f64) -> u64 {
    let log_count = crate::combin::log2_binomial(d, k) * std::f64::consts::LN_2;
    assert!(eps > 0.0 && delta > 0.0 && delta < 1.0);
    (((1.0 / (eps * eps)) * ((2.0f64).ln() + log_count + (1.0 / delta).ln())).ceil() as u64).max(1)
}

/// Exact `P[Bin(s, p) = j]` computed in log-space.
pub fn binomial_pmf(s: u64, p: f64, j: u64) -> f64 {
    if j > s {
        return 0.0;
    }
    if p <= 0.0 {
        return if j == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if j == s { 1.0 } else { 0.0 };
    }
    let ln_c = ln_gamma((s + 1) as f64) - ln_gamma((j + 1) as f64) - ln_gamma((s - j + 1) as f64);
    (ln_c + j as f64 * p.ln() + (s - j) as f64 * (1.0 - p).ln()).exp()
}

/// Exact lower tail `P[Bin(s, p) ≤ j]`.
pub fn binomial_cdf(s: u64, p: f64, j: u64) -> f64 {
    (0..=j.min(s)).map(|i| binomial_pmf(s, p, i)).sum::<f64>().min(1.0)
}

/// Exact upper tail `P[Bin(s, p) ≥ j]`.
pub fn binomial_sf(s: u64, p: f64, j: u64) -> f64 {
    if j == 0 {
        return 1.0;
    }
    (1.0 - binomial_cdf(s, p, j - 1)).max(0.0)
}

/// Exact probability that the empirical mean of `s` Bernoulli(p) draws lands
/// outside `[p − ε, p + ε]` — the quantity Lemma 11 upper-bounds.
pub fn exact_additive_failure(s: u64, p: f64, eps: f64) -> f64 {
    let lo = ((p - eps) * s as f64).ceil() as i64 - 1; // largest j with j/s < p-eps
    let hi = ((p + eps) * s as f64).floor() as u64 + 1; // smallest j with j/s > p+eps
    let mut fail = 0.0;
    if lo >= 0 {
        // j/s < p - eps  <=>  j < s(p-eps); include j = lo only if strictly below.
        let mut j = lo as u64;
        if (j as f64) / (s as f64) >= p - eps {
            if j == 0 {
                j = u64::MAX; // nothing below
            } else {
                j -= 1;
            }
        }
        if j != u64::MAX {
            fail += binomial_cdf(s, p, j);
        }
    }
    if (hi as f64) / (s as f64) > p + eps {
        fail += binomial_sf(s, p, hi);
    } else {
        fail += binomial_sf(s, p, hi + 1);
    }
    fail.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        for (s, p) in [(10u64, 0.3), (25, 0.5), (40, 0.05)] {
            let total: f64 = (0..=s).map(|j| binomial_pmf(s, p, j)).sum();
            assert!((total - 1.0).abs() < 1e-9, "s={s} p={p} total={total}");
        }
    }

    #[test]
    fn pmf_degenerate() {
        assert_eq!(binomial_pmf(10, 0.0, 0), 1.0);
        assert_eq!(binomial_pmf(10, 1.0, 10), 1.0);
        assert_eq!(binomial_pmf(10, 0.5, 11), 0.0);
    }

    #[test]
    fn cdf_monotone() {
        let s = 30;
        let p = 0.4;
        let mut prev = 0.0;
        for j in 0..=s {
            let c = binomial_cdf(s, p, j);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!((prev - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hoeffding_dominates_exact_tail() {
        // Lemma 11 must upper-bound the true failure probability.
        for s in [20u64, 50, 100, 400] {
            for p in [0.1, 0.3, 0.5] {
                for eps in [0.05, 0.1, 0.2] {
                    let exact = exact_additive_failure(s, p, eps);
                    let bound = hoeffding_additive_bound(s, eps);
                    assert!(
                        exact <= bound + 1e-9,
                        "s={s} p={p} eps={eps}: exact {exact} > bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn sample_sizes_scale_as_expected() {
        // For-Each-Estimator is Θ(1/ε²): quadrupling precision multiplies s by ~16.
        let a = samples_foreach_estimator(0.1, 0.05);
        let b = samples_foreach_estimator(0.025, 0.05);
        let ratio = b as f64 / a as f64;
        assert!((ratio - 16.0).abs() < 0.5, "ratio {ratio}");
        // For-Each-Indicator is Θ(1/ε).
        let a = samples_foreach_indicator(0.1, 0.05);
        let b = samples_foreach_indicator(0.025, 0.05);
        let ratio = b as f64 / a as f64;
        assert!((ratio - 4.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn sample_sizes_never_round_to_zero() {
        // Extreme-but-legal parameters must still prescribe >= 1 row: a
        // 0-row sample cannot answer any query. Large ε drives the raw
        // formulas toward 0; δ near 1 shrinks the log terms.
        for eps in [0.5, 1.0, 8.0, 1e6, 1e300] {
            for delta in [0.999_999, 0.5, 1e-12] {
                assert!(samples_foreach_indicator(eps, delta) >= 1, "fei eps={eps} delta={delta}");
                assert!(samples_foreach_estimator(eps, delta) >= 1, "fee eps={eps} delta={delta}");
                for (d, k) in [(1u64, 0u64), (1, 1), (64, 3)] {
                    assert!(samples_forall_indicator(d, k, eps, delta) >= 1, "fai d={d} k={k}");
                    assert!(samples_forall_estimator(d, k, eps, delta) >= 1, "fae d={d} k={k}");
                }
            }
        }
    }

    #[test]
    fn forall_exceeds_foreach() {
        let fe = samples_foreach_estimator(0.1, 0.05);
        let fa = samples_forall_estimator(64, 3, 0.1, 0.05);
        assert!(fa > fe, "union bound must cost extra samples: {fa} vs {fe}");
    }

    #[test]
    fn sampling_guarantee_holds_empirically() {
        // Draw many empirical means at the prescribed s and check the failure
        // rate is below delta.
        use crate::rng::Rng64;
        let (eps, delta) = (0.1, 0.1);
        let s = samples_foreach_estimator(eps, delta);
        let p = 0.37;
        let mut rng = Rng64::seeded(99);
        let trials = 400;
        let mut failures = 0;
        for _ in 0..trials {
            let hits = (0..s).filter(|_| rng.bernoulli(p)).count();
            let mean = hits as f64 / s as f64;
            if (mean - p).abs() > eps {
                failures += 1;
            }
        }
        assert!(
            (failures as f64) < delta * trials as f64,
            "failures {failures}/{trials} exceeds δ={delta}"
        );
    }
}
