//! Summary statistics and asymptotic-slope estimation.
//!
//! EXPERIMENTS.md validates asymptotic claims (e.g. "recovered bits grow as
//! Θ(1/ε)") by fitting the slope of `log y` against `log x` over a geometric
//! parameter ladder; [`loglog_slope`] is that fit. The rest are the summary
//! helpers the tables binary uses.

/// Arithmetic mean; `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance; `NaN` if fewer than two points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (average of middle two for even length); `NaN` if empty.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Median of an integer-valued sample without loss (used by the Theorem 17
/// boosting construction, where the median of `r` estimates is taken).
pub fn median_u64(xs: &[u64]) -> u64 {
    assert!(!xs.is_empty());
    let mut v = xs.to_vec();
    v.sort_unstable();
    v[v.len() / 2]
}

/// Empirical quantile by linear interpolation, `q ∈ [0,1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q.clamp(0.0, 1.0) * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        v[lo] + (pos - lo as f64) * (v[hi] - v[lo])
    }
}

/// Ordinary least squares fit `y = a + b·x`; returns `(a, b)`.
pub fn ols(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points for a line");
    let mx = mean(xs);
    let my = mean(ys);
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let b = sxy / sxx;
    (my - b * mx, b)
}

/// Slope of `log2 y` against `log2 x` — the measured exponent of a power law.
///
/// Points with non-positive coordinates are skipped (they carry no power-law
/// information).
pub fn loglog_slope(xs: &[f64], ys: &[f64]) -> f64 {
    let pts: (Vec<f64>, Vec<f64>) = xs
        .iter()
        .zip(ys)
        .filter(|(&x, &y)| x > 0.0 && y > 0.0)
        .map(|(&x, &y)| (x.log2(), y.log2()))
        .unzip();
    ols(&pts.0, &pts.1).1
}

/// Shannon entropy (bits) of an empirical distribution given raw counts.
pub fn entropy_bits(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

/// Binary entropy function `H(p)` in bits.
pub fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[4.0; 10]), 0.0);
    }

    #[test]
    fn median_u64_odd_even() {
        assert_eq!(median_u64(&[3, 1, 2]), 2);
        // Even length: upper median by construction.
        assert_eq!(median_u64(&[1, 2, 3, 4]), 3);
    }

    #[test]
    fn quantile_endpoints() {
        let xs = [10.0, 20.0, 30.0];
        assert_eq!(quantile(&xs, 0.0), 10.0);
        assert_eq!(quantile(&xs, 1.0), 30.0);
        assert_eq!(quantile(&xs, 0.5), 20.0);
    }

    #[test]
    fn ols_recovers_exact_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let (a, b) = ols(&xs, &ys);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn loglog_slope_of_power_law() {
        let xs: Vec<f64> = (1..=6).map(|i| (1 << i) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 * x.powf(1.5)).collect();
        let slope = loglog_slope(&xs, &ys);
        assert!((slope - 1.5).abs() < 1e-9, "slope {slope}");
    }

    #[test]
    fn entropy_uniform_and_point_mass() {
        assert!((entropy_bits(&[1, 1, 1, 1]) - 2.0).abs() < 1e-12);
        assert_eq!(entropy_bits(&[7, 0, 0]), 0.0);
        assert_eq!(entropy_bits(&[]), 0.0);
    }

    #[test]
    fn binary_entropy_symmetry_and_max() {
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!((binary_entropy(0.1) - binary_entropy(0.9)).abs() < 1e-12);
        assert_eq!(binary_entropy(0.0), 0.0);
    }
}
