//! Combinatorics: binomial coefficients and combination (un)ranking.
//!
//! The `RELEASE-ANSWERS` sketch (Definition 7 of the paper) stores one answer
//! per `k`-itemset. To avoid storing the itemsets themselves we rank each
//! `k`-subset of `[d]` into `[0, C(d,k))` in colexicographic order; the store
//! is then a flat array indexed by rank. This module provides exact (checked)
//! binomial coefficients, `log2 C(d,k)` for the bound formulas, and the
//! rank/unrank bijection.

/// Exact binomial coefficient `C(n, k)` as `u128`, or `None` on overflow.
///
/// Uses the multiplicative formula with interleaved division so intermediate
/// values stay exact.
pub fn binomial_checked(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // acc·(n−i)/(i+1) is exactly C(n, i+1). Cancel gcd(n−i, i+1) first so
        // the remaining divisor divides acc, keeping the intermediate equal to
        // the step result (no overflow headroom needed beyond the answer).
        let mut m = (n - i) as u128;
        let mut d = (i + 1) as u128;
        let g = gcd_u128(m, d);
        m /= g;
        d /= g;
        acc = (acc / d).checked_mul(m)?;
    }
    Some(acc)
}

fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Binomial coefficient saturated at `u128::MAX`.
pub fn binomial(n: u64, k: u64) -> u128 {
    binomial_checked(n, k).unwrap_or(u128::MAX)
}

/// Binomial coefficient as `u64`, panicking if it does not fit.
///
/// The answer stores and rank/unrank routines require the count to fit in a
/// machine word; all experiment parameters in this reproduction do.
pub fn binomial_u64(n: u64, k: u64) -> u64 {
    let b = binomial(n, k);
    u64::try_from(b).unwrap_or_else(|_| panic!("C({n},{k}) = {b} does not fit in u64"))
}

/// `log2 C(n, k)` computed in floating point via `ln Γ`, accurate enough for
/// the space-bound formulas of Theorem 12 (never used for exact counting).
pub fn log2_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    (ln_gamma((n + 1) as f64) - ln_gamma((k + 1) as f64) - ln_gamma((n - k + 1) as f64))
        / std::f64::consts::LN_2
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    // g = 7, n = 9 Lanczos coefficients (standard choice).
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (std::f64::consts::TAU).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Ranks a strictly increasing combination `comb ⊆ [0, n)` in
/// colexicographic order: `rank = Σ_j C(comb[j], j+1)`.
///
/// Colex ranking is independent of `n`, which lets the answer store grow `d`
/// without re-ranking.
pub fn rank_colex(comb: &[u32]) -> u64 {
    debug_assert!(comb.windows(2).all(|w| w[0] < w[1]), "combination must be strictly increasing");
    comb.iter().enumerate().map(|(j, &c)| binomial_u64(c as u64, (j + 1) as u64)).sum()
}

/// Inverse of [`rank_colex`]: returns the `k` elements of the combination
/// with the given colex rank, in increasing order.
pub fn unrank_colex(mut rank: u64, k: u32) -> Vec<u32> {
    let mut out = vec![0u32; k as usize];
    for j in (1..=k).rev() {
        // Largest c with C(c, j) <= rank.
        let mut c = j - 1; // C(j-1, j) = 0 <= rank always
                           // Exponential search then linear refine; combinations here are small.
        let mut step = 1u32;
        while binomial((c + step) as u64, j as u64) <= rank as u128 {
            c += step;
            step = step.saturating_mul(2);
        }
        step /= 2;
        while step > 0 {
            if binomial((c + step) as u64, j as u64) <= rank as u128 {
                c += step;
            }
            step /= 2;
        }
        rank -= binomial_u64(c as u64, j as u64);
        out[(j - 1) as usize] = c;
    }
    debug_assert_eq!(rank, 0);
    out
}

/// Iterator over all `k`-combinations of `[0, n)` in colexicographic order.
///
/// Colex order means the rank of each emitted combination equals its position
/// in the stream, matching [`rank_colex`].
#[derive(Clone, Debug)]
pub struct Combinations {
    n: u32,
    current: Option<Vec<u32>>,
}

impl Combinations {
    /// All `k`-subsets of `[0, n)`.
    pub fn new(n: u32, k: u32) -> Self {
        let current = if k <= n { Some((0..k).collect()) } else { None };
        Self { n, current }
    }
}

impl Iterator for Combinations {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Vec<u32>> {
        let cur = self.current.as_mut()?;
        let out = cur.clone();
        // Colex successor: find the smallest index i where cur[i] + 1 is not
        // cur[i+1] (or where i is the last index and cur[i]+1 < n); increment
        // it and reset everything below to 0,1,...,i-1.
        let k = cur.len();
        if k == 0 {
            self.current = None;
            return Some(out);
        }
        let mut i = 0;
        loop {
            if i + 1 < k {
                if cur[i] + 1 < cur[i + 1] {
                    break;
                }
            } else {
                if cur[i] + 1 < self.n {
                    break;
                }
                self.current = None;
                return Some(out);
            }
            i += 1;
        }
        cur[i] += 1;
        for (j, slot) in cur.iter_mut().enumerate().take(i) {
            *slot = j as u32;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(52, 5), 2_598_960);
        assert_eq!(binomial(3, 7), 0);
    }

    #[test]
    fn binomial_pascal_identity() {
        for n in 1..40u64 {
            for k in 1..=n {
                assert_eq!(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
            }
        }
    }

    #[test]
    fn binomial_checked_overflow() {
        assert!(binomial_checked(300, 150).is_none());
        assert!(binomial_checked(128, 64).is_some());
    }

    #[test]
    fn log2_binomial_matches_exact() {
        for (n, k) in [(10u64, 3u64), (64, 8), (100, 2), (128, 5)] {
            let exact = (binomial(n, k) as f64).log2();
            let approx = log2_binomial(n, k);
            assert!((exact - approx).abs() < 1e-6, "C({n},{k}): {exact} vs {approx}");
        }
    }

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(2.0)).abs() < 1e-10);
        // Γ(5) = 24
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9);
        // Γ(0.5) = sqrt(pi)
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-9);
    }

    #[test]
    fn rank_unrank_roundtrip() {
        for (n, k) in [(8u32, 3u32), (10, 1), (10, 5), (12, 4)] {
            let total = binomial_u64(n as u64, k as u64);
            for r in 0..total {
                let comb = unrank_colex(r, k);
                assert_eq!(comb.len(), k as usize);
                assert!(comb.windows(2).all(|w| w[0] < w[1]));
                assert!(comb.iter().all(|&c| c < n));
                assert_eq!(rank_colex(&comb), r, "roundtrip failed at rank {r}");
            }
        }
    }

    #[test]
    fn combinations_enumerates_in_colex_order() {
        for (n, k) in [(6u32, 3u32), (5, 1), (5, 5), (7, 2)] {
            let all: Vec<Vec<u32>> = Combinations::new(n, k).collect();
            assert_eq!(all.len(), binomial_u64(n as u64, k as u64) as usize);
            for (i, comb) in all.iter().enumerate() {
                assert_eq!(rank_colex(comb), i as u64);
            }
            // Distinctness
            let mut sorted = all.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), all.len());
        }
    }

    #[test]
    fn combinations_count_matches_binomial() {
        for n in 0..=10u32 {
            for k in 0..=10u32 {
                let count = Combinations::new(n, k).count() as u128;
                assert_eq!(count, binomial(n as u64, k as u64), "C({n},{k})");
            }
        }
    }

    #[test]
    fn combinations_k_zero() {
        let all: Vec<Vec<u32>> = Combinations::new(5, 0).collect();
        assert_eq!(all, vec![Vec::<u32>::new()]);
    }

    #[test]
    fn combinations_k_exceeds_n() {
        assert_eq!(Combinations::new(3, 4).count(), 0);
    }
}
