//! Count-Sketch (Charikar–Chen–Farach-Colton): signed hashing, median
//! estimates.
//!
//! Each row hashes items to buckets *and* to a sign; estimates take the
//! median of `sign · counter` across rows. Unbiased (unlike Count-Min's
//! one-sided error), with error scaling as `‖f‖₂/√width` — the L2 contrast
//! to Count-Min's L1 guarantee.

use crate::StreamCounter;
use ifs_core::snapshot::{Snapshot, KIND_COUNT_SKETCH};
use ifs_core::streaming::{MergeError, MergeableSketch};
use ifs_database::codec::{DecodeError, Reader, Writer};
use ifs_util::StableHasher;
use std::hash::{Hash, Hasher};

/// Count-Sketch over any hashable item type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CountSketch<T> {
    width: usize,
    depth: usize,
    counters: Vec<i64>,
    seeds: Vec<u64>,
    len: u64,
    _marker: std::marker::PhantomData<fn(&T)>,
}

impl<T: Hash> CountSketch<T> {
    /// Creates a sketch with `depth` rows (odd recommended for clean
    /// medians) of `width` signed counters.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        assert!(width >= 1 && depth >= 1);
        let seeds =
            (0..depth as u64).map(|i| seed ^ (i.wrapping_mul(0xD134_2543_DE82_EF95))).collect();
        Self {
            width,
            depth,
            counters: vec![0; width * depth],
            seeds,
            len: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Row-`row` bucket and sign of `item`, via the in-tree seeded mixer
    /// ([`StableHasher`]) rather than the release-unstable `DefaultHasher`;
    /// golden values are pinned in `stable_hashing_golden`.
    fn bucket_sign(&self, row: usize, item: &T) -> (usize, i64) {
        let mut h = StableHasher::seeded(self.seeds[row]);
        item.hash(&mut h);
        let hv = h.finish();
        let bucket = (hv >> 1) as usize % self.width;
        let sign = if hv & 1 == 1 { 1 } else { -1 };
        (row * self.width + bucket, sign)
    }

    /// Signed estimate (can be negative for rare items; clamp at query
    /// sites if counts are wanted).
    pub fn signed_estimate(&self, item: &T) -> i64 {
        let mut vals: Vec<i64> = (0..self.depth)
            .map(|r| {
                let (i, s) = self.bucket_sign(r, item);
                s * self.counters[i]
            })
            .collect();
        vals.sort_unstable();
        vals[vals.len() / 2]
    }
}

/// Counter-wise merge (DESIGN.md §9): signed updates are linear, so the
/// Count-Sketch of stream A ⧺ B is the cell-wise sum of the sketches over A
/// and B — merging is **commutative** and associative and bit-identical to
/// one-pass updating. Sketches with different shapes or hash seeds refuse.
impl<T: Hash> MergeableSketch for CountSketch<T> {
    fn merge(&mut self, other: Self) -> Result<(), MergeError> {
        if other.width != self.width || other.depth != self.depth || other.seeds != self.seeds {
            return Err(MergeError::Incompatible(format!(
                "Count-Sketch shapes differ: {}x{} vs {}x{} (or unequal hash seeds)",
                self.depth, self.width, other.depth, other.width
            )));
        }
        for (mine, theirs) in self.counters.iter_mut().zip(other.counters) {
            *mine += theirs;
        }
        self.len += other.len;
        Ok(())
    }
}

/// Body: `width`, `depth`, stream length, the `depth` per-row hash seeds,
/// then `width·depth` *signed* counters as zigzag varints (near-zero cells
/// — the common case for a sketch whose cells concentrate around 0 — cost
/// one byte). As with Count-Min, the item type `T` is not part of the wire
/// format; see [`CountMinSketch`](crate::CountMinSketch)'s snapshot docs.
impl<T: Hash> Snapshot for CountSketch<T> {
    const KIND: u16 = KIND_COUNT_SKETCH;

    fn encode_body(&self, w: &mut Writer) {
        w.varint(self.width as u64);
        w.varint(self.depth as u64);
        w.varint(self.len);
        for &s in &self.seeds {
            w.u64(s);
        }
        for &c in &self.counters {
            w.varint_i64(c);
        }
    }

    fn decode_body(r: &mut Reader, _version: u16) -> Result<Self, DecodeError> {
        let width = r.varint_usize()?;
        let depth = r.varint_usize()?;
        if width == 0 || depth == 0 {
            return Err(DecodeError::Corrupt(format!(
                "Count-Sketch needs width >= 1 and depth >= 1, got {width}x{depth}"
            )));
        }
        let cells = width.checked_mul(depth).ok_or_else(|| {
            DecodeError::Corrupt(format!("{depth}x{width} cells overflow a counter table"))
        })?;
        let len = r.varint()?;
        // Pre-allocation guards, as in Count-Min's decoder: the declared
        // shape must be backed by enough remaining bytes before any table
        // is reserved.
        r.require(depth.checked_mul(8).ok_or_else(|| {
            DecodeError::Corrupt(format!("depth {depth} overflows a byte length"))
        })?)?;
        let mut seeds = Vec::with_capacity(depth);
        for _ in 0..depth {
            seeds.push(r.u64()?);
        }
        r.require(cells)?;
        let mut counters = Vec::with_capacity(cells);
        for _ in 0..cells {
            counters.push(r.varint_i64()?);
        }
        Ok(Self { width, depth, counters, seeds, len, _marker: std::marker::PhantomData })
    }
}

impl<T: Hash> StreamCounter<T> for CountSketch<T> {
    fn update(&mut self, item: T) {
        self.len += 1;
        for r in 0..self.depth {
            let (i, s) = self.bucket_sign(r, &item);
            self.counters[i] += s;
        }
    }

    fn estimate(&self, item: &T) -> u64 {
        self.signed_estimate(item).max(0) as u64
    }

    fn stream_len(&self) -> u64 {
        self.len
    }

    /// The length of the actual snapshot encoding (DESIGN.md §10), like
    /// Count-Min's — measured bytes, not the RAM footprint.
    fn size_bits(&self) -> u64 {
        self.snapshot_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_util::Rng64;

    #[test]
    fn heavy_item_estimated_accurately() {
        let mut cs = CountSketch::new(256, 5, 31);
        let mut rng = Rng64::seeded(131);
        let mut truth = 0u64;
        for _ in 0..10_000 {
            if rng.bernoulli(0.3) {
                cs.update(0u32);
                truth += 1;
            } else {
                cs.update(1 + rng.below(5000) as u32);
            }
        }
        let est = cs.estimate(&0);
        let rel = (est as f64 - truth as f64).abs() / truth as f64;
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn estimates_are_roughly_unbiased() {
        // Across many seeds, mean signed error for a mid-frequency item ~ 0.
        let mut errors = Vec::new();
        for seed in 0..20u64 {
            let mut cs = CountSketch::new(64, 1, seed);
            let mut rng = Rng64::seeded(132 + seed);
            let mut truth = 0i64;
            for _ in 0..2000 {
                if rng.bernoulli(0.05) {
                    cs.update(0u32);
                    truth += 1;
                } else {
                    cs.update(1 + rng.below(500) as u32);
                }
            }
            errors.push((cs.signed_estimate(&0) - truth) as f64);
        }
        let mean = ifs_util::stats::mean(&errors);
        let sd = ifs_util::stats::stddev(&errors).max(1.0);
        assert!(
            mean.abs() < 2.5 * sd / (errors.len() as f64).sqrt() + 5.0,
            "bias {mean} (sd {sd})"
        );
    }

    #[test]
    fn unseen_items_near_zero() {
        let mut cs = CountSketch::new(128, 5, 17);
        for i in 0..1000u32 {
            cs.update(i % 10);
        }
        // Unseen item: estimate should be near zero (collisions only).
        assert!(cs.estimate(&999_999) < 120);
    }

    #[test]
    fn single_item_stream_exact() {
        let mut cs = CountSketch::new(32, 3, 3);
        for _ in 0..50 {
            cs.update("x");
        }
        assert_eq!(cs.estimate(&"x"), 50);
    }

    /// Signed updates are linear, so merged stream halves equal the
    /// one-pass sketch cell for cell; mismatched seeds refuse.
    #[test]
    fn merge_is_bit_identical_to_one_pass() {
        use ifs_core::streaming::{MergeError, MergeableSketch};
        let mut rng = Rng64::seeded(0x3E7);
        let stream: Vec<u32> = (0..3000).map(|_| rng.below(400) as u32).collect();
        let mut whole = CountSketch::new(64, 3, 21);
        let mut a = CountSketch::new(64, 3, 21);
        let mut b = CountSketch::new(64, 3, 21);
        for (i, &x) in stream.iter().enumerate() {
            whole.update(x);
            if i % 2 == 0 { &mut a } else { &mut b }.update(x);
        }
        let (mut ab, mut ba) = (a.clone(), b.clone());
        ab.merge(b).expect("same-shape sketches merge");
        ba.merge(a).expect("counter merge commutes");
        assert_eq!(ab, whole);
        assert_eq!(ba, whole, "merge must be commutative");
        let mut wrong_shape = CountSketch::<u32>::new(32, 3, 21);
        assert!(matches!(wrong_shape.merge(whole), Err(MergeError::Incompatible(_))));
    }

    /// Golden regression: bucket/sign placement under the in-tree
    /// [`StableHasher`] must never move (see `count_min::stable_hashing_golden`).
    #[test]
    fn stable_hashing_golden() {
        let cs = CountSketch::<u32>::new(32, 4, 42);
        let placements: Vec<(usize, i64)> = (0..4).map(|r| cs.bucket_sign(r, &7u32)).collect();
        assert_eq!(placements, vec![(12, -1), (59, -1), (80, 1), (127, 1)]);

        let mut cs = CountSketch::<u64>::new(16, 3, 7);
        for x in 0..100u64 {
            cs.update(x % 10);
        }
        let est: Vec<i64> = (0..10u64).map(|x| cs.signed_estimate(&x)).collect();
        assert_eq!(est, vec![0, 10, 10, 0, 10, 10, 0, 10, 0, 10]);
    }
}
