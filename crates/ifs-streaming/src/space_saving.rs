//! SpaceSaving (Metwally–Agrawal–El Abbadi): heavy hitters that never
//! underestimate.
//!
//! Keeps `m` (item, count, overestimate) triples; an unseen arrival evicts
//! the minimum-count item and inherits its count. Estimates satisfy
//! `true ≤ estimate ≤ true + N/m`.

use crate::StreamCounter;
use std::collections::HashMap;
use std::hash::Hash;

/// SpaceSaving summary with a fixed counter budget.
#[derive(Clone, Debug)]
pub struct SpaceSaving<T> {
    capacity: usize,
    /// item -> (count, overestimation when adopted)
    counters: HashMap<T, (u64, u64)>,
    len: u64,
    item_bits: u64,
}

impl<T: Hash + Eq + Clone> SpaceSaving<T> {
    /// Creates a summary with `capacity ≥ 1` counters.
    pub fn new(capacity: usize, item_bits: u64) -> Self {
        assert!(capacity >= 1);
        Self { capacity, counters: HashMap::with_capacity(capacity), len: 0, item_bits }
    }

    /// The overestimation bound `N/m`.
    pub fn error_bound(&self) -> u64 {
        self.len / self.capacity as u64
    }

    /// Guaranteed lower bound on the true count of a tracked item
    /// (`count − overestimate`).
    pub fn guaranteed_count(&self, item: &T) -> u64 {
        self.counters.get(item).map_or(0, |&(c, over)| c - over)
    }

    fn min_entry(&self) -> Option<(T, u64)> {
        self.counters.iter().min_by_key(|(_, &(c, _))| c).map(|(t, &(c, _))| (t.clone(), c))
    }
}

impl<T: Hash + Eq + Clone> StreamCounter<T> for SpaceSaving<T> {
    fn update(&mut self, item: T) {
        self.len += 1;
        if let Some(e) = self.counters.get_mut(&item) {
            e.0 += 1;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(item, (1, 0));
            return;
        }
        let (evict, min_count) = self.min_entry().expect("capacity >= 1");
        self.counters.remove(&evict);
        self.counters.insert(item, (min_count + 1, min_count));
    }

    fn estimate(&self, item: &T) -> u64 {
        self.counters.get(item).map_or(0, |&(c, _)| c)
    }

    fn stream_len(&self) -> u64 {
        self.len
    }

    fn size_bits(&self) -> u64 {
        self.capacity as u64 * (self.item_bits + 128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates_tracked_heavy_item() {
        let mut ss = SpaceSaving::new(8, 32);
        let mut stream = Vec::new();
        for i in 0..900u32 {
            stream.push(if i % 3 == 0 { 7u32 } else { 100 + i });
        }
        for &x in &stream {
            ss.update(x);
        }
        let truth = stream.iter().filter(|&&x| x == 7).count() as u64;
        let est = ss.estimate(&7);
        assert!(est >= truth, "SpaceSaving must overestimate: {est} < {truth}");
        assert!(est - truth <= ss.error_bound());
    }

    #[test]
    fn guaranteed_count_is_a_lower_bound() {
        let mut ss = SpaceSaving::new(4, 32);
        for i in 0..200u32 {
            ss.update(if i % 2 == 0 { 1u32 } else { 2 + i });
        }
        let truth = 100u64;
        assert!(ss.guaranteed_count(&1) <= truth);
        assert!(ss.estimate(&1) >= truth);
    }

    #[test]
    fn eviction_inherits_min_count() {
        let mut ss = SpaceSaving::new(2, 32);
        ss.update("a");
        ss.update("a");
        ss.update("b");
        // "c" evicts "b" (count 1) and starts at 2 with overestimate 1.
        ss.update("c");
        assert_eq!(ss.estimate(&"c"), 2);
        assert_eq!(ss.guaranteed_count(&"c"), 1);
        assert_eq!(ss.estimate(&"b"), 0);
    }

    #[test]
    fn exact_under_capacity() {
        let mut ss = SpaceSaving::new(10, 32);
        for _ in 0..6 {
            ss.update(42u32);
        }
        assert_eq!(ss.estimate(&42), 6);
        assert_eq!(ss.guaranteed_count(&42), 6);
    }
}
