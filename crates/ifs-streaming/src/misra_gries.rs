//! Misra–Gries ("Frequent"): deterministic heavy hitters with `m` counters.
//!
//! Guarantee: the estimate underestimates the true count by at most `N/(m+1)`
//! where `N` is the stream length; every item with true frequency above
//! `1/(m+1)` is retained.

use crate::StreamCounter;
use std::collections::HashMap;
use std::hash::Hash;

/// Misra–Gries summary with a fixed counter budget.
#[derive(Clone, Debug)]
pub struct MisraGries<T> {
    capacity: usize,
    counters: HashMap<T, u64>,
    len: u64,
    item_bits: u64,
}

impl<T: Hash + Eq + Clone> MisraGries<T> {
    /// Creates a summary with `capacity ≥ 1` counters. `item_bits` is the
    /// size of one item identifier for space accounting.
    pub fn new(capacity: usize, item_bits: u64) -> Self {
        assert!(capacity >= 1);
        Self { capacity, counters: HashMap::with_capacity(capacity + 1), len: 0, item_bits }
    }

    /// The deterministic underestimation bound `N/(m+1)`.
    pub fn error_bound(&self) -> u64 {
        self.len / (self.capacity as u64 + 1)
    }

    /// Items currently tracked with their (under-)counts.
    pub fn tracked(&self) -> impl Iterator<Item = (&T, u64)> {
        self.counters.iter().map(|(t, &c)| (t, c))
    }
}

impl<T: Hash + Eq + Clone> StreamCounter<T> for MisraGries<T> {
    fn update(&mut self, item: T) {
        self.len += 1;
        if let Some(c) = self.counters.get_mut(&item) {
            *c += 1;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(item, 1);
            return;
        }
        // Decrement-all step; drop zeros.
        self.counters.retain(|_, c| {
            *c -= 1;
            *c > 0
        });
    }

    fn estimate(&self, item: &T) -> u64 {
        self.counters.get(item).copied().unwrap_or(0)
    }

    fn stream_len(&self) -> u64 {
        self.len
    }

    fn size_bits(&self) -> u64 {
        // capacity × (item id + 64-bit counter).
        self.capacity as u64 * (self.item_bits + 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_under_capacity() {
        let mut mg = MisraGries::new(10, 32);
        for _ in 0..5 {
            mg.update("a");
        }
        for _ in 0..3 {
            mg.update("b");
        }
        assert_eq!(mg.estimate(&"a"), 5);
        assert_eq!(mg.estimate(&"b"), 3);
        assert_eq!(mg.stream_len(), 8);
    }

    #[test]
    fn underestimate_within_bound() {
        // Stream: heavy item 40%, 60 distinct light items.
        let mut mg = MisraGries::new(9, 32);
        let mut stream = Vec::new();
        for i in 0..600u32 {
            stream.push(if i % 5 < 2 { 0u32 } else { 1 + i });
        }
        for &x in &stream {
            mg.update(x);
        }
        let truth = stream.iter().filter(|&&x| x == 0).count() as u64;
        let est = mg.estimate(&0);
        assert!(est <= truth, "MG never overestimates");
        assert!(
            truth - est <= mg.error_bound(),
            "gap {} > bound {}",
            truth - est,
            mg.error_bound()
        );
    }

    #[test]
    fn frequent_item_survives() {
        // Item with frequency > 1/(m+1) must be tracked.
        let mut mg = MisraGries::new(4, 32); // threshold 1/5
        for i in 0..1000u32 {
            mg.update(if i % 3 == 0 { 999_999 } else { i });
        }
        assert!(mg.estimate(&999_999) > 0, "1/3-frequent item must survive m=4 counters");
    }

    #[test]
    fn frequency_helper() {
        let mut mg = MisraGries::new(4, 32);
        for _ in 0..10 {
            mg.update(7u32);
        }
        assert_eq!(mg.frequency(&7), 1.0);
        assert_eq!(mg.frequency(&8), 0.0);
    }
}
