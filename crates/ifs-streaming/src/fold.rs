//! Row-level fold-and-merge builders over the heavy-hitter counters
//! (DESIGN.md §9).
//!
//! [`crate::CountMinSketch`] and [`crate::CountSketch`] are already
//! incremental over *item* streams — `update` is their fold step. These
//! wrappers lift them to *row* streams through the standard
//! frequent-itemset reduction ([`crate::adapter::feed_row`]: every
//! `k`-subset of each arriving row is one item arrival), implementing the
//! same [`StreamingBuild`] / [`MergeableSketch`] contract as the paper's
//! sketches in `ifs-core`:
//!
//! * one-shot, batch-streamed, and shard-merged builds are bit-identical
//!   (counters are sums; the per-row enumeration order is fixed);
//! * merging is counter-wise, commutative, and refused when shapes or hash
//!   seeds differ — or when Count-Min runs conservative update, which is
//!   state-dependent and therefore inherently one-pass.
//!
//! The finished "sketch" is the wrapper itself: it answers itemset
//! frequency queries ([`FrequencyEstimator`]) by dividing the counter's
//! estimate by the number of rows folded, which is how experiment E11
//! compares heavy hitters against row sampling.

use crate::adapter;
use crate::{CountMinSketch, CountSketch, StreamCounter};
use ifs_core::streaming::{MergeError, MergeableSketch, StreamingBuild};
use ifs_core::{FrequencyEstimator, Sketch};
use ifs_database::Itemset;

/// Build-time parameters of a [`CountMinFold`].
#[derive(Clone, Debug)]
pub struct CountMinFoldParams {
    /// Itemset cardinality `k` tracked by the fold.
    pub k: usize,
    /// Counter columns per row of the Count-Min array.
    pub width: usize,
    /// Hash rows of the Count-Min array.
    pub depth: usize,
    /// Conservative update (tighter estimates, but unmergeable).
    pub conservative: bool,
}

/// A Count-Min sketch folded over database rows: every `k`-subset of each
/// arriving row is one counter update.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CountMinFold {
    counter: CountMinSketch<u64>,
    k: usize,
    dims: usize,
    rows: u64,
}

impl CountMinFold {
    /// The wrapped counter.
    pub fn counter(&self) -> &CountMinSketch<u64> {
        &self.counter
    }

    /// Itemset cardinality `k` tracked by this fold.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl StreamingBuild for CountMinFold {
    type Params = CountMinFoldParams;
    type Output = Self;

    /// The row offset is ignored: counter merges commute, so partials may
    /// arrive in any order.
    fn begin_at(dims: usize, seed: u64, params: &CountMinFoldParams, _row_offset: u64) -> Self {
        assert!(params.k >= 1, "itemset cardinality k must be positive");
        Self {
            counter: CountMinSketch::new(params.width, params.depth, params.conservative, seed),
            k: params.k,
            dims,
            rows: 0,
        }
    }

    fn observe_row(&mut self, row: &Itemset) {
        assert!(
            row.max_item().is_none_or(|m| (m as usize) < self.dims),
            "row has item out of range for {} attributes",
            self.dims
        );
        self.rows += 1;
        adapter::feed_row(row, self.k, &mut self.counter, usize::MAX);
    }

    fn rows_seen(&self) -> u64 {
        self.rows
    }

    fn finish(self) -> Self {
        self
    }
}

impl MergeableSketch for CountMinFold {
    /// Commutative counter-wise merge; refusals (shape, seeds, conservative
    /// update) come from the wrapped counter's merge.
    fn merge(&mut self, other: Self) -> Result<(), MergeError> {
        if other.k != self.k || other.dims != self.dims {
            return Err(MergeError::Incompatible(format!(
                "row folds differ: k {} vs {}, dims {} vs {}",
                self.k, other.k, self.dims, other.dims
            )));
        }
        self.counter.merge(other.counter)?;
        self.rows += other.rows;
        Ok(())
    }
}

impl Sketch for CountMinFold {
    fn size_bits(&self) -> u64 {
        StreamCounter::size_bits(&self.counter)
    }
}

impl FrequencyEstimator for CountMinFold {
    /// Estimated `f_T` of a `k`-itemset: the counter's (over-)estimate over
    /// the number of rows folded. Panics on a query of the wrong
    /// cardinality, like `ReleaseAnswers*`.
    fn estimate(&self, itemset: &Itemset) -> f64 {
        assert_eq!(itemset.len(), self.k, "fold answers only {}-itemsets", self.k);
        adapter::itemset_frequency(&self.counter, itemset, self.rows as usize)
    }
}

/// Build-time parameters of a [`CountSketchFold`].
#[derive(Clone, Debug)]
pub struct CountSketchFoldParams {
    /// Itemset cardinality `k` tracked by the fold.
    pub k: usize,
    /// Counter columns per row of the Count-Sketch array.
    pub width: usize,
    /// Hash rows of the Count-Sketch array (odd recommended).
    pub depth: usize,
}

/// A Count-Sketch folded over database rows; see [`CountMinFold`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CountSketchFold {
    counter: CountSketch<u64>,
    k: usize,
    dims: usize,
    rows: u64,
}

impl CountSketchFold {
    /// The wrapped counter.
    pub fn counter(&self) -> &CountSketch<u64> {
        &self.counter
    }

    /// Itemset cardinality `k` tracked by this fold.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl StreamingBuild for CountSketchFold {
    type Params = CountSketchFoldParams;
    type Output = Self;

    /// The row offset is ignored: counter merges commute.
    fn begin_at(dims: usize, seed: u64, params: &CountSketchFoldParams, _row_offset: u64) -> Self {
        assert!(params.k >= 1, "itemset cardinality k must be positive");
        Self {
            counter: CountSketch::new(params.width, params.depth, seed),
            k: params.k,
            dims,
            rows: 0,
        }
    }

    fn observe_row(&mut self, row: &Itemset) {
        assert!(
            row.max_item().is_none_or(|m| (m as usize) < self.dims),
            "row has item out of range for {} attributes",
            self.dims
        );
        self.rows += 1;
        adapter::feed_row(row, self.k, &mut self.counter, usize::MAX);
    }

    fn rows_seen(&self) -> u64 {
        self.rows
    }

    fn finish(self) -> Self {
        self
    }
}

impl MergeableSketch for CountSketchFold {
    /// Commutative counter-wise merge; shape/seed refusals come from the
    /// wrapped counter's merge.
    fn merge(&mut self, other: Self) -> Result<(), MergeError> {
        if other.k != self.k || other.dims != self.dims {
            return Err(MergeError::Incompatible(format!(
                "row folds differ: k {} vs {}, dims {} vs {}",
                self.k, other.k, self.dims, other.dims
            )));
        }
        self.counter.merge(other.counter)?;
        self.rows += other.rows;
        Ok(())
    }
}

impl Sketch for CountSketchFold {
    fn size_bits(&self) -> u64 {
        StreamCounter::size_bits(&self.counter)
    }
}

impl FrequencyEstimator for CountSketchFold {
    /// Estimated `f_T` of a `k`-itemset (negative median estimates clamp to
    /// 0 through [`StreamCounter::estimate`]).
    fn estimate(&self, itemset: &Itemset) -> f64 {
        assert_eq!(itemset.len(), self.k, "fold answers only {}-itemsets", self.k);
        adapter::itemset_frequency(&self.counter, itemset, self.rows as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_database::{generators, Database};
    use ifs_util::Rng64;

    fn rows_of(db: &Database) -> Vec<Itemset> {
        (0..db.rows()).map(|r| db.row_itemset(r)).collect()
    }

    #[test]
    fn fold_matches_feed_rows_adapter() {
        let mut rng = Rng64::seeded(0xF01D);
        let db = generators::uniform(300, 10, 0.4, &mut rng);
        let params = CountMinFoldParams { k: 2, width: 64, depth: 3, conservative: false };
        let mut fold = CountMinFold::begin(db.dims(), 9, &params);
        fold.observe_rows(&rows_of(&db));
        let fold = fold.finish();
        let mut direct = CountMinSketch::new(64, 3, false, 9);
        adapter::feed_rows(&db, 2, &mut direct, usize::MAX);
        assert_eq!(fold.counter(), &direct);
        assert_eq!(fold.rows_seen(), 300);
        let t = Itemset::new(vec![1, 2]);
        assert_eq!(fold.estimate(&t), adapter::itemset_frequency(&direct, &t, 300));
    }

    #[test]
    fn merged_folds_are_bit_identical_to_one_pass_and_commute() {
        let mut rng = Rng64::seeded(0xF02D);
        let db = generators::uniform(200, 8, 0.5, &mut rng);
        let rows = rows_of(&db);
        let cm = CountMinFoldParams { k: 2, width: 32, depth: 4, conservative: false };
        let cs = CountSketchFoldParams { k: 2, width: 32, depth: 3 };

        let mut one_pass = CountMinFold::begin(8, 5, &cm);
        one_pass.observe_rows(&rows);
        let mut a = CountMinFold::begin(8, 5, &cm);
        a.observe_rows(&rows[..70]);
        let mut b = CountMinFold::begin(8, 5, &cm);
        b.observe_rows(&rows[70..]);
        let (mut ab, mut ba) = (a.clone(), b.clone());
        ab.merge(b).expect("same-shape folds merge");
        ba.merge(a).expect("counter merge commutes");
        assert_eq!(ab, one_pass.clone().finish());
        assert_eq!(ba, one_pass.finish(), "merge must be commutative");

        let mut cs_one = CountSketchFold::begin(8, 5, &cs);
        cs_one.observe_rows(&rows);
        let mut ca = CountSketchFold::begin(8, 5, &cs);
        ca.observe_rows(&rows[..33]);
        let mut cb = CountSketchFold::begin(8, 5, &cs);
        cb.observe_rows(&rows[33..]);
        ca.merge(cb).expect("same-shape folds merge");
        assert_eq!(ca, cs_one);
    }

    #[test]
    fn conservative_count_min_refuses_to_merge() {
        let params = CountMinFoldParams { k: 1, width: 16, depth: 2, conservative: true };
        let mut a = CountMinFold::begin(4, 1, &params);
        let b = CountMinFold::begin(4, 1, &params);
        assert!(matches!(a.merge(b), Err(MergeError::Unmergeable(_))));
    }

    #[test]
    fn shape_and_seed_mismatches_refuse() {
        let p = CountMinFoldParams { k: 2, width: 16, depth: 2, conservative: false };
        let mut a = CountMinFold::begin(4, 1, &p);
        // Different seed: hash rows disagree, so cell-wise addition is
        // meaningless.
        assert!(matches!(a.merge(CountMinFold::begin(4, 2, &p)), Err(MergeError::Incompatible(_))));
        let wider = CountMinFoldParams { width: 32, ..p.clone() };
        assert!(matches!(
            a.merge(CountMinFold::begin(4, 1, &wider)),
            Err(MergeError::Incompatible(_))
        ));
        let deeper_k = CountMinFoldParams { k: 3, ..p };
        assert!(matches!(
            a.merge(CountMinFold::begin(4, 1, &deeper_k)),
            Err(MergeError::Incompatible(_))
        ));
    }
}
