//! Count-Min sketch (Cormode–Muthukrishnan) with optional conservative
//! update.
//!
//! `depth` rows of `width` counters with pairwise-independent hashing;
//! estimates are minima over rows and never underestimate. With
//! `width = ⌈e/ε⌉` and `depth = ⌈ln(1/δ)⌉` the overestimate is at most `εN`
//! with probability `1 − δ`. Conservative update (increment only the
//! minimal counters) tightens estimates in practice — an ablation target in
//! the streaming experiment.

use crate::StreamCounter;
use ifs_core::snapshot::{Snapshot, KIND_COUNT_MIN};
use ifs_core::streaming::{MergeError, MergeableSketch};
use ifs_database::codec::{DecodeError, Reader, Writer};
use ifs_util::StableHasher;
use std::hash::{Hash, Hasher};

/// Count-Min sketch over any hashable item type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CountMinSketch<T> {
    width: usize,
    depth: usize,
    counters: Vec<u64>,
    seeds: Vec<u64>,
    len: u64,
    conservative: bool,
    _marker: std::marker::PhantomData<fn(&T)>,
}

impl<T: Hash> CountMinSketch<T> {
    /// Creates a sketch with explicit dimensions.
    pub fn new(width: usize, depth: usize, conservative: bool, seed: u64) -> Self {
        assert!(width >= 1 && depth >= 1);
        let seeds =
            (0..depth as u64).map(|i| seed ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15))).collect();
        Self {
            width,
            depth,
            counters: vec![0; width * depth],
            seeds,
            len: 0,
            conservative,
            _marker: std::marker::PhantomData,
        }
    }

    /// Creates a sketch sized for additive error `εN` with failure
    /// probability δ per query.
    pub fn with_error(epsilon: f64, delta: f64, conservative: bool, seed: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0 && delta > 0.0 && delta < 1.0);
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(width, depth, conservative, seed)
    }

    /// Row-`row` bucket of `item`, via the in-tree seeded mixer
    /// ([`StableHasher`]): `DefaultHasher` is SipHash with no cross-release
    /// stability guarantee, which would silently relocate every counter on a
    /// toolchain upgrade. Golden values are pinned in `stable_hashing_golden`.
    fn bucket(&self, row: usize, item: &T) -> usize {
        let mut h = StableHasher::seeded(self.seeds[row]);
        item.hash(&mut h);
        row * self.width + (h.finish() as usize % self.width)
    }
}

/// Counter-wise merge (DESIGN.md §9): a plain Count-Min over stream A ⧺ B
/// is the cell-wise sum of the sketches over A and B, so merging is
/// **commutative** and associative and bit-identical to one-pass updating.
///
/// Two refusals guard the contract: structurally different sketches
/// (width, depth, or hash seeds — identical `seeds` is what makes cell-wise
/// addition meaningful) are [`MergeError::Incompatible`], and sketches with
/// **conservative update** are [`MergeError::Unmergeable`] — conservative
/// increments depend on the counter state at each arrival, so the sum of
/// two conservatively-updated halves is *not* the conservatively-updated
/// whole, and pretending otherwise would silently change estimates.
impl<T: Hash> MergeableSketch for CountMinSketch<T> {
    fn merge(&mut self, other: Self) -> Result<(), MergeError> {
        if other.width != self.width || other.depth != self.depth || other.seeds != self.seeds {
            return Err(MergeError::Incompatible(format!(
                "Count-Min shapes differ: {}x{} vs {}x{} (or unequal hash seeds)",
                self.depth, self.width, other.depth, other.width
            )));
        }
        if self.conservative || other.conservative {
            return Err(MergeError::Unmergeable(
                "conservative update is order- and state-dependent; merged counters would not \
                 equal a one-pass conservative build"
                    .into(),
            ));
        }
        for (mine, theirs) in self.counters.iter_mut().zip(other.counters) {
            *mine += theirs;
        }
        self.len += other.len;
        Ok(())
    }
}

/// Body: `width`, `depth`, `conservative` flag, stream length, the `depth`
/// per-row hash seeds, then `width·depth` counters as varints — so a
/// lightly loaded sketch costs far fewer bytes than its 64-bit-per-cell
/// RAM footprint, and `size_bits()` reports what a serving tier would
/// actually ship.
///
/// The item type `T` is *not* part of the wire format (the sketch stores
/// only hashed buckets); decoding the bytes at a different `T` than the
/// encoder used yields a structurally valid sketch whose estimates answer
/// the wrong key space. Keep the item type with the snapshot's provenance,
/// as with any hash-keyed store.
impl<T: Hash> Snapshot for CountMinSketch<T> {
    const KIND: u16 = KIND_COUNT_MIN;

    fn encode_body(&self, w: &mut Writer) {
        w.varint(self.width as u64);
        w.varint(self.depth as u64);
        w.u8(u8::from(self.conservative));
        w.varint(self.len);
        for &s in &self.seeds {
            w.u64(s);
        }
        for &c in &self.counters {
            w.varint(c);
        }
    }

    fn decode_body(r: &mut Reader, _version: u16) -> Result<Self, DecodeError> {
        let width = r.varint_usize()?;
        let depth = r.varint_usize()?;
        if width == 0 || depth == 0 {
            return Err(DecodeError::Corrupt(format!(
                "Count-Min needs width >= 1 and depth >= 1, got {width}x{depth}"
            )));
        }
        let cells = width.checked_mul(depth).ok_or_else(|| {
            DecodeError::Corrupt(format!("{depth}x{width} cells overflow a counter table"))
        })?;
        let conservative = match r.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(DecodeError::Corrupt(format!(
                    "conservative flag must be 0 or 1, got {other}"
                )))
            }
        };
        let len = r.varint()?;
        // Pre-allocation guards: the declared shape must be backed by
        // enough remaining bytes (8 per seed, >= 1 per varint counter)
        // before any table is reserved.
        r.require(depth.checked_mul(8).ok_or_else(|| {
            DecodeError::Corrupt(format!("depth {depth} overflows a byte length"))
        })?)?;
        let mut seeds = Vec::with_capacity(depth);
        for _ in 0..depth {
            seeds.push(r.u64()?);
        }
        r.require(cells)?;
        let mut counters = Vec::with_capacity(cells);
        for _ in 0..cells {
            counters.push(r.varint()?);
        }
        Ok(Self {
            width,
            depth,
            counters,
            seeds,
            len,
            conservative,
            _marker: std::marker::PhantomData,
        })
    }
}

impl<T: Hash> StreamCounter<T> for CountMinSketch<T> {
    fn update(&mut self, item: T) {
        self.len += 1;
        if self.conservative {
            let idxs: Vec<usize> = (0..self.depth).map(|r| self.bucket(r, &item)).collect();
            let current = idxs.iter().map(|&i| self.counters[i]).min().expect("depth >= 1");
            for &i in &idxs {
                if self.counters[i] == current {
                    self.counters[i] = current + 1;
                }
            }
        } else {
            for r in 0..self.depth {
                let i = self.bucket(r, &item);
                self.counters[i] += 1;
            }
        }
    }

    fn estimate(&self, item: &T) -> u64 {
        (0..self.depth).map(|r| self.counters[self.bucket(r, item)]).min().expect("depth >= 1")
    }

    fn stream_len(&self) -> u64 {
        self.len
    }

    /// The length of the actual snapshot encoding (DESIGN.md §10) — the
    /// bytes a serving tier would ship, not the 64-bit-per-cell RAM
    /// footprint the historical bookkeeping reported.
    fn size_bits(&self) -> u64 {
        self.snapshot_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_util::Rng64;

    #[test]
    fn never_underestimates() {
        let mut cm = CountMinSketch::new(64, 4, false, 42);
        let mut rng = Rng64::seeded(121);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..3000 {
            let x = rng.below(500) as u32;
            *counts.entry(x).or_insert(0u64) += 1;
            cm.update(x);
        }
        for (&x, &c) in &counts {
            assert!(cm.estimate(&x) >= c, "underestimate for {x}");
        }
    }

    #[test]
    fn error_within_epsilon_bound() {
        let eps = 0.01;
        let mut cm = CountMinSketch::<u32>::with_error(eps, 0.01, false, 7);
        let mut rng = Rng64::seeded(122);
        let n = 10_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            let x = rng.below(2000) as u32;
            *counts.entry(x).or_insert(0u64) += 1;
            cm.update(x);
        }
        let bound = (eps * n as f64) as u64;
        let mut violations = 0;
        for (&x, &c) in &counts {
            if cm.estimate(&x) - c > bound {
                violations += 1;
            }
        }
        // Per-query failure prob 1%: tolerate a few across 2000 queries.
        assert!(violations <= 60, "{violations} violations of the εN bound");
    }

    #[test]
    fn conservative_update_is_tighter() {
        let mut plain = CountMinSketch::new(32, 3, false, 99);
        let mut cons = CountMinSketch::new(32, 3, true, 99);
        let mut rng = Rng64::seeded(123);
        let stream: Vec<u32> = (0..5000).map(|_| rng.below(300) as u32).collect();
        for &x in &stream {
            plain.update(x);
            cons.update(x);
        }
        let mut counts = std::collections::HashMap::new();
        for &x in &stream {
            *counts.entry(x).or_insert(0u64) += 1;
        }
        let err = |cm: &CountMinSketch<u32>| -> u64 {
            counts.iter().map(|(x, &c)| cm.estimate(x) - c).sum()
        };
        let (pe, ce) = (err(&plain), err(&cons));
        assert!(ce <= pe, "conservative {ce} should be <= plain {pe}");
        // Conservative never underestimates either.
        for (x, &c) in &counts {
            assert!(cons.estimate(x) >= c);
        }
    }

    #[test]
    fn size_accounting_is_the_encoded_length() {
        let mut cm = CountMinSketch::<u32>::new(100, 5, false, 1);
        let empty_bytes = cm.snapshot_bytes();
        assert_eq!(cm.size_bits(), empty_bytes.len() as u64 * 8);
        // 500 zero counters cost one varint byte each, far below the
        // 64-bit-per-cell RAM footprint; filling counters grows the
        // encoding, and size_bits tracks it exactly.
        assert!(cm.size_bits() < 100 * 5 * 64);
        for x in 0..10_000u32 {
            cm.update(x % 50);
        }
        let full_bytes = cm.snapshot_bytes();
        assert!(full_bytes.len() > empty_bytes.len());
        assert_eq!(cm.size_bits(), full_bytes.len() as u64 * 8);
        assert_eq!(CountMinSketch::<u32>::from_snapshot(&full_bytes).expect("roundtrip"), cm);
    }

    /// Plain Count-Min merges counter-wise: split the stream anywhere, and
    /// the merged halves equal the one-pass sketch cell for cell (in either
    /// merge order); conservative update refuses.
    #[test]
    fn merge_is_bit_identical_to_one_pass() {
        use ifs_core::streaming::{MergeError, MergeableSketch};
        let mut rng = Rng64::seeded(0x3E6);
        let stream: Vec<u32> = (0..4000).map(|_| rng.below(600) as u32).collect();
        let mut whole = CountMinSketch::new(64, 4, false, 11);
        let mut a = CountMinSketch::new(64, 4, false, 11);
        let mut b = CountMinSketch::new(64, 4, false, 11);
        for (i, &x) in stream.iter().enumerate() {
            whole.update(x);
            if i < 1234 { &mut a } else { &mut b }.update(x);
        }
        let (mut ab, mut ba) = (a.clone(), b.clone());
        ab.merge(b).expect("same-shape sketches merge");
        ba.merge(a).expect("counter merge commutes");
        assert_eq!(ab, whole);
        assert_eq!(ba, whole, "merge must be commutative");
        assert_eq!(ab.stream_len(), 4000);

        let mut wrong_seed = CountMinSketch::<u32>::new(64, 4, false, 12);
        assert!(matches!(wrong_seed.merge(whole), Err(MergeError::Incompatible(_))));
        let mut cons = CountMinSketch::<u32>::new(64, 4, true, 11);
        let cons2 = CountMinSketch::<u32>::new(64, 4, true, 11);
        assert!(matches!(cons.merge(cons2), Err(MergeError::Unmergeable(_))));
    }

    /// Golden regression: bucket placement must be identical on every
    /// platform and Rust release. These values were recorded once from the
    /// in-tree [`StableHasher`]; a change here means sketch contents (and
    /// every EXPERIMENTS.md number involving Count-Min) silently moved.
    #[test]
    fn stable_hashing_golden() {
        let cm = CountMinSketch::<u32>::new(32, 4, false, 42);
        let buckets: Vec<usize> = (0..4).map(|r| cm.bucket(r, &7u32)).collect();
        assert_eq!(buckets, vec![24, 33, 73, 102]);
        let buckets: Vec<usize> = (0..4).map(|r| cm.bucket(r, &1234u32)).collect();
        assert_eq!(buckets, vec![25, 51, 84, 127]);

        // A short deterministic stream pins the full counter array shape:
        // estimates must come out exactly as recorded.
        let mut cm = CountMinSketch::<u64>::new(16, 3, false, 7);
        for x in 0..100u64 {
            cm.update(x % 10);
        }
        let est: Vec<u64> = (0..10u64).map(|x| cm.estimate(&x)).collect();
        assert_eq!(est, vec![10, 10, 10, 10, 10, 10, 10, 20, 10, 10]);
        assert_eq!(cm.stream_len(), 100);
    }
}
