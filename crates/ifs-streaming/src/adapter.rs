//! Row streams → itemset streams.
//!
//! The standard reduction from frequent-itemset mining to heavy hitters
//! feeds every `k`-subset of each arriving row into an items structure.
//! This costs `C(|row|, k)` updates per row — the blow-up that makes
//! "just use heavy hitters" uncompetitive with row sampling, which is the
//! contrast experiment E11 measures. A per-row enumeration budget caps the
//! damage on dense rows (introducing the approximation real systems accept).
//!
//! Itemset identities are their colexicographic ranks (`u64`), so the item
//! universe is `[0, C(d,k))` and `item_bits = ⌈log₂ C(d,k)⌉`.

use crate::StreamCounter;
use ifs_database::{Database, Itemset};
use ifs_util::combin;

/// Feeds every `k`-itemset of one arriving row into `counter`, up to
/// `per_row_budget` itemsets (enumeration order: colex over the row's own
/// items). Returns `true` if the row was truncated by the budget.
///
/// This is the single-row fold step shared by [`feed_rows`] and the
/// [`crate::fold`] builders, so batch and streaming ingestion update
/// counters in exactly the same order.
pub fn feed_row<C: StreamCounter<u64>>(
    row: &Itemset,
    k: usize,
    counter: &mut C,
    per_row_budget: usize,
) -> bool {
    let items = row.items();
    if items.len() < k {
        return false;
    }
    for (emitted, combo) in combin::Combinations::new(items.len() as u32, k as u32).enumerate() {
        if emitted >= per_row_budget {
            return true;
        }
        let itemset: Itemset = combo.iter().map(|&i| items[i as usize]).collect();
        counter.update(itemset.colex_rank());
    }
    false
}

/// Feeds every `k`-itemset of each database row into `counter`, up to
/// `per_row_budget` itemsets per row (enumeration order: colex over the
/// row's own items). Returns the number of truncated rows.
pub fn feed_rows<C: StreamCounter<u64>>(
    db: &Database,
    k: usize,
    counter: &mut C,
    per_row_budget: usize,
) -> usize {
    (0..db.rows()).filter(|&r| feed_row(&db.row_itemset(r), k, counter, per_row_budget)).count()
}

/// Estimated frequency of an itemset from a row-fed counter: the counter
/// tracks per-row occurrences, so dividing by the row count gives `f_T`.
pub fn itemset_frequency<C: StreamCounter<u64>>(
    counter: &C,
    itemset: &Itemset,
    total_rows: usize,
) -> f64 {
    if total_rows == 0 {
        return 0.0;
    }
    counter.estimate(&itemset.colex_rank()) as f64 / total_rows as f64
}

/// Bits needed to identify one `k`-itemset over `d` attributes.
pub fn itemset_id_bits(d: usize, k: usize) -> u64 {
    combin::log2_binomial(d as u64, k as u64).ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LossyCounting, MisraGries, SpaceSaving};
    use ifs_database::generators::{self, Plant};
    use ifs_util::Rng64;

    fn planted_db(rng: &mut Rng64) -> (Database, Itemset) {
        let bundle = Itemset::new(vec![2, 9]);
        let db = generators::planted(
            2000,
            16,
            0.05,
            &[Plant { itemset: bundle.clone(), frequency: 0.3 }],
            rng,
        );
        (db, bundle)
    }

    #[test]
    fn misra_gries_finds_planted_pair() {
        let mut rng = Rng64::seeded(141);
        let (db, bundle) = planted_db(&mut rng);
        let mut mg = MisraGries::new(64, itemset_id_bits(16, 2));
        let truncated = feed_rows(&db, 2, &mut mg, usize::MAX);
        assert_eq!(truncated, 0);
        let f = itemset_frequency(&mg, &bundle, db.rows());
        let truth = db.frequency(&bundle);
        // MG underestimates; with 64 counters over C(16,2)=120 ids the gap
        // is bounded but present.
        assert!(f <= truth + 1e-9);
        assert!(f >= truth - 0.75, "estimate {f} vs truth {truth}");
    }

    #[test]
    fn space_saving_overestimates_planted_pair() {
        let mut rng = Rng64::seeded(142);
        let (db, bundle) = planted_db(&mut rng);
        let mut ss = SpaceSaving::new(64, itemset_id_bits(16, 2));
        feed_rows(&db, 2, &mut ss, usize::MAX);
        let f = itemset_frequency(&ss, &bundle, db.rows());
        assert!(f >= db.frequency(&bundle) - 1e-9, "SS must not underestimate");
    }

    #[test]
    fn lossy_counting_retains_planted_pair() {
        let mut rng = Rng64::seeded(143);
        let (db, bundle) = planted_db(&mut rng);
        let mut lc = LossyCounting::new(0.01, itemset_id_bits(16, 2));
        feed_rows(&db, 2, &mut lc, usize::MAX);
        // Note: lossy-counting error is relative to the *itemset stream*
        // length (all pairs of all rows), not the row count.
        let est = lc.estimate(&bundle.colex_rank());
        let truth = db.support(&bundle) as u64;
        assert!(est <= truth);
        assert!(truth - est <= lc.error_bound() + 1, "{} vs {}", truth - est, lc.error_bound());
    }

    #[test]
    fn per_row_budget_truncates_dense_rows() {
        // Dense rows: C(12, 2) = 66 pairs per row; budget 10 truncates all.
        let db = Database::from_fn(5, 12, |_, _| true);
        let mut mg = MisraGries::new(16, 8);
        let truncated = feed_rows(&db, 2, &mut mg, 10);
        assert_eq!(truncated, 5);
        assert_eq!(mg.stream_len(), 50);
    }

    #[test]
    fn short_rows_skipped() {
        let db = Database::from_rows(6, &[vec![0], vec![1, 2], vec![]]);
        let mut mg = MisraGries::new(8, 8);
        feed_rows(&db, 2, &mut mg, usize::MAX);
        assert_eq!(mg.stream_len(), 1); // only row 1 has a pair
    }

    #[test]
    fn id_bits_monotone() {
        assert!(itemset_id_bits(64, 3) > itemset_id_bits(16, 3));
        assert!(itemset_id_bits(16, 3) >= itemset_id_bits(16, 1));
    }
}
