//! Streaming heavy-hitter baselines.
//!
//! §1.2 of the paper points out that no streaming algorithm for frequent
//! *itemsets* is known to beat uniform row sampling in space — and the
//! paper's lower bounds explain why. To make that comparison concrete
//! (experiment E11), this crate implements the classical frequent-*items*
//! machinery and adapts it to itemset streams:
//!
//! * [`MisraGries`] — deterministic counter-based heavy hitters.
//! * [`SpaceSaving`] — the Metwally et al. variant with overestimation
//!   tracking.
//! * [`LossyCounting`] — Manku–Motwani [MM02], the algorithm the paper
//!   cites as the root of the streaming frequent-itemset literature.
//! * [`CountMinSketch`] — hashing-based frequency estimation (with optional
//!   conservative update), the linear-sketch contrast.
//! * [`CountSketch`] — signed hashing with median estimates.
//! * [`adapter`] — row streams → itemset streams: every `k`-itemset of each
//!   arriving row is fed to a heavy-hitter structure, which is the standard
//!   (and costly: `C(|row|, k)` updates per row) reduction.
//! * [`fold`] — the row-level fold-and-merge builders (DESIGN.md §9):
//!   [`CountMinFold`] / [`CountSketchFold`] implement the
//!   `ifs_core::streaming` contracts over the reduction above, with
//!   counter-wise (commutative) merges; plain [`CountMinSketch`] and
//!   [`CountSketch`] also merge directly, while conservative-update
//!   Count-Min refuses (state-dependent, inherently one-pass).
//!
//! [MM02]: https://doi.org/10.1016/B978-155860869-6/50038-X

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
mod count_min;
mod count_sketch;
pub mod fold;
mod lossy;
mod misra_gries;
mod space_saving;

pub use count_min::CountMinSketch;
pub use count_sketch::CountSketch;
pub use fold::{CountMinFold, CountMinFoldParams, CountSketchFold, CountSketchFoldParams};
pub use lossy::LossyCounting;
pub use misra_gries::MisraGries;
pub use space_saving::SpaceSaving;

/// Common interface: feed items, query estimated counts, report space.
pub trait StreamCounter<T> {
    /// Processes one arrival of `item`.
    fn update(&mut self, item: T);

    /// Estimated count of `item` (semantics — under/over-estimate — vary by
    /// algorithm; see each type's docs).
    fn estimate(&self, item: &T) -> u64;

    /// Total arrivals processed.
    fn stream_len(&self) -> u64;

    /// Approximate size of the structure in bits (for space-parity
    /// comparisons against row-sampling sketches).
    fn size_bits(&self) -> u64;

    /// Estimated frequency of `item` in `[0, 1]`.
    fn frequency(&self, item: &T) -> f64 {
        if self.stream_len() == 0 {
            0.0
        } else {
            self.estimate(item) as f64 / self.stream_len() as f64
        }
    }
}
