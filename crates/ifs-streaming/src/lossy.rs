//! Lossy Counting — Manku & Motwani [MM02], the algorithm the paper cites
//! as the origin of streaming frequent-itemset mining.
//!
//! The stream is processed in buckets of width `⌈1/ε⌉`; at bucket
//! boundaries, entries whose count plus bucket slack falls below the current
//! bucket id are pruned. Estimates underestimate by at most `εN`, and every
//! item with frequency ≥ ε survives.
//!
//! [MM02]: https://doi.org/10.1016/B978-155860869-6/50038-X

use crate::StreamCounter;
use std::collections::HashMap;
use std::hash::Hash;

/// Lossy Counting summary with parameter ε.
#[derive(Clone, Debug)]
pub struct LossyCounting<T> {
    epsilon: f64,
    bucket_width: u64,
    current_bucket: u64,
    /// item -> (count, max undercount Δ at insertion)
    entries: HashMap<T, (u64, u64)>,
    len: u64,
    item_bits: u64,
    max_entries_seen: usize,
}

impl<T: Hash + Eq + Clone> LossyCounting<T> {
    /// Creates a summary with error parameter `ε ∈ (0, 1)`.
    pub fn new(epsilon: f64, item_bits: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        let bucket_width = (1.0 / epsilon).ceil() as u64;
        Self {
            epsilon,
            bucket_width,
            current_bucket: 1,
            entries: HashMap::new(),
            len: 0,
            item_bits,
            max_entries_seen: 0,
        }
    }

    /// The underestimation bound `εN`.
    pub fn error_bound(&self) -> u64 {
        (self.epsilon * self.len as f64).ceil() as u64
    }

    /// Items with estimated frequency at least `theta − ε` — the [MM02]
    /// query answering "all items with frequency ≥ θ, none below θ − ε".
    ///
    /// [MM02]: https://doi.org/10.1016/B978-155860869-6/50038-X
    pub fn frequent_items(&self, theta: f64) -> Vec<(T, u64)> {
        let cutoff = ((theta - self.epsilon) * self.len as f64).max(0.0);
        self.entries
            .iter()
            .filter(|(_, &(c, _))| c as f64 >= cutoff)
            .map(|(t, &(c, _))| (t.clone(), c))
            .collect()
    }

    /// High-water mark of tracked entries (the space actually used; [MM02]
    /// bounds it by `(1/ε)·log(εN)`).
    ///
    /// [MM02]: https://doi.org/10.1016/B978-155860869-6/50038-X
    pub fn peak_entries(&self) -> usize {
        self.max_entries_seen
    }
}

impl<T: Hash + Eq + Clone> StreamCounter<T> for LossyCounting<T> {
    fn update(&mut self, item: T) {
        self.len += 1;
        let delta = self.current_bucket - 1;
        self.entries.entry(item).and_modify(|e| e.0 += 1).or_insert((1, delta));
        self.max_entries_seen = self.max_entries_seen.max(self.entries.len());
        if self.len.is_multiple_of(self.bucket_width) {
            let b = self.current_bucket;
            self.entries.retain(|_, &mut (c, d)| c + d > b);
            self.current_bucket += 1;
        }
    }

    fn estimate(&self, item: &T) -> u64 {
        self.entries.get(item).map_or(0, |&(c, _)| c)
    }

    fn stream_len(&self) -> u64 {
        self.len
    }

    fn size_bits(&self) -> u64 {
        self.max_entries_seen as u64 * (self.item_bits + 128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_util::Rng64;

    #[test]
    fn heavy_item_always_survives() {
        let mut lc = LossyCounting::new(0.05, 32);
        let mut rng = Rng64::seeded(111);
        let mut truth = 0u64;
        for _ in 0..5000 {
            if rng.bernoulli(0.2) {
                lc.update(0u32);
                truth += 1;
            } else {
                lc.update(1 + rng.below(10_000) as u32);
            }
        }
        let est = lc.estimate(&0);
        assert!(est <= truth);
        assert!(truth - est <= lc.error_bound(), "{} vs {}", truth - est, lc.error_bound());
        let freq = lc.frequent_items(0.15);
        assert!(freq.iter().any(|(t, _)| *t == 0), "0 missing from frequent items");
    }

    #[test]
    fn rare_items_get_pruned() {
        let mut lc = LossyCounting::new(0.1, 32);
        // 1000 distinct singletons: all should be pruned along the way.
        for i in 0..1000u32 {
            lc.update(i);
        }
        assert!(
            lc.entries.len() < 100,
            "pruning failed: {} entries for 1000 singletons",
            lc.entries.len()
        );
    }

    #[test]
    fn no_false_negatives_at_threshold() {
        // Every item with true frequency >= θ appears in frequent_items(θ).
        let mut lc = LossyCounting::new(0.02, 32);
        let mut counts = std::collections::HashMap::new();
        let mut rng = Rng64::seeded(112);
        for _ in 0..4000 {
            let x =
                if rng.bernoulli(0.5) { rng.below(4) as u32 } else { 100 + rng.below(5000) as u32 };
            *counts.entry(x).or_insert(0u64) += 1;
            lc.update(x);
        }
        let theta = 0.05;
        let reported: std::collections::HashSet<u32> =
            lc.frequent_items(theta).into_iter().map(|(t, _)| t).collect();
        for (&item, &c) in &counts {
            if c as f64 / 4000.0 >= theta {
                assert!(reported.contains(&item), "missing frequent item {item}");
            }
        }
    }

    #[test]
    fn space_grows_sublinearly() {
        let mut lc = LossyCounting::new(0.05, 32);
        for i in 0..20_000u32 {
            lc.update(i % 5000);
        }
        // Peak entries far below distinct count.
        assert!(lc.peak_entries() < 2500, "peak {}", lc.peak_entries());
    }
}
