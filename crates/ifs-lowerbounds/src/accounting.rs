//! Bit accounting — the "standard information theory" closing step of every
//! encoding argument.
//!
//! Each lower bound ends with: "the sketch losslessly encodes `b` arbitrary
//! bits, hence `|S| = Ω(b)`". The experiments execute the round trip
//! payload → database → sketch → decoded payload and record the three
//! numbers that sentence relates. A sketch that recovers the payload
//! exactly while being *smaller* than the payload would contradict the
//! information-theoretic step (up to the δ slack) — the harness flags such
//! anomalies, and their absence across sweeps is the reproduction's
//! evidence.

/// One encode→sketch→decode round trip.
#[derive(Clone, Copy, Debug)]
pub struct RoundTrip {
    /// Arbitrary bits hidden in the database.
    pub payload_bits: u64,
    /// Size of the sketch the decoder was given.
    pub sketch_bits: u64,
    /// Fraction of payload bits recovered correctly (1.0 = lossless).
    pub recovered_fraction: f64,
    /// Whether an exact (ECC-assisted) recovery succeeded.
    pub exact: bool,
}

impl RoundTrip {
    /// Sketch bits per payload bit — must be Ω(1) for exact recoveries.
    pub fn compression_ratio(&self) -> f64 {
        if self.payload_bits == 0 {
            return f64::INFINITY;
        }
        self.sketch_bits as f64 / self.payload_bits as f64
    }

    /// An exact recovery from a sketch materially smaller than the payload
    /// would violate the encoding argument (allowing `slack` for the code
    /// rate and the δ failure probability).
    pub fn violates_information_bound(&self, slack: f64) -> bool {
        self.exact && (self.sketch_bits as f64) < slack * self.payload_bits as f64
    }
}

/// Aggregates round trips at one parameter point.
#[derive(Clone, Debug, Default)]
pub struct Aggregate {
    trips: Vec<RoundTrip>,
}

impl Aggregate {
    /// Adds one trip.
    pub fn push(&mut self, t: RoundTrip) {
        self.trips.push(t);
    }

    /// Number of trips recorded.
    pub fn len(&self) -> usize {
        self.trips.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.trips.is_empty()
    }

    /// Fraction of trips with exact recovery.
    pub fn exact_rate(&self) -> f64 {
        if self.trips.is_empty() {
            return 0.0;
        }
        self.trips.iter().filter(|t| t.exact).count() as f64 / self.trips.len() as f64
    }

    /// Mean recovered fraction.
    pub fn mean_recovered(&self) -> f64 {
        ifs_util::stats::mean(&self.trips.iter().map(|t| t.recovered_fraction).collect::<Vec<_>>())
    }

    /// Mean sketch size.
    pub fn mean_sketch_bits(&self) -> f64 {
        ifs_util::stats::mean(&self.trips.iter().map(|t| t.sketch_bits as f64).collect::<Vec<_>>())
    }

    /// Any trip violating the information bound at the given slack.
    pub fn any_violation(&self, slack: f64) -> bool {
        self.trips.iter().any(|t| t.violates_information_bound(slack))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_violation() {
        let ok =
            RoundTrip { payload_bits: 100, sketch_bits: 300, recovered_fraction: 1.0, exact: true };
        assert_eq!(ok.compression_ratio(), 3.0);
        assert!(!ok.violates_information_bound(0.5));

        let impossible =
            RoundTrip { payload_bits: 1000, sketch_bits: 10, recovered_fraction: 1.0, exact: true };
        assert!(impossible.violates_information_bound(0.5));

        let lossy = RoundTrip {
            payload_bits: 1000,
            sketch_bits: 10,
            recovered_fraction: 0.5,
            exact: false,
        };
        // Lossy recovery carries no contradiction.
        assert!(!lossy.violates_information_bound(0.5));
    }

    #[test]
    fn aggregate_statistics() {
        let mut agg = Aggregate::default();
        for i in 0..4u64 {
            agg.push(RoundTrip {
                payload_bits: 100,
                sketch_bits: 200 + i * 100,
                recovered_fraction: if i < 3 { 1.0 } else { 0.5 },
                exact: i < 3,
            });
        }
        assert_eq!(agg.len(), 4);
        assert_eq!(agg.exact_rate(), 0.75);
        assert!((agg.mean_recovered() - 0.875).abs() < 1e-12);
        assert_eq!(agg.mean_sketch_bits(), 350.0);
        assert!(!agg.any_violation(0.5));
    }

    #[test]
    fn zero_payload_is_infinite_ratio() {
        let t = RoundTrip { payload_bits: 0, sketch_bits: 1, recovered_fraction: 1.0, exact: true };
        assert!(t.compression_ratio().is_infinite());
    }
}
