//! Fact 18 (Appendix A): a set of vectors shattered by itemset queries.
//!
//! For any `k′ ≥ 1` and `d` with `d/k′` a power of two, there are
//! `v = k′·log₂(d/k′)` vectors `x₁,…,x_v ∈ {0,1}^d` such that for **every**
//! pattern `s ∈ {0,1}^v` some `k′`-itemset `T_s` satisfies
//! `f_{T_s}(x_i) = s_i` for all `i` — i.e. the rows are shattered, giving VC
//! dimension ≥ v for `k′`-way monotone conjunctions.
//!
//! Construction (verbatim from the appendix): split the `d` columns into
//! `k′` blocks of width `b = d/k′`. Within block `i`, rows belonging to
//! block-row `i` carry the bit-table matrix `Y^{(b)}` (column `j` holds the
//! binary representation of `j`); all other blocks are all-ones `J`. The
//! itemset for pattern `s` reads off one column per block: interpret the
//! `log₂ b` bits of `s` belonging to block `i` as an integer `ℓᵢ` and take
//! column `ℓᵢ` of block `i`.

use ifs_database::{BitMatrix, Itemset};

/// The shattered set: `v` vectors over `d` attributes for `k′`-itemsets.
#[derive(Clone, Debug)]
pub struct ShatteredSet {
    d: usize,
    k_prime: usize,
    block_width: usize,
    bits_per_block: usize,
    rows: BitMatrix,
}

impl ShatteredSet {
    /// Builds the construction. Requires `k′ ≥ 1`, `d` divisible by `k′`,
    /// and `d/k′` a power of two ≥ 2.
    pub fn new(d: usize, k_prime: usize) -> Self {
        assert!(k_prime >= 1, "k' must be positive");
        assert!(d.is_multiple_of(k_prime), "d={d} must be divisible by k'={k_prime}");
        let block_width = d / k_prime;
        assert!(
            block_width >= 2 && block_width.is_power_of_two(),
            "d/k' = {block_width} must be a power of two >= 2"
        );
        let bits_per_block = block_width.trailing_zeros() as usize;
        let v = k_prime * bits_per_block;
        // Row (i_block, t) has: ones everywhere except block i_block, where
        // column j carries bit t of j.
        let rows = BitMatrix::from_fn(v, d, |row, col| {
            let i_block = row / bits_per_block;
            let t = row % bits_per_block;
            let col_block = col / block_width;
            if col_block != i_block {
                true // J block
            } else {
                let j = col % block_width;
                (j >> t) & 1 == 1 // Y block
            }
        });
        Self { d, k_prime, block_width, bits_per_block, rows }
    }

    /// Number of shattered vectors `v = k′·log₂(d/k′)`.
    pub fn v(&self) -> usize {
        self.k_prime * self.bits_per_block
    }

    /// Attribute count `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The itemset cardinality `k′` of the shattering queries.
    pub fn k_prime(&self) -> usize {
        self.k_prime
    }

    /// The shattered vectors as rows of a bit matrix (`v × d`).
    pub fn rows(&self) -> &BitMatrix {
        &self.rows
    }

    /// Row `i` as packed words (length `words_per_row` of the matrix).
    pub fn row_words(&self, i: usize) -> &[u64] {
        self.rows.row_words(i)
    }

    /// The `k′`-itemset `T_s` realizing pattern `s` (`s.len() == v`):
    /// `f_{T_s}(x_i) = s[i]`.
    pub fn itemset_for(&self, s: &[bool]) -> Itemset {
        assert_eq!(s.len(), self.v(), "pattern length must be v = {}", self.v());
        let mut items = Vec::with_capacity(self.k_prime);
        for i_block in 0..self.k_prime {
            // Bits of this block, little-endian: s[i_block*b + t] is bit t.
            let mut ell = 0usize;
            for t in 0..self.bits_per_block {
                if s[i_block * self.bits_per_block + t] {
                    ell |= 1 << t;
                }
            }
            items.push((i_block * self.block_width + ell) as u32);
        }
        Itemset::new(items)
    }

    /// Evaluates the pattern a given `k′`-itemset induces on the rows —
    /// the inverse direction, used by tests.
    pub fn pattern_of(&self, itemset: &Itemset) -> Vec<bool> {
        let mask = itemset.mask(self.d, self.rows.words_per_row());
        (0..self.v()).map(|i| self.rows.row_contains_mask(i, &mask)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v_matches_formula() {
        let s = ShatteredSet::new(32, 2); // blocks of 16, log = 4
        assert_eq!(s.v(), 8);
        let s = ShatteredSet::new(8, 1);
        assert_eq!(s.v(), 3);
    }

    #[test]
    fn every_pattern_is_realized_small() {
        // Exhaustive shattering check: all 2^v patterns.
        for (d, kp) in [(8usize, 1usize), (8, 2), (16, 2), (12, 3)] {
            let sh = ShatteredSet::new(d, kp);
            let v = sh.v();
            for mask in 0u32..(1 << v) {
                let s: Vec<bool> = (0..v).map(|i| (mask >> i) & 1 == 1).collect();
                let t = sh.itemset_for(&s);
                assert_eq!(t.len(), kp, "itemset must have k' items");
                assert_eq!(sh.pattern_of(&t), s, "pattern {mask:b} not realized (d={d},k'={kp})");
            }
        }
    }

    #[test]
    fn itemsets_pick_one_column_per_block() {
        let sh = ShatteredSet::new(16, 2);
        let s = vec![true; sh.v()];
        let t = sh.itemset_for(&s);
        let items = t.items();
        assert!(items[0] < 8 && items[1] >= 8, "one item per block: {t}");
    }

    #[test]
    fn distinct_patterns_distinct_itemsets() {
        let sh = ShatteredSet::new(16, 2);
        let v = sh.v();
        let mut seen = std::collections::HashSet::new();
        for mask in 0u32..(1 << v) {
            let s: Vec<bool> = (0..v).map(|i| (mask >> i) & 1 == 1).collect();
            assert!(seen.insert(sh.itemset_for(&s)), "itemset collision at {mask:b}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_blocks() {
        ShatteredSet::new(12, 2); // blocks of 6
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn rejects_indivisible_d() {
        ShatteredSet::new(10, 3);
    }
}
