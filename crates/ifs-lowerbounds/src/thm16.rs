//! Theorem 16 machinery (Lemmas 20–27): estimator lower bounds via
//! LP decoding over Hadamard row-products.
//!
//! The KRSU/De construction hides a boolean column `x ∈ {0,1}ⁿ` in a
//! database whose other columns are the transposed factors of a random
//! Hadamard row-product `A = A₁ ∘ ⋯ ∘ A_{k−1}` (`Aⱼ ∈ {0,1}^{d₀×n}`).
//! Every `k`-itemset choosing one attribute per factor block plus the
//! secret column has frequency `(Ax)_r / n`; ±ε-accurate answers to all of
//! them are a noisy linear view `y ≈ Ax/n` from which L1 minimization
//! recovers `x` — as long as `n ≲ 1/ε²`, which is the source of the `1/ε²`
//! in Theorem 16. The spectral fact making this work is Rudelson's
//! Lemma 26 (`σ_min(A) = Ω(√(d₀^{k−1}))`, range is a Euclidean section),
//! which experiment E8 *measures* on the same ensemble.

use ifs_core::FrequencyEstimator;
use ifs_database::{BitMatrix, Database, Itemset};
use ifs_linalg::{products, sections, svd, Matrix};
use ifs_solver::l1;
use ifs_util::Rng64;

/// A KRSU/De-style instance: random factors, their row-product, a hidden
/// boolean column, and the database embedding all of it.
pub struct RowProductInstance {
    d0: usize,
    k_minus_1: usize,
    factors: Vec<Matrix>,
    a: Matrix,
    secret: Vec<bool>,
    db: Database,
}

impl RowProductInstance {
    /// Samples factors and embeds `secret` (length `n`). The database has
    /// `n` rows and `(k−1)·d₀ + 1` columns.
    ///
    /// Factor columns are conditioned to be nonzero: an all-zero factor
    /// column zeroes the corresponding column of `A`, making that secret
    /// bit information-theoretically invisible. The event has probability
    /// `2^{−d₀}` per column — Rudelson's "with high probability" absorbs it
    /// asymptotically; at laptop scale we resample, which conditions on the
    /// same high-probability event the theory lives on.
    pub fn new(d0: usize, k_minus_1: usize, secret: &[bool], rng: &mut Rng64) -> Self {
        assert!(d0 >= 2 && k_minus_1 >= 1);
        let n = secret.len();
        assert!(n >= 1, "secret must be non-empty");
        let factors: Vec<Matrix> = (0..k_minus_1)
            .map(|_| {
                let mut f = Matrix::random_binary(d0, n, rng);
                for h in 0..n {
                    while (0..d0).all(|i| f[(i, h)] == 0.0) {
                        for i in 0..d0 {
                            f[(i, h)] = if rng.bernoulli(0.5) { 1.0 } else { 0.0 };
                        }
                    }
                }
                f
            })
            .collect();
        let a = products::hadamard_product(&factors.iter().collect::<Vec<_>>());
        // Database row h: (col h of A_1, …, col h of A_{k−1}, secret[h]).
        let cols = k_minus_1 * d0 + 1;
        let mut m = BitMatrix::zeros(n, cols);
        for h in 0..n {
            for (j, f) in factors.iter().enumerate() {
                for i in 0..d0 {
                    if f[(i, h)] == 1.0 {
                        m.set(h, j * d0 + i, true);
                    }
                }
            }
            if secret[h] {
                m.set(h, cols - 1, true);
            }
        }
        Self { d0, k_minus_1, factors, a, secret: secret.to_vec(), db: Database::from_matrix(m) }
    }

    /// The row-product matrix `A` (`d₀^{k−1} × n`).
    pub fn matrix(&self) -> &Matrix {
        &self.a
    }

    /// The factor matrices.
    pub fn factors(&self) -> &[Matrix] {
        &self.factors
    }

    /// The embedded database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The hidden column.
    pub fn secret(&self) -> &[bool] {
        &self.secret
    }

    /// Number of query rows `L = d₀^{k−1}`.
    pub fn query_rows(&self) -> usize {
        self.a.rows()
    }

    /// The `k`-itemset for product row `r` (one attribute per block, plus
    /// the secret column).
    pub fn query(&self, r: usize) -> Itemset {
        let dims = vec![self.d0; self.k_minus_1];
        let tuple = products::row_to_tuple(r, &dims);
        let mut items: Vec<u32> =
            tuple.iter().enumerate().map(|(j, &i)| (j * self.d0 + i) as u32).collect();
        items.push((self.k_minus_1 * self.d0) as u32);
        Itemset::new(items)
    }

    /// Exact query answers `(Ax)_r / n` — what a perfect estimator returns.
    pub fn exact_answers(&self) -> Vec<f64> {
        let xf: Vec<f64> = self.secret.iter().map(|&b| b as u8 as f64).collect();
        let n = self.secret.len() as f64;
        self.a.matvec(&xf).into_iter().map(|v| v / n).collect()
    }

    /// Queries an estimator sketch for all `L` answers.
    pub fn answers_from_sketch<S: FrequencyEstimator>(&self, sketch: &S) -> Vec<f64> {
        (0..self.query_rows()).map(|r| sketch.estimate(&self.query(r))).collect()
    }

    /// L1 decoding (De): `min ‖Ax̂ − n·y‖₁, x̂ ∈ [0,1]ⁿ`, rounded.
    pub fn recover_l1(&self, answers: &[f64]) -> Option<Vec<bool>> {
        let n = self.secret.len() as f64;
        let scaled: Vec<f64> = answers.iter().map(|v| v * n).collect();
        l1::l1_box_regression(&self.a, &scaled).map(|x| l1::round_boolean(&x))
    }

    /// L2 decoding (KRSU): pseudo-inverse, clamped and rounded.
    pub fn recover_l2(&self, answers: &[f64]) -> Vec<bool> {
        let n = self.secret.len() as f64;
        let scaled: Vec<f64> = answers.iter().map(|v| v * n).collect();
        l1::round_boolean(&l1::l2_regression(&self.a, &scaled))
    }

    /// Fraction of secret bits recovered.
    pub fn accuracy(&self, decoded: &[bool]) -> f64 {
        1.0 - l1::boolean_error_rate(decoded, &self.secret)
    }

    /// Smallest singular value of `A` — the Lemma 26 quantity. Normalized
    /// form `σ_min/√(d₀^{k−1})` should stay bounded below across sizes.
    pub fn sigma_min(&self) -> f64 {
        svd::decompose(&self.a).sigma_min()
    }

    /// Empirical Euclidean-section constant of `range(A)` (Definition 23).
    pub fn section_delta(&self, samples: usize, rng: &mut Rng64) -> f64 {
        sections::estimate_delta_sampling(&self.a, samples, rng)
    }
}

/// The noise model of the amplified argument: answers accurate to ±`eps`
/// *on average*, with a `gross_fraction` of answers arbitrarily wrong —
/// exactly the regime where L2 decoding collapses and L1 survives (§4.1.1).
pub fn perturb_answers(
    answers: &[f64],
    eps: f64,
    gross_fraction: f64,
    rng: &mut Rng64,
) -> Vec<f64> {
    let mut out: Vec<f64> = answers.iter().map(|v| v + eps * 2.0 * (rng.unit() - 0.5)).collect();
    let gross = ((answers.len() as f64) * gross_fraction) as usize;
    if gross > 0 {
        for &p in &rng.distinct_sorted(answers.len(), gross) {
            out[p] = rng.unit(); // arbitrary garbage in [0,1)
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_core::ReleaseDb;

    fn random_secret(n: usize, rng: &mut Rng64) -> Vec<bool> {
        (0..n).map(|_| rng.bernoulli(0.5)).collect()
    }

    #[test]
    fn query_frequency_matches_product_row() {
        let mut rng = Rng64::seeded(191);
        let inst = RowProductInstance::new(4, 2, &random_secret(20, &mut rng), &mut rng);
        let exact = inst.exact_answers();
        for r in 0..inst.query_rows() {
            let f = inst.database().frequency(&inst.query(r));
            assert!((f - exact[r]).abs() < 1e-12, "row {r}: {f} vs {exact:?}");
        }
    }

    #[test]
    fn exact_sketch_l1_recovers_secret() {
        let mut rng = Rng64::seeded(192);
        let secret = random_secret(16, &mut rng);
        // Over-determined regime (L = 36 > n = 16): Lemma 26 gives A full
        // column rank whp, so exact answers pin down the secret uniquely.
        // A square L = n instance can be singular, in which case the LP may
        // legitimately return a different exact solution.
        let inst = RowProductInstance::new(6, 2, &secret, &mut rng);
        let sketch = ReleaseDb::build(inst.database(), 0.01);
        let answers = inst.answers_from_sketch(&sketch);
        let decoded = inst.recover_l1(&answers).expect("LP solvable");
        assert_eq!(inst.accuracy(&decoded), 1.0);
    }

    #[test]
    fn l1_survives_average_error_noise_l2_degrades() {
        let mut rng = Rng64::seeded(193);
        let secret = random_secret(16, &mut rng);
        let inst = RowProductInstance::new(6, 2, &secret, &mut rng);
        let answers = inst.exact_answers();
        // Small uniform noise + 10% gross errors.
        let noisy = perturb_answers(&answers, 0.01, 0.10, &mut rng);
        let l1_acc = inst.accuracy(&inst.recover_l1(&noisy).expect("solvable"));
        let l2_acc = inst.accuracy(&inst.recover_l2(&noisy));
        assert!(l1_acc >= 0.95, "L1 accuracy {l1_acc}");
        assert!(l1_acc >= l2_acc, "L1 {l1_acc} must not lose to L2 {l2_acc}");
    }

    #[test]
    fn sigma_min_positive_for_over_determined() {
        let mut rng = Rng64::seeded(194);
        let inst = RowProductInstance::new(6, 2, &random_secret(12, &mut rng), &mut rng);
        // L = 36 >= n = 12: full column rank whp.
        assert!(inst.sigma_min() > 0.5, "sigma_min {}", inst.sigma_min());
    }

    #[test]
    fn section_delta_bounded_away_from_zero() {
        let mut rng = Rng64::seeded(195);
        let inst = RowProductInstance::new(6, 2, &random_secret(10, &mut rng), &mut rng);
        let delta = inst.section_delta(60, &mut rng);
        assert!(delta > 0.2, "delta {delta} degenerate");
        assert!(delta <= 1.0 + 1e-9);
    }

    #[test]
    fn query_cardinality_is_k() {
        let mut rng = Rng64::seeded(196);
        let inst = RowProductInstance::new(4, 3, &random_secret(8, &mut rng), &mut rng);
        // k = k_minus_1 + 1 = 4.
        assert_eq!(inst.query(17).len(), 4);
        assert_eq!(inst.query_rows(), 64);
    }

    #[test]
    fn perturb_respects_bounds_without_gross() {
        let mut rng = Rng64::seeded(197);
        let base = vec![0.5; 30];
        let noisy = perturb_answers(&base, 0.05, 0.0, &mut rng);
        assert!(noisy.iter().all(|v| (v - 0.5).abs() <= 0.05 + 1e-12));
    }
}
