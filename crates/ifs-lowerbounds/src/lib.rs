//! Executable lower-bound constructions from the paper.
//!
//! Every lower bound in the paper is an *encoding argument*: a way to hide
//! arbitrary bits inside a database such that any valid sketch can be forced
//! to reveal them, so the sketch must be at least as large as the payload.
//! This crate turns each argument into a runnable encoder/decoder pair:
//!
//! * [`shatter`] — Fact 18 / Appendix A: `v = k′·log₂(d/k′)` vectors
//!   shattered by `k′`-itemset queries (the VC-dimension construction).
//! * [`thm13`] — the Ω(d/ε) unique-fingerprint family for indicator
//!   sketches: `d/(2ε)` free bits recovered one itemset query each.
//! * [`index_game`] — the one-way INDEX reduction of Theorem 14, run as an
//!   actual Alice/Bob protocol parameterized by any For-Each sketch.
//! * [`thm15`] — the Ω(k·d·log(d/k)) core (ε = 1/50): shattered rows
//!   carrying an error-corrected payload, recovered column-by-column via the
//!   Lemma 19 consistency search, then ECC-decoded.
//! * [`amplify`] — the ε = o(1) amplification: `m = 1/(50ε)` tagged
//!   sub-databases multiplexed through one sketch.
//! * [`thm16`] — the For-All-Estimator pipeline of Lemmas 20–27: Hadamard
//!   row-products, spectral and Euclidean-section measurements (Rudelson),
//!   and L1 (De) vs L2 (KRSU) decoding of a hidden boolean column.
//! * [`accounting`] — the bit-accounting harness shared by the experiments:
//!   payload bits in, sketch bits spent, payload bits recovered.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod amplify;
pub mod index_game;
pub mod shatter;
pub mod thm13;
pub mod thm15;
pub mod thm16;
