//! Theorem 13: the Ω(d/ε) unique-fingerprint family.
//!
//! The hard database has `1/ε` distinct row types. Row `i`'s first `d/2`
//! columns hold a *unique* `(k−1)`-subset (its fingerprint); the last `d/2`
//! columns are free payload bits. The itemset
//! `T_{i,j} = fingerprint(i) ∪ {j}` has frequency `ε·payload(i, j)` — one
//! indicator query per payload bit recovers everything, so any valid
//! For-All-Indicator sketch stores `d/(2ε)` arbitrary bits.

use ifs_core::FrequencyIndicator;
use ifs_database::{Database, Itemset};
use ifs_util::combin;

/// The Theorem 13 instance: parameters plus the encoded database.
#[derive(Clone, Debug)]
pub struct HardInstance {
    d: usize,
    k: usize,
    inv_eps: usize,
    payload: Vec<bool>,
    db: Database,
}

impl HardInstance {
    /// Payload capacity in bits: `(d/2)·(1/ε)`.
    pub fn capacity(d: usize, inv_eps: usize) -> usize {
        (d / 2) * inv_eps
    }

    /// Checks the theorem's applicability: `1/ε ≤ C(d/2, k−1)` so that every
    /// row can get a distinct fingerprint.
    pub fn applicable(d: usize, k: usize, inv_eps: usize) -> bool {
        k >= 2 && d >= 4 && combin::binomial((d / 2) as u64, (k - 1) as u64) >= inv_eps as u128
    }

    /// Encodes `payload` (exactly [`Self::capacity`] bits) into a database
    /// with `rows_multiplier · (1/ε)` rows (duplicating each row type keeps
    /// frequencies at multiples of ε while letting `n` grow).
    pub fn encode(
        d: usize,
        k: usize,
        inv_eps: usize,
        payload: &[bool],
        rows_multiplier: usize,
    ) -> Self {
        assert!(Self::applicable(d, k, inv_eps), "parameters violate 1/ε ≤ C(d/2, k−1)");
        assert_eq!(payload.len(), Self::capacity(d, inv_eps), "payload must fill capacity");
        assert!(rows_multiplier >= 1);
        let half = d / 2;
        let mut db = Database::zeros(inv_eps, d);
        for i in 0..inv_eps {
            // Fingerprint: the i-th (k-1)-subset of [d/2] in colex order.
            for item in combin::unrank_colex(i as u64, (k - 1) as u32) {
                db.matrix_mut().set(i, item as usize, true);
            }
            for j in 0..half {
                if payload[i * half + j] {
                    db.matrix_mut().set(i, half + j, true);
                }
            }
        }
        let db = db.repeat_rows(rows_multiplier);
        Self { d, k, inv_eps, payload: payload.to_vec(), db }
    }

    /// The encoded database (`(1/ε)·multiplier` rows, `d` columns).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The true payload.
    pub fn payload(&self) -> &[bool] {
        &self.payload
    }

    /// The distinguishing itemset for payload bit `(i, j)`:
    /// fingerprint(i) ∪ {d/2 + j}.
    pub fn query(&self, i: usize, j: usize) -> Itemset {
        assert!(i < self.inv_eps && j < self.d / 2);
        let mut items = combin::unrank_colex(i as u64, (self.k - 1) as u32);
        items.push((self.d / 2 + j) as u32);
        Itemset::new(items)
    }

    /// Epsilon of the instance (`1/inv_eps`).
    pub fn epsilon(&self) -> f64 {
        1.0 / self.inv_eps as f64
    }

    /// Recovers the payload from any indicator sketch by issuing one query
    /// per bit.
    pub fn decode<S: FrequencyIndicator>(&self, sketch: &S) -> Vec<bool> {
        let half = self.d / 2;
        let mut out = Vec::with_capacity(self.payload.len());
        for i in 0..self.inv_eps {
            for j in 0..half {
                out.push(sketch.is_frequent(&self.query(i, j)));
            }
        }
        out
    }

    /// Fraction of payload bits a decode attempt got right.
    pub fn recovery_rate(&self, decoded: &[bool]) -> f64 {
        assert_eq!(decoded.len(), self.payload.len());
        let correct = decoded.iter().zip(&self.payload).filter(|(a, b)| a == b).count();
        correct as f64 / self.payload.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_core::ReleaseDb;
    use ifs_util::Rng64;

    fn random_payload(len: usize, rng: &mut Rng64) -> Vec<bool> {
        (0..len).map(|_| rng.bernoulli(0.5)).collect()
    }

    #[test]
    fn frequencies_are_exactly_eps_or_zero() {
        let mut rng = Rng64::seeded(151);
        let (d, k, inv_eps) = (16, 2, 8);
        let payload = random_payload(HardInstance::capacity(d, inv_eps), &mut rng);
        let inst = HardInstance::encode(d, k, inv_eps, &payload, 3);
        for i in 0..inv_eps {
            for j in 0..d / 2 {
                let f = inst.database().frequency(&inst.query(i, j));
                let bit = payload[i * (d / 2) + j];
                if bit {
                    assert!((f - inst.epsilon()).abs() < 1e-12, "f={f} for set bit");
                } else {
                    assert_eq!(f, 0.0, "f={f} for clear bit");
                }
            }
        }
    }

    #[test]
    fn exact_sketch_recovers_everything() {
        let mut rng = Rng64::seeded(152);
        let (d, k, inv_eps) = (20, 3, 16);
        assert!(HardInstance::applicable(d, k, inv_eps));
        let payload = random_payload(HardInstance::capacity(d, inv_eps), &mut rng);
        let inst = HardInstance::encode(d, k, inv_eps, &payload, 1);
        let sketch = ReleaseDb::build(inst.database(), inst.epsilon());
        let decoded = inst.decode(&sketch);
        assert_eq!(inst.recovery_rate(&decoded), 1.0);
        assert_eq!(decoded, payload);
    }

    #[test]
    fn fingerprints_are_unique() {
        let mut rng = Rng64::seeded(153);
        let (d, k, inv_eps) = (12, 2, 6);
        let payload = random_payload(HardInstance::capacity(d, inv_eps), &mut rng);
        let inst = HardInstance::encode(d, k, inv_eps, &payload, 1);
        let mut prints = std::collections::HashSet::new();
        for i in 0..inv_eps {
            let fp: Vec<u32> =
                (0..d as u32 / 2).filter(|&c| inst.database().get(i, c as usize)).collect();
            assert_eq!(fp.len(), k - 1);
            assert!(prints.insert(fp), "duplicate fingerprint at row {i}");
        }
    }

    #[test]
    fn applicability_boundary() {
        // C(6, 1) = 6 >= 6 OK; 7 rows impossible.
        assert!(HardInstance::applicable(12, 2, 6));
        assert!(!HardInstance::applicable(12, 2, 7));
        assert!(!HardInstance::applicable(12, 1, 2)); // k must be >= 2
    }

    #[test]
    fn capacity_formula() {
        assert_eq!(HardInstance::capacity(16, 8), 64);
    }

    #[test]
    #[should_panic(expected = "payload must fill")]
    fn wrong_payload_length_panics() {
        HardInstance::encode(12, 2, 4, &[true; 3], 1);
    }
}
