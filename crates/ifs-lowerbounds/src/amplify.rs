//! The ε = o(1) amplification of Theorem 15 (and the same trick inside
//! Theorem 16).
//!
//! Take `m = 1/(50ε)` independent Theorem 15 instances `D₁,…,D_m` (each
//! `v × 2d`), tag every row of `Dᵢ` with the indicator vector of a distinct
//! `((k−1)/2)`-itemset `Tᵢ` over a third block of `d` attributes, and stack:
//! `D` has `m·v` rows and `3d` columns. For an inner query `T*` on `Dᵢ`,
//! the `k`-itemset `T* ∪ T′ᵢ` (tag shifted to the third block) satisfies
//! `f_{T*∪T′ᵢ}(D) = f_{T*}(Dᵢ)/m`, so a single sketch with threshold
//! `ε = (1/50)/m` answers 1/50-threshold queries on **every** `Dᵢ`
//! simultaneously — multiplying the hidden payload by `m = Θ(1/ε)`.

use ifs_core::FrequencyIndicator;
use ifs_database::{BitMatrix, Database, Itemset};
use ifs_util::{combin, Rng64};

use crate::thm15::Thm15Instance;

/// The amplified instance: `m` tagged copies of the Theorem 15 core.
pub struct AmplifiedInstance {
    inner: Vec<Thm15Instance>,
    d: usize,
    k: usize,
    db: Database,
}

impl AmplifiedInstance {
    /// Feasibility: `k` odd ≥ 3, the inner instance (with `k_inner =
    /// (k+1)/2`) feasible, and `m` distinct tags available.
    pub fn feasible(d: usize, k: usize, m: usize) -> bool {
        if k < 3 || k.is_multiple_of(2) || m < 1 {
            return false;
        }
        let tag_size = (k - 1) / 2;
        Thm15Instance::feasible(d, k.div_ceil(2))
            && combin::binomial(d as u64, tag_size as u64) >= m as u128
    }

    /// Message capacity **per sub-instance**; total hidden bits are
    /// `m × this`.
    pub fn capacity_per_instance(d: usize, k: usize) -> Option<usize> {
        Thm15Instance::message_capacity(d, k.div_ceil(2))
    }

    /// Encodes `m` messages (each of [`Self::capacity_per_instance`] bits).
    pub fn encode(d: usize, k: usize, messages: &[Vec<bool>]) -> Self {
        let m = messages.len();
        assert!(Self::feasible(d, k, m), "infeasible (d={d}, k={k}, m={m})");
        let k_inner = k.div_ceil(2);
        let tag_size = ((k - 1) / 2) as u32;
        let inner: Vec<Thm15Instance> =
            messages.iter().map(|msg| Thm15Instance::encode(d, k_inner, msg)).collect();
        let v = inner[0].v();
        let mut big = BitMatrix::zeros(m * v, 3 * d);
        for (idx, inst) in inner.iter().enumerate() {
            let tag = combin::unrank_colex(idx as u64, tag_size);
            for row in 0..v {
                for c in ifs_util::bits::ones(inst.database().matrix().row_words(row)) {
                    big.set(idx * v + row, c, true);
                }
                for &t in &tag {
                    big.set(idx * v + row, 2 * d + t as usize, true);
                }
            }
        }
        Self { inner, d, k, db: Database::from_matrix(big) }
    }

    /// The stacked database (`m·v × 3d`).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Number of sub-instances `m`.
    pub fn m(&self) -> usize {
        self.inner.len()
    }

    /// The sketch threshold this instance is built for: `(1/50)/m`.
    pub fn epsilon(&self) -> f64 {
        (1.0 / 50.0) / self.m() as f64
    }

    /// Total hidden payload bits across all sub-instances.
    pub fn total_message_bits(&self) -> usize {
        self.inner.iter().map(|i| i.message().len()).sum()
    }

    /// The outer `k`-itemset querying sub-instance `idx` with inner pattern
    /// `s` and payload column `j`.
    pub fn query(&self, idx: usize, s: &[bool], j: usize) -> Itemset {
        let inner_query = self.inner[idx].query(s, j);
        let tag = combin::unrank_colex(idx as u64, ((self.k - 1) / 2) as u32);
        let tag_itemset: Itemset = tag.iter().map(|&t| t + 2 * self.d as u32).collect();
        inner_query.union(&tag_itemset)
    }

    /// Attacks every sub-instance through one sketch (threshold
    /// [`Self::epsilon`]); returns per-instance
    /// `(codeword_accuracy, decoded_message)`.
    pub fn attack_all<S: FrequencyIndicator>(
        &self,
        sketch: &S,
        rng: &mut Rng64,
    ) -> Vec<(f64, Option<Vec<bool>>)> {
        let inner_eps = 1.0 / 50.0;
        let v = self.inner[0].v();
        self.inner
            .iter()
            .enumerate()
            .map(|(idx, inst)| {
                let mut recovered = vec![false; inst.d() * v];
                for j in 0..inst.d() {
                    let size = 1usize << v;
                    let mut answers = Vec::with_capacity(size);
                    for mask in 0..size {
                        let s: Vec<bool> = (0..v).map(|i| (mask >> i) & 1 == 1).collect();
                        answers.push(sketch.is_frequent(&self.query(idx, &s, j)));
                    }
                    if let Some(t) = ifs_solver::repair::reconstruct(v, inner_eps, &answers, rng) {
                        for i in 0..v {
                            recovered[j * v + i] = (t >> i) & 1 == 1;
                        }
                    }
                }
                let acc = inst.codeword_accuracy(&recovered);
                let decoded = decode_codeword(&recovered);
                (acc, decoded)
            })
            .collect()
    }

    /// Access to the sub-instances (for truth comparison).
    pub fn inner(&self) -> &[Thm15Instance] {
        &self.inner
    }
}

/// Decodes a recovered codeword with the same deterministic code the inner
/// instance used (parameters are derived from the codeword length alone).
fn decode_codeword(recovered: &[bool]) -> Option<Vec<bool>> {
    ifs_codes::ConcatenatedCode::for_codeword_bits(recovered.len(), 0.04)
        .and_then(|code| code.decode(recovered))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_core::ReleaseDb;

    fn random_messages(m: usize, len: usize, rng: &mut Rng64) -> Vec<Vec<bool>> {
        (0..m).map(|_| (0..len).map(|_| rng.bernoulli(0.5)).collect()).collect()
    }

    #[test]
    fn feasibility() {
        assert!(AmplifiedInstance::feasible(32, 3, 4)); // inner k=2
        assert!(AmplifiedInstance::feasible(32, 5, 8)); // inner k=3
        assert!(!AmplifiedInstance::feasible(32, 4, 4)); // even k
        assert!(!AmplifiedInstance::feasible(32, 3, 1_000_000)); // too many tags
    }

    #[test]
    fn frequencies_scale_by_m() {
        let mut rng = Rng64::seeded(181);
        let (d, k, m) = (32, 3, 4);
        let cap = AmplifiedInstance::capacity_per_instance(d, k).unwrap();
        let msgs = random_messages(m, cap, &mut rng);
        let amp = AmplifiedInstance::encode(d, k, &msgs);
        for idx in 0..m {
            let inst = &amp.inner()[idx];
            for _ in 0..20 {
                let v = inst.v();
                let s: Vec<bool> = (0..v).map(|_| rng.bernoulli(0.5)).collect();
                let j = rng.below(d);
                let inner_f = inst.database().frequency(&inst.query(&s, j));
                let outer_f = amp.database().frequency(&amp.query(idx, &s, j));
                assert!(
                    (outer_f - inner_f / m as f64).abs() < 1e-12,
                    "scaling broken: {outer_f} vs {inner_f}/{m}"
                );
            }
        }
    }

    #[test]
    fn exact_sketch_recovers_all_instances() {
        let mut rng = Rng64::seeded(182);
        let (d, k, m) = (32, 3, 3);
        let cap = AmplifiedInstance::capacity_per_instance(d, k).unwrap();
        let msgs = random_messages(m, cap, &mut rng);
        let amp = AmplifiedInstance::encode(d, k, &msgs);
        let sketch = ReleaseDb::build(amp.database(), amp.epsilon());
        let results = amp.attack_all(&sketch, &mut rng);
        assert_eq!(results.len(), m);
        for (idx, (acc, decoded)) in results.iter().enumerate() {
            assert_eq!(*acc, 1.0, "instance {idx} accuracy");
            assert_eq!(decoded.as_deref().expect("decodes"), &msgs[idx][..], "instance {idx}");
        }
    }

    #[test]
    fn total_payload_scales_linearly_in_m() {
        let mut rng = Rng64::seeded(183);
        let (d, k) = (32, 3);
        let cap = AmplifiedInstance::capacity_per_instance(d, k).unwrap();
        let a2 = AmplifiedInstance::encode(d, k, &random_messages(2, cap, &mut rng));
        let a4 = AmplifiedInstance::encode(d, k, &random_messages(4, cap, &mut rng));
        assert_eq!(a4.total_message_bits(), 2 * a2.total_message_bits());
        assert!(a4.epsilon() < a2.epsilon());
    }

    #[test]
    fn outer_queries_have_cardinality_k() {
        let mut rng = Rng64::seeded(184);
        let (d, k, m) = (32, 5, 2);
        let cap = AmplifiedInstance::capacity_per_instance(d, k).unwrap();
        let msgs = random_messages(m, cap, &mut rng);
        let amp = AmplifiedInstance::encode(d, k, &msgs);
        let v = amp.inner()[0].v();
        let s = vec![true; v];
        assert_eq!(amp.query(1, &s, 0).len(), k);
    }
}
