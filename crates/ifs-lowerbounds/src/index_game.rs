//! Theorem 14: the one-way INDEX reduction, run as a live protocol.
//!
//! INDEX: Alice holds `x ∈ {0,1}^N`, Bob holds `y ∈ [N]`, Alice sends one
//! message, Bob must output `x_y` with probability ≥ 2/3. Any For-Each-
//! Indicator sketch yields a protocol with message length = sketch size:
//! Alice encodes `x` as the Theorem 13 database `D_x`, sends the sketch,
//! and Bob queries the itemset `T_y`. Since INDEX needs Ω(N) communication
//! [Abl96], sketches need Ω(N) = Ω(d/ε) bits.
//!
//! The module runs this protocol with any sketch builder and reports the
//! empirical success probability and the message size actually sent.
//!
//! [Abl96]: https://doi.org/10.1016/0304-3975(95)00157-3

use crate::thm13::HardInstance;
use ifs_core::{FrequencyIndicator, Sketch};
use ifs_database::Database;
use ifs_util::Rng64;

/// Outcome of a batch of INDEX protocol rounds.
#[derive(Clone, Copy, Debug)]
pub struct GameReport {
    /// Instance size `N = (d/2)·(1/ε)` — the information Alice must convey.
    pub n_bits: usize,
    /// Message (sketch) size in bits.
    pub message_bits: u64,
    /// Rounds played.
    pub rounds: usize,
    /// Rounds where Bob answered `x_y` correctly.
    pub correct: usize,
}

impl GameReport {
    /// Empirical success probability.
    pub fn success_rate(&self) -> f64 {
        if self.rounds == 0 {
            return 0.0;
        }
        self.correct as f64 / self.rounds as f64
    }
}

/// Plays `rounds` independent INDEX rounds.
///
/// Each round draws a fresh `x` (a payload for the Theorem 13 family),
/// builds `D_x`, invokes `build_sketch` (Alice's message), picks a uniform
/// index `y` and lets Bob answer by querying the sketch.
pub fn play<S, F>(
    d: usize,
    k: usize,
    inv_eps: usize,
    rounds: usize,
    rng: &mut Rng64,
    mut build_sketch: F,
) -> GameReport
where
    S: FrequencyIndicator + Sketch,
    F: FnMut(&Database, &mut Rng64) -> S,
{
    assert!(HardInstance::applicable(d, k, inv_eps));
    let n_bits = HardInstance::capacity(d, inv_eps);
    let mut correct = 0;
    let mut message_bits = 0u64;
    for _ in 0..rounds {
        // Alice's input.
        let x: Vec<bool> = (0..n_bits).map(|_| rng.bernoulli(0.5)).collect();
        let inst = HardInstance::encode(d, k, inv_eps, &x, 1);
        // Alice's message.
        let sketch = build_sketch(inst.database(), rng);
        message_bits = sketch.size_bits();
        // Bob's index: (row i, payload column j).
        let y = rng.below(n_bits);
        let (i, j) = (y / (d / 2), y % (d / 2));
        let answer = sketch.is_frequent(&inst.query(i, j));
        if answer == x[y] {
            correct += 1;
        }
    }
    GameReport { n_bits, message_bits, rounds, correct }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_core::{Guarantee, ReleaseDb, SketchParams, Subsample};

    #[test]
    fn exact_sketch_wins_always() {
        let mut rng = Rng64::seeded(161);
        let report = play(12, 2, 6, 30, &mut rng, |db, _| ReleaseDb::build(db, 1.0 / 6.0));
        assert_eq!(report.success_rate(), 1.0);
        assert_eq!(report.n_bits, 36);
    }

    #[test]
    fn valid_subsample_beats_two_thirds() {
        let mut rng = Rng64::seeded(162);
        let (d, k, inv_eps) = (12, 2, 6);
        let eps = 1.0 / inv_eps as f64;
        let report = play(d, k, inv_eps, 60, &mut rng, |db, r| {
            let params = SketchParams::new(k, eps, 0.05);
            Subsample::build(db, &params, Guarantee::ForEachIndicator, r)
        });
        assert!(
            report.success_rate() >= 2.0 / 3.0,
            "success {} below INDEX threshold",
            report.success_rate()
        );
    }

    #[test]
    fn starved_sketch_approaches_coin_flipping() {
        // A sketch with a single sampled row cannot carry N bits.
        let mut rng = Rng64::seeded(163);
        let (d, k, inv_eps) = (16, 2, 8);
        let report = play(d, k, inv_eps, 200, &mut rng, |db, r| {
            Subsample::with_sample_count(db, 1, 1.0 / 8.0, r)
        });
        let rate = report.success_rate();
        // One row reveals one fingerprint; most queries are blind guesses.
        assert!(rate < 0.75, "starved sketch too successful: {rate}");
        assert!(rate > 0.3, "rate {rate} suspiciously low for one-sided guessing");
    }

    #[test]
    fn message_size_reported() {
        let mut rng = Rng64::seeded(164);
        let report = play(12, 2, 6, 2, &mut rng, |db, _| ReleaseDb::build(db, 1.0 / 6.0));
        assert!(report.message_bits > 0);
    }
}
