//! Theorem 15 core (ε = 1/50): Ω(k·d·log(d/k)) bits hide inside a
//! `v × 2d` database.
//!
//! Construction: row `i` is `(xᵢ, yᵢ)` where the `xᵢ` are the Fact 18
//! shattered vectors for `k′ = k−1` and the `yᵢ` carry an error-corrected
//! payload. For a payload column `j` with bits `t = (y_{1,j},…,y_{v,j})` and
//! any pattern `s`, the `k`-itemset `T_s ∪ {d+j}` has frequency exactly
//! `⟨s, t⟩/v` — so a valid For-All-Indicator sketch answers threshold
//! queries about every inner product, and the Lemma 19 consistency search
//! ([`ifs_solver::repair`]) pins `t` to within `2⌈εv⌉` bits. The
//! concatenated code then turns 96%-correct columns into an exactly-correct
//! message, proving the sketch stored `Ω(dv) = Ω(k·d·log(d/k))` bits.

use ifs_codes::ConcatenatedCode;
use ifs_core::FrequencyIndicator;
use ifs_database::{BitMatrix, Database, Itemset};
use ifs_solver::repair;
use ifs_util::Rng64;

use crate::shatter::ShatteredSet;

/// The Theorem 15 instance.
pub struct Thm15Instance {
    shatter: ShatteredSet,
    code: ConcatenatedCode,
    message: Vec<bool>,
    /// Codeword bits in column-major layout: `codeword[j*v + i] = y_{i,j}`.
    codeword: Vec<bool>,
    db: Database,
}

impl Thm15Instance {
    /// Checks parameter feasibility: `k ≥ 2`, the shattered set exists
    /// (`d/(k−1)` a power of two), and `d·v` fits one concatenated-code
    /// block (multiple of 32, ≤ 8160).
    pub fn feasible(d: usize, k: usize) -> bool {
        if k < 2 || !d.is_multiple_of(k - 1) {
            return false;
        }
        let block = d / (k - 1);
        if block < 2 || !block.is_power_of_two() {
            return false;
        }
        let v = (k - 1) * block.trailing_zeros() as usize;
        let bits = d * v;
        v <= 24 && bits.is_multiple_of(32) && (96..=8160).contains(&bits)
    }

    /// Message capacity (bits) for given `(d, k)`; `None` when infeasible.
    pub fn message_capacity(d: usize, k: usize) -> Option<usize> {
        if !Self::feasible(d, k) {
            return None;
        }
        let sh = ShatteredSet::new(d, k - 1);
        ConcatenatedCode::for_codeword_bits(d * sh.v(), 0.04).map(|c| c.message_bits())
    }

    /// Encodes `message` (exactly [`Self::message_capacity`] bits).
    pub fn encode(d: usize, k: usize, message: &[bool]) -> Self {
        assert!(Self::feasible(d, k), "infeasible (d={d}, k={k}); see feasible()");
        let shatter = ShatteredSet::new(d, k - 1);
        let v = shatter.v();
        let code = ConcatenatedCode::for_codeword_bits(d * v, 0.04)
            .expect("feasible() guarantees a code exists");
        assert_eq!(message.len(), code.message_bits(), "message must fill capacity");
        let codeword = code.encode(message);
        // Assemble D: v rows over 2d columns.
        let mut m = BitMatrix::zeros(v, 2 * d);
        for i in 0..v {
            for c in ifs_util::bits::ones(shatter.row_words(i)) {
                if c < d {
                    m.set(i, c, true);
                }
            }
            for j in 0..d {
                if codeword[j * v + i] {
                    m.set(i, d + j, true);
                }
            }
        }
        Self { shatter, code, message: message.to_vec(), codeword, db: Database::from_matrix(m) }
    }

    /// The encoded database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The hidden message.
    pub fn message(&self) -> &[bool] {
        &self.message
    }

    /// The number of shattered rows `v`.
    pub fn v(&self) -> usize {
        self.shatter.v()
    }

    /// Attribute count of the *payload half* (`d`); the database has `2d`.
    pub fn d(&self) -> usize {
        self.shatter.d()
    }

    /// The `k`-itemset querying pattern `s` against payload column `j`.
    pub fn query(&self, s: &[bool], j: usize) -> Itemset {
        assert!(j < self.d());
        self.shatter.itemset_for(s).union(&Itemset::singleton((self.d() + j) as u32))
    }

    /// Number of indicator queries a full recovery issues: `d · 2^v`.
    pub fn query_count(&self) -> u64 {
        (self.d() as u64) << self.v()
    }

    /// Recovers payload column `j` through the sketch via Lemma 19.
    ///
    /// `epsilon` is the sketch's threshold parameter (the paper's 1/50).
    pub fn recover_column<S: FrequencyIndicator>(
        &self,
        sketch: &S,
        j: usize,
        epsilon: f64,
        rng: &mut Rng64,
    ) -> Option<u64> {
        let v = self.v();
        let size = 1usize << v;
        let mut answers = Vec::with_capacity(size);
        for mask in 0..size {
            let s: Vec<bool> = (0..v).map(|i| (mask >> i) & 1 == 1).collect();
            answers.push(sketch.is_frequent(&self.query(&s, j)));
        }
        repair::reconstruct(v, epsilon, &answers, rng)
    }

    /// Recovers the full codeword (column by column); unrecoverable columns
    /// fall back to all-zeros and count as errors for the ECC to fix.
    pub fn recover_codeword<S: FrequencyIndicator>(
        &self,
        sketch: &S,
        epsilon: f64,
        rng: &mut Rng64,
    ) -> Vec<bool> {
        let v = self.v();
        let mut out = vec![false; self.codeword.len()];
        for j in 0..self.d() {
            if let Some(t) = self.recover_column(sketch, j, epsilon, rng) {
                for i in 0..v {
                    out[j * v + i] = (t >> i) & 1 == 1;
                }
            }
        }
        out
    }

    /// Fraction of codeword bits recovered correctly.
    pub fn codeword_accuracy(&self, recovered: &[bool]) -> f64 {
        assert_eq!(recovered.len(), self.codeword.len());
        let correct = recovered.iter().zip(&self.codeword).filter(|(a, b)| a == b).count();
        correct as f64 / self.codeword.len() as f64
    }

    /// End-to-end attack: recover the codeword, then ECC-decode the message.
    /// Returns `(codeword_accuracy, decoded_message_if_any)`.
    pub fn attack<S: FrequencyIndicator>(
        &self,
        sketch: &S,
        epsilon: f64,
        rng: &mut Rng64,
    ) -> (f64, Option<Vec<bool>>) {
        let recovered = self.recover_codeword(sketch, epsilon, rng);
        let acc = self.codeword_accuracy(&recovered);
        (acc, self.code.decode(&recovered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_core::ReleaseDb;

    fn random_message(len: usize, rng: &mut Rng64) -> Vec<bool> {
        (0..len).map(|_| rng.bernoulli(0.5)).collect()
    }

    #[test]
    fn feasibility_catalog() {
        assert!(Thm15Instance::feasible(32, 2)); // v=5, 160 bits
        assert!(Thm15Instance::feasible(32, 3)); // v=8, 256 bits
        assert!(Thm15Instance::feasible(64, 3)); // v=10, 640 bits
        assert!(Thm15Instance::feasible(64, 5)); // v=16, 1024 bits
        assert!(!Thm15Instance::feasible(512, 3)); // 8192 bits > one block
        assert!(!Thm15Instance::feasible(12, 3)); // block 6 not a power of 2
        assert!(!Thm15Instance::feasible(8, 1)); // k < 2
    }

    #[test]
    fn query_frequency_is_inner_product() {
        let mut rng = Rng64::seeded(171);
        let (d, k) = (32, 3);
        let msg = random_message(Thm15Instance::message_capacity(d, k).unwrap(), &mut rng);
        let inst = Thm15Instance::encode(d, k, &msg);
        let v = inst.v();
        for _ in 0..50 {
            let s: Vec<bool> = (0..v).map(|_| rng.bernoulli(0.5)).collect();
            let j = rng.below(d);
            let f = inst.database().frequency(&inst.query(&s, j));
            let expect =
                (0..v).filter(|&i| s[i] && inst.codeword[j * v + i]).count() as f64 / v as f64;
            assert!((f - expect).abs() < 1e-12, "f={f} expect={expect}");
        }
    }

    #[test]
    fn exact_sketch_full_recovery() {
        let mut rng = Rng64::seeded(172);
        let (d, k) = (32, 3);
        let eps = 1.0 / 50.0;
        let msg = random_message(Thm15Instance::message_capacity(d, k).unwrap(), &mut rng);
        let inst = Thm15Instance::encode(d, k, &msg);
        let sketch = ReleaseDb::build(inst.database(), eps);
        let (acc, decoded) = inst.attack(&sketch, eps, &mut rng);
        assert_eq!(acc, 1.0, "codeword accuracy");
        assert_eq!(decoded.expect("decodes"), msg);
    }

    #[test]
    fn queries_have_cardinality_k() {
        let mut rng = Rng64::seeded(173);
        let (d, k) = (32, 3);
        let msg = random_message(Thm15Instance::message_capacity(d, k).unwrap(), &mut rng);
        let inst = Thm15Instance::encode(d, k, &msg);
        let s: Vec<bool> = vec![true; inst.v()];
        assert_eq!(inst.query(&s, 5).len(), k);
    }

    #[test]
    fn capacity_grows_with_d() {
        let c32 = Thm15Instance::message_capacity(32, 3).unwrap();
        let c64 = Thm15Instance::message_capacity(64, 3).unwrap();
        assert!(c64 > c32, "capacity must grow: {c32} vs {c64}");
    }

    #[test]
    fn corrupted_sketch_detected_by_ecc() {
        // An adversarial sketch lying about everything: ECC decode fails or
        // returns a wrong message, but accuracy reflects the damage.
        struct Liar;
        impl ifs_core::Sketch for Liar {
            fn size_bits(&self) -> u64 {
                1
            }
        }
        impl FrequencyIndicator for Liar {
            fn is_frequent(&self, _: &Itemset) -> bool {
                true
            }
        }
        let mut rng = Rng64::seeded(174);
        let (d, k) = (32, 3);
        let msg = random_message(Thm15Instance::message_capacity(d, k).unwrap(), &mut rng);
        let inst = Thm15Instance::encode(d, k, &msg);
        let (acc, decoded) = inst.attack(&Liar, 1.0 / 50.0, &mut rng);
        // All-true answers make every column decode to all-ones.
        assert!(acc < 0.9, "accuracy {acc} too high for a liar");
        if let Some(d) = decoded {
            assert_ne!(d, msg, "liar must not yield the true message");
        }
    }
}
