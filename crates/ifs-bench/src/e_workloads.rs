//! Experiments E11–E13: the workload-level comparisons motivating the paper.

use ifs_core::{
    FrequencyEstimator, FrequencyIndicator, Guarantee, Sketch, SketchParams, Subsample,
};
use ifs_database::{generators, Database, Itemset};
use ifs_mining::{apriori, biclique, oracle, rules};
use ifs_streaming::{adapter, MisraGries, SpaceSaving, StreamCounter};
use ifs_util::table::{f, i, Table};
use ifs_util::{combin, Rng64};
use std::time::Instant;

/// E11 — streaming heavy hitters vs SUBSAMPLE at equal space, for frequent
/// pair detection.
pub fn e11_streaming_vs_sampling() -> Vec<Table> {
    let mut rng = Rng64::seeded(0xE11);
    let (n, d, k) = (20_000usize, 24usize, 2usize);
    let plants: Vec<generators::Plant> =
        [(vec![0u32, 1u32], 0.20f64), (vec![2, 3], 0.15), (vec![4, 5], 0.10), (vec![6, 7], 0.06)]
            .iter()
            .map(|(items, freq)| generators::Plant {
                itemset: Itemset::new(items.clone()),
                frequency: *freq,
            })
            .collect();
    let db = generators::planted(n, d, 0.03, &plants, &mut rng);
    let theta = 0.08;
    let truth: Vec<Itemset> = combin::Combinations::new(d as u32, k as u32)
        .map(Itemset::new)
        .filter(|t| db.frequency(t) >= theta)
        .collect();

    let mut t = Table::new(
        "E11: frequent-pair detection at matched space (theta=0.08)",
        &["method", "space_bits", "recall", "precision"],
    );
    let score = |hits: &[Itemset]| -> (f64, f64) {
        let hs: std::collections::HashSet<_> = hits.iter().cloned().collect();
        let ts: std::collections::HashSet<_> = truth.iter().cloned().collect();
        let inter = hs.intersection(&ts).count() as f64;
        (
            if ts.is_empty() { 1.0 } else { inter / ts.len() as f64 },
            if hs.is_empty() { 1.0 } else { inter / hs.len() as f64 },
        )
    };

    let params = SketchParams::new(k, theta, 0.05);
    let sample = Subsample::build(&db, &params, Guarantee::ForEachIndicator, &mut rng);
    let budget = sample.size_bits();
    let hits: Vec<Itemset> = combin::Combinations::new(d as u32, k as u32)
        .map(Itemset::new)
        .filter(|q| sample.is_frequent(q))
        .collect();
    let (r, p) = score(&hits);
    t.row(vec!["subsample".into(), i(budget), f(r), f(p)]);

    let id_bits = adapter::itemset_id_bits(d, k);
    let counters = (budget / (id_bits + 64)).max(1) as usize;
    let mut mg = MisraGries::new(counters, id_bits);
    adapter::feed_rows(&db, k, &mut mg, usize::MAX);
    let hits: Vec<Itemset> = combin::Combinations::new(d as u32, k as u32)
        .map(Itemset::new)
        .filter(|q| adapter::itemset_frequency(&mg, q, n) >= 0.75 * theta)
        .collect();
    let (r, p) = score(&hits);
    t.row(vec!["misra-gries".into(), i(mg.size_bits()), f(r), f(p)]);

    let mut ss = SpaceSaving::new((counters / 2).max(1), id_bits);
    adapter::feed_rows(&db, k, &mut ss, usize::MAX);
    let hits: Vec<Itemset> = combin::Combinations::new(d as u32, k as u32)
        .map(Itemset::new)
        .filter(|q| adapter::itemset_frequency(&ss, q, n) >= 0.75 * theta)
        .collect();
    let (r, p) = score(&hits);
    t.row(vec!["spacesaving".into(), i(ss.size_bits()), f(r), f(p)]);

    // Starved versions: shrink everything 16x and watch who degrades.
    let starved_rows = (sample.rows() / 16).max(1);
    let sample16 = Subsample::with_sample_count(&db, starved_rows, theta, &mut rng);
    let hits: Vec<Itemset> = combin::Combinations::new(d as u32, k as u32)
        .map(Itemset::new)
        .filter(|q| sample16.is_frequent(q))
        .collect();
    let (r, p) = score(&hits);
    t.row(vec!["subsample/16".into(), i(sample16.size_bits()), f(r), f(p)]);

    let mut mg16 = MisraGries::new((counters / 16).max(1), id_bits);
    adapter::feed_rows(&db, k, &mut mg16, usize::MAX);
    let hits: Vec<Itemset> = combin::Combinations::new(d as u32, k as u32)
        .map(Itemset::new)
        .filter(|q| adapter::itemset_frequency(&mg16, q, n) >= 0.75 * theta)
        .collect();
    let (r, p) = score(&hits);
    t.row(vec!["misra-gries/16".into(), i(mg16.size_bits()), f(r), f(p)]);

    vec![t]
}

/// E12 — ε-adequate representations [MT96]: mining and rule quality on a
/// sketch vs the full database, as ε varies.
///
/// [MT96]: https://www.aaai.org/Papers/KDD/1996/KDD96-031.pdf
pub fn e12_mining_on_sketch() -> Vec<Table> {
    let mut rng = Rng64::seeded(0xE12);
    let spec = generators::MarketBasketSpec {
        transactions: 20_000,
        items: 32,
        zipf_exponent: 1.0,
        mean_basket: 5.0,
        bundles: vec![(vec![25, 26, 27], 0.18), (vec![28, 29], 0.12)],
    };
    let db = generators::market_basket(&spec, &mut rng);
    let theta = 0.10;
    let exact = apriori::mine(&db, theta, 3);
    let exact_rules = rules::derive(&exact, 0.5);

    let mut t = Table::new(
        "E12: mining on a sketch vs the database (theta=0.10, k<=3)",
        &[
            "eps",
            "sketch_bits",
            "itemset_recall",
            "itemset_precision",
            "max_freq_err",
            "max_rule_conf_err",
        ],
    );
    for &eps in &[0.05f64, 0.02, 0.01, 0.005] {
        let params = SketchParams::new(3, eps, 0.05);
        let sketch = Subsample::build(&db, &params, Guarantee::ForAllEstimator, &mut rng);
        let mined = oracle::mine_with_estimator(&sketch, db.dims(), theta - eps, 3);
        let (recall, precision) = oracle::recall_precision(&mined, &exact);
        // Frequency error on the exact frequent itemsets.
        let mut freq_err = 0.0f64;
        for m in &exact {
            freq_err = freq_err.max((sketch.estimate(&m.itemset) - m.frequency).abs());
        }
        // Rule-confidence error: [MT96]'s error-propagation measure.
        let sketch_rules = rules::derive(&mined, 0.0);
        let mut conf_err = 0.0f64;
        for er in exact_rules.iter().take(40) {
            if let Some(sr) = sketch_rules
                .iter()
                .find(|r| r.antecedent == er.antecedent && r.consequent == er.consequent)
            {
                conf_err = conf_err.max((sr.confidence - er.confidence).abs());
            }
        }
        t.row(vec![
            f(eps),
            i(sketch.size_bits()),
            f(recall),
            f(precision),
            f(freq_err),
            f(conf_err),
        ]);
    }
    vec![t]
}

/// E13 — §1.1.1 hardness: exact vs greedy balanced-biclique search runtime
/// growth, with planted ground truth.
pub fn e13_biclique() -> Vec<Table> {
    let mut rng = Rng64::seeded(0xE13);
    let mut t = Table::new(
        "E13: balanced biclique — exact (exponential) vs greedy (polynomial)",
        &["d", "n", "planted", "exact_size", "exact_ms", "greedy_size", "greedy_ms"],
    );
    for &d in &[8usize, 12, 16, 18] {
        let n = 3 * d;
        let planted = d / 2;
        let mut db = Database::zeros(n, d);
        biclique::plant_biclique(&mut db, planted, planted, &mut rng);
        // Light noise.
        for _ in 0..(n * d / 20) {
            let (r, c) = (rng.below(n), rng.below(d));
            db.matrix_mut().set(r, c, true);
        }
        let t0 = Instant::now();
        let exact = biclique::max_balanced_exact(&db);
        let exact_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let greedy = biclique::max_balanced_greedy(&db);
        let greedy_ms = t1.elapsed().as_secs_f64() * 1e3;
        t.row(vec![
            i(d as u64),
            i(n as u64),
            i(planted as u64),
            i(exact.balanced_size() as u64),
            f(exact_ms),
            i(greedy.balanced_size() as u64),
            f(greedy_ms),
        ]);
    }
    let mut s = Table::new("E13 summary: exact runtime grows exponentially in d", &["note"]);
    s.row(vec![stats_note()]);
    vec![t, s]
}

fn stats_note() -> String {
    "finding a maximum balanced biclique (= approx-maximal frequent itemset, §1.1.1) is NP-hard; \
     the exact column's doubling per +2 attributes is the hardness made visible"
        .to_string()
}
