//! Experiments E1, E2, E9, E10: the upper-bound side of the paper.

use ifs_core::{
    boosting::MedianBoost, FrequencyEstimator, ReleaseAnswersEstimator, ReleaseAnswersIndicator,
    ReleaseDb, Sketch,
};
use ifs_core::{bounds, Guarantee, SketchParams, Subsample};
use ifs_database::{generators, Itemset};
use ifs_util::table::{f, i, Table};
use ifs_util::{combin, stats, Rng64};

/// E1 — Theorem 12: realized sketch sizes of the three naive algorithms
/// against the closed-form bounds, across a parameter grid.
pub fn e1_naive_sizes() -> Vec<Table> {
    let mut rng = Rng64::seeded(0xE1);
    let mut t = Table::new(
        "E1: naive sketch sizes (bits) vs Theorem 12 formulas",
        &[
            "n",
            "d",
            "k",
            "eps",
            "guarantee",
            "release_db",
            "release_ans",
            "subsample",
            "formula_min",
            "winner",
        ],
    );
    for &(n, d, k, eps) in &[
        (2_000usize, 16usize, 2usize, 0.05f64),
        (2_000, 16, 2, 0.01),
        (20_000, 16, 2, 0.05),
        (20_000, 24, 3, 0.05),
        (20_000, 24, 3, 0.02),
        (50_000, 32, 2, 0.1),
    ] {
        let db = generators::uniform(n, d, 0.3, &mut rng);
        let params = SketchParams::new(k, eps, 0.1);
        for guarantee in [Guarantee::ForAllIndicator, Guarantee::ForAllEstimator] {
            let rdb = ReleaseDb::build(&db, eps);
            let sub = Subsample::build(&db, &params, guarantee, &mut rng);
            let ans_bits = if guarantee.is_estimator() {
                ReleaseAnswersEstimator::build(&db, k, eps).size_bits()
            } else {
                ReleaseAnswersIndicator::build(&db, k, eps).size_bits()
            };
            let regime =
                bounds::Regime { n: n as u64, d: d as u64, k: k as u64, epsilon: eps, delta: 0.1 };
            t.row(vec![
                i(n as u64),
                i(d as u64),
                i(k as u64),
                f(eps),
                guarantee.name().into(),
                i(rdb.size_bits()),
                i(ans_bits),
                i(sub.size_bits()),
                f(bounds::naive_upper_bound_bits(&regime, guarantee)),
                bounds::naive_winner(&regime, guarantee).into(),
            ]);
        }
    }
    vec![t]
}

/// E2 — Lemma 9 / Lemmas 10–11: empirical failure rate of SUBSAMPLE vs the
/// Chernoff predictions, as the sample count grows.
pub fn e2_subsample_accuracy() -> Vec<Table> {
    let mut rng = Rng64::seeded(0xE2);
    let (n, d) = (40_000, 16);
    let target = Itemset::new(vec![2, 7]);
    let db = generators::planted(
        n,
        d,
        0.05,
        &[generators::Plant { itemset: target.clone(), frequency: 0.25 }],
        &mut rng,
    );
    let truth = db.frequency(&target);
    let eps = 0.05;
    let trials = 250;
    let mut t = Table::new(
        "E2: SUBSAMPLE empirical failure rate vs Hoeffding bound (for-each estimator, eps=0.05)",
        &["samples_s", "empirical_fail", "hoeffding_bound", "mean_abs_err"],
    );
    for s in [50usize, 100, 200, 400, 800, 1600, 3200] {
        let mut fails = 0usize;
        let mut errs = Vec::with_capacity(trials);
        for _ in 0..trials {
            let sk = Subsample::with_sample_count(&db, s, eps, &mut rng);
            let e = (sk.estimate(&target) - truth).abs();
            errs.push(e);
            if e > eps {
                fails += 1;
            }
        }
        t.row(vec![
            i(s as u64),
            f(fails as f64 / trials as f64),
            f(ifs_util::tail::hoeffding_additive_bound(s as u64, eps)),
            f(stats::mean(&errs)),
        ]);
    }
    vec![t]
}

/// E9 — Theorem 17's boosting: max error over all k-itemsets of the median
/// of r independent For-Each sketches, as r grows.
pub fn e9_median_boost() -> Vec<Table> {
    let mut rng = Rng64::seeded(0xE9);
    let (n, d, k, eps) = (20_000, 12, 2, 0.05);
    let db = generators::uniform(n, d, 0.3, &mut rng);
    let params = SketchParams::new(k, eps, 0.2); // weak per-copy guarantee
    let per_copy = Subsample::sample_count(d, &params, Guarantee::ForEachEstimator);
    let mut t = Table::new(
        "E9: For-Each -> For-All via median boosting (eps=0.05, per-copy delta=0.2)",
        &["copies_r", "total_bits", "max_err_all_itemsets", "p99_err", "meets_eps"],
    );
    let r_star = MedianBoost::<Subsample>::copies_for(d, k, 0.05);
    for r in [1usize, 3, 7, 15, 31, r_star] {
        let boost = MedianBoost::build_with(r, |_| {
            Subsample::with_sample_count(&db, per_copy, eps, &mut rng)
        });
        let mut errs = Vec::new();
        for comb in combin::Combinations::new(d as u32, k as u32) {
            let itemset = Itemset::new(comb);
            errs.push((boost.estimate(&itemset) - db.frequency(&itemset)).abs());
        }
        let max = errs.iter().fold(0.0f64, |a, &b| a.max(b));
        t.row(vec![
            i(r as u64),
            i(boost.size_bits()),
            f(max),
            f(stats::quantile(&errs, 0.99)),
            (if max <= eps { "yes" } else { "no" }).into(),
        ]);
    }
    vec![t]
}

/// E10 — §3.1 tightness: where each naive algorithm wins, and the gap
/// between the naive upper bound and the strongest proven lower bound.
pub fn e10_tightness() -> Vec<Table> {
    let mut t = Table::new(
        "E10: upper/lower bound tightness across regimes (bits)",
        &["d", "k", "eps", "guarantee", "upper_bound", "winner", "lower_bound", "ub_over_lb"],
    );
    for &(d, k, inv_eps) in &[
        (64u64, 2u64, 16u64),
        (64, 3, 16),
        (128, 3, 32),
        (256, 3, 64),
        (256, 5, 64),
        (512, 5, 128),
    ] {
        let eps = 1.0 / inv_eps as f64;
        // n large enough for every lower bound to apply.
        let regime = bounds::Regime { n: 1 << 40, d, k, epsilon: eps, delta: 0.1 };
        for guarantee in Guarantee::ALL {
            let ub = bounds::naive_upper_bound_bits(&regime, guarantee);
            let lb = bounds::best_lower_bound_bits(&regime, guarantee);
            t.row(vec![
                i(d),
                i(k),
                f(eps),
                guarantee.name().into(),
                f(ub),
                bounds::naive_winner(&regime, guarantee).into(),
                lb.map_or("n/a".into(), f),
                lb.map_or("n/a".into(), |l| f(ub / l)),
            ]);
        }
    }
    vec![t]
}
