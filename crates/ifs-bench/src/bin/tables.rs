//! Regenerates the experiment tables of EXPERIMENTS.md.
//!
//! Usage:
//!   cargo run -p ifs-bench --bin tables --release            # all experiments
//!   cargo run -p ifs-bench --bin tables --release -- e6 e8   # a subset
//!
//! Each table is printed to stdout and written as CSV under bench_results/.

use std::fs;
use std::path::Path;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ifs_bench::ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let out_dir = Path::new("bench_results");
    fs::create_dir_all(out_dir).expect("create bench_results/");
    let started = Instant::now();
    for id in &ids {
        let t0 = Instant::now();
        let tables = ifs_bench::run(id);
        for (idx, table) in tables.iter().enumerate() {
            println!("{}", table.render());
            let file = out_dir.join(format!("{id}_{idx}.csv"));
            fs::write(&file, table.to_csv()).expect("write csv");
            println!("  -> {}\n", file.display());
        }
        eprintln!("[{id}] done in {:.1}s", t0.elapsed().as_secs_f64());
    }
    eprintln!("all requested experiments done in {:.1}s", started.elapsed().as_secs_f64());
}
