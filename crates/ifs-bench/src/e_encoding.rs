//! Experiments E3–E7: the indicator-sketch encoding arguments.

use ifs_core::{ReleaseDb, Sketch, Subsample};
use ifs_lowerbounds::amplify::AmplifiedInstance;
use ifs_lowerbounds::index_game;
use ifs_lowerbounds::shatter::ShatteredSet;
use ifs_lowerbounds::thm13::HardInstance;
use ifs_lowerbounds::thm15::Thm15Instance;
use ifs_util::table::{f, i, Table};
use ifs_util::{stats, Rng64};

fn random_bits(len: usize, rng: &mut Rng64) -> Vec<bool> {
    (0..len).map(|_| rng.bernoulli(0.5)).collect()
}

/// E3 — Theorem 13: payload recovery rate through budgeted sketches. The
/// transition should sit near the payload size `d/(2ε)` bits.
pub fn e3_thm13_attack() -> Vec<Table> {
    let mut rng = Rng64::seeded(0xE3);
    let mut t = Table::new(
        "E3: Theorem 13 attack — recovery vs sketch budget (payload = d/(2eps) bits)",
        &["d", "k", "inv_eps", "payload_bits", "sample_rows", "sketch_bits", "recovery_rate"],
    );
    for &(d, k, inv_eps) in &[(32usize, 2usize, 16usize), (32, 3, 16), (64, 2, 32)] {
        let payload = random_bits(HardInstance::capacity(d, inv_eps), &mut rng);
        let inst = HardInstance::encode(d, k, inv_eps, &payload, 4);
        // Exact sketch first, then a budget ladder.
        let exact = ReleaseDb::build(inst.database(), inst.epsilon());
        let full_rate = inst.recovery_rate(&inst.decode(&exact));
        t.row(vec![
            i(d as u64),
            i(k as u64),
            i(inv_eps as u64),
            i(payload.len() as u64),
            "exact".into(),
            i(exact.size_bits()),
            f(full_rate),
        ]);
        for rows in [inv_eps * 4, inv_eps * 2, inv_eps, inv_eps / 2, inv_eps / 4, 1] {
            let mut rates = Vec::new();
            let mut bits = 0;
            for _ in 0..5 {
                let sk = Subsample::with_sample_count(
                    inst.database(),
                    rows.max(1),
                    inst.epsilon(),
                    &mut rng,
                );
                bits = sk.size_bits();
                rates.push(inst.recovery_rate(&inst.decode(&sk)));
            }
            t.row(vec![
                i(d as u64),
                i(k as u64),
                i(inv_eps as u64),
                i(payload.len() as u64),
                i(rows.max(1) as u64),
                i(bits),
                f(stats::mean(&rates)),
            ]);
        }
    }
    vec![t]
}

/// E4 — Theorem 14: INDEX protocol success probability vs message size.
pub fn e4_index_game() -> Vec<Table> {
    let mut rng = Rng64::seeded(0xE4);
    let mut t = Table::new(
        "E4: INDEX game via For-Each-Indicator sketches (threshold 2/3)",
        &["d", "inv_eps", "N_bits", "strategy", "message_bits", "success_rate"],
    );
    for &(d, inv_eps) in &[(16usize, 8usize), (32, 16)] {
        let rounds = 150;
        // Exact sketch — perfect protocol.
        let r = index_game::play(d, 2, inv_eps, rounds, &mut rng, |db, _| {
            ReleaseDb::build(db, 1.0 / inv_eps as f64)
        });
        t.row(vec![
            i(d as u64),
            i(inv_eps as u64),
            i(r.n_bits as u64),
            "release-db".into(),
            i(r.message_bits),
            f(r.success_rate()),
        ]);
        // Budget ladder of subsamples.
        for rows in [2 * inv_eps, inv_eps, inv_eps / 2, 1] {
            let r = index_game::play(d, 2, inv_eps, rounds, &mut rng, |db, rg| {
                Subsample::with_sample_count(db, rows.max(1), 1.0 / inv_eps as f64, rg)
            });
            t.row(vec![
                i(d as u64),
                i(inv_eps as u64),
                i(r.n_bits as u64),
                format!("subsample-{}", rows.max(1)),
                i(r.message_bits),
                f(r.success_rate()),
            ]);
        }
    }
    vec![t]
}

/// E5 — Fact 18: exhaustive shattering verification across (d, k′).
pub fn e5_shattering() -> Vec<Table> {
    let mut t = Table::new(
        "E5: Fact 18 shattered sets — all 2^v patterns realized by k'-itemsets",
        &["d", "k_prime", "v", "patterns_checked", "all_realized"],
    );
    for &(d, kp) in
        &[(8usize, 1usize), (16, 1), (8, 2), (16, 2), (32, 2), (12, 3), (24, 3), (16, 4), (64, 2)]
    {
        let sh = ShatteredSet::new(d, kp);
        let v = sh.v();
        let mut all_ok = true;
        let total = 1u64 << v;
        for mask in 0..total {
            let s: Vec<bool> = (0..v).map(|b| (mask >> b) & 1 == 1).collect();
            if sh.pattern_of(&sh.itemset_for(&s)) != s {
                all_ok = false;
                break;
            }
        }
        t.row(vec![
            i(d as u64),
            i(kp as u64),
            i(v as u64),
            i(total),
            (if all_ok { "yes" } else { "NO" }).into(),
        ]);
    }
    vec![t]
}

/// E6 — Theorem 15 core: hidden-message survival vs sketch budget across
/// (d, k); capacity column shows the Ω(k·d·log(d/k)) growth.
pub fn e6_thm15_core() -> Vec<Table> {
    let mut rng = Rng64::seeded(0xE6);
    let eps = 1.0 / 50.0;
    let mut cap = Table::new(
        "E6a: Theorem 15 payload capacity vs k*d*log(d/k)",
        &["d", "k", "v", "codeword_bits_dv", "message_bits", "kd_log_dk"],
    );
    let mut atk = Table::new(
        "E6b: Theorem 15 attack — message survival vs sketch budget",
        &["d", "k", "sample_rows", "sketch_bits", "codeword_acc", "message_ok"],
    );
    for &(d, k) in &[(32usize, 2usize), (32, 3), (64, 3), (64, 5), (128, 3)] {
        let capacity = Thm15Instance::message_capacity(d, k).expect("feasible");
        let msg = random_bits(capacity, &mut rng);
        let inst = Thm15Instance::encode(d, k, &msg);
        let kd = k as f64 * d as f64 * (d as f64 / k as f64).log2();
        cap.row(vec![
            i(d as u64),
            i(k as u64),
            i(inst.v() as u64),
            i((d * inst.v()) as u64),
            i(capacity as u64),
            f(kd),
        ]);
        // Exact sketch.
        let exact = ReleaseDb::build(inst.database(), eps);
        let (acc, decoded) = inst.attack(&exact, eps, &mut rng);
        atk.row(vec![
            i(d as u64),
            i(k as u64),
            "exact".into(),
            i(exact.size_bits()),
            f(acc),
            (if decoded.as_deref() == Some(&msg[..]) { "yes" } else { "lost" }).into(),
        ]);
        // Budget ladder (only for the smaller instances to keep runtime sane).
        if d <= 64 {
            for rows in [inst.v() * 4, inst.v(), inst.v() / 2, 2] {
                let sk = Subsample::with_sample_count(inst.database(), rows, eps, &mut rng);
                let (acc, decoded) = inst.attack(&sk, eps, &mut rng);
                atk.row(vec![
                    i(d as u64),
                    i(k as u64),
                    i(rows as u64),
                    i(sk.size_bits()),
                    f(acc),
                    (if decoded.as_deref() == Some(&msg[..]) { "yes" } else { "lost" }).into(),
                ]);
            }
        }
    }
    vec![cap, atk]
}

/// E7 — Theorem 15 amplification: total hidden bits vs 1/ε (log-log slope
/// should be ≈ 1).
pub fn e7_amplification() -> Vec<Table> {
    let mut rng = Rng64::seeded(0xE7);
    let (d, k) = (32usize, 3usize);
    let cap = AmplifiedInstance::capacity_per_instance(d, k).expect("feasible");
    let mut t = Table::new(
        "E7: amplification — payload scales as 1/eps (d=32, k=3)",
        &["m", "eps", "total_payload_bits", "all_recovered", "mean_cw_acc"],
    );
    let mut inv_eps_series = Vec::new();
    let mut bits_series = Vec::new();
    for m in [1usize, 2, 4, 8] {
        let msgs: Vec<Vec<bool>> = (0..m).map(|_| random_bits(cap, &mut rng)).collect();
        let amp = AmplifiedInstance::encode(d, k, &msgs);
        let sketch = ReleaseDb::build(amp.database(), amp.epsilon());
        let results = amp.attack_all(&sketch, &mut rng);
        let all_ok =
            results.iter().zip(&msgs).all(|((_, dec), msg)| dec.as_deref() == Some(&msg[..]));
        let mean_acc = stats::mean(&results.iter().map(|(a, _)| *a).collect::<Vec<_>>());
        t.row(vec![
            i(m as u64),
            f(amp.epsilon()),
            i(amp.total_message_bits() as u64),
            (if all_ok { "yes" } else { "NO" }).into(),
            f(mean_acc),
        ]);
        inv_eps_series.push(1.0 / amp.epsilon());
        bits_series.push(amp.total_message_bits() as f64);
    }
    let slope = stats::loglog_slope(&inv_eps_series, &bits_series);
    let mut s = Table::new("E7 summary: log-log slope of payload vs 1/eps", &["slope", "expected"]);
    s.row(vec![f(slope), "1.0".into()]);
    vec![t, s]
}
