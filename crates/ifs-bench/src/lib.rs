//! Experiment harness: regenerates every table/series in EXPERIMENTS.md.
//!
//! The paper has no measurement tables of its own (it is a theory paper);
//! the reproducible artifacts are the theorem-shaped quantities listed in
//! DESIGN.md §4 (experiments E1–E13). Each `eN` function returns one or
//! more [`ifs_util::table::Table`]s; the `tables` binary renders them to
//! stdout and CSV files under `bench_results/`.
//!
//! Criterion benches (in `benches/`) cover the *time* dimension of the same
//! code paths; the tables here cover the *space and accuracy* dimensions,
//! which is what the paper is about.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod e_encoding;
pub mod e_estimator;
pub mod e_naive;
pub mod e_workloads;

use ifs_util::table::Table;

/// All experiment ids in order.
pub const ALL_EXPERIMENTS: [&str; 13] =
    ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13"];

/// Runs one experiment by id.
pub fn run(id: &str) -> Vec<Table> {
    match id {
        "e1" => e_naive::e1_naive_sizes(),
        "e2" => e_naive::e2_subsample_accuracy(),
        "e3" => e_encoding::e3_thm13_attack(),
        "e4" => e_encoding::e4_index_game(),
        "e5" => e_encoding::e5_shattering(),
        "e6" => e_encoding::e6_thm15_core(),
        "e7" => e_encoding::e7_amplification(),
        "e8" => e_estimator::e8_lp_decoding(),
        "e9" => e_naive::e9_median_boost(),
        "e10" => e_naive::e10_tightness(),
        "e11" => e_workloads::e11_streaming_vs_sampling(),
        "e12" => e_workloads::e12_mining_on_sketch(),
        "e13" => e_workloads::e13_biclique(),
        other => panic!("unknown experiment id '{other}'; known: {ALL_EXPERIMENTS:?}"),
    }
}
