//! Experiment E8: the Theorem 16 estimator machinery (Lemmas 20–27).

use ifs_lowerbounds::thm16::{perturb_answers, RowProductInstance};
use ifs_util::table::{f, i, Table};
use ifs_util::{stats, Rng64};

fn random_bits(len: usize, rng: &mut Rng64) -> Vec<bool> {
    (0..len).map(|_| rng.bernoulli(0.5)).collect()
}

/// E8 — four series:
/// (i) Rudelson's σ_min(A)/√L across sizes (Lemma 26),
/// (ii) Euclidean-section δ of range(A) (Definition 23),
/// (iii) L1-decoding success vs noise ε and columns n (the 1/ε² barrier),
/// (iv) L1 vs L2 under average-error noise with gross outliers (§4.1.1).
pub fn e8_lp_decoding() -> Vec<Table> {
    let mut rng = Rng64::seeded(0xE8);

    // (i) + (ii): spectral and section measurements on the ensemble.
    let mut spec = Table::new(
        "E8a: row-product spectra (Lemma 26) and Euclidean sections (Def 23)",
        &[
            "d0",
            "k_minus_1",
            "L_rows",
            "n_cols",
            "sigma_min",
            "sigma_min_over_sqrtL",
            "delta_section",
        ],
    );
    for &(d0, km1) in &[(4usize, 2usize), (6, 2), (8, 2), (10, 2), (12, 2), (4, 3)] {
        let l = d0.pow(km1 as u32);
        let n = (3 * l) / 4; // the n ≲ L regime of the lemma
        let mut sig_norm = Vec::new();
        let mut deltas = Vec::new();
        let mut sigma_last = 0.0;
        for _ in 0..3 {
            let inst = RowProductInstance::new(d0, km1, &random_bits(n, &mut rng), &mut rng);
            sigma_last = inst.sigma_min();
            sig_norm.push(sigma_last / (l as f64).sqrt());
            deltas.push(inst.section_delta(40, &mut rng));
        }
        spec.row(vec![
            i(d0 as u64),
            i(km1 as u64),
            i(l as u64),
            i(n as u64),
            f(sigma_last),
            f(stats::mean(&sig_norm)),
            f(stats::mean(&deltas)),
        ]);
    }

    // (iii): decoding success vs (n, eps): works while eps ≲ c/√n.
    let mut barrier = Table::new(
        "E8b: L1 decoding accuracy vs noise eps and secret length n (d0=8, k=3)",
        &["n", "eps", "eps_times_sqrt_n", "l1_accuracy"],
    );
    for &n in &[16usize, 32, 48] {
        for &scale in &[0.25f64, 0.5, 1.0, 2.0, 4.0] {
            let eps = scale / (n as f64).sqrt() / 4.0;
            let mut accs = Vec::new();
            for _ in 0..3 {
                let secret = random_bits(n, &mut rng);
                let inst = RowProductInstance::new(8, 2, &secret, &mut rng);
                let noisy = perturb_answers(&inst.exact_answers(), eps, 0.0, &mut rng);
                let acc = inst.recover_l1(&noisy).map(|dec| inst.accuracy(&dec)).unwrap_or(0.0);
                accs.push(acc);
            }
            barrier.row(vec![
                i(n as u64),
                f(eps),
                f(eps * (n as f64).sqrt()),
                f(stats::mean(&accs)),
            ]);
        }
    }

    // (iv): L1 vs L2 under gross outliers — the ablation of §4.1.1.
    let mut ablation = Table::new(
        "E8c: L1 (De) vs L2 (KRSU) decoding under average-error noise (n=24, d0=8, k=3)",
        &["gross_fraction", "l1_accuracy", "l2_accuracy"],
    );
    for &gross in &[0.0f64, 0.05, 0.10, 0.20, 0.30] {
        let mut l1a = Vec::new();
        let mut l2a = Vec::new();
        for _ in 0..4 {
            let secret = random_bits(24, &mut rng);
            let inst = RowProductInstance::new(8, 2, &secret, &mut rng);
            let noisy = perturb_answers(&inst.exact_answers(), 0.01, gross, &mut rng);
            l1a.push(inst.recover_l1(&noisy).map(|d| inst.accuracy(&d)).unwrap_or(0.0));
            l2a.push(inst.accuracy(&inst.recover_l2(&noisy)));
        }
        ablation.row(vec![f(gross), f(stats::mean(&l1a)), f(stats::mean(&l2a))]);
    }

    vec![spec, barrier, ablation]
}
