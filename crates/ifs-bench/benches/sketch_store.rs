//! Criterion: the sketch store's space and throughput claims (DESIGN.md §14).
//!
//! Three claims get numbers here, all on the sparse workload the v2
//! `ReleaseDb` layout was designed for (10k × 128 at ~3% density):
//!
//! * **Space** — the v2 run-length body is at least **2×** smaller than
//!   the v1 raw-words body on sparse data. The smoke pass *asserts* the
//!   ratio, so the claim cannot silently rot.
//! * **Throughput** — log append, recovery replay (open + strict scan),
//!   and compaction, in MB/s over the on-disk log size.
//! * **Identity** — every pass decodes the v1 and v2 frames back and
//!   asserts `==` with the source sketch, and materializes the compacted
//!   log to the same frames as the original: the speed being measured is
//!   the speed of the *correct* code path.
//!
//! The gate emits `bench_results/BENCH_store.json` (sizes, ratio, MB/s)
//! with the usual `mode` field so debug smoke numbers are never read as
//! release measurements. Run with `cargo bench -p ifs-bench --bench
//! sketch_store`; under `cargo test --benches` each body runs once.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ifs_core::snapshot::Snapshot;
use ifs_core::ReleaseDb;
use ifs_database::generators;
use ifs_store::{LogOp, SketchLog};
use ifs_util::Rng64;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Full scale in release; the debug smoke shrinks the database (ratios and
/// identities are scale-free).
const ROWS: usize = if cfg!(debug_assertions) { 1_000 } else { 10_000 };
const DIMS: usize = 128;
const DENSITY: f64 = 0.03;
const SEED: u64 = 0x5702E;
/// The space claim under test: v2 must be at least this factor smaller.
const MIN_V2_RATIO: f64 = 2.0;
/// Shards the sparse database into this many logged merge partials.
const LOG_SHARDS: usize = 16;

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        Scratch(std::env::temp_dir().join(format!("ifs-bench-{}-{tag}.log", std::process::id())))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn sparse_release_db() -> ReleaseDb {
    let mut rng = Rng64::seeded(SEED);
    ReleaseDb::build(&generators::uniform(ROWS, DIMS, DENSITY, &mut rng), 0.05)
}

/// Shards the database row-wise into `LOG_SHARDS` ReleaseDb partials, the
/// shape a streaming ingester logs as one merge run.
fn shard_frames(db: &ifs_database::Database) -> Vec<Vec<u8>> {
    let chunk = db.rows().div_ceil(LOG_SHARDS);
    (0..db.rows())
        .step_by(chunk)
        .map(|start| {
            let rows: Vec<Vec<u32>> = (start..(start + chunk).min(db.rows()))
                .map(|r| db.row_itemset(r).items().to_vec())
                .collect();
            ReleaseDb::build(&ifs_database::Database::from_rows(DIMS, &rows), 0.05).snapshot_bytes()
        })
        .collect()
}

struct Numbers {
    v1_bytes: usize,
    v2_bytes: usize,
    ratio: f64,
    append_mbps: f64,
    replay_mbps: f64,
    compact_mbps: f64,
    log_bytes: u64,
    log_records: u64,
}

/// One full measured pass: sizes, append, replay, compact — with the
/// identity assertions inline.
fn measured_pass(iters: usize) -> Numbers {
    let rdb = sparse_release_db();
    let v1 = rdb.snapshot_bytes_v1();
    let v2 = rdb.snapshot_bytes();
    // Identity across the version boundary, every pass.
    assert_eq!(ReleaseDb::from_snapshot(&v1).expect("v1 decodes"), rdb);
    assert_eq!(ReleaseDb::from_snapshot(&v2).expect("v2 decodes"), rdb);
    let ratio = v1.len() as f64 / v2.len() as f64;
    assert!(
        ratio >= MIN_V2_RATIO,
        "v2 ReleaseDb must be ≥{MIN_V2_RATIO}x smaller than v1 on sparse {ROWS}x{DIMS} \
         (got {} vs {} bytes, {ratio:.2}x)",
        v2.len(),
        v1.len(),
    );

    let mut rng = Rng64::seeded(SEED);
    let db = generators::uniform(ROWS, DIMS, DENSITY, &mut rng);
    let frames = shard_frames(&db);

    // Append: one merge run plus a few puts, timed over the log bytes.
    let scratch = Scratch::new("append");
    let mut append_secs = 0.0;
    let mut log_bytes = 0;
    let mut log_records = 0;
    for _ in 0..iters {
        let t = Instant::now();
        let mut log = SketchLog::create(&scratch.0).expect("create");
        for frame in &frames {
            log.append(LogOp::Merge, 0, frame).expect("append");
        }
        log.append(LogOp::Put, 1, &v2).expect("append");
        log.append(LogOp::Put, 2, &v1).expect("append");
        append_secs += t.elapsed().as_secs_f64();
        log_bytes = log.len_bytes();
        log_records = log.record_count();
    }

    // Replay: recovery open + strict scan of the whole file.
    let mut replay_secs = 0.0;
    for _ in 0..iters {
        let t = Instant::now();
        let (log, report) = SketchLog::open(&scratch.0).expect("open");
        assert!(report.clean());
        black_box(log.records().expect("scan").len());
        replay_secs += t.elapsed().as_secs_f64();
    }

    // Compact: fold the merge run, write the superseding log — then
    // assert the compacted log materializes identically.
    let (src, _) = SketchLog::open(&scratch.0).expect("open");
    let dst = Scratch::new("compact");
    let mut compact_secs = 0.0;
    let mut stats = None;
    for _ in 0..iters {
        let t = Instant::now();
        let (_, s) = src.compact_into(&dst.0).expect("compact");
        compact_secs += t.elapsed().as_secs_f64();
        stats = Some(s);
    }
    let stats = stats.expect("at least one iter");
    let (compacted, _) = SketchLog::open(&dst.0).expect("reopen");
    assert_eq!(
        compacted.materialize().expect("m"),
        src.materialize().expect("m"),
        "compacted == uncompacted"
    );
    assert_eq!(stats.records_out, 3, "one Put per live id");
    assert!(stats.bytes_out < stats.bytes_in);
    // The folded merge run equals the one-shot build over all rows.
    let folded =
        ReleaseDb::from_snapshot(&compacted.materialize().expect("m")[&0]).expect("decode");
    assert_eq!(folded, ReleaseDb::build(&db, 0.05), "fold == one-shot build");

    let mb = log_bytes as f64 / (1024.0 * 1024.0) * iters as f64;
    Numbers {
        v1_bytes: v1.len(),
        v2_bytes: v2.len(),
        ratio,
        append_mbps: mb / append_secs.max(1e-12),
        replay_mbps: mb / replay_secs.max(1e-12),
        compact_mbps: mb / compact_secs.max(1e-12),
        log_bytes,
        log_records,
    }
}

fn bench_store_paths(c: &mut Criterion) {
    let rdb = sparse_release_db();
    let v2 = rdb.snapshot_bytes();
    let scratch = Scratch::new("crit");
    let mut g = c.benchmark_group("sketch_store");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(v2.len() as u64));
    g.bench_function("append_put", |b| {
        b.iter(|| {
            let mut log = SketchLog::create(&scratch.0).expect("create");
            log.append(LogOp::Put, 0, black_box(&v2)).expect("append");
            black_box(log.len_bytes())
        })
    });
    g.bench_function("replay_open_scan", |b| {
        let mut log = SketchLog::create(&scratch.0).expect("create");
        log.append(LogOp::Put, 0, &v2).expect("append");
        drop(log);
        b.iter(|| {
            let (log, _) = SketchLog::open(black_box(&scratch.0)).expect("open");
            black_box(log.records().expect("scan").len())
        })
    });
    g.finish();
}

/// The space-and-identity gate: asserts the ≥2x claim and writes
/// `BENCH_store.json` — on every CI run via the smoke pass.
fn bench_store_gate(c: &mut Criterion) {
    let iters = if cfg!(debug_assertions) { 1 } else { 10 };
    let n = measured_pass(iters);
    println!(
        "sketch_store: ReleaseDb v1 {} bytes, v2 {} bytes ({:.2}x smaller) on sparse \
         {ROWS}x{DIMS} @ {DENSITY}",
        n.v1_bytes, n.v2_bytes, n.ratio
    );
    println!(
        "sketch_store: log {} bytes / {} records; append {:.1} MB/s replay {:.1} MB/s \
         compact {:.1} MB/s",
        n.log_bytes, n.log_records, n.append_mbps, n.replay_mbps, n.compact_mbps
    );
    write_bench_json(&n);

    let mut g = c.benchmark_group("sketch_store_gate");
    g.bench_function("noop", |b| b.iter(|| black_box(0)));
    g.finish();
}

/// Hand-rolled JSON (DESIGN.md §6: no serde) under the workspace's
/// `bench_results/`, mirroring the other artifacts; the `mode` field keeps
/// debug smoke numbers from ever being read as release measurements.
fn write_bench_json(n: &Numbers) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("sketch_store: cannot create {}: {e}", dir.display());
        return;
    }
    let mode = if cfg!(debug_assertions) { "debug" } else { "release" };
    let json = format!(
        "{{\n  \"bench\": \"sketch_store\",\n  \"mode\": \"{mode}\",\n  \"rows\": {ROWS},\n  \
         \"dims\": {DIMS},\n  \"density\": {DENSITY},\n  \"release_db\": {{\n    \
         \"v1_bytes\": {},\n    \"v2_bytes\": {},\n    \"v1_over_v2\": {:.2},\n    \
         \"min_required_ratio\": {MIN_V2_RATIO}\n  }},\n  \"log\": {{\n    \
         \"bytes\": {},\n    \"records\": {},\n    \"shards\": {LOG_SHARDS},\n    \
         \"append_mb_per_sec\": {:.1},\n    \"replay_mb_per_sec\": {:.1},\n    \
         \"compact_mb_per_sec\": {:.1}\n  }}\n}}\n",
        n.v1_bytes,
        n.v2_bytes,
        n.ratio,
        n.log_bytes,
        n.log_records,
        n.append_mbps,
        n.replay_mbps,
        n.compact_mbps
    );
    let path = dir.join("BENCH_store.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("sketch_store: wrote {}", path.display()),
        Err(e) => eprintln!("sketch_store: cannot write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_store_paths, bench_store_gate);
criterion_main!(benches);
