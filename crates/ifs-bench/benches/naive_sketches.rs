//! Criterion: build/query costs of the three naive sketches (E1's time
//! dimension), plus the bit-packing ablation from DESIGN.md §5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ifs_core::{
    FrequencyEstimator, Guarantee, ReleaseAnswersEstimator, ReleaseDb, SketchParams, Subsample,
};
use ifs_database::{generators, Itemset};
use ifs_util::Rng64;
use std::hint::black_box;

fn bench_builds(c: &mut Criterion) {
    let mut rng = Rng64::seeded(0xB1);
    let db = generators::uniform(10_000, 24, 0.3, &mut rng);
    let params = SketchParams::new(3, 0.05, 0.05);
    let mut g = c.benchmark_group("sketch_build");
    g.sample_size(10);
    g.bench_function("release_db", |b| {
        b.iter(|| black_box(ReleaseDb::build(&db, 0.05)));
    });
    g.bench_function("release_answers_k3", |b| {
        b.iter(|| black_box(ReleaseAnswersEstimator::build(&db, 3, 0.05)));
    });
    g.bench_function("subsample_forall_estimator", |b| {
        b.iter(|| black_box(Subsample::build(&db, &params, Guarantee::ForAllEstimator, &mut rng)));
    });
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut rng = Rng64::seeded(0xB2);
    let db = generators::uniform(10_000, 24, 0.3, &mut rng);
    let params = SketchParams::new(3, 0.05, 0.05);
    let release = ReleaseDb::build(&db, 0.05);
    let answers = ReleaseAnswersEstimator::build(&db, 3, 0.05);
    let sample = Subsample::build(&db, &params, Guarantee::ForAllEstimator, &mut rng);
    let t = Itemset::new(vec![2, 9, 17]);
    let mut g = c.benchmark_group("sketch_query");
    g.bench_function("release_db_estimate", |b| b.iter(|| black_box(release.estimate(&t))));
    g.bench_function("release_answers_estimate", |b| b.iter(|| black_box(answers.estimate(&t))));
    g.bench_function("subsample_estimate", |b| b.iter(|| black_box(sample.estimate(&t))));
    g.finish();
}

/// Ablation: packed word-wise subset test vs a per-column probe loop.
fn bench_bitpack_ablation(c: &mut Criterion) {
    let mut rng = Rng64::seeded(0xB3);
    let db = generators::uniform(20_000, 96, 0.4, &mut rng);
    let t = Itemset::new(vec![5, 40, 90]);
    let mask = db.mask_of(&t);
    let mut g = c.benchmark_group("frequency_counting");
    g.bench_function("packed_words", |b| {
        b.iter(|| black_box(db.support_mask(&mask)));
    });
    g.bench_function("per_column_probe", |b| {
        b.iter(|| {
            let items = t.items();
            let count =
                (0..db.rows()).filter(|&r| items.iter().all(|&c| db.get(r, c as usize))).count();
            black_box(count)
        });
    });
    g.finish();
}

fn bench_scaling_in_d(c: &mut Criterion) {
    let mut g = c.benchmark_group("support_scaling_d");
    g.sample_size(10);
    for d in [64usize, 256, 512] {
        let mut rng = Rng64::seeded(0xB4);
        let db = generators::uniform(5_000, d, 0.3, &mut rng);
        let t = Itemset::new(vec![1, (d / 2) as u32, (d - 1) as u32]);
        let mask = db.mask_of(&t);
        g.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| black_box(db.support_mask(&mask)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_builds, bench_queries, bench_bitpack_ablation, bench_scaling_in_d);
criterion_main!(benches);
