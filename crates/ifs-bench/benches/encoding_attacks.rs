//! Criterion: cost of the encoding attacks (E3/E5/E6 time dimension) —
//! Theorem 13 decode, Fact 18 construction, Theorem 15 column recovery.

use criterion::{criterion_group, criterion_main, Criterion};
use ifs_core::ReleaseDb;
use ifs_lowerbounds::shatter::ShatteredSet;
use ifs_lowerbounds::thm13::HardInstance;
use ifs_lowerbounds::thm15::Thm15Instance;
use ifs_util::Rng64;
use std::hint::black_box;

fn bench_thm13(c: &mut Criterion) {
    let mut rng = Rng64::seeded(0xD1);
    let (d, k, inv_eps) = (32usize, 2usize, 16usize);
    let payload: Vec<bool> =
        (0..HardInstance::capacity(d, inv_eps)).map(|_| rng.bernoulli(0.5)).collect();
    let inst = HardInstance::encode(d, k, inv_eps, &payload, 4);
    let sketch = ReleaseDb::build(inst.database(), inst.epsilon());
    let mut g = c.benchmark_group("thm13");
    g.bench_function("encode_256_bits", |b| {
        b.iter(|| black_box(HardInstance::encode(d, k, inv_eps, &payload, 4)));
    });
    g.bench_function("decode_256_bits", |b| {
        b.iter(|| black_box(inst.decode(&sketch)));
    });
    g.finish();
}

fn bench_shatter(c: &mut Criterion) {
    let mut g = c.benchmark_group("shatter");
    g.bench_function("construct_d64_k2", |b| {
        b.iter(|| black_box(ShatteredSet::new(64, 2)));
    });
    let sh = ShatteredSet::new(64, 2);
    let s = vec![true; sh.v()];
    g.bench_function("itemset_for_pattern", |b| {
        b.iter(|| black_box(sh.itemset_for(&s)));
    });
    g.finish();
}

fn bench_thm15(c: &mut Criterion) {
    let mut rng = Rng64::seeded(0xD2);
    let (d, k) = (32usize, 3usize);
    let cap = Thm15Instance::message_capacity(d, k).unwrap();
    let msg: Vec<bool> = (0..cap).map(|_| rng.bernoulli(0.5)).collect();
    let inst = Thm15Instance::encode(d, k, &msg);
    let sketch = ReleaseDb::build(inst.database(), 1.0 / 50.0);
    let mut g = c.benchmark_group("thm15");
    g.sample_size(10);
    g.bench_function("encode_d32_k3", |b| {
        b.iter(|| black_box(Thm15Instance::encode(d, k, &msg)));
    });
    g.bench_function("recover_one_column", |b| {
        b.iter(|| black_box(inst.recover_column(&sketch, 0, 1.0 / 50.0, &mut rng)));
    });
    g.finish();
}

criterion_group!(benches, bench_thm13, bench_shatter, bench_thm15);
criterion_main!(benches);
