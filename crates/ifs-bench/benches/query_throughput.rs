//! Criterion: scalar row-major vs batched columnar query execution.
//!
//! The acceptance target for the columnar query engine (DESIGN.md §7): on a
//! 100k-row × 128-dim database with a 1k-itemset query log, the batched
//! columnar path must beat the scalar row-major path by ≥ 3×. Run with
//! `cargo bench -p ifs-bench --bench query_throughput`; under
//! `cargo test --benches` each body runs once as a smoke test, which also
//! exercises the bit-identity assertions below.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ifs_core::{FrequencyEstimator, Guarantee, SketchParams, Subsample};
use ifs_database::{Database, Itemset};
use ifs_util::Rng64;
use std::hint::black_box;

const ROWS: usize = 100_000;
const DIMS: usize = 128;
const QUERIES: usize = 1_000;

/// Deterministic mixed-cardinality query log (k ∈ {1,…,4}, plus the empty
/// itemset), the shape of an indicator-query workload.
fn query_log(rng: &mut Rng64) -> Vec<Itemset> {
    let mut log: Vec<Itemset> = (0..QUERIES - 1)
        .map(|q| (0..1 + q % 4).map(|_| rng.below(DIMS) as u32).collect())
        .collect();
    log.push(Itemset::empty());
    log
}

fn workload() -> (Database, Vec<Itemset>) {
    let mut rng = Rng64::seeded(0xC01);
    let db = Database::from_fn(ROWS, DIMS, |_, _| rng.bernoulli(0.3));
    let queries = query_log(&mut rng);
    (db, queries)
}

fn bench_database_paths(c: &mut Criterion) {
    let (db, queries) = workload();
    // Answers must be bit-identical before speed means anything.
    let scalar: Vec<f64> = queries.iter().map(|t| db.frequency(t)).collect();
    assert_eq!(db.frequencies(&queries), scalar, "columnar answers diverge from row-major");

    let mut g = c.benchmark_group("query_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(QUERIES as u64));
    g.bench_function("scalar_row_major", |b| {
        b.iter(|| {
            let total: f64 = queries.iter().map(|t| db.frequency(black_box(t))).sum();
            black_box(total)
        });
    });
    g.bench_function("batched_columnar", |b| {
        b.iter(|| black_box(db.frequencies(black_box(&queries))));
    });
    // Ablation: columnar kernel without the shared-batch scratch reuse.
    let store = db.columns();
    g.bench_function("scalar_columnar", |b| {
        b.iter(|| {
            let total: f64 = queries.iter().map(|t| store.frequency(black_box(t))).sum();
            black_box(total)
        });
    });
    g.finish();
}

fn bench_sketch_paths(c: &mut Criterion) {
    let (db, queries) = workload();
    let mut rng = Rng64::seeded(0xC02);
    let params = SketchParams::new(4, 0.02, 0.05);
    let sketch = Subsample::build(&db, &params, Guarantee::ForAllEstimator, &mut rng);
    let scalar: Vec<f64> = queries.iter().map(|t| sketch.estimate(t)).collect();
    assert_eq!(sketch.estimate_batch(&queries), scalar, "batched sketch answers diverge");

    let mut g = c.benchmark_group("sketch_query_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(QUERIES as u64));
    // The scalar row-major baseline a sketch used to pay per estimate call.
    g.bench_function("subsample_scalar_row_major", |b| {
        b.iter(|| {
            let total: f64 = queries
                .iter()
                .map(|t| {
                    sketch
                        .sample()
                        .matrix()
                        .count_rows_containing(&sketch.sample().mask_of(black_box(t)))
                        as f64
                })
                .sum();
            black_box(total)
        });
    });
    g.bench_function("subsample_batched_columnar", |b| {
        b.iter(|| black_box(sketch.estimate_batch(black_box(&queries))));
    });
    g.finish();
}

/// The ≥ 3× wall-clock check, runnable outside criterion timing so the
/// smoke pass (`cargo test --benches`) enforces the acceptance criterion on
/// every CI run, not only when someone reads bench output.
fn bench_speedup_gate(c: &mut Criterion) {
    let (db, queries) = workload();
    let _ = db.columns(); // pay the transpose before timing either path
    let t0 = std::time::Instant::now();
    let scalar: Vec<f64> = queries.iter().map(|t| db.frequency(t)).collect();
    let scalar_time = t0.elapsed();
    let t1 = std::time::Instant::now();
    let batched = db.frequencies(&queries);
    let batched_time = t1.elapsed();
    assert_eq!(batched, scalar);
    let speedup = scalar_time.as_secs_f64() / batched_time.as_secs_f64().max(1e-12);
    println!(
        "query_throughput gate: scalar {:?}, batched {:?} ({speedup:.1}x) on {ROWS}x{DIMS}, {QUERIES} queries",
        scalar_time, batched_time
    );
    assert!(
        speedup >= 3.0,
        "batched columnar path must be >= 3x the scalar row-major path, got {speedup:.2}x"
    );
    // Keep criterion's group bookkeeping consistent even though the gate
    // does its own timing.
    let mut g = c.benchmark_group("query_throughput_gate");
    g.bench_function("noop", |b| b.iter(|| black_box(0)));
    g.finish();
}

criterion_group!(benches, bench_database_paths, bench_sketch_paths, bench_speedup_gate);
criterion_main!(benches);
