//! Criterion: the wide AND+popcount kernels against their scalar
//! reference twins (DESIGN.md §12).
//!
//! Every hot loop in the workspace — `ColumnStore` supports, Eclat
//! intersections, Hamming decodes — bottoms out in `ifs_util::bits`, so
//! this bench measures exactly those kernels in isolation: L2-resident
//! operands, deterministic contents, best-of-N wall-clock per kernel so a
//! noisy neighbor cannot fail the gate spuriously. Two things are asserted
//! on every run (smoke pass included) before anything is timed:
//!
//! 1. **Bit-identity** — each wide kernel returns exactly what its scalar
//!    reference returns on the same operands (the repo-wide determinism
//!    contract: execution strategy, never semantics).
//! 2. **Fusion identity** — the fused kernels (`and3_count`,
//!    `and_count_into`) equal their unfused compositions.
//!
//! The release gate then requires the `and_count` family (two-, three-
//! operand, and fused-update intersections) to run at **≥ 2×** the scalar
//! baseline measured in the same process — the ROADMAP item-4 target. The
//! debug smoke pass skips the ratio (unoptimized builds do not vectorize
//! either side) but still checks identity and emits the JSON with
//! `"mode": "debug"` so it can never be mistaken for a perf artifact.
//!
//! Emits `bench_results/BENCH_kernels.json`; CI regenerates it in release
//! mode and gates on `"mode": "release"` like the other three artifacts.
//!
//! Run with `cargo bench -p ifs-bench --bench kernel_throughput`; under
//! `cargo test --benches` each body runs once as a smoke test.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ifs_util::{bits, Rng64};
use std::hint::black_box;
use std::time::Instant;

/// Operand size: 4096 words = 32 KiB per slice, so two or three operands
/// stay L2-resident and the measurement is kernel-bound, not RAM-bound
/// (cache blocking, measured separately in `query_throughput`, is what
/// keeps the *real* workload at this operating point).
const WORDS: usize = 4096;
/// An odd tail so every timed run also exercises the ragged remainder.
const TAIL: usize = 3;
/// Inner repetitions per timed sample.
const REPS: usize = if cfg!(debug_assertions) { 4 } else { 400 };
/// Timed samples per kernel; best-of wins (minimum is the right statistic
/// for a throughput kernel — everything above it is interference).
const SAMPLES: usize = if cfg!(debug_assertions) { 2 } else { 7 };

fn operands() -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    let mut rng = Rng64::seeded(0xB17_5EED);
    let n = WORDS + TAIL;
    let a: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
    let b: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
    let c: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
    (a, b, c)
}

/// Best-of-N wall clock for `REPS` invocations of `f`, in seconds.
fn time_best(mut f: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        let mut sink = 0usize;
        for _ in 0..REPS {
            sink = sink.wrapping_add(black_box(f()));
        }
        let dt = t.elapsed().as_secs_f64();
        black_box(sink);
        best = best.min(dt);
    }
    best
}

struct Measured {
    name: &'static str,
    scalar_mword_s: f64,
    wide_mword_s: f64,
    speedup: f64,
}

fn measure(
    name: &'static str,
    scalar: impl FnMut() -> usize,
    wide: impl FnMut() -> usize,
) -> Measured {
    let scalar_s = time_best(scalar);
    let wide_s = time_best(wide);
    let words_per_run = ((WORDS + TAIL) * REPS) as f64;
    Measured {
        name,
        scalar_mword_s: words_per_run / scalar_s / 1e6,
        wide_mword_s: words_per_run / wide_s / 1e6,
        speedup: scalar_s / wide_s.max(1e-12),
    }
}

/// Bit-identity between every wide kernel and its scalar reference, on the
/// bench operands *and* on adversarial lengths (empty, sub-chunk, ragged).
fn assert_kernel_identity(a: &[u64], b: &[u64], c: &[u64]) {
    for len in [0usize, 1, 3, 4, 5, 8, 11, 64, 65, a.len()] {
        let (a, b, c) = (&a[..len], &b[..len], &c[..len]);
        assert_eq!(bits::count_ones(a), bits::scalar::count_ones(a), "count_ones len {len}");
        assert_eq!(bits::and_count(a, b), bits::scalar::and_count(a, b), "and_count len {len}");
        assert_eq!(bits::hamming(a, b), bits::scalar::hamming(a, b), "hamming len {len}");
        assert_eq!(bits::is_subset(a, b), bits::scalar::is_subset(a, b), "is_subset len {len}");
        assert_eq!(
            bits::and3_count(a, b, c),
            bits::scalar::and3_count(a, b, c),
            "and3_count len {len}"
        );
        let mut wide = a.to_vec();
        let mut narrow = a.to_vec();
        bits::and_assign(&mut wide, b);
        bits::scalar::and_assign(&mut narrow, b);
        assert_eq!(wide, narrow, "and_assign len {len}");
        let mut wide_w = vec![0u64; len];
        let mut narrow_w = vec![0u64; len];
        bits::and_write(&mut wide_w, a, b);
        bits::scalar::and_write(&mut narrow_w, a, b);
        assert_eq!(wide_w, narrow_w, "and_write len {len}");
        let mut wide_i = a.to_vec();
        let mut narrow_i = a.to_vec();
        let got = bits::and_count_into(&mut wide_i, b);
        let want = bits::scalar::and_count_into(&mut narrow_i, b);
        assert_eq!((wide_i, got), (narrow_i, want), "and_count_into len {len}");
    }
}

fn write_bench_json(measured: &[Measured], min_and_family: f64) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("kernel_throughput: cannot create {}: {e}", dir.display());
        return;
    }
    let mode = if cfg!(debug_assertions) { "debug" } else { "release" };
    let mut kernels = String::new();
    for (i, m) in measured.iter().enumerate() {
        let sep = if i + 1 == measured.len() { "" } else { "," };
        kernels.push_str(&format!(
            "    {{ \"kernel\": \"{}\", \"scalar_mwords_per_sec\": {:.1}, \
             \"wide_mwords_per_sec\": {:.1}, \"speedup\": {:.2} }}{sep}\n",
            m.name, m.scalar_mword_s, m.wide_mword_s, m.speedup
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"kernel_throughput\",\n  \"mode\": \"{mode}\",\n  \
         \"words\": {},\n  \"identity_checked\": true,\n  \
         \"min_and_family_speedup\": {min_and_family:.2},\n  \"kernels\": [\n{kernels}  ]\n}}\n",
        WORDS + TAIL
    );
    let path = dir.join("BENCH_kernels.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("kernel_throughput: wrote {}", path.display()),
        Err(e) => eprintln!("kernel_throughput: cannot write {}: {e}", path.display()),
    }
}

fn bench_kernels(c: &mut Criterion) {
    let (a, b, z) = operands();
    assert_kernel_identity(&a, &b, &z);

    let mut scratch = vec![0u64; a.len()];
    let measured = vec![
        measure(
            "count_ones",
            || bits::scalar::count_ones(black_box(&a)),
            || bits::count_ones(black_box(&a)),
        ),
        measure(
            "and_count",
            || bits::scalar::and_count(black_box(&a), black_box(&b)),
            || bits::and_count(black_box(&a), black_box(&b)),
        ),
        // The fused 3-way kernel against the *unfused composition with a
        // reused scratch buffer* — i.e. the strongest scalar opponent, the
        // exact sequence `support_with_scratch` historically ran for k = 3.
        measure(
            "and3_count",
            {
                let scratch = &mut scratch;
                let (a, b, z) = (&a, &b, &z);
                move || {
                    scratch.copy_from_slice(black_box(a));
                    bits::scalar::and_assign(scratch, black_box(b));
                    bits::scalar::and_count(scratch, black_box(z))
                }
            },
            || bits::and3_count(black_box(&a), black_box(&b), black_box(&z)),
        ),
        // Fused AND-update-and-count against AND-then-count (the Eclat
        // inner step before and after fusion). No per-rep memcpy on either
        // side: `buf &= b` is idempotent, so after the first rep every rep
        // re-runs the identical full kernel (load both operands, AND,
        // store, count) on `buf == a & b` — a memcpy in the loop would
        // just dilute both sides of the ratio with the same bandwidth tax.
        measure(
            "and_count_into",
            {
                let mut buf = a.clone();
                let b = &b;
                move || {
                    bits::scalar::and_assign(&mut buf, black_box(b));
                    bits::scalar::count_ones(&buf)
                }
            },
            {
                let mut buf = a.clone();
                let b = &b;
                move || bits::and_count_into(&mut buf, black_box(b))
            },
        ),
        measure(
            "hamming",
            || bits::scalar::hamming(black_box(&a), black_box(&b)),
            || bits::hamming(black_box(&a), black_box(&b)),
        ),
    ];

    for m in &measured {
        println!(
            "kernel_throughput: {:>14}  scalar {:>8.1} Mwords/s  wide {:>8.1} Mwords/s  \
             ({:.2}x)",
            m.name, m.scalar_mword_s, m.wide_mword_s, m.speedup
        );
    }
    let min_and_family = measured
        .iter()
        .filter(|m| m.name.starts_with("and"))
        .map(|m| m.speedup)
        .fold(f64::INFINITY, f64::min);
    write_bench_json(&measured, min_and_family);
    // Unoptimized builds vectorize neither side, so the ratio is only
    // meaningful — and only gated — in release; identity is gated always.
    if !cfg!(debug_assertions) {
        assert!(
            min_and_family >= 2.0,
            "and_count-family kernels must be >= 2x the scalar baseline in release, \
             got {min_and_family:.2}x"
        );
    }

    // Keep criterion's group bookkeeping consistent even though the gate
    // does its own timing.
    let mut g = c.benchmark_group("kernel_throughput");
    g.throughput(Throughput::Elements((WORDS + TAIL) as u64));
    g.bench_function("and_count_wide", |bch| {
        bch.iter(|| black_box(bits::and_count(black_box(&a), black_box(&b))))
    });
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
