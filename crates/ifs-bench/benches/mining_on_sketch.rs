//! Criterion: the three miners head-to-head, and mining from a sketch vs
//! the full database (E12's time dimension).

use criterion::{criterion_group, criterion_main, Criterion};
use ifs_core::{Guarantee, SketchParams, Subsample};
use ifs_database::generators;
use ifs_mining::{apriori, eclat, fpgrowth, oracle};
use ifs_util::Rng64;
use std::hint::black_box;

fn bench_miners(c: &mut Criterion) {
    let mut rng = Rng64::seeded(0xAB);
    let spec = generators::MarketBasketSpec {
        transactions: 4_000,
        items: 32,
        bundles: vec![(vec![28, 29, 30], 0.2)],
        ..Default::default()
    };
    let db = generators::market_basket(&spec, &mut rng);
    let mut g = c.benchmark_group("miners_theta_008");
    g.sample_size(10);
    g.bench_function("apriori", |b| b.iter(|| black_box(apriori::mine(&db, 0.08, 4))));
    g.bench_function("eclat", |b| b.iter(|| black_box(eclat::mine(&db, 0.08, 4))));
    g.bench_function("fpgrowth", |b| b.iter(|| black_box(fpgrowth::mine(&db, 0.08, 4))));
    g.finish();
}

fn bench_mining_on_sketch(c: &mut Criterion) {
    let mut rng = Rng64::seeded(0xAC);
    let spec = generators::MarketBasketSpec {
        transactions: 20_000,
        items: 32,
        bundles: vec![(vec![28, 29, 30], 0.2)],
        ..Default::default()
    };
    let db = generators::market_basket(&spec, &mut rng);
    let params = SketchParams::new(3, 0.02, 0.05);
    let sketch = Subsample::build(&db, &params, Guarantee::ForAllEstimator, &mut rng);
    let mut g = c.benchmark_group("mining_source");
    g.sample_size(10);
    g.bench_function("full_database", |b| {
        b.iter(|| black_box(apriori::mine(&db, 0.1, 3)));
    });
    g.bench_function("sketch_oracle", |b| {
        b.iter(|| black_box(oracle::mine_with_estimator(&sketch, db.dims(), 0.08, 3)));
    });
    g.finish();
}

criterion_group!(benches, bench_miners, bench_mining_on_sketch);
criterion_main!(benches);
