//! Criterion: the sketch-serving tier under batched query load.
//!
//! Drives a [`SketchServer`] through its byte-level `handle` entry point —
//! the same request/response frames a socket carries, minus the socket —
//! so the measured cost is the full serving path: request decode, hot-set
//! lookup, sharded batch execution, response encode. Three things are
//! asserted on every run (smoke pass included) before anything is timed:
//!
//! 1. **Identity** — every served answer is bit-identical to the offline
//!    sketch's answer for the same batch, at 1 and 4 per-sketch threads.
//! 2. **Eviction transparency** — under a budget that holds only one
//!    decoded sketch, round-robin queries force evict/reload on every
//!    batch and the answers still match bit for bit.
//! 3. **Refusals stay cheap and typed** — a garbage frame and an unknown
//!    id produce error responses, not panics, mid-load.
//!
//! The gate emits `bench_results/BENCH_serving.json` (p50/p99/p99.9
//! batch latency, queries/sec) so the serving tier's perf trajectory is
//! machine-readable across PRs. The standalone `ifs-loadgen` binary
//! measures the same workload *across a real TCP connection* and, when CI
//! runs it after this bench, overwrites the artifact with two-process
//! numbers — the `source` field records which path produced them.
//!
//! Run with `cargo bench -p ifs-bench --bench serving_load`; under
//! `cargo test --benches` each body runs once as a smoke test.

use criterion::{criterion_group, criterion_main, Criterion};
use ifs_core::{ReleaseAnswersIndicator, ReleaseDb, Snapshot, Subsample};
use ifs_database::{generators, Itemset};
use ifs_serve::{
    Answers, EncodeBuf, QueryMode, Request, Response, ServeConfig, ServedSketch, SketchServer,
};
use ifs_util::Rng64;
use std::hint::black_box;
use std::time::Instant;

/// Full scale in release; the debug smoke pass shrinks the workload (the
/// identity and eviction assertions are scale-free) so CI stays fast.
const ROWS: usize = if cfg!(debug_assertions) { 300 } else { 4_000 };
const DIMS: usize = 64;
const BATCHES: usize = if cfg!(debug_assertions) { 24 } else { 256 };
const BATCH_SIZE: usize = if cfg!(debug_assertions) { 64 } else { 512 };
const EPSILON: f64 = 0.1;

/// The served fleet: one frame per kind with a batched query engine, plus
/// an indicator store to cover the scalar-lookup path.
fn fleet(rng: &mut Rng64) -> Vec<Vec<u8>> {
    let db = generators::uniform(ROWS, DIMS, 0.25, rng);
    vec![
        ReleaseDb::build(&db, EPSILON).snapshot_bytes(),
        Subsample::with_sample_count_seeded(&db, 128, EPSILON, 0xB5).snapshot_bytes(),
        ReleaseAnswersIndicator::build(&db, 2, EPSILON).snapshot_bytes(),
    ]
}

fn batch_for(sketch: &ServedSketch, rng: &mut Rng64) -> (QueryMode, Vec<Itemset>) {
    let (mode, fixed_len) = match sketch {
        ServedSketch::AnswersIndicator(s) => (QueryMode::Indicator, Some(s.k())),
        ServedSketch::AnswersEstimator(_) => (QueryMode::Estimate, None),
        _ => (QueryMode::Estimate, None),
    };
    let queries = (0..BATCH_SIZE)
        .map(|_| {
            let len = fixed_len.unwrap_or_else(|| rng.below(4));
            Itemset::new(rng.distinct_sorted(DIMS, len).iter().map(|&i| i as u32).collect())
        })
        .collect();
    (mode, queries)
}

fn assert_identical(served: &Response, oracle: &Answers) {
    match (served, oracle) {
        (Response::Estimates(got), Answers::Estimates(want)) => {
            let got: Vec<u64> = got.iter().map(|f| f.to_bits()).collect();
            let want: Vec<u64> = want.iter().map(|f| f.to_bits()).collect();
            assert_eq!(got, want, "served estimates diverge from the offline sketch");
        }
        (Response::Indicators(got), Answers::Indicators(want)) => {
            assert_eq!(got, want, "served indicators diverge from the offline sketch");
        }
        (got, _) => panic!("expected answers, got {got:?}"),
    }
}

/// Identity at 1 and 4 threads, eviction transparency, refusal totality —
/// the correctness half, asserted before any timing.
fn assert_serving_invariants(frames: &[Vec<u8>]) {
    for threads in [1usize, 4] {
        let server =
            SketchServer::new(ServeConfig { default_threads: threads, ..Default::default() });
        let oracle: Vec<ServedSketch> =
            frames.iter().map(|f| ServedSketch::admit(f, threads).expect("fleet frame")).collect();
        for (id, frame) in frames.iter().enumerate() {
            server.load_frame(id as u64, threads, frame).expect("admit fleet");
        }
        let mut rng = Rng64::seeded(0x1D_0001 + threads as u64);
        for b in 0..8 {
            let id = b % oracle.len();
            let (mode, queries) = batch_for(&oracle[id], &mut rng);
            let expected = oracle[id].answer(mode, &queries).expect("oracle answers");
            let resp_bytes =
                server.handle(&Request::Query { id: id as u64, mode, queries }.to_bytes());
            let resp = Response::from_bytes(&resp_bytes).expect("response decodes");
            assert_identical(&resp, &expected);
        }
    }

    // A budget of exactly the largest frame: every round-robin batch
    // evicts the previous sketch and reloads from admitted bytes.
    let max_bits = frames.iter().map(|f| f.len() as u64 * 8).max().expect("nonempty fleet");
    let tight = SketchServer::new(ServeConfig { budget_bits: max_bits, ..Default::default() });
    let oracle: Vec<ServedSketch> =
        frames.iter().map(|f| ServedSketch::admit(f, 1).expect("fleet frame")).collect();
    for (id, frame) in frames.iter().enumerate() {
        tight.load_frame(id as u64, 1, frame).expect("admit fleet");
    }
    let mut rng = Rng64::seeded(0x1D_0002);
    for b in 0..12 {
        let id = b % oracle.len();
        let (mode, queries) = batch_for(&oracle[id], &mut rng);
        let expected = oracle[id].answer(mode, &queries).expect("oracle answers");
        let resp_bytes = tight.handle(&Request::Query { id: id as u64, mode, queries }.to_bytes());
        let resp = Response::from_bytes(&resp_bytes).expect("response decodes");
        assert_identical(&resp, &expected);
    }
    assert!(tight.stats().evictions > 0, "a one-sketch budget under round-robin load must evict");

    // Refusals: garbage and unknown ids answer typed errors mid-load.
    let garbage = tight.handle(b"definitely not a frame");
    assert!(matches!(Response::from_bytes(&garbage), Ok(Response::Error(_))));
    let unknown = tight
        .handle(&Request::Query { id: 999, mode: QueryMode::Estimate, queries: vec![] }.to_bytes());
    assert!(matches!(Response::from_bytes(&unknown), Ok(Response::Error(_))));
}

fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

/// The timed half: a warm server under round-robin batched load, measured
/// through the byte-level `handle` path.
fn run_load(frames: &[Vec<u8>]) -> (f64, f64, f64, f64) {
    let server = SketchServer::new(ServeConfig::default());
    let oracle: Vec<ServedSketch> =
        frames.iter().map(|f| ServedSketch::admit(f, 2).expect("fleet frame")).collect();
    for (id, frame) in frames.iter().enumerate() {
        server.load_frame(id as u64, 2, frame).expect("admit fleet");
    }
    let mut rng = Rng64::seeded(0x1D_0003);
    let requests: Vec<Vec<u8>> = (0..BATCHES)
        .map(|b| {
            let id = b % oracle.len();
            let (mode, queries) = batch_for(&oracle[id], &mut rng);
            Request::Query { id: id as u64, mode, queries }.to_bytes()
        })
        .collect();
    // One connection's reusable buffers: the timed path is `handle_into`,
    // exactly what `serve_connection` runs per request once warm.
    let mut buf = EncodeBuf::new();
    let mut latencies_ms = Vec::with_capacity(BATCHES);
    let started = Instant::now();
    for req in &requests {
        let sent = Instant::now();
        let resp_len = server.handle_into(black_box(req), &mut buf).len();
        latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
        black_box(resp_len);
    }
    let elapsed = started.elapsed().as_secs_f64();
    let qps = (BATCHES * BATCH_SIZE) as f64 / elapsed.max(1e-9);
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (
        percentile_ms(&latencies_ms, 50.0),
        percentile_ms(&latencies_ms, 99.0),
        percentile_ms(&latencies_ms, 99.9),
        qps,
    )
}

/// Hand-rolled JSON (DESIGN.md §6: no serde) under the workspace's
/// `bench_results/`; the `mode` field records debug smoke vs release
/// bench, and `source` records in-process bench vs the TCP loadgen.
fn write_bench_json(p50_ms: f64, p99_ms: f64, p999_ms: f64, qps: f64) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("serving_load: cannot create {}: {e}", dir.display());
        return;
    }
    let mode = if cfg!(debug_assertions) { "debug" } else { "release" };
    let queries_total = BATCHES * BATCH_SIZE;
    let json = format!(
        "{{\n  \"bench\": \"serving_load\",\n  \"mode\": \"{mode}\",\n  \
         \"source\": \"bench\",\n  \"sketches\": 3,\n  \"connections\": 1,\n  \
         \"pipeline_depth\": 1,\n  \"batches\": {BATCHES},\n  \
         \"batch_size\": {BATCH_SIZE},\n  \"queries_total\": {queries_total},\n  \
         \"p50_ms\": {p50_ms:.3},\n  \"p99_ms\": {p99_ms:.3},\n  \"p999_ms\": {p999_ms:.3},\n  \
         \"queries_per_sec\": {qps:.1},\n  \"identity_checked\": true\n}}\n"
    );
    let path = dir.join("BENCH_serving.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("serving_load: wrote {}", path.display()),
        Err(e) => eprintln!("serving_load: cannot write {}: {e}", path.display()),
    }
}

fn bench_serving_load(c: &mut Criterion) {
    let mut rng = Rng64::seeded(0x5E17E);
    let frames = fleet(&mut rng);
    assert_serving_invariants(&frames);
    let (p50, p99, p999, qps) = run_load(&frames);
    println!(
        "serving_load: {BATCHES} batches x {BATCH_SIZE} queries over 3 sketches \
         ({ROWS} rows x {DIMS} dims): p50 {p50:.3} ms, p99 {p99:.3} ms, \
         p99.9 {p999:.3} ms, {qps:.0} queries/s"
    );
    write_bench_json(p50, p99, p999, qps);
    // Keep criterion's group bookkeeping consistent even though the gate
    // does its own timing.
    let mut g = c.benchmark_group("serving_load_gate");
    g.bench_function("noop", |b| b.iter(|| black_box(0)));
    g.finish();
}

criterion_group!(benches, bench_serving_load);
criterion_main!(benches);
