//! Criterion: per-row update cost of the heavy-hitter structures fed with
//! itemset streams vs plain row sampling (E11's time dimension), including
//! the conservative-update Count-Min ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use ifs_core::Subsample;
use ifs_database::generators;
use ifs_streaming::{adapter, CountMinSketch, LossyCounting, MisraGries, SpaceSaving};
use ifs_util::Rng64;
use std::hint::black_box;

fn bench_feeds(c: &mut Criterion) {
    let mut rng = Rng64::seeded(0xAA);
    let db = generators::uniform(2_000, 24, 0.2, &mut rng);
    let id_bits = adapter::itemset_id_bits(24, 2);
    let mut g = c.benchmark_group("itemset_stream_feed");
    g.sample_size(10);
    g.bench_function("misra_gries_256", |b| {
        b.iter(|| {
            let mut mg = MisraGries::new(256, id_bits);
            black_box(adapter::feed_rows(&db, 2, &mut mg, usize::MAX))
        });
    });
    g.bench_function("space_saving_256", |b| {
        b.iter(|| {
            let mut ss = SpaceSaving::new(256, id_bits);
            black_box(adapter::feed_rows(&db, 2, &mut ss, usize::MAX))
        });
    });
    g.bench_function("lossy_counting_eps01", |b| {
        b.iter(|| {
            let mut lc = LossyCounting::new(0.01, id_bits);
            black_box(adapter::feed_rows(&db, 2, &mut lc, usize::MAX))
        });
    });
    g.bench_function("count_min_plain", |b| {
        b.iter(|| {
            let mut cm = CountMinSketch::new(512, 4, false, 7);
            black_box(adapter::feed_rows(&db, 2, &mut cm, usize::MAX))
        });
    });
    g.bench_function("count_min_conservative", |b| {
        b.iter(|| {
            let mut cm = CountMinSketch::new(512, 4, true, 7);
            black_box(adapter::feed_rows(&db, 2, &mut cm, usize::MAX))
        });
    });
    g.bench_function("row_sampling_baseline", |b| {
        b.iter(|| black_box(Subsample::with_sample_count(&db, 500, 0.05, &mut rng)));
    });
    g.finish();
}

criterion_group!(benches, bench_feeds);
criterion_main!(benches);
