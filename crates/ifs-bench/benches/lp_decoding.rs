//! Criterion: the Theorem 16 machinery — L1 LP decode vs L2 least squares,
//! Jacobi SVD, and the error-correcting code (E8's time dimension).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ifs_codes::ConcatenatedCode;
use ifs_linalg::svd;
use ifs_lowerbounds::thm16::RowProductInstance;
use ifs_util::Rng64;
use std::hint::black_box;

fn bench_decoders(c: &mut Criterion) {
    let mut rng = Rng64::seeded(0xF1);
    let mut g = c.benchmark_group("secret_decoding");
    g.sample_size(10);
    for n in [16usize, 32] {
        let secret: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.5)).collect();
        let inst = RowProductInstance::new(8, 2, &secret, &mut rng);
        let answers = inst.exact_answers();
        g.bench_with_input(BenchmarkId::new("l1_simplex", n), &n, |b, _| {
            b.iter(|| black_box(inst.recover_l1(&answers)));
        });
        g.bench_with_input(BenchmarkId::new("l2_least_squares", n), &n, |b, _| {
            b.iter(|| black_box(inst.recover_l2(&answers)));
        });
    }
    g.finish();
}

fn bench_svd(c: &mut Criterion) {
    let mut rng = Rng64::seeded(0xF2);
    let mut g = c.benchmark_group("jacobi_svd");
    g.sample_size(10);
    for d0 in [6usize, 10] {
        let secret: Vec<bool> = (0..(d0 * d0 / 2)).map(|_| rng.bernoulli(0.5)).collect();
        let inst = RowProductInstance::new(d0, 2, &secret, &mut rng);
        g.bench_with_input(BenchmarkId::from_parameter(d0 * d0), &d0, |b, _| {
            b.iter(|| black_box(svd::decompose(inst.matrix())));
        });
    }
    g.finish();
}

fn bench_ecc(c: &mut Criterion) {
    let mut rng = Rng64::seeded(0xF3);
    let code = ConcatenatedCode::for_codeword_bits(4096, 0.04).unwrap();
    let msg: Vec<bool> = (0..code.message_bits()).map(|_| rng.bernoulli(0.5)).collect();
    let cw = code.encode(&msg);
    let mut corrupted = cw.clone();
    for &p in &rng.distinct_sorted(cw.len(), 160) {
        corrupted[p] = !corrupted[p];
    }
    let mut g = c.benchmark_group("concatenated_code_4096");
    g.bench_function("encode", |b| b.iter(|| black_box(code.encode(&msg))));
    g.bench_function("decode_clean", |b| b.iter(|| black_box(code.decode(&cw))));
    g.bench_function("decode_4pct_errors", |b| b.iter(|| black_box(code.decode(&corrupted))));
    g.finish();
}

criterion_group!(benches, bench_decoders, bench_svd, bench_ecc);
criterion_main!(benches);
