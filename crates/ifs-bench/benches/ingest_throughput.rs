//! Criterion: streaming ingestion — append-in-place vs invalidate-and-
//! re-transpose, plus the streamed == one-shot build identities.
//!
//! The acceptance targets for the streaming ingestion layer (DESIGN.md §9)
//! on a database ingesting 1k-row batches with a batched query log served
//! between batches:
//!
//! 1. **Identity** — streamed, merged, and sharded builds are bit-identical
//!    to one-shot builds for `Subsample`, `ReleaseDb`, `CountMinSketch`
//!    (via its row fold) and `CountSketch`, and the append-maintained
//!    columnar caches answer exactly like a cold rebuild (asserted on every
//!    run, including the smoke pass).
//! 2. **Speedup** — `append_rows` + query ≥ 3× faster than the historical
//!    mutate-invalidate-requery loop, which paid a full re-transpose per
//!    batch. Full scale (100k rows) in release; the smoke pass (debug)
//!    gates the same ratio at 20k rows so CI stays fast.
//!
//! The gate emits `bench_results/BENCH_ingest.json` (rows/sec, queries/sec)
//! so the perf trajectory is machine-readable across PRs.
//!
//! Run with `cargo bench -p ifs-bench --bench ingest_throughput`; under
//! `cargo test --benches` each body runs once as a smoke test.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ifs_core::streaming::{fold_database, MergeableSketch, StreamingBuild};
use ifs_core::{ReleaseDb, ReleaseDbBuilder, Subsample, SubsampleBuilder, SubsampleParams};
use ifs_database::{Database, Itemset};
use ifs_streaming::{CountMinFold, CountMinFoldParams, CountSketchFold, CountSketchFoldParams};
use ifs_util::Rng64;
use std::hint::black_box;

/// Full scale in release; the debug smoke pass runs the same pipeline at a
/// fifth of the rows (the speedup ratio is scale-free — both paths shrink
/// together — and a debug-mode 100-batch re-transpose loop would dominate
/// CI time).
const TOTAL_ROWS: usize = if cfg!(debug_assertions) { 20_000 } else { 100_000 };
const DIMS: usize = 128;
const BATCH_ROWS: usize = 1_000;
const QUERIES_PER_BATCH: usize = 100;

/// Deterministic ingest batches (each row an attribute-index set) and a
/// mixed-cardinality query log, the shape of an indicator workload.
fn workload() -> (Vec<Vec<Itemset>>, Vec<Itemset>) {
    let mut rng = Rng64::seeded(0x1465);
    let batches: Vec<Vec<Itemset>> = (0..TOTAL_ROWS / BATCH_ROWS)
        .map(|_| {
            (0..BATCH_ROWS)
                .map(|_| (0..DIMS as u32).filter(|_| rng.bernoulli(0.3)).collect())
                .collect()
        })
        .collect();
    let mut queries: Vec<Itemset> = (0..QUERIES_PER_BATCH - 1)
        .map(|q| (0..1 + q % 4).map(|_| rng.below(DIMS) as u32).collect())
        .collect();
    queries.push(Itemset::empty());
    (batches, queries)
}

/// The ingest-then-query loop on the append fast path: warm views are
/// extended in place, so each batch pays `O(batch)` maintenance.
fn run_incremental(batches: &[Vec<Itemset>], queries: &[Itemset]) -> (Database, Vec<f64>) {
    let mut db = Database::zeros(0, DIMS);
    let _ = db.columns(); // warm the view: ingestion maintains it in place
    let mut last = Vec::new();
    for batch in batches {
        db.append_rows(batch);
        last = db.frequencies(queries);
        black_box(last.len());
    }
    (db, last)
}

/// The historical loop: the same matrix growth through `matrix_mut`, which
/// drops every cached view, so each post-batch query pays a full
/// re-transpose of everything ingested so far.
fn run_invalidating(batches: &[Vec<Itemset>], queries: &[Itemset]) -> (Database, Vec<f64>) {
    let mut db = Database::zeros(0, DIMS);
    let mut last = Vec::new();
    for batch in batches {
        let matrix = db.matrix_mut();
        let base = matrix.rows();
        matrix.push_zero_rows(batch.len());
        for (i, row) in batch.iter().enumerate() {
            for &c in row.items() {
                matrix.set(base + i, c as usize, true);
            }
        }
        last = db.frequencies(queries);
        black_box(last.len());
    }
    (db, last)
}

/// Streamed == one-shot bit-identity for all four sketches, on a database
/// assembled from the first ingest batches. Runs in the smoke pass.
fn assert_build_identities(batches: &[Vec<Itemset>]) {
    let rows: Vec<Itemset> = batches.iter().take(5).flatten().cloned().collect();
    let mut db = Database::zeros(0, DIMS);
    db.append_rows(&rows);
    let d = db.dims();

    // Subsample: one-shot == streamed-in-batches == sharded at 4 threads.
    let params = SubsampleParams { sample_rows: 500, epsilon: 0.05 };
    let one_shot = Subsample::with_sample_count_seeded(&db, 500, 0.05, 0x5EED);
    let mut streamed = SubsampleBuilder::begin(d, 0x5EED, &params);
    for batch in batches.iter().take(5) {
        streamed.observe_rows(batch.iter());
    }
    assert_eq!(
        streamed.finish().sample(),
        one_shot.sample(),
        "streamed Subsample diverged from one-shot"
    );
    let sharded = Subsample::with_sample_count_sharded(&db, 500, 0.05, 0x5EED, 4);
    assert_eq!(sharded.sample(), one_shot.sample(), "sharded Subsample diverged from one-shot");

    // ReleaseDb: fold == clone-build; merged halves == whole.
    let folded = fold_database::<ReleaseDbBuilder>(&db, 0, &0.1);
    assert_eq!(folded.database(), ReleaseDb::build(&db, 0.1).database());

    // Count-Min / Count-Sketch row folds: merged halves == one pass.
    let cm = CountMinFoldParams { k: 2, width: 256, depth: 4, conservative: false };
    let mut cm_one = CountMinFold::begin(d, 7, &cm);
    cm_one.observe_rows(&rows);
    let mut cm_a = CountMinFold::begin(d, 7, &cm);
    cm_a.observe_rows(&rows[..rows.len() / 2]);
    let mut cm_b = CountMinFold::begin(d, 7, &cm);
    cm_b.observe_rows(&rows[rows.len() / 2..]);
    cm_a.merge(cm_b).expect("same-shape folds merge");
    assert_eq!(cm_a.finish(), cm_one.finish(), "merged Count-Min diverged from one-pass");

    let cs = CountSketchFoldParams { k: 2, width: 256, depth: 3 };
    let mut cs_one = CountSketchFold::begin(d, 7, &cs);
    cs_one.observe_rows(&rows);
    let mut cs_a = CountSketchFold::begin(d, 7, &cs);
    cs_a.observe_rows(&rows[..rows.len() / 3]);
    let mut cs_b = CountSketchFold::begin(d, 7, &cs);
    cs_b.observe_rows(&rows[rows.len() / 3..]);
    cs_a.merge(cs_b).expect("same-shape folds merge");
    assert_eq!(cs_a.finish(), cs_one.finish(), "merged Count-Sketch diverged from one-pass");
}

fn bench_ingest_paths(c: &mut Criterion) {
    let (batches, queries) = workload();
    // A scaled-down loop per iteration keeps timed runs bounded; the gate
    // below runs the full configuration once.
    let slice = &batches[..(batches.len() / 4).max(1)];
    let mut g = c.benchmark_group("ingest_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements((slice.len() * BATCH_ROWS) as u64));
    g.bench_function("append_in_place", |b| {
        b.iter(|| black_box(run_incremental(black_box(slice), black_box(&queries)).1));
    });
    g.bench_function("invalidate_and_retranspose", |b| {
        b.iter(|| black_box(run_invalidating(black_box(slice), black_box(&queries)).1));
    });
    g.finish();
}

/// The ≥ 3× wall-clock gate, runnable outside criterion timing so the
/// smoke pass (`cargo test --benches`) enforces the acceptance criterion —
/// and emits the machine-readable `BENCH_ingest.json` — on every CI run.
fn bench_speedup_gate(c: &mut Criterion) {
    let (batches, queries) = workload();
    assert_build_identities(&batches);

    let t0 = std::time::Instant::now();
    let (inc_db, inc_answers) = run_incremental(&batches, &queries);
    let incremental = t0.elapsed();
    let t1 = std::time::Instant::now();
    let (inv_db, inv_answers) = run_invalidating(&batches, &queries);
    let invalidating = t1.elapsed();

    // Identity before speed: both loops must have served the same answers
    // over the same final database.
    assert_eq!(inc_db, inv_db, "append and mutate-invalidate built different databases");
    assert_eq!(inc_answers, inv_answers, "append-maintained views served different answers");
    assert_eq!(
        inc_db.frequencies(&queries),
        Database::from_matrix(inc_db.matrix().clone()).frequencies(&queries),
        "append-maintained views diverged from a cold rebuild"
    );

    // One cold full transpose over everything ingested — the DESIGN.md §12
    // staging-buffer scatter, measured directly so its build-time effect is
    // recorded in the artifact (it is also the unit the invalidating loop
    // pays per batch).
    let t2 = std::time::Instant::now();
    let cold = ifs_database::ColumnStore::build(inc_db.matrix());
    let transpose = t2.elapsed();
    black_box(cold.words_per_col());

    let speedup = invalidating.as_secs_f64() / incremental.as_secs_f64().max(1e-12);
    let total_queries = (TOTAL_ROWS / BATCH_ROWS) * QUERIES_PER_BATCH;
    let rows_per_sec = TOTAL_ROWS as f64 / incremental.as_secs_f64().max(1e-12);
    let queries_per_sec = total_queries as f64 / incremental.as_secs_f64().max(1e-12);
    let transpose_ms = transpose.as_secs_f64() * 1e3;
    let transpose_mrows_per_sec = TOTAL_ROWS as f64 / transpose.as_secs_f64().max(1e-12) / 1e6;
    println!(
        "ingest_throughput gate: append {incremental:?}, invalidate {invalidating:?} \
         ({speedup:.1}x) on {TOTAL_ROWS} rows x {DIMS} dims, {BATCH_ROWS}-row batches, \
         {QUERIES_PER_BATCH} queries/batch ({rows_per_sec:.0} rows/s, \
         {queries_per_sec:.0} queries/s); cold transpose {transpose_ms:.1} ms \
         ({transpose_mrows_per_sec:.1} Mrows/s)"
    );
    write_bench_json(speedup, rows_per_sec, queries_per_sec, transpose_ms, transpose_mrows_per_sec);
    assert!(
        speedup >= 3.0,
        "append_rows + query must be >= 3x the invalidate-and-retranspose loop, \
         got {speedup:.2}x"
    );
    // Keep criterion's group bookkeeping consistent even though the gate
    // does its own timing.
    let mut g = c.benchmark_group("ingest_throughput_gate");
    g.bench_function("noop", |b| b.iter(|| black_box(0)));
    g.finish();
}

/// Hand-rolled JSON (DESIGN.md §6: no serde) under the workspace's
/// `bench_results/`. Whichever run happened last owns the file — that is
/// the artifact CI surfaces — and the `mode` field records whether a debug
/// smoke or a release bench produced the numbers, so readers comparing
/// across PRs never mistake one for the other.
fn write_bench_json(
    speedup: f64,
    rows_per_sec: f64,
    queries_per_sec: f64,
    transpose_ms: f64,
    transpose_mrows_per_sec: f64,
) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("ingest_throughput: cannot create {}: {e}", dir.display());
        return;
    }
    let mode = if cfg!(debug_assertions) { "debug" } else { "release" };
    let json = format!(
        "{{\n  \"bench\": \"ingest_throughput\",\n  \"mode\": \"{mode}\",\n  \
         \"rows_total\": {TOTAL_ROWS},\n  \"dims\": {DIMS},\n  \
         \"batch_rows\": {BATCH_ROWS},\n  \"queries_per_batch\": {QUERIES_PER_BATCH},\n  \
         \"rows_per_sec\": {rows_per_sec:.1},\n  \"queries_per_sec\": {queries_per_sec:.1},\n  \
         \"transpose_build_ms\": {transpose_ms:.2},\n  \
         \"transpose_mrows_per_sec\": {transpose_mrows_per_sec:.2},\n  \
         \"speedup_vs_retranspose\": {speedup:.2}\n}}\n"
    );
    let path = dir.join("BENCH_ingest.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("ingest_throughput: wrote {}", path.display()),
        Err(e) => eprintln!("ingest_throughput: cannot write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_ingest_paths, bench_speedup_gate);
criterion_main!(benches);
