//! Criterion: SUBSAMPLE build time across the Lemma 9 sample-count ladder
//! (E2's time dimension).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ifs_core::{Guarantee, SketchParams, Subsample};
use ifs_database::generators;
use ifs_util::Rng64;
use std::hint::black_box;

fn bench_sample_ladder(c: &mut Criterion) {
    let mut rng = Rng64::seeded(0xC1);
    let db = generators::uniform(100_000, 32, 0.2, &mut rng);
    let mut g = c.benchmark_group("subsample_build_rows");
    g.sample_size(10);
    for s in [1_000usize, 4_000, 16_000] {
        g.throughput(Throughput::Elements(s as u64));
        g.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, &s| {
            b.iter(|| black_box(Subsample::with_sample_count(&db, s, 0.05, &mut rng)));
        });
    }
    g.finish();
}

fn bench_guarantee_costs(c: &mut Criterion) {
    let mut rng = Rng64::seeded(0xC2);
    let db = generators::uniform(50_000, 24, 0.2, &mut rng);
    let params = SketchParams::new(3, 0.05, 0.05);
    let mut g = c.benchmark_group("subsample_by_guarantee");
    g.sample_size(10);
    for guarantee in Guarantee::ALL {
        g.bench_function(guarantee.name(), |b| {
            b.iter(|| black_box(Subsample::build(&db, &params, guarantee, &mut rng)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sample_ladder, bench_guarantee_costs);
criterion_main!(benches);
