//! Criterion: snapshot codec throughput — encode/decode MB/s per sketch,
//! plus the `size_bits == encoded length` invariant (DESIGN.md §10).
//!
//! Every sketch's `size_bits()` is now the length of its snapshot
//! encoding, so this bench is both a performance measurement (can the
//! offline-build / online-serve split afford to ship snapshots?) and the
//! standing proof that the measurement is real: the smoke pass asserts,
//! for every sketch type, that decode(encode(s)) == s and that
//! `size_bits()` equals the byte length × 8.
//!
//! The gate emits `bench_results/BENCH_snapshot.json` (bytes per sketch,
//! `size_bits`, encode/decode MB/s) so snapshot sizes and codec throughput
//! stay machine-readable across PRs, next to `BENCH_ingest.json`.
//!
//! Run with `cargo bench -p ifs-bench --bench snapshot_roundtrip`; under
//! `cargo test --benches` each body runs once as a smoke test.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ifs_core::snapshot::Snapshot;
use ifs_core::{ReleaseAnswersEstimator, ReleaseAnswersIndicator, ReleaseDb, Subsample};
use ifs_database::generators;
use ifs_streaming::{CountMinSketch, CountSketch, StreamCounter};
use ifs_util::Rng64;
use std::hint::black_box;
use std::time::Instant;

/// Full scale in release; the debug smoke pass shrinks the database (the
/// identities are scale-free, and codec MB/s in debug mode is not a number
/// anyone should read).
const TOTAL_ROWS: usize = if cfg!(debug_assertions) { 10_000 } else { 100_000 };
const DIMS: usize = 128;
const SAMPLE_ROWS: usize = 4_000;
const SEED: u64 = 0x5A47;

/// One sketch's measurements for the JSON artifact.
struct Entry {
    name: &'static str,
    bytes: usize,
    size_bits: u64,
    encode_mbps: f64,
    decode_mbps: f64,
}

/// Times `iters` encode and decode passes of `sketch`, asserting the
/// round-trip identity and the measured-size invariant on the way.
fn measure<S>(name: &'static str, sketch: &S, size_bits: u64, iters: usize) -> Entry
where
    S: Snapshot + PartialEq + std::fmt::Debug,
{
    let bytes = sketch.snapshot_bytes();
    assert_eq!(
        size_bits,
        bytes.len() as u64 * 8,
        "{name}: size_bits must equal the encoded length in bits"
    );
    let decoded = S::from_snapshot(&bytes).unwrap_or_else(|e| panic!("{name}: decode failed: {e}"));
    assert!(&decoded == sketch, "{name}: decode(encode(sketch)) != sketch");

    let t = Instant::now();
    for _ in 0..iters {
        black_box(sketch.snapshot_bytes().len());
    }
    let encode = t.elapsed().as_secs_f64().max(1e-12);
    let t = Instant::now();
    for _ in 0..iters {
        black_box(S::from_snapshot(black_box(&bytes)).expect("roundtrip").snapshot_bits());
    }
    // from_snapshot + snapshot_bits re-encodes; subtract one encode pass to
    // keep the decode figure honest.
    let decode = (t.elapsed().as_secs_f64() - encode).max(encode / 100.0);
    let mb = (bytes.len() * iters) as f64 / (1024.0 * 1024.0);
    Entry {
        name,
        bytes: bytes.len(),
        size_bits,
        encode_mbps: mb / encode,
        decode_mbps: mb / decode,
    }
}

/// The sketch zoo every pass measures: all six snapshot-backed sketches
/// over one planted workload.
#[allow(clippy::type_complexity)]
fn build_zoo() -> (
    Subsample,
    ReleaseDb,
    ReleaseAnswersIndicator,
    ReleaseAnswersEstimator,
    CountMinSketch<u32>,
    CountSketch<u32>,
) {
    let mut rng = Rng64::seeded(SEED);
    let db = generators::uniform(TOTAL_ROWS, DIMS, 0.15, &mut rng);
    let sub = Subsample::with_sample_count_seeded(&db, SAMPLE_ROWS, 0.05, SEED);
    let rdb = ReleaseDb::build(&db, 0.1);
    let small = generators::uniform(TOTAL_ROWS / 10, 24, 0.3, &mut rng);
    let ind = ReleaseAnswersIndicator::build(&small, 2, 0.1);
    let est = ReleaseAnswersEstimator::build(&small, 2, 0.05);
    let mut cm = CountMinSketch::new(2048, 4, false, SEED);
    let mut cs = CountSketch::new(2048, 3, SEED);
    for _ in 0..50_000 {
        let x = rng.below(5_000) as u32;
        cm.update(x);
        cs.update(x);
    }
    (sub, rdb, ind, est, cm, cs)
}

fn bench_codec_paths(c: &mut Criterion) {
    let (sub, rdb, ..) = build_zoo();
    let sub_bytes = sub.snapshot_bytes();
    let rdb_bytes = rdb.snapshot_bytes();
    let mut g = c.benchmark_group("snapshot_roundtrip");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(rdb_bytes.len() as u64));
    g.bench_function("encode_release_db", |b| b.iter(|| black_box(rdb.snapshot_bytes().len())));
    g.bench_function("decode_release_db", |b| {
        b.iter(|| black_box(ReleaseDb::from_snapshot(black_box(&rdb_bytes)).expect("decode")))
    });
    g.throughput(Throughput::Bytes(sub_bytes.len() as u64));
    g.bench_function("encode_subsample", |b| b.iter(|| black_box(sub.snapshot_bytes().len())));
    g.bench_function("decode_subsample", |b| {
        b.iter(|| black_box(Subsample::from_snapshot(black_box(&sub_bytes)).expect("decode")))
    });
    g.finish();
}

/// The identity-and-measurement gate: every sketch round-trips `==`, its
/// `size_bits()` is the encoded length, and the per-sketch numbers land in
/// `BENCH_snapshot.json` — on every CI run via the smoke pass.
fn bench_measurement_gate(c: &mut Criterion) {
    let (sub, rdb, ind, est, cm, cs) = build_zoo();
    let iters = if cfg!(debug_assertions) { 3 } else { 20 };
    let entries = [
        measure("subsample", &sub, ifs_core::Sketch::size_bits(&sub), iters),
        measure("release_db", &rdb, ifs_core::Sketch::size_bits(&rdb), iters),
        measure("release_answers_indicator", &ind, ifs_core::Sketch::size_bits(&ind), iters),
        measure("release_answers_estimator", &est, ifs_core::Sketch::size_bits(&est), iters),
        measure("count_min", &cm, StreamCounter::size_bits(&cm), iters),
        measure("count_sketch", &cs, StreamCounter::size_bits(&cs), iters),
    ];
    for e in &entries {
        println!(
            "snapshot_roundtrip: {:<26} {:>9} bytes ({} bits) encode {:>8.1} MB/s decode \
             {:>8.1} MB/s",
            e.name, e.bytes, e.size_bits, e.encode_mbps, e.decode_mbps
        );
    }
    write_bench_json(&entries);

    let mut g = c.benchmark_group("snapshot_roundtrip_gate");
    g.bench_function("noop", |b| b.iter(|| black_box(0)));
    g.finish();
}

/// Hand-rolled JSON (DESIGN.md §6: no serde) under the workspace's
/// `bench_results/`, mirroring `BENCH_ingest.json`: the `mode` field keeps
/// debug smoke numbers from ever being read as release measurements.
fn write_bench_json(entries: &[Entry]) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("snapshot_roundtrip: cannot create {}: {e}", dir.display());
        return;
    }
    let mode = if cfg!(debug_assertions) { "debug" } else { "release" };
    let mut sketches = String::new();
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        sketches.push_str(&format!(
            "    {{ \"name\": \"{}\", \"bytes\": {}, \"size_bits\": {}, \
             \"encode_mb_per_sec\": {:.1}, \"decode_mb_per_sec\": {:.1} }}{sep}\n",
            e.name, e.bytes, e.size_bits, e.encode_mbps, e.decode_mbps
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"snapshot_roundtrip\",\n  \"mode\": \"{mode}\",\n  \
         \"rows_total\": {TOTAL_ROWS},\n  \"dims\": {DIMS},\n  \
         \"sample_rows\": {SAMPLE_ROWS},\n  \"sketches\": [\n{sketches}  ]\n}}\n"
    );
    let path = dir.join("BENCH_snapshot.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("snapshot_roundtrip: wrote {}", path.display()),
        Err(e) => eprintln!("snapshot_roundtrip: cannot write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_codec_paths, bench_measurement_gate);
criterion_main!(benches);
