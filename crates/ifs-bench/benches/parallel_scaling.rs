//! Criterion: serial vs sharded multi-threaded batch query execution.
//!
//! The acceptance targets for the parallel execution layer (DESIGN.md §8)
//! on a 100k-row × 128-dim database with a 1k-itemset query log:
//!
//! 1. **Identity** — sharded `support_batch`/`frequency_batch` answers are
//!    bit-identical to the serial columnar path at every thread count
//!    (asserted here on every run, including the smoke pass).
//! 2. **Speedup** — ≥ 1.5× over the serial path at 4 threads. The gate
//!    runs whenever the host exposes ≥ 4 cores; on smaller runners it is
//!    skipped with a printed notice (4 workers on 1 core cannot speed
//!    anything up — the identity assertions still run everywhere).
//!
//! Run with `cargo bench -p ifs-bench --bench parallel_scaling`; under
//! `cargo test --benches` each body runs once as a smoke test.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ifs_database::{Database, Itemset, ShardedColumnStore};
use ifs_util::Rng64;
use std::hint::black_box;

const ROWS: usize = 100_000;
const DIMS: usize = 128;
const QUERIES: usize = 1_000;

/// Deterministic mixed-cardinality query log (k ∈ {1,…,4}, plus the empty
/// itemset), the shape of an indicator-query workload.
fn query_log(rng: &mut Rng64) -> Vec<Itemset> {
    let mut log: Vec<Itemset> = (0..QUERIES - 1)
        .map(|q| (0..1 + q % 4).map(|_| rng.below(DIMS) as u32).collect())
        .collect();
    log.push(Itemset::empty());
    log
}

fn workload() -> (Database, Vec<Itemset>) {
    let mut rng = Rng64::seeded(0x5CA1);
    let db = Database::from_fn(ROWS, DIMS, |_, _| rng.bernoulli(0.3));
    let queries = query_log(&mut rng);
    (db, queries)
}

fn bench_thread_scaling(c: &mut Criterion) {
    let (db, queries) = workload();
    // Identity first: speed means nothing if the answers moved.
    let serial_sup = db.support_batch(&queries);
    let serial_freq = db.frequencies(&queries);
    let sharded = ShardedColumnStore::build(db.matrix(), 4);
    for threads in [1usize, 2, 4, 8] {
        assert_eq!(
            sharded.support_batch(&queries, threads),
            serial_sup,
            "sharded supports diverged from serial at {threads} threads"
        );
        assert_eq!(
            sharded.frequency_batch(&queries, threads),
            serial_freq,
            "sharded frequencies diverged from serial at {threads} threads"
        );
    }

    let mut g = c.benchmark_group("parallel_scaling");
    g.sample_size(10);
    g.throughput(Throughput::Elements(QUERIES as u64));
    g.bench_function("serial_columnar", |b| {
        b.iter(|| black_box(db.frequencies(black_box(&queries))));
    });
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(format!("sharded_{threads}_threads"), |b| {
            b.iter(|| black_box(sharded.frequency_batch(black_box(&queries), threads)));
        });
    }
    g.finish();
}

fn bench_sharded_build(c: &mut Criterion) {
    let (db, _) = workload();
    let mut g = c.benchmark_group("sharded_build");
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_function(format!("build_{threads}_threads"), |b| {
            b.iter(|| black_box(ShardedColumnStore::build(black_box(db.matrix()), threads)));
        });
    }
    g.finish();
}

/// The ≥ 1.5× wall-clock gate at 4 threads, runnable outside criterion
/// timing so the smoke pass (`cargo test --benches`) enforces the
/// acceptance criterion on capable hosts on every CI run.
fn bench_speedup_gate(c: &mut Criterion) {
    let (db, queries) = workload();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let _ = db.columns(); // pay the serial transpose before timing
    let sharded = ShardedColumnStore::build(db.matrix(), cores);

    // Best-of-3 per path smooths scheduler noise without hiding a real miss.
    let time_best = |f: &dyn Fn() -> Vec<f64>| {
        (0..3)
            .map(|_| {
                let t = std::time::Instant::now();
                black_box(f());
                t.elapsed()
            })
            .min()
            .expect("three timings")
    };
    let serial_time = time_best(&|| db.frequencies(&queries));
    let sharded_time = time_best(&|| sharded.frequency_batch(&queries, 4));
    assert_eq!(sharded.frequency_batch(&queries, 4), db.frequencies(&queries));
    let speedup = serial_time.as_secs_f64() / sharded_time.as_secs_f64().max(1e-12);
    println!(
        "parallel_scaling gate: serial {serial_time:?}, sharded@4 {sharded_time:?} \
         ({speedup:.2}x) on {ROWS}x{DIMS}, {QUERIES} queries, {cores} cores"
    );
    if cores >= 4 {
        assert!(
            speedup >= 1.5,
            "sharded 4-thread path must be >= 1.5x the serial path on a >=4-core host, \
             got {speedup:.2}x"
        );
    } else {
        println!(
            "parallel_scaling gate: SKIPPED speedup assertion ({cores} cores < 4; \
             identity assertions ran)"
        );
    }
    // Keep criterion's group bookkeeping consistent even though the gate
    // does its own timing.
    let mut g = c.benchmark_group("parallel_scaling_gate");
    g.bench_function("noop", |b| b.iter(|| black_box(0)));
    g.finish();
}

criterion_group!(benches, bench_thread_scaling, bench_sharded_build, bench_speedup_gate);
criterion_main!(benches);
