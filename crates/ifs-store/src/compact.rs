//! Compaction and migration: the two log rewrites.
//!
//! Both produce a *fresh* log at a destination path and leave the source
//! untouched — the caller swaps files (rename over the old path) when it
//! is satisfied, which keeps the crash story trivial: at every instant
//! there is one complete valid log on disk.
//!
//! **Compaction** materializes the source (the same fold serving uses)
//! and writes one `Put` per live id. Identity is by construction: the
//! compacted log materializes to the map it was written from, so any
//! query against either log's materialization sees identical frames. The
//! tests still assert it end to end (`tests/sketch_store.rs`), because
//! "by construction" claims are exactly the ones worth pinning.
//!
//! **Migration** preserves record structure (ops, ids, order — merge runs
//! stay merge runs) and rewrites only frames whose version is superseded
//! by the current encoder for their kind, e.g. `ReleaseDb` v1 bodies to
//! the v2 run-length layout. Decoding uses the permanently kept old-
//! version decoders; identity is asserted by materializing both logs and
//! comparing answers. Migration is a space reclaim, never a compatibility
//! requirement — an unmigrated log stays readable forever.

use crate::materialize::StoredSketch;
use crate::{LogOp, SketchLog, StoreError};
use ifs_core::snapshot::{
    KIND_COUNT_MIN, KIND_COUNT_SKETCH, KIND_RELEASE_ANSWERS_ESTIMATOR,
    KIND_RELEASE_ANSWERS_INDICATOR, KIND_RELEASE_DB, KIND_SUBSAMPLE, KIND_SUBSAMPLE_BUILDER,
};
use ifs_core::{
    ReleaseAnswersEstimator, ReleaseAnswersIndicator, ReleaseDb, Snapshot, Subsample,
    SubsampleBuilder,
};
use ifs_streaming::{CountMinSketch, CountSketch};
use std::path::Path;

/// What a [`compact_into`](SketchLog::compact_into) pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Records in the source log.
    pub records_in: u64,
    /// Records in the compacted log — the number of live ids.
    pub records_out: u64,
    /// Source log size (header included).
    pub bytes_in: u64,
    /// Compacted log size (header included).
    pub bytes_out: u64,
}

/// What a [`migrate_into`](SketchLog::migrate_into) pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrateStats {
    /// Records copied or rewritten (structure is preserved, so also the
    /// destination's record count).
    pub records: u64,
    /// Records whose frame was re-encoded at the current version.
    pub rewritten: u64,
    /// Source log size (header included).
    pub bytes_in: u64,
    /// Migrated log size (header included).
    pub bytes_out: u64,
}

/// The version the current build *writes* for `kind` — the migration
/// target. `None` for kinds outside the registry (unreachable for frames
/// that passed the scan, which decodes kinds strictly).
fn current_version(kind: u16) -> Option<u16> {
    match kind {
        KIND_SUBSAMPLE => Some(<Subsample as Snapshot>::VERSION),
        KIND_RELEASE_DB => Some(<ReleaseDb as Snapshot>::VERSION),
        KIND_RELEASE_ANSWERS_INDICATOR => Some(<ReleaseAnswersIndicator as Snapshot>::VERSION),
        KIND_RELEASE_ANSWERS_ESTIMATOR => Some(<ReleaseAnswersEstimator as Snapshot>::VERSION),
        KIND_COUNT_MIN => Some(<CountMinSketch<u64> as Snapshot>::VERSION),
        KIND_COUNT_SKETCH => Some(<CountSketch<u64> as Snapshot>::VERSION),
        KIND_SUBSAMPLE_BUILDER => Some(<SubsampleBuilder as Snapshot>::VERSION),
        _ => None,
    }
}

pub(crate) fn compact(
    src: &SketchLog,
    dst: &Path,
) -> Result<(SketchLog, CompactStats), StoreError> {
    let records_in = src.record_count();
    let live = src.materialize()?;
    let mut out = SketchLog::create(dst)?;
    for (id, frame) in &live {
        out.append(LogOp::Put, *id, frame)?;
    }
    let stats = CompactStats {
        records_in,
        records_out: out.record_count(),
        bytes_in: src.len_bytes(),
        bytes_out: out.len_bytes(),
    };
    Ok((out, stats))
}

pub(crate) fn migrate(
    src: &SketchLog,
    dst: &Path,
) -> Result<(SketchLog, MigrateStats), StoreError> {
    let records = src.records()?;
    let mut out = SketchLog::create(dst)?;
    let mut rewritten = 0u64;
    for rec in &records {
        let info = ifs_database::codec::peek_frame(&rec.frame)
            .map_err(|source| StoreError::Frame { offset: rec.offset, id: rec.id, source })?;
        let stale = current_version(info.kind).is_some_and(|v| info.version < v);
        if stale {
            let sketch = StoredSketch::decode(&rec.frame).map_err(|source| StoreError::Frame {
                offset: rec.offset,
                id: rec.id,
                source,
            })?;
            out.append(rec.op, rec.id, &sketch.encode())?;
            rewritten += 1;
        } else {
            out.append(rec.op, rec.id, &rec.frame)?;
        }
    }
    let stats = MigrateStats {
        records: records.len() as u64,
        rewritten,
        bytes_in: src.len_bytes(),
        bytes_out: out.len_bytes(),
    };
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::tests::Scratch;
    use crate::LogOp;
    use ifs_database::Database;

    fn rdb(rows: &[Vec<u32>]) -> ReleaseDb {
        ReleaseDb::build(&Database::from_rows(16, rows), 0.25)
    }

    #[test]
    fn compaction_materializes_identically_and_shrinks() {
        let src_scratch = Scratch::new("cmp-src");
        let dst_scratch = Scratch::new("cmp-dst");
        let mut log = SketchLog::create(&src_scratch.0).expect("create");
        // Shadowed puts, a merge run, and a verbatim v1 record.
        for i in 0..4 {
            log.append(LogOp::Put, 1, &rdb(&[vec![i]]).snapshot_bytes()).expect("append");
        }
        log.append(LogOp::Merge, 2, &rdb(&[vec![0, 1]]).snapshot_bytes()).expect("append");
        log.append(LogOp::Merge, 2, &rdb(&[vec![2]]).snapshot_bytes()).expect("append");
        log.append(LogOp::Put, 3, &rdb(&[vec![5]]).snapshot_bytes_v1()).expect("append");
        let (compacted, stats) = log.compact_into(&dst_scratch.0).expect("compact");
        assert_eq!(stats.records_in, 7);
        assert_eq!(stats.records_out, 3, "one Put per live id");
        assert!(stats.bytes_out < stats.bytes_in, "{stats:?}");
        assert_eq!(
            compacted.materialize().expect("materialize"),
            log.materialize().expect("materialize"),
            "compacted == uncompacted, frame for frame"
        );
        // Compacting the compacted log is a fixpoint.
        let dst2 = Scratch::new("cmp-dst2");
        let (again, stats2) = compacted.compact_into(&dst2.0).expect("recompact");
        assert_eq!(stats2.records_in, 3);
        assert_eq!(stats2.records_out, 3);
        assert_eq!(again.materialize().expect("m"), log.materialize().expect("m"));
    }

    #[test]
    fn migration_rewrites_stale_frames_and_preserves_structure() {
        let src_scratch = Scratch::new("mig-src");
        let dst_scratch = Scratch::new("mig-dst");
        // A sparse-ish database so v2 actually shrinks the record.
        let sparse = rdb(&(0..50).map(|i| vec![(i % 3) as u32]).collect::<Vec<_>>());
        let mut log = SketchLog::create(&src_scratch.0).expect("create");
        log.append(LogOp::Put, 0, &sparse.snapshot_bytes_v1()).expect("append");
        log.append(LogOp::Merge, 1, &rdb(&[vec![1]]).snapshot_bytes_v1()).expect("append");
        log.append(LogOp::Merge, 1, &rdb(&[vec![2]]).snapshot_bytes()).expect("append");
        log.append(LogOp::Put, 2, &rdb(&[vec![9]]).snapshot_bytes()).expect("append");
        let (migrated, stats) = log.migrate_into(&dst_scratch.0).expect("migrate");
        assert_eq!(stats.records, 4);
        assert_eq!(stats.rewritten, 2, "exactly the v1 frames were rewritten");
        assert!(stats.bytes_out < stats.bytes_in, "{stats:?}");
        // Structure preserved: same ops and ids in the same order.
        let before = log.records().expect("scan");
        let after = migrated.records().expect("scan");
        assert_eq!(
            before.iter().map(|r| (r.op, r.id)).collect::<Vec<_>>(),
            after.iter().map(|r| (r.op, r.id)).collect::<Vec<_>>()
        );
        // Every migrated frame is at the current version...
        for rec in &after {
            let info = ifs_database::codec::peek_frame(&rec.frame).expect("valid frame");
            assert_eq!(info.version, current_version(info.kind).expect("registry kind"));
        }
        // ...and the logs materialize to sketches with identical answers.
        let q = ifs_database::Itemset::singleton(1);
        for (id, frame) in log.materialize().expect("m") {
            let a = ReleaseDb::from_snapshot(&frame).expect("decode");
            let b =
                ReleaseDb::from_snapshot(&migrated.materialize().expect("m")[&id]).expect("decode");
            assert_eq!(a, b, "id {id}");
            use ifs_core::FrequencyEstimator;
            assert_eq!(a.estimate(&q).to_bits(), b.estimate(&q).to_bits(), "id {id}");
        }
        // Migration is idempotent: a second pass rewrites nothing.
        let dst2 = Scratch::new("mig-dst2");
        let (_, stats2) = migrated.migrate_into(&dst2.0).expect("re-migrate");
        assert_eq!(stats2.rewritten, 0);
        assert_eq!(stats2.bytes_in, stats2.bytes_out);
    }
}
