//! The append-only sketch log: file format, appends, and the two scans.
//!
//! ## File format
//!
//! ```text
//! header   := magic u32 ("IFSL") | version u16 | reserved u16 (zero)
//! record   := op u8 | id varint | frame_len varint | frame bytes | checksum u64
//! ```
//!
//! All integers little-endian; varints are the codec's LEB128. The
//! checksum is FNV-1a-64 over the record's bytes from `op` through the
//! end of `frame` — the same hash, and the same "judged before trust"
//! discipline, as the §10 snapshot frames. The frame bytes are themselves
//! a complete §10 frame (validated at append *and* at scan via
//! [`peek_frame`]), so a log record is checksummed twice over: once by
//! the record, once by the frame it carries. That redundancy is what lets
//! the recovery scan distinguish "torn tail" from "foreign file".
//!
//! ## The two scans
//!
//! * **Recovery** ([`SketchLog::open`]) — reads records until the first
//!   invalid one, truncates the file there, and reports what was dropped.
//!   This is the WAL posture: a crashed writer loses at most its
//!   in-flight suffix, never the prefix. The header is never recovered
//!   *from*: a wrong magic refuses with [`StoreError::NotALog`] — the
//!   store does not truncate files it did not write.
//! * **Strict** ([`SketchLog::records`]) — any invalid record is a typed
//!   error naming its byte offset. This is the scan everything downstream
//!   (materialize, compact, migrate) uses: after a recovering `open`, the
//!   file has no invalid suffix left, so strictness costs nothing and
//!   catches corruption that appears *after* open (a concurrent writer, a
//!   failing disk).
//!
//! Appends are durable at the OS level (`write_all` on an append-mode
//! handle); the crash model tested in `tests/sketch_store.rs` is
//! truncation — a record is either fully present or cut, which is what
//! POSIX appends of this size give in practice.

use crate::compact::{CompactStats, MigrateStats};
use crate::materialize::materialize;
use crate::StoreError;
use ifs_database::codec::{self, peek_frame, Reader, Writer};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// First four bytes of every sketch log: `IFSL` as a little-endian u32.
pub const LOG_MAGIC: u32 = 0x4C53_4649;

/// Newest log-container version this build reads and the one it writes.
/// This versions the *record framing* only; the frames inside carry their
/// own kind/version tags and migrate independently.
pub const LOG_VERSION: u16 = 1;

/// Bytes of the file header: magic, version, reserved.
pub const LOG_HEADER_LEN: usize = 8;

const OP_PUT: u8 = 1;
const OP_MERGE: u8 = 2;

/// What an appended record does to its id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogOp {
    /// Replace the id's sketch with this frame (initial load or reload).
    Put,
    /// Fold this frame into the id's sketch via §9 [`merge`]. The first
    /// record of an id may be a `Merge`: it then supplies the initial
    /// value, exactly as the first partial of a sharded build does.
    ///
    /// [`merge`]: ifs_core::MergeableSketch::merge
    Merge,
}

impl LogOp {
    fn to_byte(self) -> u8 {
        match self {
            LogOp::Put => OP_PUT,
            LogOp::Merge => OP_MERGE,
        }
    }
}

/// One validated log record, with the byte offset it was read from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// What the record does to `id`.
    pub op: LogOp,
    /// The sketch id the record addresses.
    pub id: u64,
    /// The complete §10 snapshot frame the record carries.
    pub frame: Vec<u8>,
    /// Byte offset of the record's first byte (`op`) in the file.
    pub offset: u64,
}

/// What [`SketchLog::open`]'s recovery scan found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Valid records retained.
    pub records: u64,
    /// File length after recovery (header plus retained records).
    pub valid_bytes: u64,
    /// Bytes truncated off the tail (zero for a clean file).
    pub truncated_bytes: u64,
    /// Why the tail was cut, when it was.
    pub reason: Option<String>,
}

impl RecoveryReport {
    /// True iff the file was already fully valid.
    pub fn clean(&self) -> bool {
        self.truncated_bytes == 0
    }
}

/// An open append-only sketch log. See the module docs for the format.
#[derive(Debug)]
pub struct SketchLog {
    path: PathBuf,
    file: File,
    len: u64,
    records: u64,
}

fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io { path: path.to_path_buf(), source }
}

fn header_bytes() -> [u8; LOG_HEADER_LEN] {
    let mut h = [0u8; LOG_HEADER_LEN];
    h[0..4].copy_from_slice(&LOG_MAGIC.to_le_bytes());
    h[4..6].copy_from_slice(&LOG_VERSION.to_le_bytes());
    h
}

/// Outcome of decoding one record from `bytes[offset..]`.
enum RecordScan {
    /// A valid record ending at the returned offset.
    Ok(LogRecord, u64),
    /// `bytes` ends cleanly at `offset` — no record starts here.
    End,
    /// The bytes at `offset` are not a valid record; the string says why.
    Invalid(String),
}

/// Decodes the record starting at `offset`, judging everything before
/// trusting anything: structure first, record checksum second, and the
/// carried frame's own validation last.
fn scan_record(bytes: &[u8], offset: u64) -> RecordScan {
    let rest = &bytes[offset as usize..];
    if rest.is_empty() {
        return RecordScan::End;
    }
    let mut r = Reader::new(rest);
    let op = match r.u8() {
        Ok(OP_PUT) => LogOp::Put,
        Ok(OP_MERGE) => LogOp::Merge,
        Ok(other) => return RecordScan::Invalid(format!("unknown record op {other:#04x}")),
        Err(e) => return RecordScan::Invalid(e.to_string()),
    };
    let id = match r.varint() {
        Ok(id) => id,
        Err(e) => return RecordScan::Invalid(format!("record id: {e}")),
    };
    let frame_len = match r.varint_usize() {
        Ok(n) => n,
        Err(e) => return RecordScan::Invalid(format!("frame length: {e}")),
    };
    let frame = match r.bytes(frame_len) {
        Ok(f) => f.to_vec(),
        Err(e) => return RecordScan::Invalid(format!("frame bytes: {e}")),
    };
    let hashed = r.consumed();
    let stored = match r.u64() {
        Ok(c) => c,
        Err(e) => return RecordScan::Invalid(format!("record checksum: {e}")),
    };
    let computed = codec::fnv1a64(&rest[..hashed]);
    if stored != computed {
        return RecordScan::Invalid(format!(
            "record checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        ));
    }
    // The carried frame must itself be one complete, valid snapshot frame.
    match peek_frame(&frame) {
        Ok(info) if info.frame_len == frame.len() => {}
        Ok(info) => {
            return RecordScan::Invalid(format!(
                "record carries {} bytes beyond its snapshot frame",
                frame.len() - info.frame_len
            ))
        }
        Err(e) => return RecordScan::Invalid(format!("carried frame: {e}")),
    }
    let end = offset + r.consumed() as u64;
    RecordScan::Ok(LogRecord { op, id, frame, offset }, end)
}

/// Validates the header of `bytes`, distinguishing "foreign file" (refuse,
/// never truncate) from "torn header" (recoverable: the file is a prefix
/// of a valid empty log).
fn check_header(path: &Path, bytes: &[u8]) -> Result<Option<String>, StoreError> {
    let expected = header_bytes();
    if bytes.len() < LOG_HEADER_LEN {
        return if *bytes == expected[..bytes.len()] {
            Ok(Some(format!("torn {}-byte header", bytes.len())))
        } else {
            Err(StoreError::NotALog { path: path.to_path_buf(), found_magic: partial_magic(bytes) })
        };
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    if magic != LOG_MAGIC {
        return Err(StoreError::NotALog { path: path.to_path_buf(), found_magic: magic });
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version == 0 || version > LOG_VERSION {
        return Err(StoreError::UnsupportedLogVersion { got: version, supported: LOG_VERSION });
    }
    Ok(None)
}

fn partial_magic(bytes: &[u8]) -> u32 {
    let mut m = [0u8; 4];
    let n = bytes.len().min(4);
    m[..n].copy_from_slice(&bytes[..n]);
    u32::from_le_bytes(m)
}

impl SketchLog {
    /// Creates an empty log at `path`, truncating anything already there.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        file.write_all(&header_bytes()).map_err(|e| io_err(path, e))?;
        Ok(Self { path: path.to_path_buf(), file, len: LOG_HEADER_LEN as u64, records: 0 })
    }

    /// Opens the log at `path` — creating it when absent — after a
    /// recovery scan: a torn or corrupt tail is truncated off the file and
    /// reported, so subsequent appends land after the last valid record.
    ///
    /// A file that does not start with the log magic refuses with
    /// [`StoreError::NotALog`]: recovery truncates only files this store
    /// wrote, never a file mistakenly offered as one.
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, RecoveryReport), StoreError> {
        let path = path.as_ref();
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let log = Self::create(path)?;
                let report = RecoveryReport {
                    records: 0,
                    valid_bytes: LOG_HEADER_LEN as u64,
                    truncated_bytes: 0,
                    reason: None,
                };
                return Ok((log, report));
            }
            Err(e) => return Err(io_err(path, e)),
        };
        // An empty file is a freshly created (or crashed-before-header)
        // log; stamp the header and carry on.
        if bytes.is_empty() {
            let log = Self::create(path)?;
            let report = RecoveryReport {
                records: 0,
                valid_bytes: LOG_HEADER_LEN as u64,
                truncated_bytes: 0,
                reason: None,
            };
            return Ok((log, report));
        }
        if let Some(reason) = check_header(path, &bytes)? {
            let log = Self::create(path)?;
            let report = RecoveryReport {
                records: 0,
                valid_bytes: LOG_HEADER_LEN as u64,
                truncated_bytes: bytes.len() as u64,
                reason: Some(reason),
            };
            return Ok((log, report));
        }
        let mut offset = LOG_HEADER_LEN as u64;
        let mut records = 0u64;
        let mut reason = None;
        loop {
            match scan_record(&bytes, offset) {
                RecordScan::Ok(_, end) => {
                    records += 1;
                    offset = end;
                }
                RecordScan::End => break,
                RecordScan::Invalid(why) => {
                    reason = Some(format!("record {records} at byte offset {offset}: {why}"));
                    break;
                }
            }
        }
        let truncated = bytes.len() as u64 - offset;
        if truncated > 0 {
            let file = OpenOptions::new().write(true).open(path).map_err(|e| io_err(path, e))?;
            file.set_len(offset).map_err(|e| io_err(path, e))?;
        }
        let file = OpenOptions::new().append(true).open(path).map_err(|e| io_err(path, e))?;
        let log = Self { path: path.to_path_buf(), file, len: offset, records };
        Ok((
            log,
            RecoveryReport { records, valid_bytes: offset, truncated_bytes: truncated, reason },
        ))
    }

    /// The file this log appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current file length in bytes (header plus records).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Records appended or recovered so far.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Appends one record. The frame is judged before it is written: it
    /// must be exactly one valid §10 snapshot frame (any kind), or the
    /// append refuses with [`StoreError::Frame`] at the would-be offset
    /// and the file is untouched.
    pub fn append(&mut self, op: LogOp, id: u64, frame: &[u8]) -> Result<(), StoreError> {
        let offset = self.len;
        let frame_err = |source| StoreError::Frame { offset, id, source };
        let info = peek_frame(frame).map_err(frame_err)?;
        if info.frame_len != frame.len() {
            return Err(frame_err(ifs_database::codec::DecodeError::TrailingBytes {
                extra: frame.len() - info.frame_len,
            }));
        }
        let mut w = Writer::new();
        w.u8(op.to_byte());
        w.varint(id);
        w.varint(frame.len() as u64);
        w.bytes(frame);
        let checksum = codec::fnv1a64(w.as_slice());
        w.u64(checksum);
        let record = w.into_bytes();
        self.file.write_all(&record).map_err(|e| io_err(&self.path, e))?;
        self.len += record.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Strict scan: every record in the file, or a typed error naming the
    /// byte offset of the first invalid one. After a recovering
    /// [`open`](Self::open) this only fails if the file changed underneath
    /// the store.
    pub fn records(&self) -> Result<Vec<LogRecord>, StoreError> {
        let bytes = std::fs::read(&self.path).map_err(|e| io_err(&self.path, e))?;
        if let Some(torn) = check_header(&self.path, &bytes)? {
            return Err(StoreError::BadRecord { offset: 0, detail: torn });
        }
        let mut offset = LOG_HEADER_LEN as u64;
        let mut records = Vec::new();
        loop {
            match scan_record(&bytes, offset) {
                RecordScan::Ok(rec, end) => {
                    records.push(rec);
                    offset = end;
                }
                RecordScan::End => return Ok(records),
                RecordScan::Invalid(detail) => {
                    return Err(StoreError::BadRecord { offset, detail })
                }
            }
        }
    }

    /// Folds the whole log into its served state: for every live id, the
    /// single snapshot frame the log's `Put`s and `Merge`s amount to, in
    /// id order. See [`materialize`] for the fold's contract.
    pub fn materialize(&self) -> Result<BTreeMap<u64, Vec<u8>>, StoreError> {
        materialize(&self.records()?)
    }

    /// Compacts this log into a fresh one at `dst`: one `Put` per live id,
    /// shadowed records dropped, merge runs collapsed. The identity
    /// argument: compacted and uncompacted logs [`materialize`](Self::materialize)
    /// to the same frames, so compaction is invisible to every query.
    pub fn compact_into(
        &self,
        dst: impl AsRef<Path>,
    ) -> Result<(SketchLog, CompactStats), StoreError> {
        crate::compact::compact(self, dst.as_ref())
    }

    /// Rewrites superseded-version frames at their current version into a
    /// fresh log at `dst`, preserving record structure (ops, ids, order).
    pub fn migrate_into(
        &self,
        dst: impl AsRef<Path>,
    ) -> Result<(SketchLog, MigrateStats), StoreError> {
        crate::compact::migrate(self, dst.as_ref())
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use ifs_core::{ReleaseDb, Snapshot};
    use ifs_database::Database;

    /// A unique scratch path per test, cleaned up by the returned guard.
    pub(crate) struct Scratch(pub PathBuf);

    impl Scratch {
        pub(crate) fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!("ifs-store-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_file(&path);
            Self(path)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn demo_frame(rows: &[Vec<u32>]) -> Vec<u8> {
        ReleaseDb::build(&Database::from_rows(8, rows), 0.25).snapshot_bytes()
    }

    #[test]
    fn append_then_reopen_roundtrips_records() {
        let scratch = Scratch::new("roundtrip");
        let f0 = demo_frame(&[vec![0, 1]]);
        let f1 = demo_frame(&[vec![2]]);
        let mut log = SketchLog::create(&scratch.0).expect("create");
        log.append(LogOp::Put, 7, &f0).expect("append");
        log.append(LogOp::Merge, 7, &f1).expect("append");
        log.append(LogOp::Put, 3, &f1).expect("append");
        assert_eq!(log.record_count(), 3);
        let (reopened, report) = SketchLog::open(&scratch.0).expect("reopen");
        assert!(report.clean(), "{report:?}");
        assert_eq!(report.records, 3);
        let records = reopened.records().expect("strict scan");
        assert_eq!(
            records.iter().map(|r| (r.op, r.id)).collect::<Vec<_>>(),
            vec![(LogOp::Put, 7), (LogOp::Merge, 7), (LogOp::Put, 3)]
        );
        assert_eq!(records[0].frame, f0, "frames come back byte-for-byte");
        assert_eq!(records[0].offset, LOG_HEADER_LEN as u64);
        // Appends after a reopen land after the recovered tail.
        let mut reopened = reopened;
        reopened.append(LogOp::Put, 9, &f0).expect("append after reopen");
        assert_eq!(reopened.records().expect("scan").len(), 4);
    }

    #[test]
    fn open_creates_missing_and_refuses_foreign_files() {
        let scratch = Scratch::new("foreign");
        let (log, report) = SketchLog::open(&scratch.0).expect("create via open");
        assert!(report.clean());
        assert_eq!(log.len_bytes(), LOG_HEADER_LEN as u64);
        drop(log);
        // A file that is not a log is refused, not truncated.
        std::fs::write(&scratch.0, b"definitely not a sketch log").expect("write");
        let err = SketchLog::open(&scratch.0).expect_err("foreign file");
        assert!(matches!(err, StoreError::NotALog { .. }), "{err}");
        assert_eq!(
            std::fs::read(&scratch.0).expect("still there"),
            b"definitely not a sketch log",
            "refusal must not modify the file"
        );
        // A future log version refuses typed too.
        let mut header = header_bytes().to_vec();
        header[4] = 0xFF;
        std::fs::write(&scratch.0, &header).expect("write");
        assert!(matches!(
            SketchLog::open(&scratch.0),
            Err(StoreError::UnsupportedLogVersion { .. })
        ));
    }

    #[test]
    fn recovery_truncates_torn_tails_and_keeps_the_prefix() {
        let scratch = Scratch::new("torn");
        let f0 = demo_frame(&[vec![0, 1], vec![3]]);
        let f1 = demo_frame(&[vec![5]]);
        let mut log = SketchLog::create(&scratch.0).expect("create");
        log.append(LogOp::Put, 0, &f0).expect("append");
        let keep = log.len_bytes();
        log.append(LogOp::Put, 1, &f1).expect("append");
        let full = std::fs::read(&scratch.0).expect("read");
        drop(log);
        // Every torn prefix of the second record recovers to exactly the
        // first record; a complete file recovers clean.
        for cut in keep as usize..full.len() {
            std::fs::write(&scratch.0, &full[..cut]).expect("write");
            let (log, report) = SketchLog::open(&scratch.0).expect("recover");
            assert_eq!(report.records, 1, "cut={cut}");
            assert_eq!(report.truncated_bytes, cut as u64 - keep, "cut={cut}");
            assert_eq!(report.clean(), cut == keep as usize);
            assert_eq!(log.len_bytes(), keep);
            let records = log.records().expect("strict scan after recovery");
            assert_eq!(records.len(), 1);
            assert_eq!(records[0].frame, f0);
        }
    }

    #[test]
    fn recovery_truncates_from_a_corrupt_record_onward() {
        let scratch = Scratch::new("bitflip");
        let f = demo_frame(&[vec![1]]);
        let mut log = SketchLog::create(&scratch.0).expect("create");
        for id in 0..3 {
            log.append(LogOp::Put, id, &f).expect("append");
        }
        let record_len = (log.len_bytes() as usize - LOG_HEADER_LEN) / 3;
        let full = std::fs::read(&scratch.0).expect("read");
        drop(log);
        // Flip a byte inside the second record: recovery keeps record 0
        // and drops records 1 and 2 (prefix recovery, like a WAL).
        let mut bytes = full;
        bytes[LOG_HEADER_LEN + record_len + record_len / 2] ^= 0x40;
        std::fs::write(&scratch.0, &bytes).expect("write");
        let (log, report) = SketchLog::open(&scratch.0).expect("recover");
        assert_eq!(report.records, 1);
        assert_eq!(report.truncated_bytes, 2 * record_len as u64);
        assert!(report.reason.as_deref().expect("reason").contains("byte offset"));
        assert_eq!(log.records().expect("scan").len(), 1);
    }

    #[test]
    fn append_judges_the_frame_before_writing() {
        let scratch = Scratch::new("badframe");
        let mut log = SketchLog::create(&scratch.0).expect("create");
        let err = log.append(LogOp::Put, 0, b"not a frame").expect_err("bad frame");
        assert!(matches!(err, StoreError::Frame { .. }), "{err}");
        let mut trailing = demo_frame(&[vec![0]]);
        trailing.push(0xEE);
        let err = log.append(LogOp::Put, 0, &trailing).expect_err("trailing byte");
        assert!(matches!(err, StoreError::Frame { .. }), "{err}");
        assert_eq!(log.len_bytes(), LOG_HEADER_LEN as u64, "refused appends write nothing");
        assert_eq!(log.record_count(), 0);
    }

    #[test]
    fn strict_scan_refuses_where_recovery_truncates() {
        let scratch = Scratch::new("strict");
        let f = demo_frame(&[vec![2]]);
        let mut log = SketchLog::create(&scratch.0).expect("create");
        log.append(LogOp::Put, 0, &f).expect("append");
        let valid_len = log.len_bytes();
        // Corrupt the file *after* open: strict scan names the offset.
        let mut bytes = std::fs::read(&scratch.0).expect("read");
        bytes.push(0xFF); // an op byte no record starts with
        std::fs::write(&scratch.0, &bytes).expect("write");
        let err = log.records().expect_err("garbage tail");
        match err {
            StoreError::BadRecord { offset, .. } => assert_eq!(offset, valid_len),
            other => panic!("expected BadRecord, got {other}"),
        }
    }
}
