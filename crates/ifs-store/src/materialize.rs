//! The materialize fold: from a record sequence to one frame per live id.
//!
//! Serving, compaction, and the identity tests all answer "what does this
//! log amount to?" by the **same fold**, which is what makes compaction
//! verifiable instead of merely plausible:
//!
//! * `Put` replaces the id's state with the record's frame, kept
//!   *verbatim* — a materialized `Put` emits byte-for-byte the frame that
//!   was appended, whatever its version. Materialization never silently
//!   re-encodes bytes it did not have to decode (that is
//!   [`migrate`](crate::SketchLog::migrate_into)'s job, explicitly).
//! * `Merge` folds the record's frame into the id via §9
//!   [`MergeableSketch`] — associative by contract, so any split of a
//!   merge run materializes to the same sketch as the one-pass build. An
//!   id whose state is a single `Merge` record also keeps its exact
//!   bytes: decoding starts only when a second record actually forces a
//!   fold. Folded ids re-encode at the current snapshot version.
//!
//! Kinds that do not implement [`MergeableSketch`] (`Subsample` and the
//! two quantized `ReleaseAnswers` stores — finished, offline
//! constructions) refuse `Merge` records typed; `Put`s of every registry
//! kind are fine.

use crate::{LogOp, LogRecord, StoreError};
use ifs_core::snapshot::{
    KIND_COUNT_MIN, KIND_COUNT_SKETCH, KIND_RELEASE_ANSWERS_ESTIMATOR,
    KIND_RELEASE_ANSWERS_INDICATOR, KIND_RELEASE_DB, KIND_SUBSAMPLE, KIND_SUBSAMPLE_BUILDER,
};
use ifs_core::{
    MergeError, MergeableSketch, ReleaseAnswersEstimator, ReleaseAnswersIndicator, ReleaseDb,
    Snapshot, Subsample, SubsampleBuilder,
};
use ifs_database::codec::DecodeError;
use ifs_streaming::{CountMinSketch, CountSketch};
use std::collections::BTreeMap;

/// A decoded frame of any registry kind — the store's kind dispatch, as
/// [`ServedSketch`] is the serving tier's, but over *all seven* kinds:
/// the store holds ingestion partials and counter sketches too.
///
/// The counter sketches hash items through their `u64` identity here;
/// their wire format carries no item type (DESIGN.md §10), so this choice
/// only fixes how *this crate* would query them, which it never does.
///
/// [`ServedSketch`]: ../../ifs_serve/enum.ServedSketch.html
#[derive(Debug, Clone)]
pub enum StoredSketch {
    /// SUBSAMPLE (kind 1) — finished sample, not mergeable.
    Subsample(Subsample),
    /// RELEASE-DB (kind 2) — merges by row concatenation.
    ReleaseDb(ReleaseDb),
    /// RELEASE-ANSWERS indicator store (kind 3) — quantized, not mergeable.
    AnswersIndicator(ReleaseAnswersIndicator),
    /// RELEASE-ANSWERS estimator store (kind 4) — quantized, not mergeable.
    AnswersEstimator(ReleaseAnswersEstimator),
    /// Count-Min (kind 5) — merges counter-wise (conservative refuses).
    CountMin(CountMinSketch<u64>),
    /// Count-Sketch (kind 6) — merges counter-wise.
    CountSketch(CountSketch<u64>),
    /// SUBSAMPLE partial build (kind 7) — merges in row order.
    SubsampleBuilder(SubsampleBuilder),
}

impl StoredSketch {
    /// Decodes a frame of any registry kind, spanning exactly `frame`.
    pub fn decode(frame: &[u8]) -> Result<Self, DecodeError> {
        let info = ifs_database::codec::peek_frame(frame)?;
        match info.kind {
            KIND_SUBSAMPLE => Ok(Self::Subsample(Subsample::from_snapshot(frame)?)),
            KIND_RELEASE_DB => Ok(Self::ReleaseDb(ReleaseDb::from_snapshot(frame)?)),
            KIND_RELEASE_ANSWERS_INDICATOR => {
                Ok(Self::AnswersIndicator(ReleaseAnswersIndicator::from_snapshot(frame)?))
            }
            KIND_RELEASE_ANSWERS_ESTIMATOR => {
                Ok(Self::AnswersEstimator(ReleaseAnswersEstimator::from_snapshot(frame)?))
            }
            KIND_COUNT_MIN => Ok(Self::CountMin(CountMinSketch::from_snapshot(frame)?)),
            KIND_COUNT_SKETCH => Ok(Self::CountSketch(CountSketch::from_snapshot(frame)?)),
            KIND_SUBSAMPLE_BUILDER => {
                Ok(Self::SubsampleBuilder(SubsampleBuilder::from_snapshot(frame)?))
            }
            kind => {
                Err(DecodeError::Corrupt(format!("kind {kind} is not in the snapshot registry")))
            }
        }
    }

    /// This sketch's tag in the snapshot kind registry.
    pub fn kind(&self) -> u16 {
        match self {
            Self::Subsample(_) => KIND_SUBSAMPLE,
            Self::ReleaseDb(_) => KIND_RELEASE_DB,
            Self::AnswersIndicator(_) => KIND_RELEASE_ANSWERS_INDICATOR,
            Self::AnswersEstimator(_) => KIND_RELEASE_ANSWERS_ESTIMATOR,
            Self::CountMin(_) => KIND_COUNT_MIN,
            Self::CountSketch(_) => KIND_COUNT_SKETCH,
            Self::SubsampleBuilder(_) => KIND_SUBSAMPLE_BUILDER,
        }
    }

    /// Folds `other` in via the kind's §9 merge. Cross-kind merges and
    /// kinds without a merge refuse typed, like any other §9 refusal.
    pub fn merge(&mut self, other: Self) -> Result<(), MergeError> {
        match (self, other) {
            (Self::ReleaseDb(a), Self::ReleaseDb(b)) => a.merge(b),
            (Self::CountMin(a), Self::CountMin(b)) => a.merge(b),
            (Self::CountSketch(a), Self::CountSketch(b)) => a.merge(b),
            (Self::SubsampleBuilder(a), Self::SubsampleBuilder(b)) => a.merge(b),
            (Self::Subsample(_), Self::Subsample(_)) => Err(MergeError::Unmergeable(
                "a finished SUBSAMPLE does not merge; merge its builder partials instead".into(),
            )),
            (Self::AnswersIndicator(_), Self::AnswersIndicator(_))
            | (Self::AnswersEstimator(_), Self::AnswersEstimator(_)) => {
                Err(MergeError::Unmergeable(
                    "quantized RELEASE-ANSWERS stores do not merge; merge their builders".into(),
                ))
            }
            (a, b) => Err(MergeError::Incompatible(format!(
                "cannot merge kind {} into kind {}",
                b.kind(),
                a.kind()
            ))),
        }
    }

    /// Re-encodes at the kind's current snapshot version.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Self::Subsample(s) => s.snapshot_bytes(),
            Self::ReleaseDb(s) => s.snapshot_bytes(),
            Self::AnswersIndicator(s) => s.snapshot_bytes(),
            Self::AnswersEstimator(s) => s.snapshot_bytes(),
            Self::CountMin(s) => s.snapshot_bytes(),
            Self::CountSketch(s) => s.snapshot_bytes(),
            Self::SubsampleBuilder(s) => s.snapshot_bytes(),
        }
    }
}

/// Per-id fold state: exact appended bytes until a merge forces decoding.
enum Entry {
    Frame(Vec<u8>),
    Folded(StoredSketch),
}

/// Folds `records` (in log order) to one frame per live id, in id order.
///
/// `Put` frames — and single-record merge runs — come back byte-for-byte
/// as appended; folded merge runs re-encode at the current version. The
/// fold is deterministic, so two logs that differ only by compaction
/// materialize to identical maps (the invariant
/// [`compact_into`](crate::SketchLog::compact_into) is tested against).
pub fn materialize(records: &[LogRecord]) -> Result<BTreeMap<u64, Vec<u8>>, StoreError> {
    let mut state: BTreeMap<u64, Entry> = BTreeMap::new();
    for rec in records {
        let decode_err = |source| StoreError::Frame { offset: rec.offset, id: rec.id, source };
        match rec.op {
            LogOp::Put => {
                state.insert(rec.id, Entry::Frame(rec.frame.clone()));
            }
            LogOp::Merge => match state.remove(&rec.id) {
                // First record of the id: it *is* the state, bytes intact.
                None => {
                    state.insert(rec.id, Entry::Frame(rec.frame.clone()));
                }
                Some(entry) => {
                    let mut acc = match entry {
                        Entry::Frame(bytes) => StoredSketch::decode(&bytes).map_err(decode_err)?,
                        Entry::Folded(sketch) => sketch,
                    };
                    let incoming = StoredSketch::decode(&rec.frame).map_err(decode_err)?;
                    acc.merge(incoming).map_err(|source| StoreError::Merge {
                        offset: rec.offset,
                        id: rec.id,
                        source,
                    })?;
                    state.insert(rec.id, Entry::Folded(acc));
                }
            },
        }
    }
    Ok(state
        .into_iter()
        .map(|(id, entry)| match entry {
            Entry::Frame(bytes) => (id, bytes),
            Entry::Folded(sketch) => (id, sketch.encode()),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::tests::Scratch;
    use crate::SketchLog;
    use ifs_core::{FrequencyEstimator, ReleaseAnswersIndicator};
    use ifs_database::{Database, Itemset};
    use ifs_streaming::StreamCounter;

    fn rdb_frame(rows: &[Vec<u32>]) -> Vec<u8> {
        ReleaseDb::build(&Database::from_rows(6, rows), 0.25).snapshot_bytes()
    }

    #[test]
    fn put_records_shadow_and_come_back_verbatim() {
        let scratch = Scratch::new("mat-put");
        let old = rdb_frame(&[vec![0]]);
        let new = rdb_frame(&[vec![1, 2], vec![3]]);
        // A v1 frame under another id must keep its exact (v1!) bytes —
        // materialization never re-encodes what it did not fold.
        let v1 = ReleaseDb::build(&Database::from_rows(6, &[vec![4]]), 0.5).snapshot_bytes_v1();
        let mut log = SketchLog::create(&scratch.0).expect("create");
        log.append(LogOp::Put, 1, &old).expect("append");
        log.append(LogOp::Put, 2, &v1).expect("append");
        log.append(LogOp::Put, 1, &new).expect("append");
        let live = log.materialize().expect("materialize");
        assert_eq!(live.len(), 2);
        assert_eq!(live[&1], new, "later Put shadows the earlier one");
        assert_eq!(live[&2], v1, "byte-for-byte, version tag included");
    }

    #[test]
    fn merge_run_materializes_to_the_one_pass_build() {
        let scratch = Scratch::new("mat-merge");
        let shard_a: Vec<Vec<u32>> = vec![vec![0, 1], vec![2]];
        let shard_b: Vec<Vec<u32>> = vec![vec![1], vec![0, 1, 5]];
        let shard_c: Vec<Vec<u32>> = vec![vec![3]];
        let mut log = SketchLog::create(&scratch.0).expect("create");
        log.append(LogOp::Merge, 9, &rdb_frame(&shard_a)).expect("append");
        log.append(LogOp::Merge, 9, &rdb_frame(&shard_b)).expect("append");
        log.append(LogOp::Merge, 9, &rdb_frame(&shard_c)).expect("append");
        let live = log.materialize().expect("materialize");
        let mut all = shard_a;
        all.extend(shard_b);
        all.extend(shard_c);
        let one_pass = ReleaseDb::build(&Database::from_rows(6, &all), 0.25);
        assert_eq!(live[&9], one_pass.snapshot_bytes(), "fold == one-pass, bit for bit");
        // A single-record merge run keeps its exact bytes (no re-encode).
        let scratch2 = Scratch::new("mat-merge-one");
        let v1 = ReleaseDb::build(&Database::from_rows(6, &[vec![2]]), 0.25).snapshot_bytes_v1();
        let mut log = SketchLog::create(&scratch2.0).expect("create");
        log.append(LogOp::Merge, 0, &v1).expect("append");
        assert_eq!(log.materialize().expect("materialize")[&0], v1);
    }

    #[test]
    fn count_min_merge_runs_fold_counter_wise() {
        let scratch = Scratch::new("mat-cm");
        let mut a: CountMinSketch<u64> = CountMinSketch::new(32, 3, false, 7);
        let mut b: CountMinSketch<u64> = CountMinSketch::new(32, 3, false, 7);
        for x in 0..40u64 {
            a.update(x % 5);
            b.update(x % 3);
        }
        let mut log = SketchLog::create(&scratch.0).expect("create");
        log.append(LogOp::Merge, 4, &a.snapshot_bytes()).expect("append");
        log.append(LogOp::Merge, 4, &b.snapshot_bytes()).expect("append");
        let live = log.materialize().expect("materialize");
        let mut one_pass = a.clone();
        one_pass.merge(b).expect("plain CM merges");
        assert_eq!(live[&4], one_pass.snapshot_bytes());
        // Conservative-update CM refuses the fold, surfaced typed with the
        // offending record's offset.
        let scratch2 = Scratch::new("mat-cons");
        let c: CountMinSketch<u64> = CountMinSketch::new(32, 3, true, 7);
        let mut log = SketchLog::create(&scratch2.0).expect("create");
        log.append(LogOp::Merge, 0, &c.snapshot_bytes()).expect("append");
        let second = log.len_bytes();
        log.append(LogOp::Merge, 0, &c.snapshot_bytes()).expect("append");
        match log.materialize().expect_err("conservative CM is unmergeable") {
            StoreError::Merge { offset, id: 0, source: MergeError::Unmergeable(_) } => {
                assert_eq!(offset, second)
            }
            other => panic!("expected Merge/Unmergeable, got {other}"),
        }
    }

    #[test]
    fn unmergeable_and_cross_kind_merges_refuse_typed() {
        let db = Database::from_rows(6, &[vec![0, 1], vec![2], vec![0]]);
        let rai = ReleaseAnswersIndicator::build(&db, 2, 0.3).snapshot_bytes();
        let scratch = Scratch::new("mat-rai");
        let mut log = SketchLog::create(&scratch.0).expect("create");
        log.append(LogOp::Merge, 0, &rai).expect("append");
        log.append(LogOp::Merge, 0, &rai).expect("append");
        assert!(matches!(
            log.materialize().expect_err("quantized store refuses merge"),
            StoreError::Merge { source: MergeError::Unmergeable(_), .. }
        ));
        // Cross-kind: a Count-Min partial folded into a ReleaseDb id.
        let scratch2 = Scratch::new("mat-cross");
        let cm: CountMinSketch<u64> = CountMinSketch::new(8, 2, false, 1);
        let mut log = SketchLog::create(&scratch2.0).expect("create");
        log.append(LogOp::Merge, 0, &rdb_frame(&[vec![0]])).expect("append");
        log.append(LogOp::Merge, 0, &cm.snapshot_bytes()).expect("append");
        assert!(matches!(
            log.materialize().expect_err("cross-kind merge"),
            StoreError::Merge { source: MergeError::Incompatible(_), .. }
        ));
        // A Put of the same shapes is fine: replacement needs no merge.
        let scratch3 = Scratch::new("mat-cross-put");
        let mut log = SketchLog::create(&scratch3.0).expect("create");
        log.append(LogOp::Put, 0, &rdb_frame(&[vec![0]])).expect("append");
        log.append(LogOp::Put, 0, &cm.snapshot_bytes()).expect("append");
        assert_eq!(log.materialize().expect("puts always fold")[&0], cm.snapshot_bytes());
    }

    #[test]
    fn stored_sketch_decodes_every_registry_kind() {
        let db = Database::from_rows(6, &[vec![0, 1], vec![2], vec![0]]);
        let mut rng = ifs_util::Rng64::seeded(11);
        let params = ifs_core::SubsampleParams { sample_rows: 2, epsilon: 0.2 };
        let sub = Subsample::with_sample_count(&db, 2, 0.2, &mut rng);
        let frames: Vec<(u16, Vec<u8>)> = vec![
            (KIND_SUBSAMPLE, sub.snapshot_bytes()),
            (KIND_RELEASE_DB, ReleaseDb::build(&db, 0.2).snapshot_bytes()),
            (
                KIND_RELEASE_ANSWERS_INDICATOR,
                ReleaseAnswersIndicator::build(&db, 2, 0.3).snapshot_bytes(),
            ),
            (
                KIND_RELEASE_ANSWERS_ESTIMATOR,
                ifs_core::ReleaseAnswersEstimator::build(&db, 1, 0.3).snapshot_bytes(),
            ),
            (KIND_COUNT_MIN, CountMinSketch::<u64>::new(8, 2, false, 3).snapshot_bytes()),
            (KIND_COUNT_SKETCH, CountSketch::<u64>::new(8, 3, 5).snapshot_bytes()),
            (KIND_SUBSAMPLE_BUILDER, {
                use ifs_core::StreamingBuild;
                let mut b = SubsampleBuilder::begin(6, 9, &params);
                b.observe_row(&Itemset::new(vec![0, 2]));
                b.snapshot_bytes()
            }),
        ];
        for (kind, frame) in &frames {
            let decoded = StoredSketch::decode(frame).expect("registry kind decodes");
            assert_eq!(decoded.kind(), *kind);
            assert_eq!(&decoded.encode(), frame, "decode→encode is the identity at head version");
        }
        // ReleaseDb answers survive the dispatch round-trip.
        let rdb = ReleaseDb::build(&db, 0.2);
        match StoredSketch::decode(&rdb.snapshot_bytes()).expect("decode") {
            StoredSketch::ReleaseDb(s) => {
                let q = Itemset::singleton(0);
                assert_eq!(s.estimate(&q), rdb.estimate(&q));
            }
            other => panic!("wrong variant {other:?}"),
        }
    }
}
