//! Durable sketch store (DESIGN.md §14): an append-only log over the §10
//! snapshot frames, with crash recovery, compaction, and cross-version
//! migration.
//!
//! The serving tier (DESIGN.md §§11–13) answers queries from snapshot
//! frames but gives them no lifecycle: a fleet reboots from loose
//! concatenated frames, mergeable ingestion partials pile up, and nothing
//! proves old bytes stay decodable after a format bump. This crate is that
//! lifecycle, in the LSM shape the mergeability contract (§9) makes
//! bit-identically verifiable:
//!
//! * [`SketchLog`] — an append-only file of `(op, id, frame)` records,
//!   each independently checksummed. [`SketchLog::open`] runs a *recovery
//!   scan*: a torn or corrupt tail is truncated (and reported) instead of
//!   refusing the whole file, so a crashed writer loses at most its last
//!   in-flight record — never the prefix.
//! * [`LogOp`] — `Put` replaces an id (a reload); `Merge` folds a
//!   mergeable partial into it (§9 [`MergeableSketch`](ifs_core::MergeableSketch)). Because every
//!   accepted merge is bit-identical to the one-pass build, the fold over
//!   the log — [`SketchLog::materialize`] — has one right answer, shared
//!   by serving and compaction alike.
//! * [`SketchLog::compact_into`] — rewrites the log as one `Put` per live
//!   id, dropping shadowed records and collapsing merge runs. Compacted
//!   and uncompacted logs materialize to identical bytes by construction
//!   (asserted in `tests/sketch_store.rs` via query identity).
//! * [`SketchLog::migrate_into`] — rewrites records whose frames carry a
//!   superseded body version (e.g. `ReleaseDb` v1 → v2) at the current
//!   version. Decoders for old versions are kept forever; migration is an
//!   optional space reclaim, not a compatibility requirement.
//!
//! Every failure is a typed [`StoreError`] naming the byte offset — the
//! log inherits the snapshot layer's adversarial-input posture: no input
//! file can panic the store.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compact;
mod log;
mod materialize;

pub use compact::{CompactStats, MigrateStats};
pub use log::{
    LogOp, LogRecord, RecoveryReport, SketchLog, LOG_HEADER_LEN, LOG_MAGIC, LOG_VERSION,
};
pub use materialize::{materialize, StoredSketch};

use ifs_core::MergeError;
use ifs_database::codec::DecodeError;
use std::path::PathBuf;

/// Why a store operation refused.
///
/// Mirrors the snapshot layer's taxonomy one level up: I/O failures carry
/// their path, and every malformed-input case names the byte offset of the
/// offending record, so a diagnostic can point at the exact bytes.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file the operation touched.
        path: PathBuf,
        /// The operating system's error.
        source: std::io::Error,
    },
    /// The file exists but does not start with the log magic — it is some
    /// other file, and the store refuses to touch (let alone truncate) it.
    NotALog {
        /// The file that was offered as a log.
        path: PathBuf,
        /// The first four bytes found where [`LOG_MAGIC`] was expected.
        found_magic: u32,
    },
    /// The log header carries a version this build does not read.
    UnsupportedLogVersion {
        /// Version found in the header.
        got: u16,
        /// Newest version this build understands.
        supported: u16,
    },
    /// A record failed validation under the *strict* scan (recovery would
    /// have truncated here instead). The offset is the record's first byte.
    BadRecord {
        /// Byte offset of the record in the file.
        offset: u64,
        /// What was wrong with it.
        detail: String,
    },
    /// A record's snapshot frame failed frame-layer validation.
    Frame {
        /// Byte offset of the enclosing record.
        offset: u64,
        /// Sketch id the record addressed.
        id: u64,
        /// The frame-layer refusal.
        source: DecodeError,
    },
    /// A `Merge` record could not be folded into the id's current state.
    Merge {
        /// Byte offset of the merge record.
        offset: u64,
        /// Sketch id the record addressed.
        id: u64,
        /// The §9 merge refusal.
        source: MergeError,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            StoreError::NotALog { path, found_magic } => write!(
                f,
                "{}: not a sketch log (magic {found_magic:#010x}, expected {LOG_MAGIC:#010x})",
                path.display()
            ),
            StoreError::UnsupportedLogVersion { got, supported } => {
                write!(f, "unsupported log version {got} (this build reads 1..={supported})")
            }
            StoreError::BadRecord { offset, detail } => {
                write!(f, "bad record at byte offset {offset}: {detail}")
            }
            StoreError::Frame { offset, id, source } => {
                write!(f, "record for id {id} at byte offset {offset}: {source}")
            }
            StoreError::Merge { offset, id, source } => {
                write!(f, "merge record for id {id} at byte offset {offset}: {source}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Frame { source, .. } => Some(source),
            StoreError::Merge { source, .. } => Some(source),
            _ => None,
        }
    }
}
