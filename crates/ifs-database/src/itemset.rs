//! Itemsets: sorted attribute sets with packed-mask row tests.

use ifs_util::{bits, combin};

/// An itemset `T ⊆ [d]`: a set of attribute (column) indices.
///
/// Stored as a strictly increasing vector of `u32` indices. Equality, hashing
/// and ordering follow the sorted vector, so itemsets behave as canonical set
/// values. The paper also views `T` as its indicator vector in `{0,1}^d`
/// (§1.3); [`Itemset::mask`] produces exactly that, in the packed layout of a
/// given database, so containment tests cost `words_per_row` AND/CMP ops.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Itemset {
    items: Vec<u32>,
}

impl Itemset {
    /// Creates an itemset from any list of indices (sorted and deduplicated).
    pub fn new(mut items: Vec<u32>) -> Self {
        items.sort_unstable();
        items.dedup();
        Self { items }
    }

    /// The empty itemset (contained in every row).
    pub fn empty() -> Self {
        Self { items: Vec::new() }
    }

    /// Singleton `{i}`.
    pub fn singleton(i: u32) -> Self {
        Self { items: vec![i] }
    }

    /// Cardinality `|T|` (the paper's `k` when this is a `k`-itemset).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True iff this is the empty itemset.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Sorted attribute indices.
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// Largest attribute index, or `None` when empty.
    pub fn max_item(&self) -> Option<u32> {
        self.items.last().copied()
    }

    /// Membership test.
    pub fn contains(&self, item: u32) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Set union.
    pub fn union(&self, other: &Itemset) -> Itemset {
        let mut v = self.items.clone();
        v.extend_from_slice(&other.items);
        Itemset::new(v)
    }

    /// Returns `self` with every index shifted right by `offset` columns.
    ///
    /// The lower-bound constructions repeatedly embed an itemset over `[d]`
    /// into a wider database at a block offset (e.g. `T′ = {j + 2d : j ∈ T}`
    /// in Theorem 15's amplification step).
    pub fn shifted(&self, offset: u32) -> Itemset {
        Itemset { items: self.items.iter().map(|&i| i + offset).collect() }
    }

    /// Packed indicator mask over `cols` columns using `words_per_row` words,
    /// matching a [`crate::BitMatrix`] row layout.
    pub fn mask(&self, cols: usize, words_per_row: usize) -> Vec<u64> {
        let mut m = vec![0u64; words_per_row];
        for &i in &self.items {
            assert!((i as usize) < cols, "item {i} out of range for {cols} columns");
            bits::set(&mut m, i as usize, true);
        }
        m
    }

    /// Colexicographic rank among all `|T|`-itemsets (see
    /// [`ifs_util::combin::rank_colex`]); used as the flat index in the
    /// RELEASE-ANSWERS store.
    pub fn colex_rank(&self) -> u64 {
        combin::rank_colex(&self.items)
    }

    /// Inverse of [`Self::colex_rank`] for `k`-itemsets.
    pub fn from_colex_rank(rank: u64, k: u32) -> Self {
        Itemset { items: combin::unrank_colex(rank, k) }
    }
}

impl std::fmt::Debug for Itemset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

impl std::fmt::Display for Itemset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<u32> for Itemset {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Itemset::new(iter.into_iter().collect())
    }
}

impl From<&[u32]> for Itemset {
    fn from(items: &[u32]) -> Self {
        Itemset::new(items.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let t = Itemset::new(vec![5, 1, 3, 1, 5]);
        assert_eq!(t.items(), &[1, 3, 5]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn canonical_equality() {
        assert_eq!(Itemset::new(vec![2, 1]), Itemset::new(vec![1, 2, 2]));
    }

    #[test]
    fn mask_positions() {
        let t = Itemset::new(vec![0, 64, 100]);
        let m = t.mask(128, 2);
        assert_eq!(ifs_util::bits::ones(&m).collect::<Vec<_>>(), vec![0, 64, 100]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mask_out_of_range_panics() {
        Itemset::singleton(10).mask(10, 1);
    }

    #[test]
    fn union_and_contains() {
        let a = Itemset::new(vec![1, 3]);
        let b = Itemset::new(vec![3, 7]);
        let u = a.union(&b);
        assert_eq!(u.items(), &[1, 3, 7]);
        assert!(u.contains(7));
        assert!(!u.contains(2));
    }

    #[test]
    fn shifted_offsets_all() {
        let t = Itemset::new(vec![0, 2]).shifted(10);
        assert_eq!(t.items(), &[10, 12]);
    }

    #[test]
    fn colex_rank_roundtrip() {
        for rank in 0..35u64 {
            let t = Itemset::from_colex_rank(rank, 3);
            assert_eq!(t.colex_rank(), rank);
            assert_eq!(t.len(), 3);
        }
    }

    #[test]
    fn empty_itemset() {
        let e = Itemset::empty();
        assert!(e.is_empty());
        assert_eq!(e.max_item(), None);
        assert_eq!(e.mask(64, 1), vec![0]);
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", Itemset::new(vec![3, 1])), "{1,3}");
        assert_eq!(format!("{}", Itemset::empty()), "{}");
    }
}
