//! Sharded, multi-threaded columnar query execution (DESIGN.md §8).
//!
//! [`crate::ColumnStore`] answers a `k`-itemset query with `O(k·n/64)` word
//! operations on one core. This module partitions the rows into contiguous,
//! word-aligned shards and keeps one `ColumnStore` per shard: the support of
//! an itemset is then the **sum of per-shard popcounts**, which is the same
//! integer the serial store computes (popcount is associative over disjoint
//! row ranges), so sharded answers are bit-identical to serial answers by
//! construction — at every thread count.
//!
//! Two axes parallelize:
//!
//! * **Build**: each shard transposes its row slice independently
//!   ([`crate::ColumnStore::build_range`]); worker threads drain a shard
//!   work queue under [`std::thread::scope`] (no thread pool, no external
//!   dependencies).
//! * **Query batches**: a query log is split into contiguous chunks, one
//!   worker per chunk, each with its own scratch buffer, writing into
//!   disjoint slices of the output vector. Per-query answers never depend
//!   on which worker computed them.
//!
//! The shard **layout is a function of the data only** (row count), never of
//! the thread count: `threads` decides how many workers drain the queues,
//! not where shard boundaries fall. That makes the determinism contract
//! trivial to audit — the words in memory are identical whether the store
//! was built or queried with 1 thread or 8.

use crate::{BitMatrix, ColumnStore, Itemset};
use ifs_util::threads::{clamp_threads, parallel_map_indexed};

/// Rows per shard: word-aligned (multiple of 64) so no shard splits a tid
/// word, and large enough that per-shard bookkeeping is noise next to the
/// AND+popcount work. 16384 rows × 128 items ≈ 256 KiB of tid words per
/// shard — it fits in L2 while giving a 100k-row database 7 shards to
/// spread over cores.
pub const SHARD_ROWS: usize = 16_384;

/// Per-item tid-sets partitioned into contiguous word-aligned row shards.
///
/// Equivalent to a [`ColumnStore`] over the same matrix — same supports,
/// same frequencies, bit for bit — but buildable and queryable by multiple
/// threads. See the module docs for the determinism argument.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardedColumnStore {
    rows: usize,
    dims: usize,
    shard_rows: usize,
    shards: Vec<ColumnStore>,
}

impl ShardedColumnStore {
    /// Builds the sharded view with the default shard size, using up to
    /// `threads` workers (1 = serial; the shard layout is identical either
    /// way).
    pub fn build(matrix: &BitMatrix, threads: usize) -> Self {
        Self::build_with_shard_rows(matrix, SHARD_ROWS, threads)
    }

    /// Builds with an explicit shard size (tests use adversarial sizes to
    /// hit tail words). `shard_rows` must be a positive multiple of 64 so
    /// shard boundaries never split a tid word.
    pub fn build_with_shard_rows(matrix: &BitMatrix, shard_rows: usize, threads: usize) -> Self {
        assert!(
            shard_rows > 0 && shard_rows.is_multiple_of(64),
            "shard_rows must be a positive multiple of 64, got {shard_rows}"
        );
        let rows = matrix.rows();
        let dims = matrix.cols();
        let n_shards = rows.div_ceil(shard_rows);
        // Shard work queue: workers race for shard indices but every result
        // lands in the slot of its index, so the assembled vector is
        // independent of scheduling (and of `threads`).
        let shards = parallel_map_indexed(n_shards, threads, |i| {
            ColumnStore::build_range(matrix, (i * shard_rows)..((i + 1) * shard_rows).min(rows))
        });
        Self { rows, dims, shard_rows, shards }
    }

    /// Appends `rows` (attribute-index sets) in place — the ingestion fast
    /// path (DESIGN.md §9): the ragged tail shard is extended up to its
    /// `shard_rows` capacity via [`ColumnStore::append_rows`], and overflow
    /// opens fresh tail shards. Because the shard layout is a function of
    /// the row count alone, the result is **bit-identical** (`==`) to
    /// rebuilding the store over the extended matrix; earlier shards are
    /// never touched, so an append costs `O(batch)` instead of the full
    /// re-transpose.
    pub fn append_rows(&mut self, rows: &[Itemset]) {
        let mut next = 0;
        while next < rows.len() {
            let fill = self.rows % self.shard_rows;
            if fill == 0 && self.rows == self.shard_rows * self.shards.len() {
                // Tail shard is full (or the store is empty): open a new one.
                let empty = crate::BitMatrix::zeros(0, self.dims);
                self.shards.push(ColumnStore::build(&empty));
            }
            let capacity = self.shard_rows - self.shards.last().expect("tail shard").rows();
            let take = capacity.min(rows.len() - next);
            self.shards.last_mut().expect("tail shard").append_rows(&rows[next..next + take]);
            self.rows += take;
            next += take;
        }
    }

    /// Number of rows `n` of the source matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of items (columns) `d` of the source matrix.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of row shards (0 for an empty matrix).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Rows per shard (the last shard may be shorter).
    pub fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    /// Support of `itemset` using caller-owned scratch: the sum of
    /// per-shard popcounts — the same integer [`ColumnStore::support`]
    /// computes over the unpartitioned rows.
    pub fn support_with_scratch(&self, itemset: &Itemset, scratch: &mut Vec<u64>) -> usize {
        self.shards.iter().map(|s| s.support_with_scratch(itemset, scratch)).sum()
    }

    /// Support of `itemset` (single-query convenience).
    pub fn support(&self, itemset: &Itemset) -> usize {
        self.support_with_scratch(itemset, &mut Vec::new())
    }

    /// Frequency `f_T` ∈ [0, 1]; 0 for an empty store, matching
    /// [`ColumnStore::frequency`] bit for bit (same integer support, same
    /// division).
    pub fn frequency(&self, itemset: &Itemset) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        self.support(itemset) as f64 / self.rows as f64
    }

    /// Accumulates `out[i] += support(itemsets[i])` shard by shard: the
    /// outer loop walks shards (each ≲ 256 KiB of tid words — L2-resident
    /// by construction, see [`SHARD_ROWS`]), the inner loop runs every
    /// query of the chunk over the current shard. One shard's columns are
    /// loaded once per *batch* instead of once per *query* — the sharded
    /// twin of [`ColumnStore::add_supports_blocked`]. Integer accumulation
    /// commutes, so the totals equal query-at-a-time shard sums exactly.
    fn add_supports(&self, itemsets: &[Itemset], out: &mut [usize], scratch: &mut Vec<u64>) {
        for shard in &self.shards {
            shard.add_supports_blocked(
                itemsets,
                out,
                crate::columnstore::QUERY_BLOCK_WORDS,
                scratch,
            );
        }
    }

    /// Supports of a whole query log, computed by up to `threads` workers
    /// over contiguous chunks of the log; each worker iterates shard-outer,
    /// query-inner (cache-blocked, DESIGN.md §12). Element `i` equals
    /// `self.support(&itemsets[i])` regardless of `threads`.
    pub fn support_batch(&self, itemsets: &[Itemset], threads: usize) -> Vec<usize> {
        let mut out = vec![0usize; itemsets.len()];
        chunked_query_batch(self, itemsets, threads, &mut out, |store, qs, os| {
            store.add_supports(qs, os, &mut Vec::new());
        });
        out
    }

    /// Frequencies of a whole query log; element `i` equals
    /// `self.frequency(&itemsets[i])` regardless of `threads` (same integer
    /// support, same division).
    pub fn frequency_batch(&self, itemsets: &[Itemset], threads: usize) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; itemsets.len()];
        }
        let n = self.rows as f64;
        self.support_batch(itemsets, threads).into_iter().map(|s| s as f64 / n).collect()
    }
}

/// Chunked-batch driver shared by [`ShardedColumnStore`] and the threaded
/// [`ColumnStore`] batch methods: splits `itemsets` and `out` into the same
/// contiguous chunks and hands each (queries, outputs) chunk pair to
/// `kernel` on its own worker. Chunk-level granularity lets the kernel
/// iterate cache-blocked *within* its chunk (shard-outer or block-outer)
/// instead of being forced through a per-query callback; outputs live in
/// disjoint slices, so per-query answers never depend on which worker
/// computed them.
pub(crate) fn chunked_query_batch<S: Sync + ?Sized, R: Send>(
    store: &S,
    itemsets: &[Itemset],
    threads: usize,
    out: &mut [R],
    kernel: impl Fn(&S, &[Itemset], &mut [R]) + Sync,
) {
    let threads = clamp_threads(threads).min(itemsets.len().max(1));
    if threads == 1 {
        kernel(store, itemsets, out);
        return;
    }
    let chunk = itemsets.len().div_ceil(threads);
    std::thread::scope(|s| {
        for (qs, os) in itemsets.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let kernel = &kernel;
            s.spawn(move || kernel(store, qs, os));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Database;
    use ifs_util::Rng64;

    fn random_db(n: usize, d: usize, p: f64, seed: u64) -> Database {
        let mut rng = Rng64::seeded(seed);
        Database::from_fn(n, d, |_, _| rng.bernoulli(p))
    }

    fn random_queries(d: usize, count: usize, seed: u64) -> Vec<Itemset> {
        let mut rng = Rng64::seeded(seed);
        (0..count)
            .map(|_| {
                let k = rng.below(5).min(d);
                (0..k).map(|_| rng.below(d.max(1)) as u32).collect()
            })
            .collect()
    }

    #[test]
    fn matches_serial_store_across_shard_sizes_and_threads() {
        let db = random_db(300, 40, 0.35, 0x51AD);
        let serial = ColumnStore::build(db.matrix());
        let queries = random_queries(40, 30, 0x51AE);
        for shard_rows in [64, 128, 256, 512] {
            for threads in [1, 2, 4, 8] {
                let sharded =
                    ShardedColumnStore::build_with_shard_rows(db.matrix(), shard_rows, threads);
                assert_eq!(sharded.rows(), 300);
                assert_eq!(sharded.shard_count(), 300usize.div_ceil(shard_rows));
                let sup = sharded.support_batch(&queries, threads);
                let freq = sharded.frequency_batch(&queries, threads);
                for (i, t) in queries.iter().enumerate() {
                    assert_eq!(sup[i], serial.support(t), "support {t} sr={shard_rows}");
                    assert_eq!(freq[i], serial.frequency(t), "frequency {t} sr={shard_rows}");
                    assert_eq!(sharded.support(t), sup[i], "scalar/batch {t}");
                }
            }
        }
    }

    #[test]
    fn empty_matrix_has_no_shards() {
        let store = ShardedColumnStore::build(Database::zeros(0, 8).matrix(), 4);
        assert_eq!(store.shard_count(), 0);
        assert_eq!(store.support(&Itemset::empty()), 0);
        assert_eq!(store.frequency(&Itemset::singleton(3)), 0.0);
        assert_eq!(store.frequency_batch(&[Itemset::empty()], 4), vec![0.0]);
        assert_eq!(store.support_batch(&[], 4), Vec::<usize>::new());
    }

    #[test]
    fn single_row_and_tail_word_boundaries() {
        // Row counts straddling word and shard boundaries; shard size 64
        // forces every boundary to be exercised.
        for n in [1usize, 63, 64, 65, 127, 128, 129, 200] {
            let db = random_db(n, 10, 0.5, 0xB0 + n as u64);
            let serial = ColumnStore::build(db.matrix());
            let sharded = ShardedColumnStore::build_with_shard_rows(db.matrix(), 64, 3);
            for t in random_queries(10, 15, 0xC0 + n as u64) {
                assert_eq!(sharded.support(&t), serial.support(&t), "n={n} itemset {t}");
                assert_eq!(sharded.frequency(&t), serial.frequency(&t), "n={n} itemset {t}");
            }
        }
    }

    #[test]
    fn build_threads_do_not_change_layout() {
        let db = random_db(500, 24, 0.3, 0x1DEA);
        let a = ShardedColumnStore::build_with_shard_rows(db.matrix(), 128, 1);
        let b = ShardedColumnStore::build_with_shard_rows(db.matrix(), 128, 8);
        assert_eq!(a, b, "shard contents must be independent of build thread count");
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn rejects_unaligned_shard_size() {
        ShardedColumnStore::build_with_shard_rows(Database::zeros(10, 4).matrix(), 100, 1);
    }

    /// Append maintenance must reproduce a fresh sharded build bit for bit
    /// (`Eq` covers shard boundaries, strides, and every tid word) across
    /// batch sizes that leave ragged tails, exactly fill a shard, and spill
    /// over several shards.
    #[test]
    fn append_rows_is_bit_identical_to_rebuild() {
        let shard_rows = 64;
        let db = random_db(700, 12, 0.35, 0xAB5E);
        let rows: Vec<Itemset> = (0..db.rows()).map(|r| db.row_itemset(r)).collect();
        for split in [0usize, 1, 63, 64, 65, 300] {
            let head = Database::from_fn(split, 12, |r, c| db.get(r, c));
            let mut store = ShardedColumnStore::build_with_shard_rows(head.matrix(), shard_rows, 2);
            // Feed the remainder in uneven batches so tail shards are
            // extended, exactly filled, and overflowed.
            let mut next = split;
            for batch in [1usize, 62, 64, 65, 200, usize::MAX] {
                let end = next.saturating_add(batch).min(rows.len());
                store.append_rows(&rows[next..end]);
                next = end;
            }
            assert_eq!(
                store,
                ShardedColumnStore::build_with_shard_rows(db.matrix(), shard_rows, 2),
                "append diverged from rebuild at split={split}"
            );
        }
    }

    #[test]
    fn append_to_empty_store_opens_shards() {
        let db = random_db(130, 6, 0.5, 0xE21);
        let mut store =
            ShardedColumnStore::build_with_shard_rows(Database::zeros(0, 6).matrix(), 64, 1);
        assert_eq!(store.shard_count(), 0);
        store.append_rows(&(0..db.rows()).map(|r| db.row_itemset(r)).collect::<Vec<_>>());
        assert_eq!(store, ShardedColumnStore::build_with_shard_rows(db.matrix(), 64, 1));
        assert_eq!(store.shard_count(), 3);
    }

    #[test]
    fn more_threads_than_queries_is_fine() {
        let db = random_db(80, 8, 0.4, 0xFEED);
        let sharded = ShardedColumnStore::build(db.matrix(), 8);
        let q = vec![Itemset::singleton(2)];
        assert_eq!(sharded.support_batch(&q, 64), vec![db.support(&q[0])]);
    }
}
