//! The `Database` type: rows, dimensions, and frequency queries.

use crate::{BitMatrix, ColumnStore, Itemset, ShardedColumnStore};
use std::sync::OnceLock;

/// A binary database `D ∈ ({0,1}^d)^n` (§1.3 of the paper).
///
/// Thin semantic wrapper over [`BitMatrix`]: `n = rows()`, `d = dims()`. The
/// central query is [`Database::frequency`], the fraction of rows containing
/// an itemset — `f_T(D) = (1/n)·Σ_i 1{T ⊆ D(i)}`.
///
/// Two query layouts coexist (DESIGN.md §7): the row-major matrix answers
/// one-shot queries without preprocessing, and a lazily built, cached
/// [`ColumnStore`] ([`Database::columns`]) serves repeated or batched
/// queries ([`Database::frequencies`]) at columnar speed. A second cached
/// view, the row-sharded [`ShardedColumnStore`]
/// ([`Database::sharded_columns`]), serves the multi-threaded batch paths
/// (DESIGN.md §8) with answers bit-identical to the serial store. Identity
/// (`Eq`, `Debug`, serialization) is defined by the matrix alone; both
/// caches are derived views. Two mutation paths exist: the append fast
/// path ([`Database::append_rows`], DESIGN.md §9) extends warm caches **in
/// place**, and arbitrary cell mutation ([`Database::matrix_mut`]) drops
/// them for a full rebuild.
pub struct Database {
    matrix: BitMatrix,
    columns: OnceLock<ColumnStore>,
    sharded: OnceLock<ShardedColumnStore>,
}

impl Clone for Database {
    fn clone(&self) -> Self {
        let columns = OnceLock::new();
        let sharded = OnceLock::new();
        // Propagate already-built columnar views: cloning is how sketches
        // capture a database, and their query side is exactly the workload
        // the caches exist for.
        if let Some(store) = self.columns.get() {
            let _ = columns.set(store.clone());
        }
        if let Some(store) = self.sharded.get() {
            let _ = sharded.set(store.clone());
        }
        Self { matrix: self.matrix.clone(), columns, sharded }
    }
}

impl PartialEq for Database {
    fn eq(&self, other: &Self) -> bool {
        self.matrix == other.matrix
    }
}

impl Eq for Database {}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database").field("matrix", &self.matrix).finish()
    }
}

impl Database {
    /// Wraps an existing matrix (rows are database records).
    pub fn from_matrix(matrix: BitMatrix) -> Self {
        Self { matrix, columns: OnceLock::new(), sharded: OnceLock::new() }
    }

    /// An all-zero database with `n` rows and `d` attributes.
    pub fn zeros(n: usize, d: usize) -> Self {
        Self::from_matrix(BitMatrix::zeros(n, d))
    }

    /// Builds from explicit rows given as attribute-index lists.
    ///
    /// `d` is the attribute count; indices must be `< d`.
    pub fn from_rows(d: usize, rows: &[Vec<u32>]) -> Self {
        let mut m = BitMatrix::zeros(rows.len(), d);
        for (r, row) in rows.iter().enumerate() {
            for &c in row {
                m.set(r, c as usize, true);
            }
        }
        Self::from_matrix(m)
    }

    /// Builds from a cell predicate.
    pub fn from_fn(n: usize, d: usize, f: impl FnMut(usize, usize) -> bool) -> Self {
        Self::from_matrix(BitMatrix::from_fn(n, d, f))
    }

    /// Number of rows `n`.
    pub fn rows(&self) -> usize {
        self.matrix.rows()
    }

    /// Number of attributes `d`.
    pub fn dims(&self) -> usize {
        self.matrix.cols()
    }

    /// The underlying packed matrix.
    pub fn matrix(&self) -> &BitMatrix {
        &self.matrix
    }

    /// Mutable access to the underlying matrix.
    ///
    /// Drops every cached columnar view (serial *and* sharded): the caller
    /// may change cells, and the next [`Database::columns`] /
    /// [`Database::sharded_columns`] call rebuilds the transpose from
    /// scratch. This is the only **arbitrary** mutation path — row appends
    /// go through [`Database::append_rows`], which maintains warm caches in
    /// place instead of dropping them, and constructors and derivations
    /// (`select_rows`, `stack`, serialization round-trips, the generators)
    /// all produce fresh `Database` values with cold caches, so a stale
    /// view cannot be served (regression-tested in
    /// `caches_never_serve_stale_views`).
    pub fn matrix_mut(&mut self) -> &mut BitMatrix {
        self.columns.take();
        self.sharded.take();
        &mut self.matrix
    }

    /// Appends rows (given as attribute-index sets) in place — the
    /// streaming-ingestion fast path (DESIGN.md §9).
    ///
    /// Every row is validated **before** anything is mutated: an item `≥ d`
    /// panics with the offending row index, item, and the database's
    /// attribute count (construction-time shape validation alone would let
    /// a malformed ingest batch corrupt the matrix half-applied).
    ///
    /// Warm columnar views are *extended*, not invalidated: the serial
    /// [`ColumnStore`] grows its tid-words and the [`ShardedColumnStore`]
    /// extends its ragged tail shard in place, so an ingest-then-query loop
    /// stops paying a full re-transpose per batch. Both maintained views
    /// are bit-identical to a cold rebuild (enforced by
    /// `tests/streaming_builds.rs`); cold views simply stay cold.
    pub fn append_rows(&mut self, rows: &[Itemset]) {
        let d = self.dims();
        for (i, row) in rows.iter().enumerate() {
            if let Some(m) = row.max_item() {
                assert!(
                    (m as usize) < d,
                    "appended row {i} has item {m}, out of range for a database with {d} columns"
                );
            }
        }
        let base = self.matrix.rows();
        self.matrix.push_zero_rows(rows.len());
        for (i, row) in rows.iter().enumerate() {
            for &c in row.items() {
                self.matrix.set(base + i, c as usize, true);
            }
        }
        if let Some(store) = self.columns.get_mut() {
            store.append_rows(rows);
        }
        if let Some(store) = self.sharded.get_mut() {
            store.append_rows(rows);
        }
    }

    /// Appends all rows of `other` in place, maintaining warm caches like
    /// [`Database::append_rows`].
    ///
    /// The batch must have the same attribute count: a column-count
    /// mismatch panics with both widths (shape bugs surface at the append
    /// site, not as silently misaligned columns).
    pub fn append_database(&mut self, other: &Database) {
        assert_eq!(
            other.dims(),
            self.dims(),
            "cannot append rows with {} columns to a database with {} columns",
            other.dims(),
            self.dims()
        );
        // The matrix halves share a layout, so the rows always extend as
        // one word memcpy; only the warm tid-set views need the appended
        // rows in itemset form.
        if self.has_column_cache() || self.has_sharded_cache() {
            let rows: Vec<Itemset> = (0..other.rows()).map(|r| other.row_itemset(r)).collect();
            if let Some(store) = self.columns.get_mut() {
                store.append_rows(&rows);
            }
            if let Some(store) = self.sharded.get_mut() {
                store.append_rows(&rows);
            }
        }
        self.matrix.extend_rows(other.matrix());
    }

    /// The columnar (tid-set) view of this database, built on first use and
    /// cached. Shared by the batched query APIs and the vertical miners, so
    /// the `O(nd/64)` transpose is paid at most once per database.
    pub fn columns(&self) -> &ColumnStore {
        self.columns.get_or_init(|| ColumnStore::build(&self.matrix))
    }

    /// True iff the columnar view has already been materialized.
    pub fn has_column_cache(&self) -> bool {
        self.columns.get().is_some()
    }

    /// The sharded columnar view, built on first use (with up to `threads`
    /// build workers) and cached. Shard layout depends only on the data, so
    /// the cached store is identical whatever `threads` the first caller
    /// passed; later callers may query it with any thread count.
    pub fn sharded_columns(&self, threads: usize) -> &ShardedColumnStore {
        self.sharded.get_or_init(|| ShardedColumnStore::build(&self.matrix, threads))
    }

    /// True iff the sharded columnar view has already been materialized.
    pub fn has_sharded_cache(&self) -> bool {
        self.sharded.get().is_some()
    }

    /// Cell accessor `D(i, j)`.
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.matrix.get(row, col)
    }

    /// True iff row `i` contains itemset `T` (all columns of `T` are 1).
    pub fn row_contains(&self, row: usize, itemset: &Itemset) -> bool {
        let mask = itemset.mask(self.dims(), self.matrix.words_per_row());
        self.matrix.row_contains_mask(row, &mask)
    }

    /// Support of `T`: the number of rows containing it.
    pub fn support(&self, itemset: &Itemset) -> usize {
        let mask = itemset.mask(self.dims(), self.matrix.words_per_row());
        self.matrix.count_rows_containing(&mask)
    }

    /// Frequency `f_T(D)` ∈ [0, 1]. Returns 0 for an empty database.
    pub fn frequency(&self, itemset: &Itemset) -> f64 {
        if self.rows() == 0 {
            return 0.0;
        }
        self.support(itemset) as f64 / self.rows() as f64
    }

    /// Supports of a whole query log on the cached columnar view.
    ///
    /// Answers are bit-identical to calling [`Database::support`] per
    /// itemset (both count the same rows; see `tests/columnar_queries.rs`).
    pub fn support_batch(&self, itemsets: &[Itemset]) -> Vec<usize> {
        self.columns().support_batch(itemsets)
    }

    /// Frequencies of a whole query log on the cached columnar view.
    ///
    /// The batched, columnar counterpart of [`Database::frequency`]: one
    /// shared transpose, one scratch buffer, `O(k·n/64)` words per query —
    /// and no per-call mask rebuild, so repeated queries of the same itemset
    /// cost only the intersection.
    pub fn frequencies(&self, itemsets: &[Itemset]) -> Vec<f64> {
        if self.rows() == 0 {
            return vec![0.0; itemsets.len()];
        }
        self.columns().frequency_batch(itemsets)
    }

    /// Supports of a whole query log computed by up to `threads` workers
    /// (DESIGN.md §8).
    ///
    /// `threads <= 1` runs the serial path on [`Database::columns`]. A
    /// database that fits in a single shard (`n <=`
    /// [`SHARD_ROWS`](crate::SHARD_ROWS)) chunks the query log over the
    /// serial store — a one-shard [`ShardedColumnStore`] would be a
    /// byte-identical duplicate of the transpose, and query-log chunking is
    /// where the parallelism is. Larger databases answer on the sharded
    /// view. Either way element `i` equals [`Database::support`] of
    /// `itemsets[i]` — every path counts the same rows.
    pub fn support_batch_with_threads(&self, itemsets: &[Itemset], threads: usize) -> Vec<usize> {
        if threads <= 1 {
            return self.support_batch(itemsets);
        }
        if self.rows() <= crate::SHARD_ROWS {
            return self.columns().support_batch_with_threads(itemsets, threads);
        }
        self.sharded_columns(threads).support_batch(itemsets, threads)
    }

    /// Frequencies of a whole query log computed by up to `threads` workers
    /// (DESIGN.md §8); bit-identical to [`Database::frequencies`] at every
    /// thread count. Single-shard databases reuse the serial store (see
    /// [`Database::support_batch_with_threads`]).
    pub fn frequencies_with_threads(&self, itemsets: &[Itemset], threads: usize) -> Vec<f64> {
        if threads <= 1 {
            return self.frequencies(itemsets);
        }
        if self.rows() == 0 {
            return vec![0.0; itemsets.len()];
        }
        if self.rows() <= crate::SHARD_ROWS {
            return self.columns().frequency_batch_with_threads(itemsets, threads);
        }
        self.sharded_columns(threads).frequency_batch(itemsets, threads)
    }

    /// Pre-resolves an itemset into a packed mask for repeated row tests.
    pub fn mask_of(&self, itemset: &Itemset) -> Vec<u64> {
        itemset.mask(self.dims(), self.matrix.words_per_row())
    }

    /// Support computed against a pre-resolved mask (hot path for the
    /// RELEASE-ANSWERS builder, which touches every `k`-itemset).
    pub fn support_mask(&self, mask: &[u64]) -> usize {
        self.matrix.count_rows_containing(mask)
    }

    /// The itemset view of row `i` (its set of 1-columns).
    pub fn row_itemset(&self, row: usize) -> Itemset {
        ifs_util::bits::ones(self.matrix.row_words(row)).map(|i| i as u32).collect()
    }

    /// A database consisting of the selected rows (indices may repeat —
    /// exactly what `SUBSAMPLE` needs for sampling with replacement).
    pub fn select_rows(&self, indices: &[usize]) -> Database {
        let mut m = BitMatrix::zeros(indices.len(), self.dims());
        for (out_r, &r) in indices.iter().enumerate() {
            m.set_row_words(out_r, self.matrix.row_words(r));
        }
        Database::from_matrix(m)
    }

    /// Vertically stacks two databases over the same attribute set.
    pub fn stack(&self, other: &Database) -> Database {
        Database::from_matrix(self.matrix.vconcat(other.matrix()))
    }

    /// Horizontally concatenates attributes of two databases with equal `n`.
    pub fn join_columns(&self, other: &Database) -> Database {
        Database::from_matrix(self.matrix.hconcat(other.matrix()))
    }

    /// Repeats every row `times` times (used by the Theorem 13 construction,
    /// which duplicates each of the `1/ε` distinct rows `⌊nε⌋` times).
    pub fn repeat_rows(&self, times: usize) -> Database {
        let mut m = BitMatrix::zeros(self.rows() * times, self.dims());
        for r in 0..self.rows() {
            for t in 0..times {
                m.set_row_words(r * times + t, self.matrix.row_words(r));
            }
        }
        Database::from_matrix(m)
    }

    /// Density: fraction of 1-cells.
    pub fn density(&self) -> f64 {
        let cells = self.rows() * self.dims();
        if cells == 0 {
            return 0.0;
        }
        self.matrix.total_weight() as f64 / cells as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Database {
        // 4 rows over 5 attributes.
        Database::from_rows(5, &[vec![0, 1, 2], vec![0, 1], vec![1, 2, 3], vec![4]])
    }

    #[test]
    fn dimensions() {
        let db = toy();
        assert_eq!(db.rows(), 4);
        assert_eq!(db.dims(), 5);
    }

    #[test]
    fn frequency_matches_manual_count() {
        let db = toy();
        assert_eq!(db.frequency(&Itemset::new(vec![0, 1])), 0.5); // rows 0,1
        assert_eq!(db.frequency(&Itemset::new(vec![1])), 0.75); // rows 0,1,2
        assert_eq!(db.frequency(&Itemset::new(vec![0, 3])), 0.0);
        assert_eq!(db.frequency(&Itemset::empty()), 1.0); // empty set in all rows
    }

    #[test]
    fn support_and_row_contains() {
        let db = toy();
        let t = Itemset::new(vec![1, 2]);
        assert_eq!(db.support(&t), 2);
        assert!(db.row_contains(0, &t));
        assert!(!db.row_contains(1, &t));
    }

    #[test]
    fn empty_database_frequency_zero() {
        let db = Database::zeros(0, 8);
        assert_eq!(db.frequency(&Itemset::singleton(0)), 0.0);
    }

    #[test]
    fn row_itemset_roundtrip() {
        let db = toy();
        assert_eq!(db.row_itemset(2), Itemset::new(vec![1, 2, 3]));
        assert_eq!(db.row_itemset(3), Itemset::singleton(4));
    }

    #[test]
    fn select_rows_with_replacement() {
        let db = toy();
        let s = db.select_rows(&[3, 3, 0]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row_itemset(0), Itemset::singleton(4));
        assert_eq!(s.row_itemset(1), Itemset::singleton(4));
        assert_eq!(s.row_itemset(2), Itemset::new(vec![0, 1, 2]));
    }

    #[test]
    fn repeat_rows_scales_support_not_frequency() {
        let db = toy();
        let t = Itemset::new(vec![0, 1]);
        let rep = db.repeat_rows(3);
        assert_eq!(rep.rows(), 12);
        assert_eq!(rep.support(&t), 6);
        assert!((rep.frequency(&t) - db.frequency(&t)).abs() < 1e-12);
    }

    #[test]
    fn stack_and_join() {
        let a = Database::from_rows(3, &[vec![0], vec![1]]);
        let b = Database::from_rows(3, &[vec![2], vec![0, 1, 2]]);
        let v = a.stack(&b);
        assert_eq!(v.rows(), 4);
        assert_eq!(v.dims(), 3);
        let h = a.join_columns(&b);
        assert_eq!(h.rows(), 2);
        assert_eq!(h.dims(), 6);
        assert!(h.get(0, 0) && h.get(0, 3 + 2));
    }

    #[test]
    fn density_counts_ones() {
        let db = toy();
        assert!((db.density() - 9.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn frequencies_match_scalar_frequency() {
        let db = toy();
        let queries = vec![
            Itemset::empty(),
            Itemset::new(vec![0, 1]),
            Itemset::singleton(1),
            Itemset::new(vec![0, 3]),
            Itemset::new(vec![1, 2, 3]),
        ];
        let batch = db.frequencies(&queries);
        for (t, &f) in queries.iter().zip(&batch) {
            assert_eq!(f, db.frequency(t), "itemset {t}");
        }
        assert_eq!(db.support_batch(&queries)[1], db.support(&queries[1]));
    }

    #[test]
    fn column_cache_lazy_and_invalidated_on_mutation() {
        let mut db = toy();
        assert!(!db.has_column_cache());
        assert_eq!(db.columns().support(&Itemset::singleton(4)), 1);
        assert!(db.has_column_cache());
        db.matrix_mut().set(0, 4, true);
        assert!(!db.has_column_cache(), "mutation must drop the cached view");
        assert_eq!(db.columns().support(&Itemset::singleton(4)), 2);
        assert_eq!(db.frequency(&Itemset::singleton(4)), 0.5);
    }

    #[test]
    fn clone_and_eq_ignore_cache_state() {
        let db = toy();
        let warm = db.clone();
        let _ = warm.columns();
        assert_eq!(db, warm, "cache state must not affect equality");
        let cloned_warm = warm.clone();
        assert!(cloned_warm.has_column_cache(), "clone keeps an already-built view");
        assert_eq!(cloned_warm, db);
    }

    #[test]
    fn database_stays_send_and_sync() {
        // The columnar cache is an OnceLock precisely so sketches can be
        // queried from multiple threads; a regression here breaks that.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Database>();
    }

    #[test]
    fn frequencies_on_empty_database_are_zero() {
        let db = Database::zeros(0, 8);
        assert_eq!(db.frequencies(&[Itemset::empty(), Itemset::singleton(2)]), vec![0.0, 0.0]);
    }

    #[test]
    fn threaded_batches_match_serial() {
        let db = toy();
        let queries = vec![
            Itemset::empty(),
            Itemset::new(vec![0, 1]),
            Itemset::singleton(1),
            Itemset::new(vec![1, 2, 3]),
        ];
        for threads in [0usize, 1, 2, 4, 8] {
            assert_eq!(
                db.support_batch_with_threads(&queries, threads),
                db.support_batch(&queries)
            );
            assert_eq!(db.frequencies_with_threads(&queries, threads), db.frequencies(&queries));
        }
    }

    /// The cache-invalidation audit (every path that could serve a stale
    /// columnar view): mutation drops BOTH caches; serialization
    /// round-trips, row selection, and generator outputs produce fresh
    /// databases whose views are rebuilt from their own matrices.
    #[test]
    fn caches_never_serve_stale_views() {
        let mut db = toy();
        let t = Itemset::singleton(4);
        // Warm both views, then mutate: both must be invalidated.
        assert_eq!(db.columns().support(&t), 1);
        assert_eq!(db.sharded_columns(2).support(&t), 1);
        db.matrix_mut().set(0, 4, true);
        assert!(!db.has_column_cache(), "mutation must drop the serial view");
        assert!(!db.has_sharded_cache(), "mutation must drop the sharded view");
        assert_eq!(db.columns().support(&t), 2);
        assert_eq!(db.sharded_columns(2).support(&t), 2);
        assert_eq!(db.support_batch_with_threads(std::slice::from_ref(&t), 4), vec![2]);

        // Serialize round-trip of a warm database: the decoded copy answers
        // from its own (fresh) views, and re-warming gives current answers.
        let bytes = crate::serialize::to_bytes(&db);
        let back = crate::serialize::from_bytes(&bytes).expect("roundtrip");
        assert!(!back.has_column_cache() && !back.has_sharded_cache());
        assert_eq!(back.columns().support(&t), 2);
        assert_eq!(back.sharded_columns(1).support(&t), 2);

        // select_rows from a warm database: the selection is a fresh
        // database over different rows; its views must reflect those rows.
        let sel = db.select_rows(&[0, 0, 3]);
        assert!(!sel.has_column_cache() && !sel.has_sharded_cache());
        assert_eq!(sel.columns().support(&t), 3); // rows 0,0,3 all contain item 4 now
        assert_eq!(sel.frequencies_with_threads(std::slice::from_ref(&t), 2), vec![1.0]);

        // A clone taken warm, then mutated, must diverge from its source
        // without corrupting it.
        let mut fork = db.clone();
        assert!(fork.has_column_cache() && fork.has_sharded_cache());
        fork.matrix_mut().set(1, 4, true);
        assert_eq!(fork.columns().support(&t), 3);
        assert_eq!(db.columns().support(&t), 2, "source database must be untouched");

        // Generator outputs mutate through matrix_mut internally; their
        // views must match a cold rebuild of the same matrix.
        let mut rng = ifs_util::Rng64::seeded(0xCAFE);
        let gen = crate::generators::planted(
            64,
            8,
            0.2,
            &[crate::generators::Plant { itemset: Itemset::new(vec![1, 2]), frequency: 0.5 }],
            &mut rng,
        );
        let fresh = Database::from_matrix(gen.matrix().clone());
        let probe = Itemset::new(vec![1, 2]);
        assert_eq!(gen.columns().support(&probe), fresh.columns().support(&probe));
        assert_eq!(gen.sharded_columns(2).support(&probe), fresh.support(&probe));
    }

    /// The append fast path: warm views are extended in place (never
    /// dropped) and stay bit-identical to a cold rebuild of the extended
    /// matrix.
    #[test]
    fn append_rows_maintains_warm_caches_in_place() {
        let mut db = toy();
        let t = Itemset::new(vec![1, 2]);
        assert_eq!(db.columns().support(&t), 2);
        assert_eq!(db.sharded_columns(2).support(&t), 2);
        db.append_rows(&[Itemset::new(vec![1, 2, 4]), Itemset::empty()]);
        assert!(db.has_column_cache(), "append must not drop the serial view");
        assert!(db.has_sharded_cache(), "append must not drop the sharded view");
        assert_eq!(db.rows(), 6);
        let fresh = Database::from_matrix(db.matrix().clone());
        assert_eq!(db.columns(), fresh.columns());
        assert_eq!(db.sharded_columns(1), fresh.sharded_columns(1));
        assert_eq!(db.support(&t), 3);
        assert_eq!(db.frequencies(std::slice::from_ref(&t)), vec![0.5]);
        assert_eq!(db.row_itemset(5), Itemset::empty());
    }

    #[test]
    fn append_rows_on_cold_caches_stays_cold() {
        let mut db = toy();
        db.append_rows(&[Itemset::singleton(0)]);
        assert!(!db.has_column_cache() && !db.has_sharded_cache());
        assert_eq!(db.rows(), 5);
        assert_eq!(db.support(&Itemset::singleton(0)), 3);
    }

    #[test]
    #[should_panic(
        expected = "appended row 1 has item 9, out of range for a database with 5 columns"
    )]
    fn append_rows_rejects_out_of_range_items_before_mutating() {
        let mut db = toy();
        db.append_rows(&[Itemset::singleton(0), Itemset::new(vec![2, 9])]);
    }

    #[test]
    fn append_rows_validates_before_mutating() {
        let mut db = toy();
        let before = db.clone();
        let bad = [Itemset::singleton(0), Itemset::singleton(5)];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            db.append_rows(&bad);
        }));
        assert!(result.is_err());
        assert_eq!(db, before, "a rejected batch must leave the database untouched");
    }

    #[test]
    fn append_database_matches_stack() {
        let a = toy();
        let b = Database::from_rows(5, &[vec![0, 4], vec![]]);
        let mut warm = a.clone();
        let _ = warm.columns();
        let _ = warm.sharded_columns(2);
        warm.append_database(&b);
        assert_eq!(warm, a.stack(&b));
        let mut cold = a.clone();
        cold.append_database(&b);
        assert_eq!(cold, a.stack(&b));
        assert!(!cold.has_column_cache());
    }

    #[test]
    #[should_panic(expected = "cannot append rows with 4 columns to a database with 5 columns")]
    fn append_database_rejects_column_mismatch() {
        let mut db = toy();
        db.append_database(&Database::zeros(2, 4));
    }

    #[test]
    fn mask_cache_equivalent_to_direct() {
        let db = toy();
        let t = Itemset::new(vec![1, 2]);
        let mask = db.mask_of(&t);
        assert_eq!(db.support_mask(&mask), db.support(&t));
    }
}
