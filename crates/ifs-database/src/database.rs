//! The `Database` type: rows, dimensions, and frequency queries.

use crate::{BitMatrix, ColumnStore, Itemset};
use std::sync::OnceLock;

/// A binary database `D ∈ ({0,1}^d)^n` (§1.3 of the paper).
///
/// Thin semantic wrapper over [`BitMatrix`]: `n = rows()`, `d = dims()`. The
/// central query is [`Database::frequency`], the fraction of rows containing
/// an itemset — `f_T(D) = (1/n)·Σ_i 1{T ⊆ D(i)}`.
///
/// Two query layouts coexist (DESIGN.md §7): the row-major matrix answers
/// one-shot queries without preprocessing, and a lazily built, cached
/// [`ColumnStore`] ([`Database::columns`]) serves repeated or batched
/// queries ([`Database::frequencies`]) at columnar speed. Identity (`Eq`,
/// `Debug`, serialization) is defined by the matrix alone; the cache is a
/// derived view and is invalidated by [`Database::matrix_mut`].
pub struct Database {
    matrix: BitMatrix,
    columns: OnceLock<ColumnStore>,
}

impl Clone for Database {
    fn clone(&self) -> Self {
        let columns = OnceLock::new();
        // Propagate an already-built columnar view: cloning is how sketches
        // capture a database, and their query side is exactly the workload
        // the cache exists for.
        if let Some(store) = self.columns.get() {
            let _ = columns.set(store.clone());
        }
        Self { matrix: self.matrix.clone(), columns }
    }
}

impl PartialEq for Database {
    fn eq(&self, other: &Self) -> bool {
        self.matrix == other.matrix
    }
}

impl Eq for Database {}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database").field("matrix", &self.matrix).finish()
    }
}

impl Database {
    /// Wraps an existing matrix (rows are database records).
    pub fn from_matrix(matrix: BitMatrix) -> Self {
        Self { matrix, columns: OnceLock::new() }
    }

    /// An all-zero database with `n` rows and `d` attributes.
    pub fn zeros(n: usize, d: usize) -> Self {
        Self::from_matrix(BitMatrix::zeros(n, d))
    }

    /// Builds from explicit rows given as attribute-index lists.
    ///
    /// `d` is the attribute count; indices must be `< d`.
    pub fn from_rows(d: usize, rows: &[Vec<u32>]) -> Self {
        let mut m = BitMatrix::zeros(rows.len(), d);
        for (r, row) in rows.iter().enumerate() {
            for &c in row {
                m.set(r, c as usize, true);
            }
        }
        Self::from_matrix(m)
    }

    /// Builds from a cell predicate.
    pub fn from_fn(n: usize, d: usize, f: impl FnMut(usize, usize) -> bool) -> Self {
        Self::from_matrix(BitMatrix::from_fn(n, d, f))
    }

    /// Number of rows `n`.
    pub fn rows(&self) -> usize {
        self.matrix.rows()
    }

    /// Number of attributes `d`.
    pub fn dims(&self) -> usize {
        self.matrix.cols()
    }

    /// The underlying packed matrix.
    pub fn matrix(&self) -> &BitMatrix {
        &self.matrix
    }

    /// Mutable access to the underlying matrix.
    ///
    /// Drops any cached columnar view: the caller may change cells, and the
    /// next [`Database::columns`] call rebuilds the transpose from scratch.
    pub fn matrix_mut(&mut self) -> &mut BitMatrix {
        self.columns.take();
        &mut self.matrix
    }

    /// The columnar (tid-set) view of this database, built on first use and
    /// cached. Shared by the batched query APIs and the vertical miners, so
    /// the `O(nd/64)` transpose is paid at most once per database.
    pub fn columns(&self) -> &ColumnStore {
        self.columns.get_or_init(|| ColumnStore::build(&self.matrix))
    }

    /// True iff the columnar view has already been materialized.
    pub fn has_column_cache(&self) -> bool {
        self.columns.get().is_some()
    }

    /// Cell accessor `D(i, j)`.
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.matrix.get(row, col)
    }

    /// True iff row `i` contains itemset `T` (all columns of `T` are 1).
    pub fn row_contains(&self, row: usize, itemset: &Itemset) -> bool {
        let mask = itemset.mask(self.dims(), self.matrix.words_per_row());
        self.matrix.row_contains_mask(row, &mask)
    }

    /// Support of `T`: the number of rows containing it.
    pub fn support(&self, itemset: &Itemset) -> usize {
        let mask = itemset.mask(self.dims(), self.matrix.words_per_row());
        self.matrix.count_rows_containing(&mask)
    }

    /// Frequency `f_T(D)` ∈ [0, 1]. Returns 0 for an empty database.
    pub fn frequency(&self, itemset: &Itemset) -> f64 {
        if self.rows() == 0 {
            return 0.0;
        }
        self.support(itemset) as f64 / self.rows() as f64
    }

    /// Supports of a whole query log on the cached columnar view.
    ///
    /// Answers are bit-identical to calling [`Database::support`] per
    /// itemset (both count the same rows; see `tests/columnar_queries.rs`).
    pub fn support_batch(&self, itemsets: &[Itemset]) -> Vec<usize> {
        self.columns().support_batch(itemsets)
    }

    /// Frequencies of a whole query log on the cached columnar view.
    ///
    /// The batched, columnar counterpart of [`Database::frequency`]: one
    /// shared transpose, one scratch buffer, `O(k·n/64)` words per query —
    /// and no per-call mask rebuild, so repeated queries of the same itemset
    /// cost only the intersection.
    pub fn frequencies(&self, itemsets: &[Itemset]) -> Vec<f64> {
        if self.rows() == 0 {
            return vec![0.0; itemsets.len()];
        }
        self.columns().frequency_batch(itemsets)
    }

    /// Pre-resolves an itemset into a packed mask for repeated row tests.
    pub fn mask_of(&self, itemset: &Itemset) -> Vec<u64> {
        itemset.mask(self.dims(), self.matrix.words_per_row())
    }

    /// Support computed against a pre-resolved mask (hot path for the
    /// RELEASE-ANSWERS builder, which touches every `k`-itemset).
    pub fn support_mask(&self, mask: &[u64]) -> usize {
        self.matrix.count_rows_containing(mask)
    }

    /// The itemset view of row `i` (its set of 1-columns).
    pub fn row_itemset(&self, row: usize) -> Itemset {
        ifs_util::bits::ones(self.matrix.row_words(row)).map(|i| i as u32).collect()
    }

    /// A database consisting of the selected rows (indices may repeat —
    /// exactly what `SUBSAMPLE` needs for sampling with replacement).
    pub fn select_rows(&self, indices: &[usize]) -> Database {
        let mut m = BitMatrix::zeros(indices.len(), self.dims());
        for (out_r, &r) in indices.iter().enumerate() {
            m.set_row_words(out_r, self.matrix.row_words(r));
        }
        Database::from_matrix(m)
    }

    /// Vertically stacks two databases over the same attribute set.
    pub fn stack(&self, other: &Database) -> Database {
        Database::from_matrix(self.matrix.vconcat(other.matrix()))
    }

    /// Horizontally concatenates attributes of two databases with equal `n`.
    pub fn join_columns(&self, other: &Database) -> Database {
        Database::from_matrix(self.matrix.hconcat(other.matrix()))
    }

    /// Repeats every row `times` times (used by the Theorem 13 construction,
    /// which duplicates each of the `1/ε` distinct rows `⌊nε⌋` times).
    pub fn repeat_rows(&self, times: usize) -> Database {
        let mut m = BitMatrix::zeros(self.rows() * times, self.dims());
        for r in 0..self.rows() {
            for t in 0..times {
                m.set_row_words(r * times + t, self.matrix.row_words(r));
            }
        }
        Database::from_matrix(m)
    }

    /// Density: fraction of 1-cells.
    pub fn density(&self) -> f64 {
        let cells = self.rows() * self.dims();
        if cells == 0 {
            return 0.0;
        }
        self.matrix.total_weight() as f64 / cells as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Database {
        // 4 rows over 5 attributes.
        Database::from_rows(5, &[vec![0, 1, 2], vec![0, 1], vec![1, 2, 3], vec![4]])
    }

    #[test]
    fn dimensions() {
        let db = toy();
        assert_eq!(db.rows(), 4);
        assert_eq!(db.dims(), 5);
    }

    #[test]
    fn frequency_matches_manual_count() {
        let db = toy();
        assert_eq!(db.frequency(&Itemset::new(vec![0, 1])), 0.5); // rows 0,1
        assert_eq!(db.frequency(&Itemset::new(vec![1])), 0.75); // rows 0,1,2
        assert_eq!(db.frequency(&Itemset::new(vec![0, 3])), 0.0);
        assert_eq!(db.frequency(&Itemset::empty()), 1.0); // empty set in all rows
    }

    #[test]
    fn support_and_row_contains() {
        let db = toy();
        let t = Itemset::new(vec![1, 2]);
        assert_eq!(db.support(&t), 2);
        assert!(db.row_contains(0, &t));
        assert!(!db.row_contains(1, &t));
    }

    #[test]
    fn empty_database_frequency_zero() {
        let db = Database::zeros(0, 8);
        assert_eq!(db.frequency(&Itemset::singleton(0)), 0.0);
    }

    #[test]
    fn row_itemset_roundtrip() {
        let db = toy();
        assert_eq!(db.row_itemset(2), Itemset::new(vec![1, 2, 3]));
        assert_eq!(db.row_itemset(3), Itemset::singleton(4));
    }

    #[test]
    fn select_rows_with_replacement() {
        let db = toy();
        let s = db.select_rows(&[3, 3, 0]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row_itemset(0), Itemset::singleton(4));
        assert_eq!(s.row_itemset(1), Itemset::singleton(4));
        assert_eq!(s.row_itemset(2), Itemset::new(vec![0, 1, 2]));
    }

    #[test]
    fn repeat_rows_scales_support_not_frequency() {
        let db = toy();
        let t = Itemset::new(vec![0, 1]);
        let rep = db.repeat_rows(3);
        assert_eq!(rep.rows(), 12);
        assert_eq!(rep.support(&t), 6);
        assert!((rep.frequency(&t) - db.frequency(&t)).abs() < 1e-12);
    }

    #[test]
    fn stack_and_join() {
        let a = Database::from_rows(3, &[vec![0], vec![1]]);
        let b = Database::from_rows(3, &[vec![2], vec![0, 1, 2]]);
        let v = a.stack(&b);
        assert_eq!(v.rows(), 4);
        assert_eq!(v.dims(), 3);
        let h = a.join_columns(&b);
        assert_eq!(h.rows(), 2);
        assert_eq!(h.dims(), 6);
        assert!(h.get(0, 0) && h.get(0, 3 + 2));
    }

    #[test]
    fn density_counts_ones() {
        let db = toy();
        assert!((db.density() - 9.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn frequencies_match_scalar_frequency() {
        let db = toy();
        let queries = vec![
            Itemset::empty(),
            Itemset::new(vec![0, 1]),
            Itemset::singleton(1),
            Itemset::new(vec![0, 3]),
            Itemset::new(vec![1, 2, 3]),
        ];
        let batch = db.frequencies(&queries);
        for (t, &f) in queries.iter().zip(&batch) {
            assert_eq!(f, db.frequency(t), "itemset {t}");
        }
        assert_eq!(db.support_batch(&queries)[1], db.support(&queries[1]));
    }

    #[test]
    fn column_cache_lazy_and_invalidated_on_mutation() {
        let mut db = toy();
        assert!(!db.has_column_cache());
        assert_eq!(db.columns().support(&Itemset::singleton(4)), 1);
        assert!(db.has_column_cache());
        db.matrix_mut().set(0, 4, true);
        assert!(!db.has_column_cache(), "mutation must drop the cached view");
        assert_eq!(db.columns().support(&Itemset::singleton(4)), 2);
        assert_eq!(db.frequency(&Itemset::singleton(4)), 0.5);
    }

    #[test]
    fn clone_and_eq_ignore_cache_state() {
        let db = toy();
        let warm = db.clone();
        let _ = warm.columns();
        assert_eq!(db, warm, "cache state must not affect equality");
        let cloned_warm = warm.clone();
        assert!(cloned_warm.has_column_cache(), "clone keeps an already-built view");
        assert_eq!(cloned_warm, db);
    }

    #[test]
    fn database_stays_send_and_sync() {
        // The columnar cache is an OnceLock precisely so sketches can be
        // queried from multiple threads; a regression here breaks that.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Database>();
    }

    #[test]
    fn frequencies_on_empty_database_are_zero() {
        let db = Database::zeros(0, 8);
        assert_eq!(db.frequencies(&[Itemset::empty(), Itemset::singleton(2)]), vec![0.0, 0.0]);
    }

    #[test]
    fn mask_cache_equivalent_to_direct() {
        let db = toy();
        let t = Itemset::new(vec![1, 2]);
        let mask = db.mask_of(&t);
        assert_eq!(db.support_mask(&mask), db.support(&t));
    }
}
