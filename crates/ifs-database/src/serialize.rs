//! Binary wire format for databases.
//!
//! Space accounting is the whole point of the paper, so "sketch size" must be
//! a concrete number of bits. RELEASE-DB and SUBSAMPLE sketches serialize via
//! this module; their reported size is the byte length of the encoding.
//!
//! Format (little-endian):
//!
//! ```text
//! magic  u32  = 0x4946_5344 ("IFSD")
//! rows   u64
//! dims   u64
//! data   rows * words_per_row * 8 bytes of packed row words
//! ```

use crate::{BitMatrix, Database};

/// Magic header marking a serialized database.
pub const MAGIC: u32 = 0x4946_5344;

/// Errors from [`from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input shorter than the fixed header.
    Truncated,
    /// Header magic did not match.
    BadMagic(u32),
    /// Payload length disagrees with the header dimensions.
    LengthMismatch {
        /// Bytes the header implies.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated before header end"),
            DecodeError::BadMagic(m) => write!(f, "bad magic 0x{m:08x}"),
            DecodeError::LengthMismatch { expected, actual } => {
                write!(f, "payload length mismatch: expected {expected} bytes, got {actual}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes a database to bytes.
pub fn to_bytes(db: &Database) -> Vec<u8> {
    let m = db.matrix();
    let mut out = Vec::with_capacity(20 + m.raw_words().len() * 8);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(db.rows() as u64).to_le_bytes());
    out.extend_from_slice(&(db.dims() as u64).to_le_bytes());
    for w in m.raw_words() {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// Deserializes a database produced by [`to_bytes`].
pub fn from_bytes(bytes: &[u8]) -> Result<Database, DecodeError> {
    if bytes.len() < 20 {
        return Err(DecodeError::Truncated);
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("sliced 4 bytes"));
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let rows = u64::from_le_bytes(bytes[4..12].try_into().expect("sliced 8 bytes")) as usize;
    let dims = u64::from_le_bytes(bytes[12..20].try_into().expect("sliced 8 bytes")) as usize;
    let words_per_row = ifs_util::bits::words_for(dims).max(1);
    let expected = rows * words_per_row * 8;
    let payload = &bytes[20..];
    if payload.len() != expected {
        return Err(DecodeError::LengthMismatch { expected, actual: payload.len() });
    }
    let mut words = Vec::with_capacity(rows * words_per_row);
    for chunk in payload.chunks_exact(8) {
        words.push(u64::from_le_bytes(chunk.try_into().expect("chunked 8 bytes")));
    }
    Ok(Database::from_matrix(BitMatrix::from_raw(rows, dims, words)))
}

/// Serialized size in bits — the paper's `|S|` for row-based sketches.
pub fn size_bits(db: &Database) -> u64 {
    (to_bytes(db).len() as u64) * 8
}

/// The information-theoretic size `n·d` bits (no header, no padding), used by
/// the bound formulas of Theorem 12 where constants are suppressed.
pub fn payload_bits(db: &Database) -> u64 {
    (db.rows() as u64) * (db.dims() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_util::Rng64;

    #[test]
    fn roundtrip_random() {
        let mut rng = Rng64::seeded(10);
        for (n, d) in [(0usize, 5usize), (3, 0), (7, 64), (13, 65), (20, 130)] {
            let db = crate::generators::uniform(n, d, 0.4, &mut rng);
            let bytes = to_bytes(&db);
            let back = from_bytes(&bytes).expect("roundtrip");
            assert_eq!(db, back, "mismatch at n={n} d={d}");
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let db = Database::zeros(1, 8);
        let mut bytes = to_bytes(&db);
        bytes[0] ^= 0xFF;
        assert!(matches!(from_bytes(&bytes), Err(DecodeError::BadMagic(_))));
    }

    #[test]
    fn rejects_truncation() {
        let db = Database::zeros(2, 64);
        let bytes = to_bytes(&db);
        assert!(matches!(from_bytes(&bytes[..10]), Err(DecodeError::Truncated)));
        assert!(matches!(
            from_bytes(&bytes[..bytes.len() - 8]),
            Err(DecodeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn size_accounting() {
        let db = Database::zeros(10, 100);
        // 100 cols -> 2 words/row -> 10*2*8 bytes payload + 20 header.
        assert_eq!(to_bytes(&db).len(), 20 + 160);
        assert_eq!(size_bits(&db), (20 + 160) * 8);
        assert_eq!(payload_bits(&db), 1000);
    }
}
