//! Packed row-major bit matrix.

use ifs_util::bits;

/// A dense `rows × cols` bit matrix, each row packed into `u64` words.
///
/// This is the storage layer for [`crate::Database`]. Rows are padded to a
/// whole number of words; padding bits are kept at zero so word-wise subset
/// tests need no masking.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = bits::words_for(cols).max(1);
        Self { rows, cols, words_per_row, data: vec![0; rows * words_per_row] }
    }

    /// Builds from a closure giving each cell.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if f(r, c) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Words used per row (layout detail needed by [`crate::Itemset`] masks).
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Reads cell `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.rows && c < self.cols);
        bits::get(self.row_words(r), c)
    }

    /// Writes cell `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        let start = r * self.words_per_row;
        bits::set(&mut self.data[start..start + self.words_per_row], c, v);
    }

    /// The packed words of row `r`.
    #[inline]
    pub fn row_words(&self, r: usize) -> &[u64] {
        &self.data[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Overwrites row `r` from packed words (must match layout; tail bits of
    /// the final word beyond `cols` must be zero).
    pub fn set_row_words(&mut self, r: usize, words: &[u64]) {
        assert_eq!(words.len(), self.words_per_row);
        if !self.cols.is_multiple_of(64) {
            debug_assert_eq!(words[self.words_per_row - 1] >> (self.cols % 64), 0);
        }
        self.data[r * self.words_per_row..(r + 1) * self.words_per_row].copy_from_slice(words);
    }

    /// True iff row `r` contains every set bit of `mask` (same layout).
    #[inline]
    pub fn row_contains_mask(&self, r: usize, mask: &[u64]) -> bool {
        bits::is_subset(mask, self.row_words(r))
    }

    /// Number of rows containing `mask`.
    pub fn count_rows_containing(&self, mask: &[u64]) -> usize {
        (0..self.rows).filter(|&r| self.row_contains_mask(r, mask)).count()
    }

    /// Extracts column `c` as a packed bit-vector over rows.
    pub fn column(&self, c: usize) -> Vec<u64> {
        assert!(c < self.cols);
        let mut out = vec![0u64; bits::words_for(self.rows).max(1)];
        for r in 0..self.rows {
            if self.get(r, c) {
                bits::set(&mut out, r, true);
            }
        }
        out
    }

    /// Number of ones in row `r`.
    #[inline]
    pub fn row_weight(&self, r: usize) -> usize {
        bits::count_ones(self.row_words(r))
    }

    /// Total number of ones.
    pub fn total_weight(&self) -> usize {
        bits::count_ones(&self.data)
    }

    /// Horizontal concatenation: `self` then `other`, row-wise.
    pub fn hconcat(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.rows, other.rows, "hconcat requires equal row counts");
        let mut out = BitMatrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            for c in bits::ones(self.row_words(r)) {
                out.set(r, c, true);
            }
            for c in bits::ones(other.row_words(r)) {
                out.set(r, self.cols + c, true);
            }
        }
        out
    }

    /// Appends `added` all-zero rows in place (the ingestion fast path:
    /// [`crate::Database::append_rows`] grows the matrix, then sets the new
    /// rows' bits; `words_per_row` is unchanged because the column count is).
    pub fn push_zero_rows(&mut self, added: usize) {
        self.rows += added;
        self.data.resize(self.rows * self.words_per_row, 0);
    }

    /// Appends all rows of `other` in place — the in-place counterpart of
    /// [`Self::vconcat`], used by the append ingestion path.
    pub fn extend_rows(&mut self, other: &BitMatrix) {
        assert_eq!(self.cols, other.cols, "extend_rows requires equal column counts");
        self.rows += other.rows;
        self.data.extend_from_slice(&other.data);
    }

    /// Vertical concatenation: rows of `self` then rows of `other`.
    pub fn vconcat(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, other.cols, "vconcat requires equal column counts");
        let mut out = BitMatrix::zeros(self.rows + other.rows, self.cols);
        for r in 0..self.rows {
            out.set_row_words(r, self.row_words(r));
        }
        for r in 0..other.rows {
            out.set_row_words(self.rows + r, other.row_words(r));
        }
        out
    }

    /// Raw packed storage (row-major), exposed for serialization.
    pub fn raw_words(&self) -> &[u64] {
        &self.data
    }

    /// Rebuilds from raw storage produced by [`Self::raw_words`].
    pub fn from_raw(rows: usize, cols: usize, data: Vec<u64>) -> Self {
        let words_per_row = bits::words_for(cols).max(1);
        assert_eq!(data.len(), rows * words_per_row, "raw storage has wrong length");
        Self { rows, cols, words_per_row, data }
    }
}

impl std::fmt::Debug for BitMatrix {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(fm, "BitMatrix {}x{}", self.rows, self.cols)?;
        let show_rows = self.rows.min(16);
        for r in 0..show_rows {
            let line: String =
                (0..self.cols.min(80)).map(|c| if self.get(r, c) { '1' } else { '0' }).collect();
            writeln!(fm, "  {line}{}", if self.cols > 80 { "…" } else { "" })?;
        }
        if self.rows > show_rows {
            writeln!(fm, "  … ({} more rows)", self.rows - show_rows)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_then_set_get() {
        let mut m = BitMatrix::zeros(3, 100);
        assert!(!m.get(2, 99));
        m.set(2, 99, true);
        assert!(m.get(2, 99));
        assert!(!m.get(1, 99));
        assert_eq!(m.total_weight(), 1);
    }

    #[test]
    fn from_fn_diagonal() {
        let m = BitMatrix::from_fn(5, 5, |r, c| r == c);
        for r in 0..5 {
            for c in 0..5 {
                assert_eq!(m.get(r, c), r == c);
            }
        }
        assert_eq!(m.total_weight(), 5);
    }

    #[test]
    fn row_contains_mask_semantics() {
        let m = BitMatrix::from_fn(2, 70, |r, c| r == 0 || c % 2 == 0);
        let mut mask = vec![0u64; m.words_per_row()];
        ifs_util::bits::set(&mut mask, 3, true);
        ifs_util::bits::set(&mut mask, 69, true);
        assert!(m.row_contains_mask(0, &mask)); // row 0 is all ones
        assert!(!m.row_contains_mask(1, &mask)); // 3 and 69 are odd columns
        assert_eq!(m.count_rows_containing(&mask), 1);
    }

    #[test]
    fn column_extraction() {
        let m = BitMatrix::from_fn(130, 4, |r, c| (r + c) % 3 == 0);
        let col = m.column(2);
        for r in 0..130 {
            assert_eq!(ifs_util::bits::get(&col, r), (r + 2) % 3 == 0);
        }
    }

    #[test]
    fn hconcat_layout() {
        let a = BitMatrix::from_fn(2, 3, |r, c| r == 0 && c == 1);
        let b = BitMatrix::from_fn(2, 66, |r, c| r == 1 && c == 65);
        let m = a.hconcat(&b);
        assert_eq!(m.cols(), 69);
        assert!(m.get(0, 1));
        assert!(m.get(1, 3 + 65));
        assert_eq!(m.total_weight(), 2);
    }

    #[test]
    fn vconcat_layout() {
        let a = BitMatrix::from_fn(2, 5, |_, _| true);
        let b = BitMatrix::from_fn(3, 5, |_, _| false);
        let m = a.vconcat(&b);
        assert_eq!(m.rows(), 5);
        assert_eq!(m.row_weight(0), 5);
        assert_eq!(m.row_weight(4), 0);
    }

    #[test]
    fn push_zero_rows_then_set_matches_from_fn() {
        let f = |r: usize, c: usize| (r * 7 + c).is_multiple_of(3);
        let mut m = BitMatrix::from_fn(5, 70, f);
        m.push_zero_rows(3);
        assert_eq!(m.rows(), 8);
        for r in 5..8 {
            assert_eq!(m.row_weight(r), 0);
            for c in 0..70 {
                if f(r, c) {
                    m.set(r, c, true);
                }
            }
        }
        assert_eq!(m, BitMatrix::from_fn(8, 70, f));
    }

    #[test]
    fn extend_rows_matches_vconcat() {
        let a = BitMatrix::from_fn(4, 67, |r, c| (r + c) % 2 == 0);
        let b = BitMatrix::from_fn(3, 67, |r, c| (r * c) % 5 == 1);
        let mut m = a.clone();
        m.extend_rows(&b);
        assert_eq!(m, a.vconcat(&b));
    }

    #[test]
    #[should_panic(expected = "equal column counts")]
    fn extend_rows_rejects_mismatched_cols() {
        let mut a = BitMatrix::zeros(2, 4);
        a.extend_rows(&BitMatrix::zeros(2, 5));
    }

    #[test]
    fn raw_roundtrip() {
        let m = BitMatrix::from_fn(7, 67, |r, c| (r * 31 + c) % 5 == 0);
        let raw = m.raw_words().to_vec();
        let back = BitMatrix::from_raw(7, 67, raw);
        assert_eq!(m, back);
    }

    #[test]
    fn zero_column_matrix() {
        let m = BitMatrix::zeros(4, 0);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 0);
        // Every row trivially contains the empty mask.
        let mask = vec![0u64; m.words_per_row()];
        assert_eq!(m.count_rows_containing(&mask), 4);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn set_out_of_range_panics() {
        let mut m = BitMatrix::zeros(2, 2);
        m.set(2, 0, true);
    }
}
