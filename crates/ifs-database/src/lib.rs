//! Binary databases and itemset frequency queries.
//!
//! The paper's object of study is a binary database `D ∈ ({0,1}^d)^n` of `n`
//! rows over `d` attributes (§1.3). An itemset `T ⊆ [d]` is *contained* in a
//! row if the row has a 1 in every column of `T`, and its frequency `f_T(D)`
//! is the fraction of rows containing it.
//!
//! This crate provides:
//!
//! * [`BitMatrix`] — a packed row-major bit matrix (one `u64` word per 64
//!   columns) with subset tests done word-wise.
//! * [`Itemset`] — a sorted attribute set with a packed-mask representation
//!   aligned to the matrix layout, so `row ⊇ T` is a handful of AND/CMP ops.
//! * [`Database`] — rows + dimension bookkeeping + frequency/support queries
//!   and column views.
//! * [`ColumnStore`] — the columnar execution layer: per-item packed
//!   tid-sets with AND+popcount intersection kernels and batched
//!   support/frequency queries, cached lazily on [`Database::columns`].
//! * [`ShardedColumnStore`] — the same tid-sets partitioned into contiguous
//!   word-aligned row shards, built and queried by multiple threads with
//!   answers bit-identical to the serial store at every thread count
//!   (DESIGN.md §8); cached lazily on [`Database::sharded_columns`].
//! * [`generators`] — workload generators: i.i.d. Bernoulli databases,
//!   planted itemsets, Zipf-popularity market-basket data with correlated
//!   bundles, and the binary decomposition of categorical attributes
//!   described in footnote 1 of the paper.
//! * [`serialize`] — the standalone database wire format (what "the full
//!   database costs `n·d` bits plus a header" means concretely).
//! * [`codec`] — the shared snapshot codec substrate (DESIGN.md §10):
//!   framed, versioned, checksummed encodings with a typed [`DecodeError`]
//!   taxonomy. Every sketch's wire format — and therefore every sketch's
//!   `size_bits()` measurement — is built on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmatrix;
pub mod codec;
mod columnstore;
mod database;
pub mod generators;
mod itemset;
pub mod serialize;
mod sharded;
pub mod stats;

pub use bitmatrix::BitMatrix;
pub use codec::DecodeError;
pub use columnstore::ColumnStore;
pub use database::Database;
pub use itemset::Itemset;
pub use sharded::{ShardedColumnStore, SHARD_ROWS};
