//! Workload generators.
//!
//! The lower-bound experiments build their own adversarial databases inside
//! `ifs-lowerbounds`; the generators here produce the *benign* workloads used
//! by the upper-bound experiments, the examples, and the mining/streaming
//! comparisons:
//!
//! * [`uniform`] — i.i.d. Bernoulli(p) cells, the null model.
//! * [`planted`] — a uniform background with itemsets planted at prescribed
//!   frequencies, so ground-truth frequent itemsets are known exactly.
//! * [`market_basket`] — Zipf-distributed item popularity plus correlated
//!   bundles, the workload the paper's introduction motivates (shopping-cart
//!   analysis).
//! * [`categorical_to_binary`] — footnote 1 of the paper: an attribute with
//!   `m` values becomes `2⌈log₂ m⌉` binary attributes, two per bit position
//!   (one marking bit = 0, one marking bit = 1), so every conjunction over
//!   categorical values is an itemset over the binary attributes.

use crate::{Database, Itemset};
use ifs_util::Rng64;

/// i.i.d. Bernoulli(p) database with `n` rows and `d` attributes.
pub fn uniform(n: usize, d: usize, p: f64, rng: &mut Rng64) -> Database {
    Database::from_fn(n, d, |_, _| rng.bernoulli(p))
}

/// Specification of one planted itemset.
#[derive(Clone, Debug)]
pub struct Plant {
    /// The itemset to plant.
    pub itemset: Itemset,
    /// Target frequency in [0, 1]: each row independently receives the full
    /// itemset with this probability.
    pub frequency: f64,
}

/// Uniform background of density `background_p` with [`Plant`]s overlaid.
///
/// Planting is a union: a row receives the plant's columns in addition to its
/// background bits, so the realized frequency of each plant is at least the
/// target (background can only add support). Tests account for this one-sided
/// bias.
pub fn planted(
    n: usize,
    d: usize,
    background_p: f64,
    plants: &[Plant],
    rng: &mut Rng64,
) -> Database {
    let mut db = uniform(n, d, background_p, rng);
    for plant in plants {
        assert!(plant.itemset.max_item().map_or(0, |m| m as usize) < d);
        for row in 0..n {
            if rng.bernoulli(plant.frequency) {
                for &c in plant.itemset.items() {
                    db.matrix_mut().set(row, c as usize, true);
                }
            }
        }
    }
    db
}

/// Parameters for the synthetic market-basket generator.
#[derive(Clone, Debug)]
pub struct MarketBasketSpec {
    /// Number of transactions (rows).
    pub transactions: usize,
    /// Catalogue size (attributes).
    pub items: usize,
    /// Zipf exponent for item popularity (1.0 is classic Zipf).
    pub zipf_exponent: f64,
    /// Mean number of independently chosen items per transaction.
    pub mean_basket: f64,
    /// Bundles: sets of items bought together, with adoption probability.
    pub bundles: Vec<(Vec<u32>, f64)>,
}

impl Default for MarketBasketSpec {
    fn default() -> Self {
        Self {
            transactions: 1000,
            items: 64,
            zipf_exponent: 1.0,
            mean_basket: 6.0,
            bundles: Vec::new(),
        }
    }
}

/// Synthetic shopping-cart data: Zipf item popularity + correlated bundles.
///
/// Each transaction draws `Poisson`-ish many items (binomial approximation)
/// from a Zipf popularity distribution, then adopts each bundle independently
/// with its probability.
pub fn market_basket(spec: &MarketBasketSpec, rng: &mut Rng64) -> Database {
    let d = spec.items;
    // Zipf weights w_i = 1 / (i+1)^s, normalized.
    let weights: Vec<f64> =
        (0..d).map(|i| 1.0 / ((i + 1) as f64).powf(spec.zipf_exponent)).collect();
    let total: f64 = weights.iter().sum();
    // Per-item inclusion probability scaled to the target mean basket size.
    let probs: Vec<f64> = weights.iter().map(|w| (w / total * spec.mean_basket).min(1.0)).collect();
    let mut db = Database::zeros(spec.transactions, d);
    for row in 0..spec.transactions {
        for (col, &p) in probs.iter().enumerate() {
            if rng.bernoulli(p) {
                db.matrix_mut().set(row, col, true);
            }
        }
        for (bundle, adopt) in &spec.bundles {
            if rng.bernoulli(*adopt) {
                for &c in bundle {
                    db.matrix_mut().set(row, c as usize, true);
                }
            }
        }
    }
    db
}

/// Footnote 1 of the paper: decomposes rows of categorical values into binary
/// attributes.
///
/// Attribute `a` with `m_a` possible values occupies `2⌈log₂ m_a⌉` binary
/// columns: for each bit position `b` of the value's binary representation,
/// one column fires when bit `b` is 0 and the next when bit `b` is 1. Any
/// equality predicate `a = v` is then the conjunction of `⌈log₂ m_a⌉` binary
/// attributes, i.e. an itemset.
pub fn categorical_to_binary(rows: &[Vec<u32>], cardinalities: &[u32]) -> Database {
    let widths: Vec<usize> = cardinalities
        .iter()
        .map(|&m| {
            assert!(m >= 1, "attribute cardinality must be >= 1");
            if m == 1 {
                1
            } else {
                (32 - (m - 1).leading_zeros()) as usize
            }
        })
        .collect();
    let offsets: Vec<usize> = widths
        .iter()
        .scan(0usize, |acc, &w| {
            let o = *acc;
            *acc += 2 * w;
            Some(o)
        })
        .collect();
    let d: usize = widths.iter().map(|w| 2 * w).sum();
    let mut db = Database::zeros(rows.len(), d);
    for (r, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), cardinalities.len(), "row arity mismatch");
        for (a, &v) in row.iter().enumerate() {
            assert!(v < cardinalities[a], "value {v} out of range for attribute {a}");
            for b in 0..widths[a] {
                let bit = (v >> b) & 1;
                // Column pair for bit b: offset + 2b is "bit==0", +2b+1 is "bit==1".
                db.matrix_mut().set(r, offsets[a] + 2 * b + bit as usize, true);
            }
        }
    }
    db
}

/// The itemset expressing `attribute == value` over the binary decomposition
/// produced by [`categorical_to_binary`].
pub fn categorical_predicate(cardinalities: &[u32], attribute: usize, value: u32) -> Itemset {
    let widths: Vec<usize> = cardinalities
        .iter()
        .map(|&m| if m == 1 { 1 } else { (32 - (m - 1).leading_zeros()) as usize })
        .collect();
    let offset: usize = widths.iter().take(attribute).map(|w| 2 * w).sum();
    let mut items = Vec::new();
    for b in 0..widths[attribute] {
        let bit = (value >> b) & 1;
        items.push((offset + 2 * b + bit as usize) as u32);
    }
    Itemset::new(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_density_near_p() {
        let mut rng = Rng64::seeded(1);
        let db = uniform(500, 64, 0.25, &mut rng);
        assert!((db.density() - 0.25).abs() < 0.02, "density {}", db.density());
    }

    #[test]
    fn planted_itemset_reaches_target_frequency() {
        let mut rng = Rng64::seeded(2);
        let t = Itemset::new(vec![3, 7, 11]);
        let db = planted(2000, 32, 0.05, &[Plant { itemset: t.clone(), frequency: 0.4 }], &mut rng);
        let f = db.frequency(&t);
        // One-sided: background can only add support.
        assert!(f >= 0.35, "freq {f}");
        assert!(f <= 0.50, "freq {f}");
    }

    #[test]
    fn market_basket_bundles_cooccur() {
        let mut rng = Rng64::seeded(3);
        let spec = MarketBasketSpec {
            transactions: 2000,
            items: 50,
            bundles: vec![(vec![40, 41, 42], 0.3)],
            ..Default::default()
        };
        let db = market_basket(&spec, &mut rng);
        let bundle = Itemset::new(vec![40, 41, 42]);
        let f = db.frequency(&bundle);
        assert!(f > 0.25, "bundle frequency {f}");
        // Unpopular tail items are rare individually outside the bundle.
        let tail = Itemset::new(vec![45, 46, 47]);
        assert!(db.frequency(&tail) < f / 2.0);
    }

    #[test]
    fn market_basket_popularity_is_monotone() {
        let mut rng = Rng64::seeded(4);
        let spec = MarketBasketSpec { transactions: 4000, items: 20, ..Default::default() };
        let db = market_basket(&spec, &mut rng);
        let f0 = db.frequency(&Itemset::singleton(0));
        let f10 = db.frequency(&Itemset::singleton(10));
        assert!(f0 > f10, "zipf head {f0} should beat tail {f10}");
    }

    #[test]
    fn categorical_decomposition_width() {
        // Cardinalities 4 and 3 need 2 bits each -> 2*(2+2) = 8 columns.
        let db = categorical_to_binary(&[vec![0, 0]], &[4, 3]);
        assert_eq!(db.dims(), 8);
        // Every bit position sets exactly one of its column pair.
        assert_eq!(db.matrix().row_weight(0), 4);
    }

    #[test]
    fn categorical_predicate_matches_exactly() {
        let cards = [4u32, 3u32];
        let rows = vec![vec![2, 1], vec![2, 2], vec![3, 1], vec![0, 1]];
        let db = categorical_to_binary(&rows, &cards);
        // attribute 0 == 2 holds for rows 0 and 1.
        let p = categorical_predicate(&cards, 0, 2);
        assert_eq!(db.support(&p), 2);
        // attribute 1 == 1 holds for rows 0, 2, 3.
        let p = categorical_predicate(&cards, 1, 1);
        assert_eq!(db.support(&p), 3);
        // Conjunction (a0==2 AND a1==1): only row 0.
        let conj = categorical_predicate(&cards, 0, 2).union(&categorical_predicate(&cards, 1, 1));
        assert_eq!(db.support(&conj), 1);
    }

    #[test]
    fn categorical_cardinality_one() {
        let db = categorical_to_binary(&[vec![0], vec![0]], &[1]);
        assert_eq!(db.dims(), 2);
        let p = categorical_predicate(&[1], 0, 0);
        assert_eq!(db.support(&p), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn categorical_value_out_of_range() {
        categorical_to_binary(&[vec![4]], &[4]);
    }
}
