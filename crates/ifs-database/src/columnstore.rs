//! Columnar (vertical) query execution: per-item tid-sets.
//!
//! The row-major [`crate::BitMatrix`] is the right layout for *building*
//! summaries — one pass over rows — but a query workload touches only the
//! `k` columns of its itemset, so scanning `n` rows per query wastes
//! `(d − k)/d` of every cache line. `ColumnStore` transposes the matrix
//! once into per-item packed row-index sets ("tid-sets", as the vertical
//! mining literature calls them); the support of an itemset is then the
//! popcount of the AND of `k` column words — `O(k·n/64)` word operations
//! instead of `O(n·d/64)`.
//!
//! This is the same representation Eclat uses internally; promoting it to a
//! shared layer lets sketches (the batched query methods in `ifs-core`), the
//! miners, and the benches all reuse one transpose. See DESIGN.md §7 for
//! when each layout is used.

use crate::{BitMatrix, Itemset};
use ifs_util::bits;

/// Tid-word block for the batched query path: the same geometry as a row
/// shard ([`crate::sharded::SHARD_ROWS`] rows = 256 words per column), so
/// one block of the `k` queried columns plus scratch stays L2-resident
/// while every query of the batch runs over it (DESIGN.md §12). Blocked
/// partial supports are exact integer popcounts over disjoint word
/// ranges, so any block size yields bit-identical answers.
pub(crate) const QUERY_BLOCK_WORDS: usize = crate::sharded::SHARD_ROWS / 64;

std::thread_local! {
    /// Scratch for single `support` queries with `k ≥ 4`: grown once per
    /// thread, reused by every subsequent query (the former code allocated
    /// a fresh `Vec` per call). Batch APIs still pass their own scratch.
    static SUPPORT_SCRATCH: std::cell::RefCell<Vec<u64>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Per-item packed tid-set bitmaps over the rows of a [`BitMatrix`].
///
/// Column `c` is stored as a little-endian bit-vector over row indices:
/// bit `r` of column `c` is set iff cell `(r, c)` of the source matrix is 1.
/// All columns share one flat allocation; tail bits beyond `rows` are kept
/// zero so popcounts need no masking.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ColumnStore {
    rows: usize,
    dims: usize,
    words_per_col: usize,
    words: Vec<u64>,
}

impl ColumnStore {
    /// Transposes a row-major matrix into per-item tid-sets (one pass over
    /// the set bits of the matrix).
    pub fn build(matrix: &BitMatrix) -> Self {
        Self::build_range(matrix, 0..matrix.rows())
    }

    /// Transposes only the rows in `range` (tid-set bit `r` refers to row
    /// `range.start + r` of the source matrix). This is the per-shard
    /// build of [`crate::ShardedColumnStore`]: each shard transposes its
    /// contiguous row slice independently, so shards can be built in
    /// parallel and their popcounts summed (DESIGN.md §8).
    pub fn build_range(matrix: &BitMatrix, range: std::ops::Range<usize>) -> Self {
        assert!(range.start <= range.end && range.end <= matrix.rows(), "row range out of bounds");
        let rows = range.len();
        let dims = matrix.cols();
        let words_per_col = bits::words_for(rows).max(1);
        let mut words = vec![0u64; dims * words_per_col];
        // Blocked bit-scatter: 64 rows at a time accumulate into one
        // L1-resident word per column (`colword`, `d` words), then each
        // nonzero word is stored once. The naive transpose did one random
        // store into the `d × n/64`-word output per set *bit*; this does one
        // per set output *word*, and the per-bit stores all land in a `d`-
        // word buffer that stays hot across the block.
        let mut colword = vec![0u64; dims];
        for block in 0..words_per_col {
            let lo = range.start + block * 64;
            let hi = (lo + 64).min(range.end);
            for (bit, r) in (lo..hi).enumerate() {
                for c in bits::ones(matrix.row_words(r)) {
                    colword[c] |= 1u64 << bit;
                }
            }
            for (c, w) in colword.iter_mut().enumerate() {
                if *w != 0 {
                    words[c * words_per_col + block] = *w;
                    *w = 0;
                }
            }
        }
        Self { rows, dims, words_per_col, words }
    }

    /// Appends `rows` (given as attribute-index sets) to the tid-sets in
    /// place — the ingestion fast path (DESIGN.md §9).
    ///
    /// The store keeps its exact layout invariant: after the append it is
    /// **bit-identical** (`==`) to `ColumnStore::build` of the extended
    /// matrix. When the new row count needs more words per tid-set, every
    /// column is copied once into the wider stride — an `O(d·n/64)` word
    /// memcpy, far cheaper than the `O(n·d)` bit-scatter of a fresh
    /// transpose — and otherwise only the new rows' bits are set.
    pub fn append_rows(&mut self, rows: &[Itemset]) {
        let new_rows = self.rows + rows.len();
        let new_wpc = bits::words_for(new_rows).max(1);
        if new_wpc != self.words_per_col {
            let mut wider = vec![0u64; self.dims * new_wpc];
            for c in 0..self.dims {
                wider[c * new_wpc..c * new_wpc + self.words_per_col].copy_from_slice(
                    &self.words[c * self.words_per_col..(c + 1) * self.words_per_col],
                );
            }
            self.words = wider;
            self.words_per_col = new_wpc;
        }
        for (i, row) in rows.iter().enumerate() {
            let local = self.rows + i;
            for &c in row.items() {
                let c = c as usize;
                assert!(c < self.dims, "item {c} out of range for {} columns", self.dims);
                self.words[c * self.words_per_col + local / 64] |= 1u64 << (local % 64);
            }
        }
        self.rows = new_rows;
    }

    /// Number of rows `n` of the source matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of items (columns) `d` of the source matrix.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Words per tid-set (layout detail for callers managing scratch).
    pub fn words_per_col(&self) -> usize {
        self.words_per_col
    }

    /// The packed tid-set of item `c`: bit `r` set iff row `r` contains `c`.
    #[inline]
    pub fn tids(&self, c: usize) -> &[u64] {
        assert!(c < self.dims, "item {c} out of range for {} columns", self.dims);
        &self.words[c * self.words_per_col..(c + 1) * self.words_per_col]
    }

    /// Support of the single item `c` (popcount of its tid-set).
    #[inline]
    pub fn item_support(&self, c: usize) -> usize {
        bits::count_ones(self.tids(c))
    }

    /// An empty scratch buffer for tid-set intersections, reusable across
    /// queries (the batch APIs allocate exactly one). The kernel sizes it on
    /// the first query that actually needs it.
    pub fn new_scratch(&self) -> Vec<u64> {
        Vec::new()
    }

    /// The word range `[w0, w1)` of item `c`'s tid-set — the unit the
    /// blocked batch kernel iterates over.
    #[inline]
    fn tids_words(&self, c: usize, w0: usize, w1: usize) -> &[u64] {
        assert!(c < self.dims, "item {c} out of range for {} columns", self.dims);
        &self.words[c * self.words_per_col + w0..c * self.words_per_col + w1]
    }

    /// Intersection kernel over the tid-word range `[w0, w1)`: rows of that
    /// range containing every item of `itemset` (DESIGN.md §12).
    ///
    /// `k = 0` needs no intersection (every row of the range qualifies);
    /// `k ≤ 3` runs allocation- and copy-free via [`bits::and_count`] /
    /// [`bits::and3_count`]; `k ≥ 4` opens with the fused
    /// [`bits::and_write`], ANDs the middle items into `scratch`, and closes
    /// with the fused [`bits::and3_count`] — `k − 2` passes over the range
    /// instead of the historical `k` (copy, `k − 2` ANDs, AND+count).
    ///
    /// Because supports over disjoint word ranges are exact integer partial
    /// popcounts, summing this kernel over any partition of `[0,
    /// words_per_col)` is bit-identical to one full-width pass — the same
    /// argument that makes row sharding exact (DESIGN.md §8).
    fn support_in_words(
        &self,
        itemset: &Itemset,
        w0: usize,
        w1: usize,
        scratch: &mut Vec<u64>,
    ) -> usize {
        match itemset.items() {
            [] => self.rows.min(w1 * 64) - self.rows.min(w0 * 64),
            [a] => bits::count_ones(self.tids_words(*a as usize, w0, w1)),
            [a, b] => bits::and_count(
                self.tids_words(*a as usize, w0, w1),
                self.tids_words(*b as usize, w0, w1),
            ),
            [a, b, c] => bits::and3_count(
                self.tids_words(*a as usize, w0, w1),
                self.tids_words(*b as usize, w0, w1),
                self.tids_words(*c as usize, w0, w1),
            ),
            [a, b, mid @ .., y, z] => {
                scratch.resize(w1 - w0, 0);
                bits::and_write(
                    scratch,
                    self.tids_words(*a as usize, w0, w1),
                    self.tids_words(*b as usize, w0, w1),
                );
                for &c in mid {
                    bits::and_assign(scratch, self.tids_words(c as usize, w0, w1));
                }
                bits::and3_count(
                    scratch,
                    self.tids_words(*y as usize, w0, w1),
                    self.tids_words(*z as usize, w0, w1),
                )
            }
        }
    }

    /// Intersection kernel: support of `itemset` using caller-owned scratch
    /// (the full-width case of `support_in_words`; `k ≤ 3` never
    /// touches `scratch`).
    pub fn support_with_scratch(&self, itemset: &Itemset, scratch: &mut Vec<u64>) -> usize {
        self.support_in_words(itemset, 0, self.words_per_col, scratch)
    }

    /// Support of `itemset`: rows containing every item. Allocation-free:
    /// `|itemset| ≤ 3` needs no scratch at all, and larger itemsets borrow a
    /// thread-local buffer that is grown once and reused by every subsequent
    /// single query on the thread.
    pub fn support(&self, itemset: &Itemset) -> usize {
        if itemset.items().len() <= 3 {
            // Kernel provably ignores scratch; skip the thread-local borrow.
            return self.support_in_words(itemset, 0, self.words_per_col, &mut Vec::new());
        }
        SUPPORT_SCRATCH
            .with(|scratch| self.support_with_scratch(itemset, &mut scratch.borrow_mut()))
    }

    /// Frequency `f_T` ∈ [0, 1]; 0 for an empty store (matching
    /// [`crate::Database::frequency`]).
    pub fn frequency(&self, itemset: &Itemset) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        self.support(itemset) as f64 / self.rows as f64
    }

    /// Accumulates `out[i] += support(itemsets[i])` in cache blocks: the
    /// outer loop walks tid-word blocks of `block_words`, the inner loop
    /// runs every query over the current block, so the queried column words
    /// are loaded into L2 once per *batch* instead of once per *query*.
    /// Commutative integer accumulation — identical to query-at-a-time.
    pub(crate) fn add_supports_blocked(
        &self,
        itemsets: &[Itemset],
        out: &mut [usize],
        block_words: usize,
        scratch: &mut Vec<u64>,
    ) {
        debug_assert_eq!(itemsets.len(), out.len());
        assert!(block_words > 0, "block_words must be positive");
        let mut w0 = 0;
        while w0 < self.words_per_col {
            let w1 = (w0 + block_words).min(self.words_per_col);
            for (o, t) in out.iter_mut().zip(itemsets) {
                *o += self.support_in_words(t, w0, w1, scratch);
            }
            w0 = w1;
        }
    }

    /// Supports of a whole query log over explicit tid-word blocks — the
    /// knob exists so tests can straddle block boundaries; production paths
    /// use [`Self::support_batch`] (block = `QUERY_BLOCK_WORDS`). Element
    /// `i` equals `self.support(&itemsets[i])` at **any** block size.
    pub fn support_batch_blocked(&self, itemsets: &[Itemset], block_words: usize) -> Vec<usize> {
        let mut out = vec![0usize; itemsets.len()];
        self.add_supports_blocked(itemsets, &mut out, block_words, &mut Vec::new());
        out
    }

    /// Supports of a whole query log, cache-blocked (DESIGN.md §12) and
    /// sharing one scratch buffer.
    pub fn support_batch(&self, itemsets: &[Itemset]) -> Vec<usize> {
        self.support_batch_blocked(itemsets, QUERY_BLOCK_WORDS)
    }

    /// Frequencies of a whole query log, cache-blocked.
    ///
    /// Bit-identical to calling [`Self::frequency`] per itemset: both divide
    /// the same integer support by the same integer row count.
    pub fn frequency_batch(&self, itemsets: &[Itemset]) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; itemsets.len()];
        }
        let n = self.rows as f64;
        self.support_batch(itemsets).into_iter().map(|s| s as f64 / n).collect()
    }

    /// [`Self::support_batch`] chunked across up to `threads` workers
    /// (DESIGN.md §8). Row sharding is pointless for a store that fits one
    /// shard, but query-log chunking still parallelizes; each worker runs
    /// the blocked kernel over its chunk. Element `i` equals
    /// `self.support(&itemsets[i])` regardless of `threads`.
    pub fn support_batch_with_threads(&self, itemsets: &[Itemset], threads: usize) -> Vec<usize> {
        let mut out = vec![0usize; itemsets.len()];
        crate::sharded::chunked_query_batch(self, itemsets, threads, &mut out, |s, qs, os| {
            s.add_supports_blocked(qs, os, QUERY_BLOCK_WORDS, &mut Vec::new());
        });
        out
    }

    /// [`Self::frequency_batch`] chunked across up to `threads` workers;
    /// bit-identical at every thread count (same integer supports, same
    /// divisions).
    pub fn frequency_batch_with_threads(&self, itemsets: &[Itemset], threads: usize) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; itemsets.len()];
        }
        let n = self.rows as f64;
        self.support_batch_with_threads(itemsets, threads)
            .into_iter()
            .map(|s| s as f64 / n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Database;

    fn toy() -> Database {
        Database::from_rows(5, &[vec![0, 1, 2], vec![0, 1], vec![1, 2, 3], vec![4], vec![0, 4]])
    }

    #[test]
    fn supports_match_row_major() {
        let db = toy();
        let store = ColumnStore::build(db.matrix());
        for t in [
            Itemset::empty(),
            Itemset::singleton(0),
            Itemset::new(vec![0, 1]),
            Itemset::new(vec![1, 2]),
            Itemset::new(vec![0, 1, 2]),
            Itemset::new(vec![0, 3]),
            Itemset::new(vec![0, 1, 2, 3, 4]),
        ] {
            assert_eq!(store.support(&t), db.support(&t), "itemset {t}");
            assert_eq!(store.frequency(&t), db.frequency(&t), "itemset {t}");
        }
    }

    #[test]
    fn batch_matches_scalar() {
        let db = toy();
        let store = ColumnStore::build(db.matrix());
        let queries = vec![
            Itemset::new(vec![0, 1]),
            Itemset::empty(),
            Itemset::new(vec![2, 3]),
            Itemset::new(vec![0, 1, 4]),
        ];
        let supports = store.support_batch(&queries);
        let freqs = store.frequency_batch(&queries);
        for (i, t) in queries.iter().enumerate() {
            assert_eq!(supports[i], store.support(t));
            assert_eq!(freqs[i], store.frequency(t));
        }
    }

    #[test]
    fn tids_reflect_rows() {
        let db = toy();
        let store = ColumnStore::build(db.matrix());
        assert_eq!(ifs_util::bits::ones(store.tids(0)).collect::<Vec<_>>(), vec![0, 1, 4]);
        assert_eq!(ifs_util::bits::ones(store.tids(4)).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(store.item_support(1), 3);
    }

    #[test]
    fn empty_database() {
        let store = ColumnStore::build(Database::zeros(0, 8).matrix());
        assert_eq!(store.rows(), 0);
        assert_eq!(store.support(&Itemset::empty()), 0);
        assert_eq!(store.support(&Itemset::new(vec![0, 7])), 0);
        assert_eq!(store.frequency(&Itemset::empty()), 0.0);
        assert_eq!(store.frequency_batch(&[Itemset::singleton(3)]), vec![0.0]);
    }

    #[test]
    fn zero_column_matrix() {
        let store = ColumnStore::build(Database::zeros(6, 0).matrix());
        assert_eq!(store.dims(), 0);
        // Only the empty itemset is askable; it is in every row.
        assert_eq!(store.support(&Itemset::empty()), 6);
        assert_eq!(store.frequency(&Itemset::empty()), 1.0);
    }

    #[test]
    fn empty_itemset_has_frequency_one() {
        let store = ColumnStore::build(toy().matrix());
        assert_eq!(store.frequency(&Itemset::empty()), 1.0);
        assert_eq!(store.frequency_batch(&[Itemset::empty()]), vec![1.0]);
    }

    #[test]
    fn last_bit_of_final_word() {
        // 130 rows: rows occupy three words per column with a 2-bit tail;
        // 65 columns: the itemset {64} indexes the last allocated column.
        let n = 130;
        let db = Database::from_fn(n, 65, |r, c| r == n - 1 || c == 64);
        let store = ColumnStore::build(db.matrix());
        assert_eq!(store.words_per_col(), 3);
        // Item 64 is in every row; the final row contains everything.
        assert_eq!(store.support(&Itemset::singleton(64)), n);
        assert_eq!(store.support(&Itemset::new(vec![0, 64])), 1);
        assert_eq!(store.support(&Itemset::new(vec![0, 30, 64])), 1);
        assert!(ifs_util::bits::get(store.tids(0), n - 1), "last row, final word tail bit");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_item_panics() {
        ColumnStore::build(toy().matrix()).support(&Itemset::singleton(5));
    }

    #[test]
    fn threaded_batches_match_serial_batches() {
        let db = toy();
        let store = ColumnStore::build(db.matrix());
        let queries = vec![
            Itemset::empty(),
            Itemset::new(vec![0, 1]),
            Itemset::new(vec![1, 2]),
            Itemset::new(vec![0, 1, 2]),
            Itemset::singleton(4),
        ];
        for threads in [0usize, 1, 2, 4, 16] {
            assert_eq!(
                store.support_batch_with_threads(&queries, threads),
                store.support_batch(&queries),
                "threads={threads}"
            );
            assert_eq!(
                store.frequency_batch_with_threads(&queries, threads),
                store.frequency_batch(&queries),
                "threads={threads}"
            );
        }
        let empty = ColumnStore::build(Database::zeros(0, 4).matrix());
        assert_eq!(empty.frequency_batch_with_threads(&queries, 4), vec![0.0; queries.len()]);
    }

    /// Append maintenance must reproduce a fresh transpose bit for bit —
    /// same stride, same words — across word-boundary row counts.
    #[test]
    fn append_rows_is_bit_identical_to_rebuild() {
        let mut rng = ifs_util::Rng64::seeded(0xA11D);
        for base in [0usize, 1, 63, 64, 65, 130] {
            for added in [0usize, 1, 5, 64, 129] {
                let d = 10;
                let db = Database::from_fn(base + added, d, |_, _| rng.bernoulli(0.4));
                let head = Database::from_fn(base, d, |r, c| db.get(r, c));
                let mut store = ColumnStore::build(head.matrix());
                let tail: Vec<Itemset> = (base..base + added).map(|r| db.row_itemset(r)).collect();
                store.append_rows(&tail);
                assert_eq!(
                    store,
                    ColumnStore::build(db.matrix()),
                    "append diverged from rebuild at base={base} added={added}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn append_rows_rejects_out_of_range_items() {
        let mut store = ColumnStore::build(toy().matrix());
        store.append_rows(&[Itemset::singleton(5)]);
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        let store = ColumnStore::build(toy().matrix());
        let mut scratch = store.new_scratch();
        let a = Itemset::new(vec![0, 1, 2]);
        let b = Itemset::new(vec![1, 2, 3]);
        let first = store.support_with_scratch(&a, &mut scratch);
        let _ = store.support_with_scratch(&b, &mut scratch);
        assert_eq!(store.support_with_scratch(&a, &mut scratch), first);
    }
}
