//! Shared codec substrate for versioned sketch snapshots (DESIGN.md §10).
//!
//! Space accounting is the whole point of the paper, so every sketch's
//! "size in bits" must be the length of a concrete, decodable byte string —
//! not hand-computed bookkeeping. This module is the substrate those byte
//! strings are built from: primitive readers/writers (fixed-width
//! little-endian, LEB128 varints, zigzag for signed counters), a
//! self-describing frame (magic + kind + format version + body length +
//! checksum), and a [`DecodeError`] taxonomy that turns every adversarial
//! input — truncation, wrong magic, version skew, bit flips, trailing
//! garbage — into a typed refusal instead of a panic.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! magic    u32     = 0x4946_5353 ("IFSS")
//! kind     u16     sketch-type tag (see `ifs_core::snapshot` for the registry)
//! version  u16     format version of this kind's body layout
//! len      varint  body length in bytes
//! body     len bytes (kind-specific)
//! check    u64     FNV-1a 64 over every preceding byte of the frame
//! ```
//!
//! **Version-skew policy.** A decoder accepts exactly the versions it
//! knows; a frame carrying any other version — in particular a *future*
//! one, whose body layout the decoder cannot know — is refused with
//! [`DecodeError::UnsupportedVersion`] before the checksum is even
//! examined. Evolving a sketch's body layout means bumping its version and
//! teaching its decoder the old layouts, never reinterpreting bytes.

use crate::{BitMatrix, Database, Itemset};
use ifs_util::bits;

/// Magic header marking a snapshot frame ("IFSS").
pub const SNAPSHOT_MAGIC: u32 = 0x4946_5353;

/// Why a snapshot (or a field inside one) refused to decode.
///
/// Decoders never panic on untrusted bytes: every malformed input maps to
/// one of these variants, and `tests/snapshot_roundtrip.rs` drives each
/// sketch codec through all of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before a field (or the declared body) was complete.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Frame magic did not match [`SNAPSHOT_MAGIC`].
    BadMagic(u32),
    /// The frame is a valid snapshot of a *different* sketch type.
    WrongKind {
        /// Kind tag the decoder expected.
        expected: u16,
        /// Kind tag found in the frame.
        got: u16,
    },
    /// The frame's body layout version is not one this decoder knows —
    /// typically a snapshot written by a newer build (see the module docs
    /// for the skew policy).
    UnsupportedVersion {
        /// Kind tag of the frame.
        kind: u16,
        /// Version found in the frame.
        got: u16,
        /// Newest version this decoder supports.
        supported: u16,
    },
    /// Bytes remain after the complete frame (or after a fully decoded
    /// body): the input is longer than the snapshot it claims to be.
    TrailingBytes {
        /// Number of surplus bytes.
        extra: usize,
    },
    /// The FNV-1a 64 checksum over the frame did not match: bytes were
    /// corrupted in storage or transit.
    ChecksumMismatch {
        /// Checksum recorded in the frame.
        expected: u64,
        /// Checksum recomputed from the received bytes.
        actual: u64,
    },
    /// A field decoded but its value is impossible (overflowing sizes,
    /// out-of-range items, nonzero padding bits, …); the string names the
    /// field and the violation.
    Corrupt(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, available } => {
                write!(f, "input truncated: next field needs {needed} bytes, {available} left")
            }
            DecodeError::BadMagic(m) => write!(f, "bad snapshot magic 0x{m:08x}"),
            DecodeError::WrongKind { expected, got } => {
                write!(f, "snapshot of kind {got}, decoder expects kind {expected}")
            }
            DecodeError::UnsupportedVersion { kind, got, supported } => write!(
                f,
                "kind-{kind} snapshot has format version {got}, this build supports <= {supported}"
            ),
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the snapshot frame")
            }
            DecodeError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: frame says 0x{expected:016x}, bytes hash to 0x{actual:016x}"
            ),
            DecodeError::Corrupt(what) => write!(f, "corrupt snapshot field: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// FNV-1a 64 over `bytes` — the frame checksum. Hand-rolled (DESIGN.md §6)
/// and byte-order independent by construction.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Append-only encoder for snapshot bodies and frames.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Clears the writer for reuse, retaining its capacity. Per-connection
    /// encode scratch in the serving tier relies on this to stop
    /// allocating once it has seen its largest message.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// The bytes written so far, borrowed.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// One raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Fixed-width `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Fixed-width `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// An `f64` by its IEEE-754 bit pattern (bit-exact roundtrip; NaN
    /// payloads included).
    pub fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// LEB128 varint: 7 value bits per byte, high bit = continuation.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Zigzag-mapped varint for signed counters (small magnitudes of either
    /// sign stay short).
    pub fn varint_i64(&mut self, v: i64) {
        self.varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Raw bytes, verbatim (length must be recoverable from context).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// A packed `u64` word slice as little-endian bytes.
    pub fn words(&mut self, v: &[u64]) {
        for w in v {
            self.u64(*w);
        }
    }
}

/// Cursor over untrusted snapshot bytes; every read is bounds-checked and
/// returns [`DecodeError::Truncated`] instead of panicking.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { buf: bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Bytes consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// Checks that at least `needed` bytes remain, without consuming them —
    /// the pre-allocation guard. Decoders validate an untrusted element
    /// count against the bytes that could possibly back it (every element
    /// costs at least one byte) *before* reserving a `Vec`, so a tiny
    /// frame declaring a huge count is a typed [`DecodeError::Truncated`]
    /// instead of an enormous allocation request.
    pub fn require(&self, needed: usize) -> Result<(), DecodeError> {
        if self.remaining() < needed {
            return Err(DecodeError::Truncated { needed, available: self.remaining() });
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated { needed: n, available: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Fixed-width `u32`, little-endian.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("took 4 bytes")))
    }

    /// Fixed-width `u64`, little-endian.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("took 8 bytes")))
    }

    /// An `f64` from its IEEE-754 bit pattern.
    pub fn f64_bits(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// LEB128 varint; refuses encodings longer than 10 bytes (the `u64`
    /// maximum) or overflowing 64 bits.
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        for i in 0..10 {
            let byte = self.u8()?;
            let payload = u64::from(byte & 0x7F);
            if i == 9 && payload > 1 {
                return Err(DecodeError::Corrupt("varint overflows u64".into()));
            }
            v |= payload << (7 * i);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(DecodeError::Corrupt("varint continuation beyond 10 bytes".into()))
    }

    /// A varint that must fit in `usize` (always true on 64-bit hosts).
    pub fn varint_usize(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.varint()?)
            .map_err(|_| DecodeError::Corrupt("varint exceeds usize".into()))
    }

    /// Zigzag-mapped signed varint.
    pub fn varint_i64(&mut self) -> Result<i64, DecodeError> {
        let z = self.varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// `n` packed `u64` words from little-endian bytes.
    pub fn words(&mut self, n: usize) -> Result<Vec<u64>, DecodeError> {
        let needed = n.checked_mul(8).ok_or_else(|| {
            DecodeError::Corrupt(format!("word count {n} overflows a byte length"))
        })?;
        let raw = self.take(needed)?;
        Ok(raw.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8"))).collect())
    }
}

/// Wraps a kind-specific `body` into a full self-describing frame.
pub fn encode_frame(kind: u16, version: u16, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_frame_into(kind, version, body, &mut out);
    out
}

/// [`encode_frame`] into a caller-owned buffer: `out` is cleared and
/// overwritten with the complete frame, retaining its capacity, so a
/// connection that frames every message through one buffer stops
/// allocating once warm.
pub fn encode_frame_into(kind: u16, version: u16, body: &[u8], out: &mut Vec<u8>) {
    let mut w = Writer { buf: std::mem::take(out) };
    w.clear();
    w.u32(SNAPSHOT_MAGIC);
    w.buf.extend_from_slice(&kind.to_le_bytes());
    w.buf.extend_from_slice(&version.to_le_bytes());
    w.varint(body.len() as u64);
    w.bytes(body);
    let check = fnv1a64(&w.buf);
    w.u64(check);
    *out = w.into_bytes();
}

/// Validates one frame at the start of `bytes` and returns `(body,
/// consumed)` — the kind-specific body slice and the total frame length.
/// Bytes past `consumed` are left for the caller (streams of frames are
/// legal at this layer; strict single-snapshot decoding rejects them with
/// [`DecodeError::TrailingBytes`] one level up).
///
/// Check order is part of the contract: magic, kind, and version are
/// judged *before* the checksum, so a version-skewed frame reports
/// [`DecodeError::UnsupportedVersion`] rather than a useless mismatch on a
/// checksum whose coverage the decoder cannot interpret.
pub fn decode_frame(
    bytes: &[u8],
    kind: u16,
    supported_version: u16,
) -> Result<(&[u8], usize), DecodeError> {
    let mut r = Reader::new(bytes);
    let magic = r.u32()?;
    if magic != SNAPSHOT_MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let got_kind = u16::from_le_bytes(r.bytes(2)?.try_into().expect("2"));
    if got_kind != kind {
        return Err(DecodeError::WrongKind { expected: kind, got: got_kind });
    }
    let version = u16::from_le_bytes(r.bytes(2)?.try_into().expect("2"));
    if version == 0 || version > supported_version {
        return Err(DecodeError::UnsupportedVersion {
            kind,
            got: version,
            supported: supported_version,
        });
    }
    let body_len = r.varint_usize()?;
    let body_start = r.consumed();
    let body = r.bytes(body_len)?;
    let covered = body_start + body_len;
    let expected = r.u64()?;
    let actual = fnv1a64(&bytes[..covered]);
    if expected != actual {
        return Err(DecodeError::ChecksumMismatch { expected, actual });
    }
    Ok((body, r.consumed()))
}

/// What [`peek_frame`] learned about a frame without decoding its body:
/// the registry tags and the byte geometry a storage layer needs to file
/// the frame away or skip over it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// Sketch-type tag (see `ifs_core::snapshot` for the registry).
    pub kind: u16,
    /// Body-layout version recorded in the frame.
    pub version: u16,
    /// Declared body length in bytes.
    pub body_len: usize,
    /// Total frame length: header + length varint + body + checksum.
    pub frame_len: usize,
}

/// Validates one frame at the start of `bytes` *without* interpreting its
/// body: magic, length arithmetic, and the checksum are judged, but the
/// kind and version are reported rather than matched — the entry point for
/// kind-agnostic storage layers (the sketch log) that must file frames of
/// every registry kind, including versions only future decoders know.
/// Bytes past `frame_len` are the caller's business, as in
/// [`decode_frame`]. Version 0 is still refused (it is reserved in every
/// kind's numbering).
pub fn peek_frame(bytes: &[u8]) -> Result<FrameInfo, DecodeError> {
    let mut r = Reader::new(bytes);
    let magic = r.u32()?;
    if magic != SNAPSHOT_MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let kind = u16::from_le_bytes(r.bytes(2)?.try_into().expect("2"));
    let version = u16::from_le_bytes(r.bytes(2)?.try_into().expect("2"));
    if version == 0 {
        return Err(DecodeError::UnsupportedVersion { kind, got: 0, supported: u16::MAX });
    }
    let body_len = r.varint_usize()?;
    let body_start = r.consumed();
    r.bytes(body_len)?;
    let covered = body_start + body_len;
    let expected = r.u64()?;
    let actual = fnv1a64(&bytes[..covered]);
    if expected != actual {
        return Err(DecodeError::ChecksumMismatch { expected, actual });
    }
    Ok(FrameInfo { kind, version, body_len, frame_len: r.consumed() })
}

/// Encodes a database (rows, dims, packed row words) as a snapshot body
/// fragment — the shared payload of the row-based sketches.
pub fn write_database(w: &mut Writer, db: &Database) {
    w.varint(db.rows() as u64);
    w.varint(db.dims() as u64);
    w.words(db.matrix().raw_words());
}

/// Decodes a database fragment written by [`write_database`], validating
/// shape arithmetic and row-padding bits before any matrix is built (so
/// adversarial headers cannot cause overflowing allocations or construct a
/// matrix that violates the zero-padding invariant word-wise subset tests
/// rely on).
pub fn read_database(r: &mut Reader) -> Result<Database, DecodeError> {
    let rows = r.varint_usize()?;
    let dims = r.varint_usize()?;
    let words_per_row = bits::words_for(dims).max(1);
    let total_words = rows.checked_mul(words_per_row).ok_or_else(|| {
        DecodeError::Corrupt(format!("database shape {rows}x{dims} overflows a word count"))
    })?;
    let words = r.words(total_words)?;
    if !dims.is_multiple_of(64) && dims > 0 {
        let pad_shift = dims % 64;
        for row in 0..rows {
            let last = words[row * words_per_row + words_per_row - 1];
            if last >> pad_shift != 0 {
                return Err(DecodeError::Corrupt(format!(
                    "row {row} has nonzero padding bits beyond column {dims}"
                )));
            }
        }
    }
    Ok(Database::from_matrix(BitMatrix::from_raw(rows, dims, words)))
}

/// Row-group payload is a delta-coded itemset (the sparse mode).
const ROW_GROUP_ITEMS: u8 = 0;
/// Row-group payload is the raw packed row words (the dense fallback).
const ROW_GROUP_RAW: u8 = 1;

/// Cap on the *decoded* size of a compressed database fragment (1 GiB of
/// packed words — mirroring the serving transport's `MAX_WIRE_FRAME`).
/// Run-length groups legitimately amplify, so unlike [`read_database`] the
/// decoded size is not bounded by the bytes backing it; without a cap a
/// 20-byte frame could demand a terabyte allocation.
const MAX_COMPRESSED_DECODE_BYTES: usize = 1 << 30;

/// Encodes a database as the *compressed* snapshot body fragment (v2
/// `ReleaseDb` bodies): `rows`, `dims`, then row groups until every row is
/// covered. A group is `repeat` (varint, ≥ 1 — consecutive identical rows
/// collapse run-length style), a mode byte, and one row payload: either
/// the row's delta-coded itemset ([`write_itemset`], ~1 byte per set bit —
/// the sparse win) or its raw packed words (the dense fallback), whichever
/// is shorter. Sparse databases shrink well below `n·d` bits; dense rows
/// never pay more than one mode byte plus a varint over the raw encoding.
/// The encoding is deterministic (a function of the database alone), so
/// equal databases produce equal bytes — the compactor's identity
/// arguments rely on this.
pub fn write_database_compressed(w: &mut Writer, db: &Database) {
    let m = db.matrix();
    w.varint(m.rows() as u64);
    w.varint(m.cols() as u64);
    let raw_len = m.words_per_row() * 8;
    let mut r = 0;
    while r < m.rows() {
        let mut end = r + 1;
        while end < m.rows() && m.row_words(end) == m.row_words(r) {
            end += 1;
        }
        let mut items = Writer::new();
        write_itemset(&mut items, &db.row_itemset(r));
        w.varint((end - r) as u64);
        if items.len() < raw_len {
            w.u8(ROW_GROUP_ITEMS);
            w.bytes(items.as_slice());
        } else {
            w.u8(ROW_GROUP_RAW);
            w.words(m.row_words(r));
        }
        r = end;
    }
}

/// Decodes a fragment written by [`write_database_compressed`], validating
/// group arithmetic (no zero-length or overrunning groups), item ranges and
/// ordering, raw-row padding bits, and the decoded-size cap before any
/// large allocation — adversarial headers refuse typed, never panic and
/// never demand an unbacked terabyte.
pub fn read_database_compressed(r: &mut Reader) -> Result<Database, DecodeError> {
    let rows = r.varint_usize()?;
    let dims = r.varint_usize()?;
    let words_per_row = bits::words_for(dims).max(1);
    let total_words = rows.checked_mul(words_per_row).ok_or_else(|| {
        DecodeError::Corrupt(format!("database shape {rows}x{dims} overflows a word count"))
    })?;
    if total_words.saturating_mul(8) > MAX_COMPRESSED_DECODE_BYTES {
        return Err(DecodeError::Corrupt(format!(
            "compressed database decodes to {total_words} words, over the \
             {MAX_COMPRESSED_DECODE_BYTES}-byte cap"
        )));
    }
    let mut words = vec![0u64; total_words];
    let mut covered = 0usize;
    while covered < rows {
        let repeat = r.varint_usize()?;
        if repeat == 0 {
            return Err(DecodeError::Corrupt("row group repeats zero rows".into()));
        }
        if repeat > rows - covered {
            return Err(DecodeError::Corrupt(format!(
                "row groups cover {} rows, database declares {rows}",
                covered + repeat
            )));
        }
        let base = covered * words_per_row;
        match r.u8()? {
            ROW_GROUP_ITEMS => {
                let itemset = read_itemset(r, dims)?;
                for &item in itemset.items() {
                    words[base + item as usize / 64] |= 1u64 << (item % 64);
                }
            }
            ROW_GROUP_RAW => {
                let row = r.words(words_per_row)?;
                if !dims.is_multiple_of(64) && dims > 0 {
                    let last = row[words_per_row - 1];
                    if last >> (dims % 64) != 0 {
                        return Err(DecodeError::Corrupt(format!(
                            "row {covered} has nonzero padding bits beyond column {dims}"
                        )));
                    }
                }
                words[base..base + words_per_row].copy_from_slice(&row);
            }
            other => {
                return Err(DecodeError::Corrupt(format!("unknown row-group mode {other}")));
            }
        }
        for k in 1..repeat {
            words.copy_within(base..base + words_per_row, base + k * words_per_row);
        }
        covered += repeat;
    }
    Ok(Database::from_matrix(BitMatrix::from_raw(rows, dims, words)))
}

/// Encodes the first `bit_count` bits of a packed word vector as the
/// minimal whole number of bytes (`⌈bit_count/8⌉`) — the payload form of
/// the RELEASE-ANSWERS stores, where byte-rounding is the only overhead on
/// top of the paper's exact bit counts. Bits beyond `bit_count` must be
/// zero.
pub fn write_bitset(w: &mut Writer, words: &[u64], bit_count: usize) {
    debug_assert!(words.len() * 64 >= bit_count);
    let nbytes = bit_count.div_ceil(8);
    let mut bytes = Vec::with_capacity(nbytes);
    'outer: for word in words {
        for b in word.to_le_bytes() {
            if bytes.len() == nbytes {
                break 'outer;
            }
            bytes.push(b);
        }
    }
    debug_assert_eq!(bytes.len(), nbytes);
    if !bit_count.is_multiple_of(8) {
        debug_assert_eq!(bytes[nbytes - 1] >> (bit_count % 8), 0, "padding bits must be zero");
    }
    w.bytes(&bytes);
}

/// Decodes a bitset written by [`write_bitset`] back into packed words
/// (at least one word, matching `ifs_util::bits::words_for(..).max(1)`
/// layouts), refusing nonzero padding bits.
pub fn read_bitset(r: &mut Reader, bit_count: usize) -> Result<Vec<u64>, DecodeError> {
    let nbytes = bit_count.div_ceil(8);
    let raw = r.bytes(nbytes)?;
    if !bit_count.is_multiple_of(8) && raw[nbytes - 1] >> (bit_count % 8) != 0 {
        return Err(DecodeError::Corrupt(format!(
            "bitset has nonzero padding bits beyond bit {bit_count}"
        )));
    }
    let mut words = vec![0u64; bits::words_for(bit_count).max(1)];
    for (i, &b) in raw.iter().enumerate() {
        words[i / 8] |= u64::from(b) << (8 * (i % 8));
    }
    Ok(words)
}

/// Encodes an itemset as a count followed by its sorted items (delta-coded
/// varints, so dense rows stay near one byte per item).
pub fn write_itemset(w: &mut Writer, itemset: &Itemset) {
    let items = itemset.items();
    w.varint(items.len() as u64);
    let mut prev = 0u32;
    for (i, &item) in items.iter().enumerate() {
        let delta = if i == 0 { item } else { item - prev };
        w.varint(u64::from(delta));
        prev = item;
    }
}

/// Decodes an itemset written by [`write_itemset`], refusing counts or
/// items that cannot belong to a `dims`-attribute row.
pub fn read_itemset(r: &mut Reader, dims: usize) -> Result<Itemset, DecodeError> {
    let len = r.varint_usize()?;
    if len > dims {
        return Err(DecodeError::Corrupt(format!(
            "itemset claims {len} items over {dims} attributes"
        )));
    }
    r.require(len)?; // each item costs >= 1 varint byte
    let mut items = Vec::with_capacity(len);
    let mut prev = 0u64;
    for i in 0..len {
        let delta = r.varint()?;
        let item = if i == 0 {
            delta
        } else {
            prev.checked_add(delta)
                .ok_or_else(|| DecodeError::Corrupt("itemset item delta overflows u64".into()))?
        };
        if item >= dims as u64 {
            return Err(DecodeError::Corrupt(format!(
                "item {item} out of range for {dims} attributes"
            )));
        }
        if i > 0 && delta == 0 {
            return Err(DecodeError::Corrupt("itemset items not strictly increasing".into()));
        }
        items.push(item as u32);
        prev = item;
    }
    Ok(Itemset::new(items))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn itemset_roundtrips_and_validates() {
        for items in [vec![], vec![0], vec![0, 1, 63, 64, 1000]] {
            let t = Itemset::new(items);
            let mut w = Writer::new();
            write_itemset(&mut w, &t);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(read_itemset(&mut r, 1001).expect("roundtrip"), t);
            assert_eq!(r.remaining(), 0);
        }
        // Out-of-range item refuses.
        let mut w = Writer::new();
        write_itemset(&mut w, &Itemset::new(vec![5]));
        let bytes = w.into_bytes();
        assert!(matches!(read_itemset(&mut Reader::new(&bytes), 5), Err(DecodeError::Corrupt(_))));
        // Oversized count refuses before allocating.
        let mut w = Writer::new();
        w.varint(u64::MAX);
        let bytes = w.into_bytes();
        assert!(matches!(read_itemset(&mut Reader::new(&bytes), 8), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.f64_bits(-0.125);
        w.varint(0);
        w.varint(127);
        w.varint(128);
        w.varint(u64::MAX);
        w.varint_i64(-1);
        w.varint_i64(i64::MIN);
        w.words(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64_bits().unwrap(), -0.125);
        assert_eq!(r.varint().unwrap(), 0);
        assert_eq!(r.varint().unwrap(), 127);
        assert_eq!(r.varint().unwrap(), 128);
        assert_eq!(r.varint().unwrap(), u64::MAX);
        assert_eq!(r.varint_i64().unwrap(), -1);
        assert_eq!(r.varint_i64().unwrap(), i64::MIN);
        assert_eq!(r.words(3).unwrap(), vec![1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reads_refuse_truncation() {
        let mut r = Reader::new(&[0xFF; 3]);
        assert!(matches!(r.u64(), Err(DecodeError::Truncated { needed: 8, available: 3 })));
        // A varint of nothing but continuation bytes is truncated, then
        // (when long enough) corrupt.
        let mut r = Reader::new(&[0x80, 0x80]);
        assert!(matches!(r.varint(), Err(DecodeError::Truncated { .. })));
        let all_cont = [0x80u8; 11];
        let mut r = Reader::new(&all_cont);
        assert!(matches!(r.varint(), Err(DecodeError::Corrupt(_))));
        // 10th byte carrying more than the u64's top bit overflows.
        let mut overflow = [0xFFu8; 9].to_vec();
        overflow.push(0x02);
        let mut r = Reader::new(&overflow);
        assert!(matches!(r.varint(), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn frame_roundtrips_and_refuses_each_attack() {
        let body = b"sketch body bytes";
        let frame = encode_frame(3, 1, body);
        let (got, consumed) = decode_frame(&frame, 3, 1).expect("well-formed frame");
        assert_eq!(got, body);
        assert_eq!(consumed, frame.len());

        // Truncation at every prefix length errors, never panics.
        for cut in 0..frame.len() {
            assert!(decode_frame(&frame[..cut], 3, 1).is_err(), "prefix {cut} decoded");
        }
        // Bad magic.
        let mut bad = frame.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(decode_frame(&bad, 3, 1), Err(DecodeError::BadMagic(_))));
        // Wrong kind.
        assert!(matches!(
            decode_frame(&frame, 4, 1),
            Err(DecodeError::WrongKind { expected: 4, got: 3 })
        ));
        // Future version (and the reserved version 0) refuse before the
        // checksum is consulted.
        let mut future = frame.clone();
        future[6] = 9;
        assert!(matches!(
            decode_frame(&future, 3, 1),
            Err(DecodeError::UnsupportedVersion { kind: 3, got: 9, supported: 1 })
        ));
        let mut zero = frame.clone();
        zero[6] = 0;
        assert!(matches!(decode_frame(&zero, 3, 1), Err(DecodeError::UnsupportedVersion { .. })));
        // A flipped body bit fails the checksum.
        let mut flipped = frame.clone();
        flipped[10] ^= 0x01;
        assert!(matches!(decode_frame(&flipped, 3, 1), Err(DecodeError::ChecksumMismatch { .. })));
        // Trailing bytes are visible to the caller via `consumed`.
        let mut long = frame.clone();
        long.extend_from_slice(b"junk");
        let (_, consumed) = decode_frame(&long, 3, 1).expect("frame itself is intact");
        assert_eq!(long.len() - consumed, 4);
    }

    #[test]
    fn database_fragment_roundtrips_and_validates() {
        let mut rng = ifs_util::Rng64::seeded(77);
        for (n, d) in [(0usize, 5usize), (3, 0), (7, 64), (13, 65), (20, 130)] {
            let db = crate::generators::uniform(n, d, 0.4, &mut rng);
            let mut w = Writer::new();
            write_database(&mut w, &db);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(read_database(&mut r).expect("roundtrip"), db, "n={n} d={d}");
            assert_eq!(r.remaining(), 0);
        }
        // Nonzero padding bits are corrupt, not silently accepted.
        let db = Database::zeros(2, 10);
        let mut w = Writer::new();
        write_database(&mut w, &db);
        let mut bytes = w.into_bytes();
        let last = bytes.len() - 1;
        bytes[last] = 0x80; // bit 63 of row 1's only word: past column 10
        let mut r = Reader::new(&bytes);
        assert!(matches!(read_database(&mut r), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn peek_frame_reports_tags_without_judging_kind() {
        let frame = encode_frame(42, 9, b"opaque body");
        let info = peek_frame(&frame).expect("well-formed frame peeks");
        assert_eq!(info, FrameInfo { kind: 42, version: 9, body_len: 11, frame_len: frame.len() });
        // Trailing bytes are the caller's business, as in decode_frame.
        let mut long = frame.clone();
        long.extend_from_slice(b"tail");
        assert_eq!(peek_frame(&long).expect("prefix intact").frame_len, frame.len());
        // Truncation at every prefix refuses typed.
        for cut in 0..frame.len() {
            assert!(peek_frame(&frame[..cut]).is_err(), "prefix {cut} peeked");
        }
        // Magic, checksum, and the reserved version 0 still refuse.
        let mut bad = frame.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(peek_frame(&bad), Err(DecodeError::BadMagic(_))));
        let mut flipped = frame.clone();
        flipped[10] ^= 0x01;
        assert!(matches!(peek_frame(&flipped), Err(DecodeError::ChecksumMismatch { .. })));
        let mut zero = frame;
        zero[6] = 0;
        zero[7] = 0;
        assert!(matches!(peek_frame(&zero), Err(DecodeError::UnsupportedVersion { got: 0, .. })));
    }

    #[test]
    fn compressed_database_fragment_roundtrips() {
        let mut rng = ifs_util::Rng64::seeded(0xC0DE);
        for (n, d, density) in [
            (0usize, 5usize, 0.5),
            (3, 0, 0.0),
            (7, 64, 0.05),
            (13, 65, 0.9),
            (50, 130, 0.02),
            (40, 33, 0.5),
        ] {
            let db = crate::generators::uniform(n, d, density, &mut rng);
            let mut w = Writer::new();
            write_database_compressed(&mut w, &db);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(
                read_database_compressed(&mut r).expect("roundtrip"),
                db,
                "n={n} d={d} density={density}"
            );
            assert_eq!(r.remaining(), 0);
        }
        // Run-length: identical rows collapse to one group, so an all-equal
        // database costs O(1) groups instead of O(n).
        let db = Database::from_rows(100, &vec![vec![2u32, 7]; 500]);
        let mut w = Writer::new();
        write_database_compressed(&mut w, &db);
        let bytes = w.into_bytes();
        assert!(bytes.len() < 16, "500 identical rows must collapse, got {} bytes", bytes.len());
        let mut r = Reader::new(&bytes);
        assert_eq!(read_database_compressed(&mut r).expect("roundtrip"), db);
    }

    #[test]
    fn compressed_database_refuses_adversarial_groups() {
        fn decode(bytes: &[u8]) -> Result<Database, DecodeError> {
            read_database_compressed(&mut Reader::new(bytes))
        }
        // A zero-repeat group.
        let mut w = Writer::new();
        w.varint(2); // rows
        w.varint(8); // dims
        w.varint(0); // repeat = 0
        assert!(matches!(decode(&w.into_bytes()), Err(DecodeError::Corrupt(_))));
        // Groups overrunning the declared row count.
        let mut w = Writer::new();
        w.varint(1);
        w.varint(8);
        w.varint(5); // repeat = 5 > rows = 1
        assert!(matches!(decode(&w.into_bytes()), Err(DecodeError::Corrupt(_))));
        // An unknown mode byte.
        let mut w = Writer::new();
        w.varint(1);
        w.varint(8);
        w.varint(1);
        w.u8(7);
        assert!(matches!(decode(&w.into_bytes()), Err(DecodeError::Corrupt(_))));
        // Nonzero padding bits in a raw row.
        let mut w = Writer::new();
        w.varint(1);
        w.varint(10);
        w.varint(1);
        w.u8(1);
        w.words(&[1u64 << 63]);
        assert!(matches!(decode(&w.into_bytes()), Err(DecodeError::Corrupt(_))));
        // A decompression bomb: tiny frame, terabyte-scale declared shape.
        let mut w = Writer::new();
        w.varint(1 << 40); // rows
        w.varint(1 << 12); // dims
        w.varint(1 << 40);
        w.u8(0);
        w.varint(0);
        assert!(matches!(decode(&w.into_bytes()), Err(DecodeError::Corrupt(_))));
        // Truncation mid-group is typed, never a panic.
        let db = crate::generators::uniform(9, 40, 0.3, &mut ifs_util::Rng64::seeded(4));
        let mut w = Writer::new();
        write_database_compressed(&mut w, &db);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn fnv_golden() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }
}
