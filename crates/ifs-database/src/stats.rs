//! Database statistics: the per-column and per-row summaries the examples
//! and experiment harness report alongside sketch measurements.

use crate::{Database, Itemset};

/// Per-column supports (number of rows with a 1 in each column), read off
/// the shared columnar view.
pub fn column_supports(db: &Database) -> Vec<usize> {
    let store = db.columns();
    (0..db.dims()).map(|c| store.item_support(c)).collect()
}

/// Per-column frequencies.
pub fn column_frequencies(db: &Database) -> Vec<f64> {
    let n = db.rows().max(1) as f64;
    column_supports(db).into_iter().map(|s| s as f64 / n).collect()
}

/// Histogram of row weights (number of 1s per row); index = weight.
pub fn row_weight_histogram(db: &Database) -> Vec<usize> {
    let mut hist = vec![0usize; db.dims() + 1];
    for r in 0..db.rows() {
        hist[db.matrix().row_weight(r)] += 1;
    }
    hist
}

/// Mean row weight (mean transaction size in mining terms).
pub fn mean_row_weight(db: &Database) -> f64 {
    if db.rows() == 0 {
        return 0.0;
    }
    db.matrix().total_weight() as f64 / db.rows() as f64
}

/// Number of *distinct* rows — the quantity that bounds how much any
/// row-based sketch can ever need to store.
pub fn distinct_rows(db: &Database) -> usize {
    let mut seen = std::collections::HashSet::new();
    for r in 0..db.rows() {
        seen.insert(db.matrix().row_words(r).to_vec());
    }
    seen.len()
}

/// The lift (observed/expected co-occurrence under independence) of a pair
/// of columns; 1.0 means independent, > 1 positively correlated.
pub fn pair_lift(db: &Database, a: u32, b: u32) -> f64 {
    let fa = db.frequency(&Itemset::singleton(a));
    let fb = db.frequency(&Itemset::singleton(b));
    if fa == 0.0 || fb == 0.0 {
        return 0.0;
    }
    db.frequency(&Itemset::new(vec![a, b])) / (fa * fb)
}

/// Number of ε-frequent k-itemsets, counted exactly by exhaustive scan —
/// the quantity the paper's §1.1.1 warns can be exponential. Callers keep
/// `C(d, k)` small.
pub fn frequent_itemset_count(db: &Database, k: usize, epsilon: f64) -> u64 {
    ifs_util::combin::Combinations::new(db.dims() as u32, k as u32)
        .filter(|comb| db.frequency(&Itemset::new(comb.clone())) >= epsilon)
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use ifs_util::Rng64;

    fn toy() -> Database {
        Database::from_rows(4, &[vec![0, 1], vec![0, 1], vec![0], vec![3]])
    }

    #[test]
    fn supports_and_frequencies() {
        let db = toy();
        assert_eq!(column_supports(&db), vec![3, 2, 0, 1]);
        assert_eq!(column_frequencies(&db), vec![0.75, 0.5, 0.0, 0.25]);
    }

    #[test]
    fn weight_histogram_sums_to_rows() {
        let db = toy();
        let hist = row_weight_histogram(&db);
        assert_eq!(hist.iter().sum::<usize>(), db.rows());
        assert_eq!(hist[2], 2); // two rows of weight 2
        assert_eq!(hist[1], 2);
        assert!((mean_row_weight(&db) - 6.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_rows_deduplicates() {
        let db = toy();
        assert_eq!(distinct_rows(&db), 3);
        let rep = db.repeat_rows(5);
        assert_eq!(distinct_rows(&rep), 3);
    }

    #[test]
    fn lift_detects_correlation() {
        let db = toy();
        // Columns 0 and 1 co-occur more than independence predicts:
        // f01 = 0.5, f0*f1 = 0.375 -> lift 4/3.
        assert!((pair_lift(&db, 0, 1) - 4.0 / 3.0).abs() < 1e-12);
        // Column 2 never fires: lift 0 by convention.
        assert_eq!(pair_lift(&db, 0, 2), 0.0);
    }

    #[test]
    fn lift_near_one_for_independent_data() {
        let mut rng = Rng64::seeded(55);
        let db = generators::uniform(20_000, 4, 0.5, &mut rng);
        let lift = pair_lift(&db, 0, 1);
        assert!((lift - 1.0).abs() < 0.05, "lift {lift}");
    }

    #[test]
    fn frequent_count_matches_manual() {
        let db = toy();
        // ε=0.5 frequent 1-itemsets: {0}, {1}.
        assert_eq!(frequent_itemset_count(&db, 1, 0.5), 2);
        // ε=0.5 frequent 2-itemsets: {0,1}.
        assert_eq!(frequent_itemset_count(&db, 2, 0.5), 1);
    }

    #[test]
    fn empty_database_stats() {
        let db = Database::zeros(0, 3);
        assert_eq!(mean_row_weight(&db), 0.0);
        assert_eq!(distinct_rows(&db), 0);
        assert_eq!(column_frequencies(&db), vec![0.0, 0.0, 0.0]);
    }
}
