//! Versioned sketch snapshots: every sketch is a decodable byte string
//! (DESIGN.md §10).
//!
//! The paper's central quantity is `|S(n, d, k, ε, δ)|` — the size *in
//! bits* of the summary. Before this layer, only the database had a wire
//! format and every sketch's `size_bits()` was hand-maintained arithmetic
//! that nothing could verify. A [`Snapshot`] makes the measurement real:
//! each sketch encodes itself into a self-describing frame (built on
//! [`ifs_database::codec`]), `size_bits()` **is** the encoded length, and
//! the offline-build / online-serve split the system aims at — build
//! sharded, snapshot, ship bytes to a serving tier, reload, answer — falls
//! out (see `examples/snapshot_serving.rs`).
//!
//! Contracts, enforced by `tests/snapshot_roundtrip.rs`:
//!
//! * **Round-trip identity** — `from_snapshot(snapshot_bytes())` is `==`
//!   to the original and answers every query bit-identically, at every
//!   thread count. (Execution state like the [`Parallel`](crate::Parallel)
//!   thread knob is *not* part of a sketch's identity and is not
//!   serialized; decoded sketches start serial.)
//! * **Measured size** — `size_bits() == 8 · snapshot_bytes().len()` for
//!   every snapshot-backed sketch, so the E-series size columns are
//!   measurements of real byte strings, not bookkeeping.
//! * **Typed refusal** — truncation, wrong magic, version skew, checksum
//!   failures, and trailing garbage decode to the right
//!   [`DecodeError`] variant; no panic on any byte string.
//!
//! The kind registry (frame `kind` tags) lives here so collisions are
//! impossible across crates: `1 Subsample`, `2 ReleaseDb`,
//! `3 ReleaseAnswersIndicator`, `4 ReleaseAnswersEstimator`,
//! `5 CountMinSketch`, `6 CountSketch`, `7 SubsampleBuilder`.

use ifs_database::codec::{decode_frame, encode_frame};
pub use ifs_database::codec::{DecodeError, Reader, Writer};

/// Frame kind tag of [`Subsample`](crate::Subsample).
pub const KIND_SUBSAMPLE: u16 = 1;
/// Frame kind tag of [`ReleaseDb`](crate::ReleaseDb).
pub const KIND_RELEASE_DB: u16 = 2;
/// Frame kind tag of [`ReleaseAnswersIndicator`](crate::ReleaseAnswersIndicator).
pub const KIND_RELEASE_ANSWERS_INDICATOR: u16 = 3;
/// Frame kind tag of [`ReleaseAnswersEstimator`](crate::ReleaseAnswersEstimator).
pub const KIND_RELEASE_ANSWERS_ESTIMATOR: u16 = 4;
/// Frame kind tag of `ifs_streaming::CountMinSketch`.
pub const KIND_COUNT_MIN: u16 = 5;
/// Frame kind tag of `ifs_streaming::CountSketch`.
pub const KIND_COUNT_SKETCH: u16 = 6;
/// Frame kind tag of [`SubsampleBuilder`](crate::SubsampleBuilder) — the
/// partial build, snapshotted mid-stream so ingestion can migrate across
/// processes and keep merging bit-identically (DESIGN.md §9).
pub const KIND_SUBSAMPLE_BUILDER: u16 = 7;

/// A sketch (or partial build) with a versioned, self-describing wire
/// format.
///
/// Implementors provide the body codec ([`encode_body`](Snapshot::encode_body)
/// / [`decode_body`](Snapshot::decode_body)) plus a kind tag and version;
/// the framing — magic, kind, version, length, checksum — is shared, so
/// every sketch inherits the same adversarial-input behavior from one
/// implementation.
pub trait Snapshot: Sized {
    /// This type's tag in the kind registry (module docs).
    const KIND: u16;

    /// Newest body-layout version this build reads and the one it writes.
    /// Bump when the body layout changes; decoders refuse versions they do
    /// not know with [`DecodeError::UnsupportedVersion`].
    const VERSION: u16 = 1;

    /// Encodes the kind-specific body (no framing) into `w`.
    fn encode_body(&self, w: &mut Writer);

    /// Decodes a body written by [`encode_body`](Snapshot::encode_body) at
    /// version `version` (≤ [`VERSION`](Snapshot::VERSION); the frame layer
    /// has already refused anything newer). Must consume exactly the body.
    fn decode_body(r: &mut Reader, version: u16) -> Result<Self, DecodeError>;

    /// Appends the complete framed snapshot to `out`.
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut body = Writer::new();
        self.encode_body(&mut body);
        out.extend_from_slice(&encode_frame(Self::KIND, Self::VERSION, &body.into_bytes()));
    }

    /// The complete framed snapshot as a fresh byte vector. Its length in
    /// bits is the sketch's `size_bits()`.
    fn snapshot_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decodes one snapshot from the front of `bytes`, returning the sketch
    /// and the number of bytes consumed. Trailing bytes are *left* for the
    /// caller — this is the entry point for streams of concatenated frames.
    fn decode_from(bytes: &[u8]) -> Result<(Self, usize), DecodeError> {
        let (body, consumed) = decode_frame(bytes, Self::KIND, Self::VERSION)?;
        // The frame version, re-read from the validated prefix so
        // decode_body can branch on layout once more than one version
        // exists; decode_frame guarantees it is in 1..=VERSION.
        let version = u16::from_le_bytes([bytes[6], bytes[7]]);
        let mut body_reader = Reader::new(body);
        let decoded = Self::decode_body(&mut body_reader, version)?;
        if body_reader.remaining() != 0 {
            return Err(DecodeError::Corrupt(format!(
                "{} unconsumed bytes inside the snapshot body",
                body_reader.remaining()
            )));
        }
        Ok((decoded, consumed))
    }

    /// Decodes exactly one snapshot spanning all of `bytes`; surplus bytes
    /// are refused with [`DecodeError::TrailingBytes`].
    fn from_snapshot(bytes: &[u8]) -> Result<Self, DecodeError> {
        let (decoded, consumed) = Self::decode_from(bytes)?;
        if consumed != bytes.len() {
            return Err(DecodeError::TrailingBytes { extra: bytes.len() - consumed });
        }
        Ok(decoded)
    }

    /// Encoded length in bits — what snapshot-backed sketches report as
    /// `size_bits()`, making the paper's `|S|` a measured quantity.
    fn snapshot_bits(&self) -> u64 {
        self.snapshot_bytes().len() as u64 * 8
    }
}
