//! Streaming ingestion: fold-and-merge sketch builds (DESIGN.md §9).
//!
//! The paper defines its sketches over a fixed database, but the lower
//! bounds are motivated by streaming and distributed summarization — and
//! the Count-Min/Count-Sketch literature treats sketches as fold-and-merge
//! objects. This module is the build-side counterpart of the §7/§8 query
//! contracts: **streaming and merging are execution strategies, never
//! approximations.** A one-shot build is *re-expressed* as a fold over the
//! rows, so a serially folded build, a build streamed in arbitrary batches,
//! and a sharded build merged from per-shard partials are all bit-identical
//! — by construction, not by accident.
//!
//! Two traits carry the contract:
//!
//! * [`StreamingBuild`] — `begin(dims, seed)` / `observe_row(&row)` /
//!   `finish() → sketch`. Rows arrive as [`Itemset`]s (a row's set of
//!   1-attributes); `finish` consumes the builder.
//! * [`MergeableSketch`] — `merge(&mut self, other)` combines two partial
//!   builds (or, for sketches like `ReleaseDb` and the plain Count-Min /
//!   Count-Sketch counters, two finished sketches). Merging is always
//!   **associative**; it is **commutative** only where a sketch's docs
//!   promise it (counter-wise adds are, row-order-preserving builders are
//!   not). Incompatible or order-violating merges are *refused* with a
//!   [`MergeError`] rather than silently producing a different sketch.
//!
//! Which in-repo sketches are mergeable, and how, is tabulated in
//! DESIGN.md §9; constructions that are inherently offline (the quantized
//! `ReleaseAnswers*` stores) refuse at the type level by not implementing
//! [`MergeableSketch`] on the finished sketch — only their *builders*
//! (which still hold raw supports) merge.

use ifs_database::{Database, Itemset};
use ifs_util::threads::parallel_map_indexed;

/// Row-count granularity at which partial builds align: the same constant
/// as the §8 query shards, so a sharded build's merge boundaries coincide
/// with the storage engine's shard boundaries.
pub use ifs_database::SHARD_ROWS as INGEST_CHUNK_ROWS;

/// Why two partial builds (or sketches) refused to merge.
///
/// A refusal is part of the correctness contract: every accepted merge is
/// bit-identical to the one-pass build over the concatenated rows, so any
/// combination that *cannot* honor that promise must error instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// Structural parameters differ (dimensions, seeds, widths, ε, …); the
    /// string names the mismatch.
    Incompatible(String),
    /// The builders do not cover adjacent row ranges in order: `other` was
    /// expected to start at global row `expected` but starts at `got`.
    /// Order-sensitive builders (row samplers, database concatenation)
    /// refuse out-of-order merges instead of silently permuting rows.
    NonContiguous {
        /// Global row index at which `other` was expected to start.
        expected: u64,
        /// Global row index at which `other` actually starts.
        got: u64,
    },
    /// The construction is inherently order-dependent or offline, so *no*
    /// merge can be bit-identical to a one-pass build (e.g. Count-Min with
    /// conservative update); the string explains why.
    Unmergeable(String),
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Incompatible(what) => write!(f, "incompatible merge: {what}"),
            MergeError::NonContiguous { expected, got } => write!(
                f,
                "non-contiguous merge: other partial build starts at row {got}, expected {expected}"
            ),
            MergeError::Unmergeable(why) => write!(f, "unmergeable construction: {why}"),
        }
    }
}

impl std::error::Error for MergeError {}

/// A sketch (or partial build) that can absorb another of the same type.
///
/// Contract: if `a`, `b`, `c` are partial builds over adjacent row ranges
/// (in order), then `a.merge(b)?; a.merge(c)?` and
/// `b.merge(c)?; a.merge(b)?` finish to the same bits as the one-pass
/// build over the full range — merging is associative. Commutativity is
/// promised only by implementations whose docs say so.
pub trait MergeableSketch: Sized {
    /// Absorbs `other` into `self`. On `Err`, `self` is unchanged.
    fn merge(&mut self, other: Self) -> Result<(), MergeError>;
}

/// A single-pass, incremental sketch build over a stream of database rows.
///
/// The one-shot constructors of every in-repo sketch are re-expressed as
/// `begin` + `observe_row` per row + `finish`, which is what makes
/// streamed and one-shot builds bit-identical *by construction* rather
/// than by test alone (the same move §7 makes for batched queries).
pub trait StreamingBuild: Sized {
    /// Build-time parameters that are not `(dims, seed)` — sample counts,
    /// ε, sketch widths.
    type Params: Clone;

    /// The finished sketch type.
    type Output;

    /// Starts a partial build whose first observed row has global index
    /// `row_offset` — the entry point for per-shard builds that will be
    /// [merged](MergeableSketch) back in row order. Builders whose merge
    /// is commutative may ignore the offset.
    fn begin_at(dims: usize, seed: u64, params: &Self::Params, row_offset: u64) -> Self;

    /// Starts a build at the head of the stream (`row_offset = 0`).
    fn begin(dims: usize, seed: u64, params: &Self::Params) -> Self {
        Self::begin_at(dims, seed, params, 0)
    }

    /// Folds one arriving row (its set of 1-attributes) into the build.
    fn observe_row(&mut self, row: &Itemset);

    /// Number of rows folded into this partial build so far.
    fn rows_seen(&self) -> u64;

    /// Completes the build. Panics if this partial build does not start at
    /// the stream head (merge partials in row order first).
    fn finish(self) -> Self::Output;

    /// Convenience: folds every row of `rows` in order.
    fn observe_rows<'a, I: IntoIterator<Item = &'a Itemset>>(&mut self, rows: I) {
        for row in rows {
            self.observe_row(row);
        }
    }
}

/// One-pass serial fold of an entire database: `begin`, observe every row
/// in order, `finish`. This *is* the definition of the one-shot build for
/// every streaming-enabled sketch, so it is the reference the merged and
/// batched paths are measured against.
pub fn fold_database<B: StreamingBuild>(db: &Database, seed: u64, params: &B::Params) -> B::Output {
    let mut builder = B::begin(db.dims(), seed, params);
    for r in 0..db.rows() {
        builder.observe_row(&db.row_itemset(r));
    }
    builder.finish()
}

/// Sharded build: split the rows into [`INGEST_CHUNK_ROWS`]-row chunks,
/// fold each chunk into its own partial build on the §8 work queue
/// (`threads` workers racing for chunk indices), then merge the partials
/// in row order and finish.
///
/// The chunk layout is a function of the row count alone — `threads`
/// decides how many workers drain the queue, never where boundaries fall —
/// and every accepted merge is bit-identical to the one-pass fold, so the
/// output equals [`fold_database`] at every thread count.
///
/// Panics if a merge is refused; chunked partials of one database are
/// compatible and contiguous by construction, so a refusal here is an
/// implementation bug, not an input error.
pub fn build_sharded<B>(db: &Database, seed: u64, params: &B::Params, threads: usize) -> B::Output
where
    B: StreamingBuild + MergeableSketch + Send,
    B::Params: Sync,
{
    let n = db.rows();
    let chunks = n.div_ceil(INGEST_CHUNK_ROWS);
    if chunks <= 1 {
        return fold_database::<B>(db, seed, params);
    }
    let partials = parallel_map_indexed(chunks, threads, |i| {
        let start = i * INGEST_CHUNK_ROWS;
        let end = (start + INGEST_CHUNK_ROWS).min(n);
        let mut b = B::begin_at(db.dims(), seed, params, start as u64);
        for r in start..end {
            b.observe_row(&db.row_itemset(r));
        }
        b
    });
    let mut iter = partials.into_iter();
    let mut head = iter.next().expect("chunks >= 1");
    for partial in iter {
        head.merge(partial).expect("chunked partials merge by construction");
    }
    head.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_error_messages_are_descriptive() {
        let e = MergeError::NonContiguous { expected: 64, got: 0 };
        let s = e.to_string();
        assert!(s.contains("starts at row 0") && s.contains("expected 64"), "{s}");
        assert!(MergeError::Incompatible("width 8 vs 16".into()).to_string().contains("width"));
        assert!(MergeError::Unmergeable("conservative update".into())
            .to_string()
            .contains("conservative"));
    }

    /// A minimal order-insensitive builder exercising the trait plumbing
    /// (fold == sharded at every thread count) without any sketch logic.
    #[derive(Debug, PartialEq)]
    struct WeightSum {
        dims: usize,
        weight: u64,
        rows: u64,
    }

    impl StreamingBuild for WeightSum {
        type Params = ();
        type Output = (u64, u64);

        fn begin_at(dims: usize, _seed: u64, _params: &(), _row_offset: u64) -> Self {
            Self { dims, weight: 0, rows: 0 }
        }

        fn observe_row(&mut self, row: &Itemset) {
            assert!(row.max_item().is_none_or(|m| (m as usize) < self.dims));
            self.weight += row.len() as u64;
            self.rows += 1;
        }

        fn rows_seen(&self) -> u64 {
            self.rows
        }

        fn finish(self) -> (u64, u64) {
            (self.weight, self.rows)
        }
    }

    impl MergeableSketch for WeightSum {
        fn merge(&mut self, other: Self) -> Result<(), MergeError> {
            if other.dims != self.dims {
                return Err(MergeError::Incompatible(format!(
                    "dims {} vs {}",
                    self.dims, other.dims
                )));
            }
            self.weight += other.weight;
            self.rows += other.rows;
            Ok(())
        }
    }

    #[test]
    fn sharded_build_equals_serial_fold() {
        let mut rng = ifs_util::Rng64::seeded(0xF01D);
        let db = ifs_database::generators::uniform(1000, 9, 0.3, &mut rng);
        let serial = fold_database::<WeightSum>(&db, 0, &());
        assert_eq!(serial.1, 1000);
        for threads in [1usize, 2, 4] {
            assert_eq!(build_sharded::<WeightSum>(&db, 0, &(), threads), serial);
        }
    }

    #[test]
    fn observe_rows_folds_in_order() {
        let rows = vec![Itemset::new(vec![0, 1]), Itemset::empty(), Itemset::singleton(2)];
        let mut b = WeightSum::begin(3, 0, &());
        b.observe_rows(&rows);
        assert_eq!(b.rows_seen(), 3);
        assert_eq!(b.finish(), (3, 3));
    }
}
