//! Sketch parameters `(k, ε, δ)` and the four guarantee variants.

/// Which of the paper's four sketching problems a sketch is built for.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Guarantee {
    /// Definition 1: with probability 1−δ, *every* `k`-itemset's threshold
    /// bit is correct.
    ForAllIndicator,
    /// Definition 2: with probability 1−δ, *every* `k`-itemset's frequency is
    /// estimated within ±ε.
    ForAllEstimator,
    /// Definition 3: each itemset's threshold bit is correct with probability
    /// 1−δ individually.
    ForEachIndicator,
    /// Definition 4: each itemset's frequency is within ±ε with probability
    /// 1−δ individually.
    ForEachEstimator,
}

impl Guarantee {
    /// All four variants, in definition order.
    pub const ALL: [Guarantee; 4] = [
        Guarantee::ForAllIndicator,
        Guarantee::ForAllEstimator,
        Guarantee::ForEachIndicator,
        Guarantee::ForEachEstimator,
    ];

    /// True for the two "for all" contracts.
    pub fn is_for_all(self) -> bool {
        matches!(self, Guarantee::ForAllIndicator | Guarantee::ForAllEstimator)
    }

    /// True for the two estimator contracts.
    pub fn is_estimator(self) -> bool {
        matches!(self, Guarantee::ForAllEstimator | Guarantee::ForEachEstimator)
    }

    /// Short human name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Guarantee::ForAllIndicator => "forall-indicator",
            Guarantee::ForAllEstimator => "forall-estimator",
            Guarantee::ForEachIndicator => "foreach-indicator",
            Guarantee::ForEachEstimator => "foreach-estimator",
        }
    }
}

impl std::fmt::Display for Guarantee {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The input-parameter triple `(k, ε, δ)` of Definitions 1–4.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SketchParams {
    /// Itemset cardinality the sketch must answer.
    pub k: usize,
    /// Precision / threshold parameter ε ∈ (0, 1).
    pub epsilon: f64,
    /// Failure probability δ ∈ (0, 1).
    pub delta: f64,
}

impl SketchParams {
    /// Creates and validates a parameter triple.
    ///
    /// # Panics
    /// If `k == 0`, `ε ∉ (0, 1)`, or `δ ∉ (0, 1)`.
    pub fn new(k: usize, epsilon: f64, delta: f64) -> Self {
        assert!(k >= 1, "itemset size k must be >= 1");
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1), got {epsilon}");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1), got {delta}");
        Self { k, epsilon, delta }
    }

    /// The indicator decision threshold used by estimator-backed indicators:
    /// the midpoint `3ε/4` of the `[ε/2, ε]` dead zone. An estimator accurate
    /// to ±ε/4 thresholded here satisfies Definition 1/3.
    pub fn indicator_threshold(&self) -> f64 {
        0.75 * self.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_params() {
        let p = SketchParams::new(3, 0.1, 0.05);
        assert_eq!(p.k, 3);
        assert!((p.indicator_threshold() - 0.075).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        SketchParams::new(2, 1.5, 0.1);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn rejects_bad_delta() {
        SketchParams::new(2, 0.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn rejects_zero_k() {
        SketchParams::new(0, 0.5, 0.1);
    }

    #[test]
    fn guarantee_classification() {
        assert!(Guarantee::ForAllEstimator.is_for_all());
        assert!(Guarantee::ForAllEstimator.is_estimator());
        assert!(!Guarantee::ForEachIndicator.is_for_all());
        assert!(!Guarantee::ForEachIndicator.is_estimator());
        assert_eq!(Guarantee::ALL.len(), 4);
    }
}
