//! The query-side contracts shared by every sketch.

use ifs_database::Itemset;

/// Anything with a measurable summary size, in bits.
///
/// The paper's space complexity `|S(n,d,k,ε,δ)|` (Definition 5) is the
/// maximum of this over databases; experiments report the realized size.
pub trait Sketch {
    /// Size of the serialized summary in bits.
    fn size_bits(&self) -> u64;
}

/// Query procedure of an **estimator** sketch: returns `Q(S, T) ∈ [0, 1]`.
pub trait FrequencyEstimator: Sketch {
    /// Estimate of `f_T(D)`.
    fn estimate(&self, itemset: &Itemset) -> f64;

    /// Estimates for a whole query log, in order.
    ///
    /// Contract: element `i` equals `self.estimate(&itemsets[i])` exactly —
    /// batching is an execution strategy, never an approximation. The
    /// default delegates to [`FrequencyEstimator::estimate`] so external
    /// implementations keep compiling; sketches backed by a database
    /// override it to run on the shared columnar layer (DESIGN.md §7).
    fn estimate_batch(&self, itemsets: &[Itemset]) -> Vec<f64> {
        itemsets.iter().map(|t| self.estimate(t)).collect()
    }
}

/// Query procedure of an **indicator** sketch: returns the threshold bit.
pub trait FrequencyIndicator: Sketch {
    /// `true` must be returned when `f_T > ε`; `false` when `f_T < ε/2`
    /// (either answer is acceptable in between).
    fn is_frequent(&self, itemset: &Itemset) -> bool;

    /// Threshold bits for a whole query log, in order.
    ///
    /// Contract: element `i` equals `self.is_frequent(&itemsets[i])`
    /// exactly; see [`FrequencyEstimator::estimate_batch`] for the batching
    /// policy.
    fn is_frequent_batch(&self, itemsets: &[Itemset]) -> Vec<bool> {
        itemsets.iter().map(|t| self.is_frequent(t)).collect()
    }
}

/// The thread-count knob of the parallel execution layer (DESIGN.md §8).
///
/// Sketches whose batched query paths can run on the sharded columnar
/// engine implement this; the knob defaults to 1 (serial) and is purely an
/// execution hint: answers are **required to be bit-identical** at every
/// thread count (enforced by `tests/sharded_queries.rs`). Wrappers like
/// [`EstimatorAsIndicator`] forward the knob to their inner sketch.
pub trait Parallel {
    /// Sets the number of worker threads used by the batched query paths
    /// (`0` and `1` both mean serial).
    fn set_threads(&mut self, threads: usize);

    /// The current thread count (1 = serial).
    fn threads(&self) -> usize;

    /// Builder-style convenience: `sketch.with_threads(4)`.
    fn with_threads(mut self, threads: usize) -> Self
    where
        Self: Sized,
    {
        self.set_threads(threads);
        self
    }
}

/// Adapter: any estimator answers indicator queries by thresholding at the
/// dead-zone midpoint `3ε/4`.
///
/// If the estimator's additive error is at most `ε/4`, the adapter meets the
/// indicator contract exactly: `f_T > ε` implies an estimate `> 3ε/4`, and
/// `f_T < ε/2` implies an estimate `< 3ε/4`.
pub struct EstimatorAsIndicator<E> {
    inner: E,
    threshold: f64,
}

impl<E: FrequencyEstimator> EstimatorAsIndicator<E> {
    /// Wraps `inner`, thresholding at `3ε/4` for the given ε.
    pub fn new(inner: E, epsilon: f64) -> Self {
        Self { inner, threshold: 0.75 * epsilon }
    }

    /// The wrapped estimator.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The decision threshold in use.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl<E: FrequencyEstimator> Sketch for EstimatorAsIndicator<E> {
    fn size_bits(&self) -> u64 {
        self.inner.size_bits()
    }
}

impl<E: FrequencyEstimator> FrequencyIndicator for EstimatorAsIndicator<E> {
    fn is_frequent(&self, itemset: &Itemset) -> bool {
        self.inner.estimate(itemset) >= self.threshold
    }

    /// One batched estimator pass, thresholded — so the adapter inherits
    /// whatever columnar execution the inner estimator provides.
    fn is_frequent_batch(&self, itemsets: &[Itemset]) -> Vec<bool> {
        self.inner.estimate_batch(itemsets).into_iter().map(|f| f >= self.threshold).collect()
    }
}

/// The adapter's thread knob is the inner estimator's: its batched path is
/// one `estimate_batch` call, so forwarding is the whole implementation.
impl<E: FrequencyEstimator + Parallel> Parallel for EstimatorAsIndicator<E> {
    fn set_threads(&mut self, threads: usize) {
        self.inner.set_threads(threads);
    }

    fn threads(&self) -> usize {
        self.inner.threads()
    }
}

/// Blanket impls so `&S` can be passed wherever a sketch is expected.
impl<S: Sketch + ?Sized> Sketch for &S {
    fn size_bits(&self) -> u64 {
        (**self).size_bits()
    }
}

impl<S: FrequencyEstimator + ?Sized> FrequencyEstimator for &S {
    fn estimate(&self, itemset: &Itemset) -> f64 {
        (**self).estimate(itemset)
    }

    fn estimate_batch(&self, itemsets: &[Itemset]) -> Vec<f64> {
        (**self).estimate_batch(itemsets)
    }
}

impl<S: FrequencyIndicator + ?Sized> FrequencyIndicator for &S {
    fn is_frequent(&self, itemset: &Itemset) -> bool {
        (**self).is_frequent(itemset)
    }

    fn is_frequent_batch(&self, itemsets: &[Itemset]) -> Vec<bool> {
        (**self).is_frequent_batch(itemsets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f64);

    impl Sketch for Fixed {
        fn size_bits(&self) -> u64 {
            64
        }
    }

    impl FrequencyEstimator for Fixed {
        fn estimate(&self, _: &Itemset) -> f64 {
            self.0
        }
    }

    #[test]
    fn adapter_thresholds_at_three_quarters_eps() {
        let t = Itemset::singleton(0);
        let eps = 0.2;
        assert!(EstimatorAsIndicator::new(Fixed(0.151), eps).is_frequent(&t));
        assert!(!EstimatorAsIndicator::new(Fixed(0.149), eps).is_frequent(&t));
    }

    #[test]
    fn adapter_preserves_size() {
        let a = EstimatorAsIndicator::new(Fixed(0.5), 0.1);
        assert_eq!(a.size_bits(), 64);
        assert!((a.threshold() - 0.075).abs() < 1e-12);
    }

    #[test]
    fn reference_blanket_impls() {
        let f = Fixed(0.9);
        fn takes_est(e: impl FrequencyEstimator) -> f64 {
            e.estimate(&Itemset::empty())
        }
        assert_eq!(takes_est(&f), 0.9);
    }

    #[test]
    fn default_batch_impls_delegate_to_scalar() {
        let f = Fixed(0.4);
        let queries = vec![Itemset::empty(), Itemset::singleton(1), Itemset::new(vec![2, 3])];
        assert_eq!(f.estimate_batch(&queries), vec![0.4; 3]);
        // Through a reference, too (the blanket impl must forward batches).
        fn batch_via_ref(e: impl FrequencyEstimator, q: &[Itemset]) -> Vec<f64> {
            e.estimate_batch(q)
        }
        assert_eq!(batch_via_ref(&f, &queries), vec![0.4; 3]);
        let ind = EstimatorAsIndicator::new(f, 0.5);
        assert_eq!(ind.is_frequent_batch(&queries), vec![true; 3]); // 0.4 >= 0.375
        fn ind_via_ref(i: impl FrequencyIndicator, q: &[Itemset]) -> Vec<bool> {
            i.is_frequent_batch(q)
        }
        assert_eq!(ind_via_ref(&ind, &queries), vec![true; 3]);
        assert_eq!(ind.is_frequent_batch(&[]), Vec::<bool>::new());
    }

    #[test]
    fn adapter_forwards_thread_knob_to_inner() {
        struct Knobbed(f64, usize);
        impl Sketch for Knobbed {
            fn size_bits(&self) -> u64 {
                64
            }
        }
        impl FrequencyEstimator for Knobbed {
            fn estimate(&self, _: &Itemset) -> f64 {
                self.0
            }
        }
        impl Parallel for Knobbed {
            fn set_threads(&mut self, threads: usize) {
                self.1 = threads.max(1);
            }
            fn threads(&self) -> usize {
                self.1
            }
        }
        let adapter = EstimatorAsIndicator::new(Knobbed(0.5, 1), 0.1).with_threads(4);
        assert_eq!(adapter.threads(), 4);
        assert_eq!(adapter.inner().1, 4);
    }

    #[test]
    fn adapter_batch_matches_scalar_at_threshold_boundary() {
        // Estimate exactly equal to the threshold: both paths must agree on
        // the >= comparison.
        let eps = 0.2;
        let ind = EstimatorAsIndicator::new(Fixed(0.15), eps);
        let t = Itemset::singleton(0);
        assert_eq!(ind.is_frequent_batch(std::slice::from_ref(&t)), vec![ind.is_frequent(&t)]);
    }
}
