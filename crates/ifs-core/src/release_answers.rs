//! RELEASE-ANSWERS (Definition 7): precompute and store every answer.
//!
//! There are `C(d, k)` possible `k`-itemset queries. The indicator variant
//! stores one bit per query; the estimator variant stores each frequency
//! quantized to a grid of spacing `2ε` (so the representation error is at
//! most ε), which costs `⌈log₂(1/(2ε) + 1)⌉` bits per query — the paper's
//! `O(C(d,k)·log(1/ε))`.
//!
//! Answers are indexed by the colexicographic rank of the itemset, so no
//! itemset identifiers are stored at all. Both variants are *deterministic*
//! and satisfy the For-All contracts with δ = 0.
//!
//! **Ingestion (DESIGN.md §9).** Both builds are expressed as single-pass
//! folds over the rows: the builders accumulate one raw *support counter*
//! per `k`-itemset, and thresholding (indicator) or quantization
//! (estimator) happens once at `finish`. Supports are plain sums, so the
//! **builders** merge counter-wise (commutatively); the **finished
//! sketches** do not implement `MergeableSketch` at all — a stored
//! threshold bit or quantized level cannot be re-aggregated across shards
//! without the raw counts, so the paper's construction is inherently
//! offline once finished, and the type system says so.

use crate::snapshot::{Snapshot, KIND_RELEASE_ANSWERS_ESTIMATOR, KIND_RELEASE_ANSWERS_INDICATOR};
use crate::streaming::{MergeError, MergeableSketch, StreamingBuild};
use crate::traits::{FrequencyEstimator, FrequencyIndicator, Sketch};
use ifs_database::codec::{self, DecodeError, Reader, Writer};
use ifs_database::{Database, Itemset};
use ifs_util::{bits, combin};

/// Shared header validation of the RELEASE-ANSWERS snapshot bodies: the
/// `(k, d, count)` triple must be a real query space with `count` equal to
/// `C(d, k)` — anything else cannot index answers by colex rank.
fn validate_answer_shape(k: usize, d: usize, count: u64) -> Result<(), DecodeError> {
    if k == 0 || k > d {
        return Err(DecodeError::Corrupt(format!("k={k} out of range for d={d}")));
    }
    // The checked binomial: a crafted (d, k) whose C(d,k) overflows u64
    // must be a typed refusal, not the panic `binomial_u64` reserves for
    // trusted build-side parameters.
    let expected = combin::binomial_checked(d as u64, k as u64)
        .filter(|&b| u64::try_from(b).is_ok())
        .ok_or_else(|| {
            DecodeError::Corrupt(format!("C({d},{k}) does not fit in u64; header is implausible"))
        })?;
    if u128::from(count) != expected {
        return Err(DecodeError::Corrupt(format!(
            "answer count {count} does not equal C({d},{k}) = {expected}"
        )));
    }
    Ok(())
}

/// Shared fold state of both RELEASE-ANSWERS builders: one raw support
/// counter per `k`-itemset (indexed by colex rank) plus the row count.
#[derive(Clone, Debug, PartialEq, Eq)]
struct SupportCounts {
    k: usize,
    d: usize,
    supports: Vec<u64>,
    rows: u64,
}

impl SupportCounts {
    fn begin(d: usize, k: usize) -> Self {
        assert!(k >= 1 && k <= d, "k={k} out of range for d={d}");
        let count = combin::binomial_u64(d as u64, k as u64);
        Self { k, d, supports: vec![0; count as usize], rows: 0 }
    }

    /// Folds one row: every `k`-subset of the row's items gains one
    /// support. `C(|row|, k)` increments — the same enumeration the
    /// streaming adapter uses, and usually far cheaper than the
    /// `O(C(d,k)·n)` subset tests of the historical per-itemset build.
    fn observe_row(&mut self, row: &Itemset) {
        let items = row.items();
        assert!(
            items.last().is_none_or(|&m| (m as usize) < self.d),
            "row has item out of range for {} attributes",
            self.d
        );
        self.rows += 1;
        if items.len() < self.k {
            return;
        }
        let mut subset = vec![0u32; self.k];
        for combo in combin::Combinations::new(items.len() as u32, self.k as u32) {
            for (slot, &i) in subset.iter_mut().zip(&combo) {
                *slot = items[i as usize];
            }
            self.supports[combin::rank_colex(&subset) as usize] += 1;
        }
    }

    /// Frequency of the itemset with colex rank `rank` (0 for an empty
    /// stream) — the same integer-over-integer division the row-major
    /// `Database::frequency` performs, so finished answers are
    /// bit-identical to the historical build.
    fn frequency(&self, rank: usize) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        self.supports[rank] as f64 / self.rows as f64
    }

    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if other.d != self.d || other.k != self.k {
            return Err(MergeError::Incompatible(format!(
                "ReleaseAnswers partials differ: (d, k) = ({}, {}) vs ({}, {})",
                self.d, self.k, other.d, other.k
            )));
        }
        for (mine, theirs) in self.supports.iter_mut().zip(&other.supports) {
            *mine += theirs;
        }
        self.rows += other.rows;
        Ok(())
    }
}

/// Indicator answers for all `k`-itemsets: one bit per itemset.
///
/// Deliberately **not** [`MergeableSketch`]: the stored bit `f_T ≥ ε`
/// cannot be re-aggregated across shards (two shard-local bits say nothing
/// about the global frequency). Merge the
/// [builders](ReleaseAnswersIndicatorBuilder), which still hold raw
/// supports, instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReleaseAnswersIndicator {
    k: usize,
    d: usize,
    words: Vec<u64>,
    count: u64,
}

impl ReleaseAnswersIndicator {
    /// Precomputes the threshold bit (`f_T ≥ ε`) for every `k`-itemset, as
    /// a single fold over the rows ([`ReleaseAnswersIndicatorBuilder`]) —
    /// so one-shot and streamed builds are bit-identical by construction.
    /// Callers are expected to keep `C(d,k)` laptop-sized; the experiments
    /// do.
    pub fn build(db: &Database, k: usize, epsilon: f64) -> Self {
        crate::streaming::fold_database::<ReleaseAnswersIndicatorBuilder>(
            db,
            0,
            &ReleaseAnswersParams { k, epsilon },
        )
    }

    /// Number of stored answers (`C(d,k)`).
    pub fn answer_count(&self) -> u64 {
        self.count
    }

    /// Itemset cardinality `k` this sketch answers — queries of any other
    /// length are outside its contract (the serving tier refuses them
    /// before they reach [`is_frequent`](FrequencyIndicator::is_frequent),
    /// which asserts).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Attribute count `d` of the database the answers were built over.
    pub fn dims(&self) -> usize {
        self.d
    }
}

/// Build-time parameters of the RELEASE-ANSWERS builders.
#[derive(Clone, Debug)]
pub struct ReleaseAnswersParams {
    /// Itemset cardinality `k` answered by the sketch.
    pub k: usize,
    /// Threshold / precision ε.
    pub epsilon: f64,
}

/// Streaming builder for [`ReleaseAnswersIndicator`]: accumulates raw
/// supports, thresholds at `finish`. Merging is counter-wise and therefore
/// **commutative** as well as associative.
#[derive(Clone, Debug)]
pub struct ReleaseAnswersIndicatorBuilder {
    counts: SupportCounts,
    epsilon: f64,
}

impl StreamingBuild for ReleaseAnswersIndicatorBuilder {
    type Params = ReleaseAnswersParams;
    type Output = ReleaseAnswersIndicator;

    fn begin_at(dims: usize, _seed: u64, params: &ReleaseAnswersParams, _row_offset: u64) -> Self {
        assert!(params.epsilon > 0.0 && params.epsilon < 1.0);
        Self { counts: SupportCounts::begin(dims, params.k), epsilon: params.epsilon }
    }

    fn observe_row(&mut self, row: &Itemset) {
        self.counts.observe_row(row);
    }

    fn rows_seen(&self) -> u64 {
        self.counts.rows
    }

    fn finish(self) -> ReleaseAnswersIndicator {
        let count = self.counts.supports.len() as u64;
        let mut words = vec![0u64; bits::words_for(count as usize).max(1)];
        for rank in 0..count as usize {
            if self.counts.frequency(rank) >= self.epsilon {
                bits::set(&mut words, rank, true);
            }
        }
        ReleaseAnswersIndicator { k: self.counts.k, d: self.counts.d, words, count }
    }
}

impl MergeableSketch for ReleaseAnswersIndicatorBuilder {
    fn merge(&mut self, other: Self) -> Result<(), MergeError> {
        if other.epsilon.to_bits() != self.epsilon.to_bits() {
            return Err(MergeError::Incompatible(format!(
                "ReleaseAnswers partials with different thresholds: {} vs {}",
                self.epsilon, other.epsilon
            )));
        }
        self.counts.merge(&other.counts)
    }
}

impl Sketch for ReleaseAnswersIndicator {
    /// The length of the actual snapshot encoding (DESIGN.md §10): the
    /// paper's one bit per answer, byte-rounded, plus the measured frame
    /// and `(k, d, count)` header — replacing the historical hand-computed
    /// `count + 128`.
    fn size_bits(&self) -> u64 {
        self.snapshot_bits()
    }
}

/// Body: `k`, `d`, `count` varints, then the answer bits packed into
/// `⌈count/8⌉` bytes (colex-rank order, matching the query path).
impl Snapshot for ReleaseAnswersIndicator {
    const KIND: u16 = KIND_RELEASE_ANSWERS_INDICATOR;

    fn encode_body(&self, w: &mut Writer) {
        w.varint(self.k as u64);
        w.varint(self.d as u64);
        w.varint(self.count);
        codec::write_bitset(w, &self.words, self.count as usize);
    }

    fn decode_body(r: &mut Reader, _version: u16) -> Result<Self, DecodeError> {
        let k = r.varint_usize()?;
        let d = r.varint_usize()?;
        let count = r.varint()?;
        validate_answer_shape(k, d, count)?;
        let words = codec::read_bitset(r, count as usize)?;
        Ok(Self { k, d, words, count })
    }
}

impl FrequencyIndicator for ReleaseAnswersIndicator {
    fn is_frequent(&self, itemset: &Itemset) -> bool {
        assert_eq!(itemset.len(), self.k, "sketch answers only {}-itemsets", self.k);
        assert!(itemset.max_item().is_none_or(|m| (m as usize) < self.d));
        bits::get(&self.words, itemset.colex_rank() as usize)
    }
}

/// Estimator answers for all `k`-itemsets, quantized to precision ε.
///
/// Like the indicator variant, **not** [`MergeableSketch`]: quantization
/// is lossy, so re-aggregating shard-local levels could not reproduce the
/// one-pass quantization bit for bit. Merge the
/// [builders](ReleaseAnswersEstimatorBuilder) instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReleaseAnswersEstimator {
    k: usize,
    d: usize,
    bits_per: u32,
    levels: u64,
    packed: Vec<u64>,
    count: u64,
}

impl ReleaseAnswersEstimator {
    /// Precomputes every `k`-itemset frequency rounded to the nearest point
    /// of a uniform grid on `[0, 1]` with spacing `≤ 2ε`, as a single fold
    /// over the rows ([`ReleaseAnswersEstimatorBuilder`]).
    pub fn build(db: &Database, k: usize, epsilon: f64) -> Self {
        crate::streaming::fold_database::<ReleaseAnswersEstimatorBuilder>(
            db,
            0,
            &ReleaseAnswersParams { k, epsilon },
        )
    }

    /// Bits stored per answer.
    pub fn bits_per_answer(&self) -> u32 {
        self.bits_per
    }

    /// Number of stored answers (`C(d,k)`).
    pub fn answer_count(&self) -> u64 {
        self.count
    }

    /// Itemset cardinality `k` this sketch answers (see
    /// [`ReleaseAnswersIndicator::k`]).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Attribute count `d` of the database the answers were built over.
    pub fn dims(&self) -> usize {
        self.d
    }
}

/// Streaming builder for [`ReleaseAnswersEstimator`]: accumulates raw
/// supports, quantizes at `finish`. Merging is counter-wise and therefore
/// **commutative** as well as associative.
#[derive(Clone, Debug)]
pub struct ReleaseAnswersEstimatorBuilder {
    counts: SupportCounts,
    epsilon: f64,
}

impl StreamingBuild for ReleaseAnswersEstimatorBuilder {
    type Params = ReleaseAnswersParams;
    type Output = ReleaseAnswersEstimator;

    fn begin_at(dims: usize, _seed: u64, params: &ReleaseAnswersParams, _row_offset: u64) -> Self {
        assert!(params.epsilon > 0.0 && params.epsilon < 1.0);
        Self { counts: SupportCounts::begin(dims, params.k), epsilon: params.epsilon }
    }

    fn observe_row(&mut self, row: &Itemset) {
        self.counts.observe_row(row);
    }

    fn rows_seen(&self) -> u64 {
        self.counts.rows
    }

    fn finish(self) -> ReleaseAnswersEstimator {
        // levels - 1 intervals of width <= 2ε covering [0,1].
        let levels = (1.0 / (2.0 * self.epsilon)).ceil() as u64 + 1;
        let bits_per = 64 - (levels - 1).leading_zeros();
        let count = self.counts.supports.len() as u64;
        let total_bits = (count as usize) * (bits_per as usize);
        let mut packed = vec![0u64; bits::words_for(total_bits).max(1)];
        for rank in 0..count as usize {
            let level = (self.counts.frequency(rank) * (levels - 1) as f64).round() as u64;
            let base = rank * bits_per as usize;
            for b in 0..bits_per as usize {
                if (level >> b) & 1 == 1 {
                    bits::set(&mut packed, base + b, true);
                }
            }
        }
        ReleaseAnswersEstimator {
            k: self.counts.k,
            d: self.counts.d,
            bits_per,
            levels,
            packed,
            count,
        }
    }
}

impl MergeableSketch for ReleaseAnswersEstimatorBuilder {
    fn merge(&mut self, other: Self) -> Result<(), MergeError> {
        if other.epsilon.to_bits() != self.epsilon.to_bits() {
            return Err(MergeError::Incompatible(format!(
                "ReleaseAnswers partials with different precisions: {} vs {}",
                self.epsilon, other.epsilon
            )));
        }
        self.counts.merge(&other.counts)
    }
}

impl Sketch for ReleaseAnswersEstimator {
    /// The length of the actual snapshot encoding (DESIGN.md §10): the
    /// paper's `⌈log₂ levels⌉` bits per answer, byte-rounded, plus the
    /// measured frame and header — replacing the historical hand-computed
    /// `count · bits_per + 128`.
    fn size_bits(&self) -> u64 {
        self.snapshot_bits()
    }
}

/// Body: `k`, `d`, `levels`, `count` varints, then the quantized levels
/// packed at `bits_per = ⌈log₂ levels⌉` bits each into `⌈count·bits_per/8⌉`
/// bytes (colex-rank order). `bits_per` is re-derived from `levels` on
/// decode — storing both would be a redundancy an attacker could make
/// inconsistent.
impl Snapshot for ReleaseAnswersEstimator {
    const KIND: u16 = KIND_RELEASE_ANSWERS_ESTIMATOR;

    fn encode_body(&self, w: &mut Writer) {
        w.varint(self.k as u64);
        w.varint(self.d as u64);
        w.varint(self.levels);
        w.varint(self.count);
        let total_bits = self.count as usize * self.bits_per as usize;
        codec::write_bitset(w, &self.packed, total_bits);
    }

    fn decode_body(r: &mut Reader, _version: u16) -> Result<Self, DecodeError> {
        let k = r.varint_usize()?;
        let d = r.varint_usize()?;
        let levels = r.varint()?;
        if levels < 2 {
            return Err(DecodeError::Corrupt(format!(
                "quantization needs at least 2 levels, got {levels}"
            )));
        }
        let count = r.varint()?;
        validate_answer_shape(k, d, count)?;
        let bits_per = 64 - (levels - 1).leading_zeros();
        let total_bits = (count as usize).checked_mul(bits_per as usize).ok_or_else(|| {
            DecodeError::Corrupt(format!("{count} answers x {bits_per} bits overflows"))
        })?;
        let packed = codec::read_bitset(r, total_bits)?;
        Ok(Self { k, d, bits_per, levels, packed, count })
    }
}

impl FrequencyEstimator for ReleaseAnswersEstimator {
    fn estimate(&self, itemset: &Itemset) -> f64 {
        assert_eq!(itemset.len(), self.k, "sketch answers only {}-itemsets", self.k);
        assert!(itemset.max_item().is_none_or(|m| (m as usize) < self.d));
        let base = itemset.colex_rank() as usize * self.bits_per as usize;
        let mut level = 0u64;
        for b in 0..self.bits_per as usize {
            if bits::get(&self.packed, base + b) {
                level |= 1 << b;
            }
        }
        level as f64 / (self.levels - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_database::generators;
    use ifs_util::Rng64;

    #[test]
    fn indicator_matches_exact_thresholding() {
        let mut rng = Rng64::seeded(21);
        let db = generators::uniform(200, 10, 0.3, &mut rng);
        let eps = 0.15;
        let s = ReleaseAnswersIndicator::build(&db, 2, eps);
        for comb in combin::Combinations::new(10, 2) {
            let t = Itemset::new(comb);
            assert_eq!(s.is_frequent(&t), db.frequency(&t) >= eps, "itemset {t}");
        }
    }

    #[test]
    fn estimator_error_within_epsilon() {
        let mut rng = Rng64::seeded(22);
        let db = generators::uniform(173, 9, 0.5, &mut rng);
        let eps = 0.07;
        let s = ReleaseAnswersEstimator::build(&db, 3, eps);
        let mut worst: f64 = 0.0;
        for comb in combin::Combinations::new(9, 3) {
            let t = Itemset::new(comb);
            worst = worst.max((s.estimate(&t) - db.frequency(&t)).abs());
        }
        assert!(worst <= eps + 1e-12, "worst quantization error {worst} > ε={eps}");
    }

    #[test]
    fn estimator_size_scales_with_log_eps() {
        let db = Database::zeros(10, 8);
        let coarse = ReleaseAnswersEstimator::build(&db, 2, 0.25);
        let fine = ReleaseAnswersEstimator::build(&db, 2, 1.0 / 1024.0);
        assert!(fine.bits_per_answer() > coarse.bits_per_answer());
        assert!(fine.size_bits() > coarse.size_bits());
        assert_eq!(coarse.answer_count(), 28);
    }

    #[test]
    fn indicator_size_is_one_bit_per_itemset_plus_measured_framing() {
        let db = Database::zeros(10, 12);
        let s = ReleaseAnswersIndicator::build(&db, 3, 0.1);
        assert_eq!(s.answer_count(), 220);
        let bytes = s.snapshot_bytes();
        assert_eq!(s.size_bits(), bytes.len() as u64 * 8, "size_bits must equal encoded length");
        // Body: k (1) + d (1) + count=220 (2) + ⌈220/8⌉ = 28 answer bytes;
        // frame: magic 4 + kind 2 + version 2 + len varint 1 + checksum 8.
        assert_eq!(bytes.len(), 17 + 4 + 28);
        assert_eq!(ReleaseAnswersIndicator::from_snapshot(&bytes).expect("roundtrip"), s);
    }

    #[test]
    #[should_panic(expected = "answers only")]
    fn wrong_cardinality_panics() {
        let db = Database::zeros(5, 6);
        let s = ReleaseAnswersIndicator::build(&db, 2, 0.1);
        s.is_frequent(&Itemset::singleton(1));
    }

    /// Builders merged from arbitrary row partitions finish to the same
    /// bits as the one-shot build — and counter-wise merging commutes.
    #[test]
    fn builders_merge_commutatively_to_the_one_shot_answers() {
        use crate::streaming::{MergeableSketch, StreamingBuild};
        let mut rng = Rng64::seeded(23);
        let db = generators::uniform(150, 8, 0.4, &mut rng);
        let (k, eps) = (2usize, 0.1);
        let params = ReleaseAnswersParams { k, epsilon: eps };
        let one_shot = ReleaseAnswersIndicator::build(&db, k, eps);
        let split = 57;
        let mut a = ReleaseAnswersIndicatorBuilder::begin(8, 0, &params);
        let mut b = ReleaseAnswersIndicatorBuilder::begin(8, 0, &params);
        for r in 0..db.rows() {
            if r < split { &mut a } else { &mut b }.observe_row(&db.row_itemset(r));
        }
        let (mut ab, mut ba) = (a.clone(), b.clone());
        ab.merge(b).expect("same-shape partials merge");
        ba.merge(a).expect("counter merge commutes");
        assert_eq!(ab.finish(), one_shot);
        assert_eq!(ba.finish(), one_shot, "counter-wise merge must be commutative");

        // The estimator variant shares the same counts core.
        let est_one_shot = ReleaseAnswersEstimator::build(&db, k, eps);
        let mut ea = ReleaseAnswersEstimatorBuilder::begin(8, 0, &params);
        let mut eb = ReleaseAnswersEstimatorBuilder::begin(8, 0, &params);
        for r in 0..db.rows() {
            if r % 3 == 0 { &mut ea } else { &mut eb }.observe_row(&db.row_itemset(r));
        }
        ea.merge(eb).expect("same-shape partials merge");
        assert_eq!(ea.finish(), est_one_shot);
    }

    #[test]
    fn builder_merge_refuses_shape_mismatches() {
        use crate::streaming::{MergeError, MergeableSketch, StreamingBuild};
        let p2 = ReleaseAnswersParams { k: 2, epsilon: 0.1 };
        let p3 = ReleaseAnswersParams { k: 3, epsilon: 0.1 };
        let mut a = ReleaseAnswersIndicatorBuilder::begin(8, 0, &p2);
        assert!(matches!(
            a.merge(ReleaseAnswersIndicatorBuilder::begin(8, 0, &p3)),
            Err(MergeError::Incompatible(_))
        ));
        assert!(matches!(
            a.merge(ReleaseAnswersIndicatorBuilder::begin(9, 0, &p2)),
            Err(MergeError::Incompatible(_))
        ));
        let peps = ReleaseAnswersParams { k: 2, epsilon: 0.2 };
        assert!(matches!(
            a.merge(ReleaseAnswersIndicatorBuilder::begin(8, 0, &peps)),
            Err(MergeError::Incompatible(_))
        ));
    }

    #[test]
    fn extreme_frequencies_quantize_exactly() {
        // All-ones and all-zeros columns hit grid endpoints exactly.
        let db = Database::from_fn(50, 4, |_, c| c == 0);
        let s = ReleaseAnswersEstimator::build(&db, 1, 0.1);
        assert_eq!(s.estimate(&Itemset::singleton(0)), 1.0);
        assert_eq!(s.estimate(&Itemset::singleton(1)), 0.0);
    }
}
