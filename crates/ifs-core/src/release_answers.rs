//! RELEASE-ANSWERS (Definition 7): precompute and store every answer.
//!
//! There are `C(d, k)` possible `k`-itemset queries. The indicator variant
//! stores one bit per query; the estimator variant stores each frequency
//! quantized to a grid of spacing `2ε` (so the representation error is at
//! most ε), which costs `⌈log₂(1/(2ε) + 1)⌉` bits per query — the paper's
//! `O(C(d,k)·log(1/ε))`.
//!
//! Answers are indexed by the colexicographic rank of the itemset, so no
//! itemset identifiers are stored at all. Both variants are *deterministic*
//! and satisfy the For-All contracts with δ = 0.

use crate::traits::{FrequencyEstimator, FrequencyIndicator, Sketch};
use ifs_database::{Database, Itemset};
use ifs_util::{bits, combin};

/// Indicator answers for all `k`-itemsets: one bit per itemset.
#[derive(Clone, Debug)]
pub struct ReleaseAnswersIndicator {
    k: usize,
    d: usize,
    words: Vec<u64>,
    count: u64,
}

impl ReleaseAnswersIndicator {
    /// Precomputes the threshold bit (`f_T ≥ ε`) for every `k`-itemset.
    ///
    /// Cost: one pass over the database per itemset — `O(C(d,k) · n)` subset
    /// tests. Callers are expected to keep `C(d,k)` laptop-sized; the
    /// experiments do.
    pub fn build(db: &Database, k: usize, epsilon: f64) -> Self {
        assert!(k >= 1 && k <= db.dims(), "k={k} out of range for d={}", db.dims());
        assert!(epsilon > 0.0 && epsilon < 1.0);
        let d = db.dims();
        let count = combin::binomial_u64(d as u64, k as u64);
        let mut words = vec![0u64; bits::words_for(count as usize).max(1)];
        for (rank, comb) in combin::Combinations::new(d as u32, k as u32).enumerate() {
            let t = Itemset::new(comb);
            if db.frequency(&t) >= epsilon {
                bits::set(&mut words, rank, true);
            }
        }
        Self { k, d, words, count }
    }

    /// Number of stored answers (`C(d,k)`).
    pub fn answer_count(&self) -> u64 {
        self.count
    }
}

impl Sketch for ReleaseAnswersIndicator {
    fn size_bits(&self) -> u64 {
        // One bit per answer; the (d, k) header is 2 machine words.
        self.count + 128
    }
}

impl FrequencyIndicator for ReleaseAnswersIndicator {
    fn is_frequent(&self, itemset: &Itemset) -> bool {
        assert_eq!(itemset.len(), self.k, "sketch answers only {}-itemsets", self.k);
        assert!(itemset.max_item().is_none_or(|m| (m as usize) < self.d));
        bits::get(&self.words, itemset.colex_rank() as usize)
    }
}

/// Estimator answers for all `k`-itemsets, quantized to precision ε.
#[derive(Clone, Debug)]
pub struct ReleaseAnswersEstimator {
    k: usize,
    d: usize,
    bits_per: u32,
    levels: u64,
    packed: Vec<u64>,
    count: u64,
}

impl ReleaseAnswersEstimator {
    /// Precomputes every `k`-itemset frequency rounded to the nearest point
    /// of a uniform grid on `[0, 1]` with spacing `≤ 2ε`.
    pub fn build(db: &Database, k: usize, epsilon: f64) -> Self {
        assert!(k >= 1 && k <= db.dims());
        assert!(epsilon > 0.0 && epsilon < 1.0);
        let d = db.dims();
        // levels - 1 intervals of width <= 2ε covering [0,1].
        let levels = (1.0 / (2.0 * epsilon)).ceil() as u64 + 1;
        let bits_per = 64 - (levels - 1).leading_zeros();
        let count = combin::binomial_u64(d as u64, k as u64);
        let total_bits = (count as usize) * (bits_per as usize);
        let mut packed = vec![0u64; bits::words_for(total_bits).max(1)];
        for (rank, comb) in combin::Combinations::new(d as u32, k as u32).enumerate() {
            let t = Itemset::new(comb);
            let f = db.frequency(&t);
            let level = (f * (levels - 1) as f64).round() as u64;
            let base = rank * bits_per as usize;
            for b in 0..bits_per as usize {
                if (level >> b) & 1 == 1 {
                    bits::set(&mut packed, base + b, true);
                }
            }
        }
        Self { k, d, bits_per, levels, packed, count }
    }

    /// Bits stored per answer.
    pub fn bits_per_answer(&self) -> u32 {
        self.bits_per
    }

    /// Number of stored answers (`C(d,k)`).
    pub fn answer_count(&self) -> u64 {
        self.count
    }
}

impl Sketch for ReleaseAnswersEstimator {
    fn size_bits(&self) -> u64 {
        self.count * self.bits_per as u64 + 128
    }
}

impl FrequencyEstimator for ReleaseAnswersEstimator {
    fn estimate(&self, itemset: &Itemset) -> f64 {
        assert_eq!(itemset.len(), self.k, "sketch answers only {}-itemsets", self.k);
        assert!(itemset.max_item().is_none_or(|m| (m as usize) < self.d));
        let base = itemset.colex_rank() as usize * self.bits_per as usize;
        let mut level = 0u64;
        for b in 0..self.bits_per as usize {
            if bits::get(&self.packed, base + b) {
                level |= 1 << b;
            }
        }
        level as f64 / (self.levels - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_database::generators;
    use ifs_util::Rng64;

    #[test]
    fn indicator_matches_exact_thresholding() {
        let mut rng = Rng64::seeded(21);
        let db = generators::uniform(200, 10, 0.3, &mut rng);
        let eps = 0.15;
        let s = ReleaseAnswersIndicator::build(&db, 2, eps);
        for comb in combin::Combinations::new(10, 2) {
            let t = Itemset::new(comb);
            assert_eq!(s.is_frequent(&t), db.frequency(&t) >= eps, "itemset {t}");
        }
    }

    #[test]
    fn estimator_error_within_epsilon() {
        let mut rng = Rng64::seeded(22);
        let db = generators::uniform(173, 9, 0.5, &mut rng);
        let eps = 0.07;
        let s = ReleaseAnswersEstimator::build(&db, 3, eps);
        let mut worst: f64 = 0.0;
        for comb in combin::Combinations::new(9, 3) {
            let t = Itemset::new(comb);
            worst = worst.max((s.estimate(&t) - db.frequency(&t)).abs());
        }
        assert!(worst <= eps + 1e-12, "worst quantization error {worst} > ε={eps}");
    }

    #[test]
    fn estimator_size_scales_with_log_eps() {
        let db = Database::zeros(10, 8);
        let coarse = ReleaseAnswersEstimator::build(&db, 2, 0.25);
        let fine = ReleaseAnswersEstimator::build(&db, 2, 1.0 / 1024.0);
        assert!(fine.bits_per_answer() > coarse.bits_per_answer());
        assert!(fine.size_bits() > coarse.size_bits());
        assert_eq!(coarse.answer_count(), 28);
    }

    #[test]
    fn indicator_size_is_one_bit_per_itemset() {
        let db = Database::zeros(10, 12);
        let s = ReleaseAnswersIndicator::build(&db, 3, 0.1);
        assert_eq!(s.answer_count(), 220);
        assert_eq!(s.size_bits(), 220 + 128);
    }

    #[test]
    #[should_panic(expected = "answers only")]
    fn wrong_cardinality_panics() {
        let db = Database::zeros(5, 6);
        let s = ReleaseAnswersIndicator::build(&db, 2, 0.1);
        s.is_frequent(&Itemset::singleton(1));
    }

    #[test]
    fn extreme_frequencies_quantize_exactly() {
        // All-ones and all-zeros columns hit grid endpoints exactly.
        let db = Database::from_fn(50, 4, |_, c| c == 0);
        let s = ReleaseAnswersEstimator::build(&db, 1, 0.1);
        assert_eq!(s.estimate(&Itemset::singleton(0)), 1.0);
        assert_eq!(s.estimate(&Itemset::singleton(1)), 0.0);
    }
}
