//! SUBSAMPLE (Definition 8): uniform row sampling with replacement.
//!
//! The paper's headline upper bound — and, by its lower bounds, an
//! essentially optimal one. The sketch is simply `s` rows drawn uniformly
//! with replacement; queries evaluate frequencies on the sample. Lemma 9
//! gives the sample counts for each of the four guarantees:
//!
//! | Guarantee | rows `s` |
//! |---|---|
//! | For-Each-Indicator | `O(ε⁻¹ log(1/δ))` |
//! | For-Each-Estimator | `O(ε⁻² log(1/δ))` |
//! | For-All-Indicator | `O(ε⁻¹ log(C(d,k)/δ))` |
//! | For-All-Estimator | `O(ε⁻² log(C(d,k)/δ))` |
//!
//! Since the streaming-ingestion refactor (DESIGN.md §9), the build *is* a
//! single-pass fold: [`SubsampleBuilder`] maintains the `s` slots as
//! independent with-replacement reservoirs over the arriving rows, so the
//! one-shot constructors, a build streamed in arbitrary batches, and a
//! sharded build merged from per-shard partials all produce bit-identical
//! samples from the same seed.

use crate::params::{Guarantee, SketchParams};
use crate::snapshot::{Snapshot, KIND_SUBSAMPLE, KIND_SUBSAMPLE_BUILDER};
use crate::streaming::{
    build_sharded, fold_database, MergeError, MergeableSketch, StreamingBuild, INGEST_CHUNK_ROWS,
};
use crate::traits::{FrequencyEstimator, FrequencyIndicator, Parallel, Sketch};
use ifs_database::codec::{self, DecodeError, Reader, Writer};
use ifs_database::{Database, Itemset};
use ifs_util::hash::stable_hash;
use ifs_util::threads::clamp_threads;
use ifs_util::{tail, Rng64};

/// A uniform with-replacement row sample of the database.
#[derive(Clone, Debug)]
pub struct Subsample {
    sample: Database,
    epsilon: f64,
    threads: usize,
}

impl Subsample {
    /// Builds a sketch for the given guarantee, choosing the sample count
    /// from Lemma 9.
    pub fn build(
        db: &Database,
        params: &SketchParams,
        guarantee: Guarantee,
        rng: &mut Rng64,
    ) -> Self {
        let s = Self::sample_count(db.dims(), params, guarantee);
        Self::with_sample_count(db, s, params.epsilon, rng)
    }

    /// [`Subsample::build`] with the fold run as a sharded build merged on
    /// up to `threads` workers — bit-identical to the serial build at every
    /// thread count (DESIGN.md §9).
    pub fn build_with_threads(
        db: &Database,
        params: &SketchParams,
        guarantee: Guarantee,
        rng: &mut Rng64,
        threads: usize,
    ) -> Self {
        let s = Self::sample_count(db.dims(), params, guarantee);
        Self::with_sample_count_sharded(db, s, params.epsilon, rng.next_u64(), threads)
    }

    /// Builds a sketch with an explicit number of sampled rows — the knob the
    /// lower-bound experiments turn to trade space against accuracy.
    ///
    /// `s` must be positive: a 0-row sample answers no query (its frequency
    /// estimates would be `0/0`), and every Lemma 9 sample count is ≥ 1, so
    /// an `s = 0` request is always a caller bug.
    ///
    /// One draw of `rng` keys the whole build; the sampling itself is the
    /// [`SubsampleBuilder`] fold, so this is bit-identical to streaming the
    /// rows through a builder with the same seed.
    pub fn with_sample_count(db: &Database, s: usize, epsilon: f64, rng: &mut Rng64) -> Self {
        Self::with_sample_count_seeded(db, s, epsilon, rng.next_u64())
    }

    /// [`Subsample::with_sample_count`] with an explicit 64-bit seed — the
    /// entry point the streaming tests and distributed builders use to line
    /// up one-shot, streamed, and merged builds exactly.
    pub fn with_sample_count_seeded(db: &Database, s: usize, epsilon: f64, seed: u64) -> Self {
        assert!(db.rows() > 0, "cannot sample an empty database");
        assert!(s > 0, "sample count must be positive: a 0-row sample answers no query");
        fold_database::<SubsampleBuilder>(db, seed, &SubsampleParams { sample_rows: s, epsilon })
    }

    /// [`Subsample::with_sample_count_seeded`] as a sharded build: per-chunk
    /// partial reservoirs folded on the §8 work queue and merged in row
    /// order — bit-identical to the serial fold at every thread count.
    pub fn with_sample_count_sharded(
        db: &Database,
        s: usize,
        epsilon: f64,
        seed: u64,
        threads: usize,
    ) -> Self {
        assert!(db.rows() > 0, "cannot sample an empty database");
        assert!(s > 0, "sample count must be positive: a 0-row sample answers no query");
        build_sharded::<SubsampleBuilder>(
            db,
            seed,
            &SubsampleParams { sample_rows: s, epsilon },
            threads,
        )
    }

    /// Lemma 9's sample count for the guarantee. For the indicator variants
    /// the estimate must resolve the threshold gap `[ε/2, ε]`, which is what
    /// the `16/ε` constant in [`ifs_util::tail::samples_foreach_indicator`]
    /// accounts for.
    pub fn sample_count(d: usize, params: &SketchParams, guarantee: Guarantee) -> usize {
        let (eps, delta) = (params.epsilon, params.delta);
        let s = match guarantee {
            Guarantee::ForEachIndicator => tail::samples_foreach_indicator(eps, delta),
            Guarantee::ForEachEstimator => tail::samples_foreach_estimator(eps, delta),
            Guarantee::ForAllIndicator => {
                tail::samples_forall_indicator(d as u64, params.k as u64, eps, delta)
            }
            Guarantee::ForAllEstimator => {
                tail::samples_forall_estimator(d as u64, params.k as u64, eps, delta)
            }
        };
        s as usize
    }

    /// Number of sampled rows.
    pub fn rows(&self) -> usize {
        self.sample.rows()
    }

    /// The sampled rows as a database.
    pub fn sample(&self) -> &Database {
        &self.sample
    }
}

/// Sketch identity is the sampled rows plus the threshold ε (compared by
/// bit pattern). The [`Parallel`] thread knob is execution state, not
/// identity, so it does not participate — and is not serialized.
impl PartialEq for Subsample {
    fn eq(&self, other: &Self) -> bool {
        self.sample == other.sample && self.epsilon.to_bits() == other.epsilon.to_bits()
    }
}

impl Eq for Subsample {}

impl Sketch for Subsample {
    /// The length of the actual snapshot encoding (DESIGN.md §10) — a
    /// measurement, not bookkeeping.
    fn size_bits(&self) -> u64 {
        self.snapshot_bits()
    }
}

/// Body: `epsilon` (f64 bits), then the sampled rows as a database
/// fragment. Decoded sketches start serial (`threads = 1`).
impl Snapshot for Subsample {
    const KIND: u16 = KIND_SUBSAMPLE;

    fn encode_body(&self, w: &mut Writer) {
        w.f64_bits(self.epsilon);
        codec::write_database(w, &self.sample);
    }

    fn decode_body(r: &mut Reader, _version: u16) -> Result<Self, DecodeError> {
        let epsilon = r.f64_bits()?;
        let sample = codec::read_database(r)?;
        if sample.rows() == 0 {
            return Err(DecodeError::Corrupt(
                "a 0-row sample answers no query; valid Subsample snapshots have rows >= 1".into(),
            ));
        }
        Ok(Self { sample, epsilon, threads: 1 })
    }
}

impl FrequencyEstimator for Subsample {
    /// Queries run on the sample's cached columnar view ([`Database::columns`]):
    /// a sketch exists to be queried many times, so the one-off transpose of
    /// the (small) sample amortizes immediately. The answer is the same
    /// integer support over the same rows as the row-major path, divided by
    /// the same row count — bit-identical to `sample().frequency(itemset)`.
    fn estimate(&self, itemset: &Itemset) -> f64 {
        self.sample.columns().frequency(itemset)
    }

    /// Batches run with the sketch's thread knob ([`Parallel`]): serial on
    /// the cached [`ColumnStore`](ifs_database::ColumnStore) at 1 thread,
    /// on the sharded store above — bit-identical either way (DESIGN.md §8).
    fn estimate_batch(&self, itemsets: &[Itemset]) -> Vec<f64> {
        self.sample.frequencies_with_threads(itemsets, self.threads)
    }
}

impl Parallel for Subsample {
    fn set_threads(&mut self, threads: usize) {
        self.threads = clamp_threads(threads);
    }

    fn threads(&self) -> usize {
        self.threads
    }
}

impl FrequencyIndicator for Subsample {
    fn is_frequent(&self, itemset: &Itemset) -> bool {
        self.estimate(itemset) >= 0.75 * self.epsilon
    }

    fn is_frequent_batch(&self, itemsets: &[Itemset]) -> Vec<bool> {
        let thresh = 0.75 * self.epsilon;
        self.estimate_batch(itemsets).into_iter().map(|f| f >= thresh).collect()
    }
}

/// Build-time parameters of a [`SubsampleBuilder`].
#[derive(Clone, Debug)]
pub struct SubsampleParams {
    /// Number of sampled rows `s` (must be positive).
    pub sample_rows: usize,
    /// Threshold ε carried into the finished sketch's indicator.
    pub epsilon: f64,
}

/// Streaming builder for [`Subsample`]: `s` independent with-replacement
/// reservoirs folded over the arriving rows (DESIGN.md §9).
///
/// **Construction.** Rows are grouped into [`INGEST_CHUNK_ROWS`]-row chunks
/// aligned to global row indices. For slot `j` and chunk `c` holding rows
/// `[o_c, o_c + m_c)`, two draws keyed by `(seed, j, c)` through the
/// golden-pinned [`stable_hash`] decide (a) whether the slot *replaces* its
/// content with a row of this chunk — with probability exactly
/// `m_c / (o_c + m_c)`, the classical distributed-reservoir rule — and (b)
/// *which* chunk row, uniformly. Telescoping gives every global row
/// probability `1/n` per slot, i.e. exactly uniform sampling with
/// replacement (Definition 8), and every decision is a pure function of
/// `(seed, slot, chunk)`, never of processing history.
///
/// **Why this merges bit-identically.** A partial build over a later row
/// range resolves exactly the chunk decisions a one-pass fold would have
/// resolved over those rows; merging in row order takes the later partial's
/// winners and stitches boundary-straddling chunk buffers back together, so
/// fold, streamed, and sharded-merged builds produce the same sample bit
/// for bit. Merging is associative; it is **not** commutative — partials
/// must arrive in row order, and out-of-order merges are refused with
/// [`MergeError::NonContiguous`].
#[derive(Clone, Debug)]
pub struct SubsampleBuilder {
    dims: usize,
    seed: u64,
    params: SubsampleParams,
    offset: u64,
    rows_seen: u64,
    /// Rows from `offset` up to the first chunk boundary — resolvable only
    /// after this partial is merged onto one covering the chunk's head
    /// (empty when `offset` is chunk-aligned).
    front: Vec<Itemset>,
    /// Rows of the chunk currently being filled; `back[0]` has global index
    /// `back_start` (always chunk-aligned).
    back: Vec<Itemset>,
    back_start: u64,
    /// Per-slot winners among the rows resolved so far.
    slots: Vec<Option<Itemset>>,
}

/// Purpose tags separating the two draw streams of a `(seed, slot, chunk)`
/// key.
const DRAW_REPLACE: u64 = 0;
const DRAW_PICK: u64 = 1;

impl SubsampleBuilder {
    /// Unbiased uniform draw in `[0, bound)`, keyed by
    /// `(seed, slot, chunk, purpose)` and rejection-chained through an
    /// attempt counter — integer-exact, so identical on every platform.
    fn draw_below(&self, slot: u64, chunk: u64, purpose: u64, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound; // 2^64 mod bound
        let mut attempt = 0u64;
        loop {
            let h = stable_hash(self.seed, &(slot, chunk, purpose, attempt));
            let wide = u128::from(h) * u128::from(bound);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
            attempt += 1;
        }
    }

    /// Resolves one fully buffered chunk starting at global row
    /// `chunk_start`: every slot decides independently whether a row of
    /// this chunk replaces its content.
    fn resolve_chunk(&mut self, chunk_start: u64, rows: &[Itemset]) {
        let chunk = chunk_start / INGEST_CHUNK_ROWS as u64;
        let m = rows.len() as u64;
        let seen_through = chunk_start + m;
        for j in 0..self.params.sample_rows as u64 {
            if self.draw_below(j, chunk, DRAW_REPLACE, seen_through) < m {
                let idx = self.draw_below(j, chunk, DRAW_PICK, m);
                self.slots[j as usize] = Some(rows[idx as usize].clone());
            }
        }
    }

    /// Capacity of the front buffer: rows between `offset` and the first
    /// chunk boundary.
    fn front_capacity(&self) -> usize {
        let k = INGEST_CHUNK_ROWS as u64;
        (self.offset.div_ceil(k) * k - self.offset) as usize
    }
}

impl StreamingBuild for SubsampleBuilder {
    type Params = SubsampleParams;
    type Output = Subsample;

    fn begin_at(dims: usize, seed: u64, params: &SubsampleParams, row_offset: u64) -> Self {
        assert!(
            params.sample_rows > 0,
            "sample count must be positive: a 0-row sample answers no query"
        );
        let k = INGEST_CHUNK_ROWS as u64;
        Self {
            dims,
            seed,
            params: params.clone(),
            offset: row_offset,
            rows_seen: 0,
            front: Vec::new(),
            back: Vec::new(),
            back_start: row_offset.div_ceil(k) * k,
            slots: vec![None; params.sample_rows],
        }
    }

    fn observe_row(&mut self, row: &Itemset) {
        assert!(
            row.max_item().is_none_or(|m| (m as usize) < self.dims),
            "row has item out of range for {} attributes",
            self.dims
        );
        self.rows_seen += 1;
        if self.front.len() < self.front_capacity() {
            self.front.push(row.clone());
            return;
        }
        self.back.push(row.clone());
        if self.back.len() == INGEST_CHUNK_ROWS {
            let full = std::mem::take(&mut self.back);
            self.resolve_chunk(self.back_start, &full);
            self.back_start += INGEST_CHUNK_ROWS as u64;
        }
    }

    fn rows_seen(&self) -> u64 {
        self.rows_seen
    }

    fn finish(mut self) -> Subsample {
        assert_eq!(
            self.offset, 0,
            "a partial Subsample build must be merged back to the stream head before finishing"
        );
        assert!(self.rows_seen > 0, "cannot sample an empty database");
        if !self.back.is_empty() {
            let tail = std::mem::take(&mut self.back);
            self.resolve_chunk(self.back_start, &tail);
        }
        let mut matrix = ifs_database::BitMatrix::zeros(self.params.sample_rows, self.dims);
        for (r, slot) in self.slots.iter().enumerate() {
            let row = slot.as_ref().expect("chunk 0 always fills every slot");
            for &c in row.items() {
                matrix.set(r, c as usize, true);
            }
        }
        Subsample {
            sample: Database::from_matrix(matrix),
            epsilon: self.params.epsilon,
            threads: 1,
        }
    }
}

impl MergeableSketch for SubsampleBuilder {
    /// Absorbs the partial build covering the rows immediately after
    /// `self`'s. Associative by construction; **not commutative** — row
    /// order is part of the sample's identity, so non-adjacent or
    /// out-of-order partials are refused.
    fn merge(&mut self, other: Self) -> Result<(), MergeError> {
        if other.dims != self.dims
            || other.seed != self.seed
            || other.params.sample_rows != self.params.sample_rows
            || other.params.epsilon.to_bits() != self.params.epsilon.to_bits()
        {
            return Err(MergeError::Incompatible(format!(
                "Subsample partials differ: dims {} vs {}, seed {:#x} vs {:#x}, s {} vs {}, \
                 epsilon {} vs {}",
                self.dims,
                other.dims,
                self.seed,
                other.seed,
                self.params.sample_rows,
                other.params.sample_rows,
                self.params.epsilon,
                other.params.epsilon,
            )));
        }
        let expected = self.offset + self.rows_seen;
        if other.offset != expected {
            return Err(MergeError::NonContiguous { expected, got: other.offset });
        }
        // `other`'s front rows are contiguous with our tail: replay them
        // (possibly completing — and resolving — our pending chunk). Their
        // global indices line up because fronts end exactly at the chunk
        // boundary `other`'s back starts on.
        let other_reached_back = other.front.len() == other.front_capacity();
        for row in &other.front {
            self.observe_row(row);
        }
        // `other`'s resolved winners come from strictly later chunks than
        // anything we resolved: later wins.
        for (mine, theirs) in self.slots.iter_mut().zip(other.slots) {
            if theirs.is_some() {
                *mine = theirs;
            }
        }
        // Adopt `other`'s pending chunk and progress — but only if `other`
        // actually reached its back region (filled its front): otherwise
        // its `back_start` is still the speculative first boundary and all
        // its rows were replayed above.
        if other_reached_back {
            if !other.back.is_empty() {
                debug_assert!(
                    self.back.is_empty(),
                    "boundary stitching must have drained our back"
                );
                self.back = other.back;
            }
            if other.back_start > self.back_start {
                self.back_start = other.back_start;
            }
        }
        self.rows_seen += other.rows_seen - other.front.len() as u64;
        Ok(())
    }
}

/// Partial-build identity: every field of the fold state, ε compared by
/// bit pattern — two equal builders keep folding, merging, and finishing
/// bit-identically.
impl PartialEq for SubsampleBuilder {
    fn eq(&self, other: &Self) -> bool {
        self.dims == other.dims
            && self.seed == other.seed
            && self.params.sample_rows == other.params.sample_rows
            && self.params.epsilon.to_bits() == other.params.epsilon.to_bits()
            && self.offset == other.offset
            && self.rows_seen == other.rows_seen
            && self.front == other.front
            && self.back == other.back
            && self.back_start == other.back_start
            && self.slots == other.slots
    }
}

impl Eq for SubsampleBuilder {}

/// Body: the complete fold state — `(dims, seed, s, ε)` build key, stream
/// position (`offset`, `rows_seen`, `back_start`), the front/back boundary
/// buffers, and the per-slot winners. Snapshotting a *partial* build is
/// what lets ingestion migrate across processes: a decoded builder keeps
/// observing, merging, and finishing bit-identically to one that never
/// left memory (DESIGN.md §9 + §10).
impl Snapshot for SubsampleBuilder {
    const KIND: u16 = KIND_SUBSAMPLE_BUILDER;

    fn encode_body(&self, w: &mut Writer) {
        w.varint(self.dims as u64);
        w.u64(self.seed);
        w.varint(self.params.sample_rows as u64);
        w.f64_bits(self.params.epsilon);
        w.varint(self.offset);
        w.varint(self.rows_seen);
        w.varint(self.back_start);
        w.varint(self.front.len() as u64);
        for row in &self.front {
            codec::write_itemset(w, row);
        }
        w.varint(self.back.len() as u64);
        for row in &self.back {
            codec::write_itemset(w, row);
        }
        for slot in &self.slots {
            match slot {
                Some(row) => {
                    w.u8(1);
                    codec::write_itemset(w, row);
                }
                None => w.u8(0),
            }
        }
    }

    fn decode_body(r: &mut Reader, _version: u16) -> Result<Self, DecodeError> {
        let dims = r.varint_usize()?;
        let seed = r.u64()?;
        let sample_rows = r.varint_usize()?;
        if sample_rows == 0 {
            return Err(DecodeError::Corrupt("sample count must be positive".into()));
        }
        let epsilon = r.f64_bits()?;
        let offset = r.varint()?;
        let rows_seen = r.varint()?;
        let back_start = r.varint()?;
        let k = INGEST_CHUNK_ROWS as u64;
        // Checked: an offset in the last chunk of the u64 range has no
        // next chunk boundary, so a crafted offset is a typed refusal —
        // never wrapping arithmetic that would inflate front_capacity.
        let next_boundary = offset.checked_next_multiple_of(k).ok_or_else(|| {
            DecodeError::Corrupt(format!("row offset {offset} has no chunk boundary above it"))
        })?;
        let front_capacity = (next_boundary - offset) as usize;
        let front_len = r.varint_usize()?;
        if front_len > front_capacity {
            return Err(DecodeError::Corrupt(format!(
                "front buffer claims {front_len} rows, capacity at offset {offset} is \
                 {front_capacity}"
            )));
        }
        let mut front = Vec::with_capacity(front_len);
        for _ in 0..front_len {
            front.push(codec::read_itemset(r, dims)?);
        }
        let back_len = r.varint_usize()?;
        if back_len >= INGEST_CHUNK_ROWS {
            return Err(DecodeError::Corrupt(format!(
                "back buffer claims {back_len} rows, full chunks of {INGEST_CHUNK_ROWS} are \
                 always resolved"
            )));
        }
        let mut back = Vec::with_capacity(back_len);
        for _ in 0..back_len {
            back.push(codec::read_itemset(r, dims)?);
        }
        r.require(sample_rows)?; // each slot costs >= 1 presence byte
        let mut slots = Vec::with_capacity(sample_rows);
        for _ in 0..sample_rows {
            slots.push(match r.u8()? {
                0 => None,
                1 => Some(codec::read_itemset(r, dims)?),
                other => {
                    return Err(DecodeError::Corrupt(format!(
                        "slot presence flag must be 0 or 1, got {other}"
                    )))
                }
            });
        }
        Ok(Self {
            dims,
            seed,
            params: SubsampleParams { sample_rows, epsilon },
            offset,
            rows_seen,
            front,
            back,
            back_start,
            slots,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_database::generators::{self, Plant};

    #[test]
    fn estimator_accuracy_on_planted_itemset() {
        let mut rng = Rng64::seeded(31);
        let t = Itemset::new(vec![1, 5]);
        let db = generators::planted(
            50_000,
            16,
            0.02,
            &[Plant { itemset: t.clone(), frequency: 0.3 }],
            &mut rng,
        );
        let truth = db.frequency(&t);
        let params = SketchParams::new(2, 0.05, 0.05);
        let s = Subsample::build(&db, &params, Guarantee::ForEachEstimator, &mut rng);
        let est = s.estimate(&t);
        assert!((est - truth).abs() <= params.epsilon, "est {est} truth {truth}");
    }

    #[test]
    fn indicator_separates_frequent_from_rare() {
        let mut rng = Rng64::seeded(32);
        let hot = Itemset::new(vec![0, 1]);
        let cold = Itemset::new(vec![10, 11]);
        let db = generators::planted(
            20_000,
            12,
            0.0,
            &[
                Plant { itemset: hot.clone(), frequency: 0.25 },
                Plant { itemset: cold.clone(), frequency: 0.01 },
            ],
            &mut rng,
        );
        let params = SketchParams::new(2, 0.1, 0.05);
        let s = Subsample::build(&db, &params, Guarantee::ForEachIndicator, &mut rng);
        assert!(s.is_frequent(&hot));
        assert!(!s.is_frequent(&cold));
    }

    #[test]
    fn sample_counts_ordered_by_strength() {
        // ε must be below 1/16 for the 1/ε² estimator cost to dominate the
        // indicator's 16/ε constant.
        let params = SketchParams::new(3, 0.01, 0.05);
        let fe_i = Subsample::sample_count(64, &params, Guarantee::ForEachIndicator);
        let fe_e = Subsample::sample_count(64, &params, Guarantee::ForEachEstimator);
        let fa_i = Subsample::sample_count(64, &params, Guarantee::ForAllIndicator);
        let fa_e = Subsample::sample_count(64, &params, Guarantee::ForAllEstimator);
        assert!(fa_i > fe_i, "union bound costs samples");
        assert!(fa_e > fe_e);
        assert!(fe_e > fe_i, "estimator (1/ε²) beats indicator (1/ε) in cost");
    }

    #[test]
    fn size_independent_of_n() {
        let mut rng = Rng64::seeded(33);
        let small = generators::uniform(1_000, 32, 0.2, &mut rng);
        let large = generators::uniform(50_000, 32, 0.2, &mut rng);
        let params = SketchParams::new(2, 0.1, 0.1);
        let s1 = Subsample::build(&small, &params, Guarantee::ForEachEstimator, &mut rng);
        let s2 = Subsample::build(&large, &params, Guarantee::ForEachEstimator, &mut rng);
        assert_eq!(s1.size_bits(), s2.size_bits(), "sketch size must not grow with n");
    }

    #[test]
    fn explicit_sample_count_is_respected() {
        let mut rng = Rng64::seeded(34);
        let db = generators::uniform(100, 8, 0.5, &mut rng);
        let s = Subsample::with_sample_count(&db, 17, 0.1, &mut rng);
        assert_eq!(s.rows(), 17);
    }

    #[test]
    fn batch_queries_match_scalar_queries() {
        let mut rng = Rng64::seeded(36);
        let db = generators::uniform(600, 20, 0.4, &mut rng);
        let params = SketchParams::new(3, 0.08, 0.05);
        let s = Subsample::build(&db, &params, Guarantee::ForEachEstimator, &mut rng);
        let queries: Vec<Itemset> = (0..50)
            .map(|_| (0..1 + rng.below(4)).map(|_| rng.below(20) as u32).collect())
            .chain([Itemset::empty()])
            .collect();
        let est = s.estimate_batch(&queries);
        let ind = s.is_frequent_batch(&queries);
        for (i, t) in queries.iter().enumerate() {
            assert_eq!(est[i], s.estimate(t), "estimate diverged on {t}");
            assert_eq!(ind[i], s.is_frequent(t), "indicator diverged on {t}");
        }
    }

    #[test]
    #[should_panic(expected = "empty database")]
    fn sampling_empty_db_panics() {
        let mut rng = Rng64::seeded(35);
        let db = Database::zeros(0, 4);
        Subsample::with_sample_count(&db, 5, 0.1, &mut rng);
    }

    #[test]
    #[should_panic(expected = "sample count must be positive")]
    fn zero_sample_count_is_rejected() {
        // Historically this built a 0-row sample whose frequency queries
        // were 0/0; now it is rejected at construction, before either the
        // scalar or the batched query path can observe an empty sample.
        let mut rng = Rng64::seeded(37);
        let db = Database::zeros(10, 4);
        Subsample::with_sample_count(&db, 0, 0.1, &mut rng);
    }

    #[test]
    fn lemma9_sample_counts_are_always_positive() {
        // No (ε, δ, d, k) combination may round the Lemma 9 count to 0 —
        // otherwise `build` would hit the 0-row rejection above.
        for eps in [0.01, 0.5, 0.999] {
            for delta in [1e-6, 0.5, 0.999] {
                for (d, k) in [(1usize, 1usize), (4, 2), (64, 4), (256, 8)] {
                    let params = SketchParams::new(k, eps, delta);
                    for g in [
                        Guarantee::ForEachIndicator,
                        Guarantee::ForEachEstimator,
                        Guarantee::ForAllIndicator,
                        Guarantee::ForAllEstimator,
                    ] {
                        let s = Subsample::sample_count(d, &params, g);
                        assert!(s >= 1, "s = 0 for eps={eps} delta={delta} d={d} k={k} {g:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn streamed_build_is_bit_identical_to_one_shot() {
        let mut rng = Rng64::seeded(40);
        let db = generators::uniform(500, 16, 0.3, &mut rng);
        let params = SubsampleParams { sample_rows: 37, epsilon: 0.1 };
        let one_shot = Subsample::with_sample_count_seeded(&db, 37, 0.1, 0xFEED);
        // The same rows streamed one by one through a builder.
        let mut b = SubsampleBuilder::begin(db.dims(), 0xFEED, &params);
        for r in 0..db.rows() {
            b.observe_row(&db.row_itemset(r));
        }
        assert_eq!(b.rows_seen(), 500);
        let streamed = b.finish();
        assert_eq!(streamed.sample(), one_shot.sample(), "streamed sample diverged");
    }

    #[test]
    fn merged_partial_builds_match_one_pass() {
        let mut rng = Rng64::seeded(41);
        let db = generators::uniform(400, 12, 0.4, &mut rng);
        let params = SubsampleParams { sample_rows: 23, epsilon: 0.1 };
        let one_shot = Subsample::with_sample_count_seeded(&db, 23, 0.1, 7);
        for split in [1usize, 100, 399] {
            let mut a = SubsampleBuilder::begin(db.dims(), 7, &params);
            let mut b = SubsampleBuilder::begin_at(db.dims(), 7, &params, split as u64);
            for r in 0..split {
                a.observe_row(&db.row_itemset(r));
            }
            for r in split..db.rows() {
                b.observe_row(&db.row_itemset(r));
            }
            a.merge(b).expect("contiguous partials merge");
            assert_eq!(a.finish().sample(), one_shot.sample(), "split={split}");
        }
    }

    #[test]
    fn sharded_build_matches_serial_at_every_thread_count() {
        let mut rng = Rng64::seeded(42);
        let db = generators::uniform(900, 10, 0.5, &mut rng);
        let serial = Subsample::with_sample_count_seeded(&db, 31, 0.2, 0xABCD);
        for threads in [1usize, 2, 4] {
            let sharded = Subsample::with_sample_count_sharded(&db, 31, 0.2, 0xABCD, threads);
            assert_eq!(sharded.sample(), serial.sample(), "threads={threads}");
        }
    }

    /// Streams larger than one ingest chunk exercise the mid-stream chunk
    /// resolutions and the front/back stitching at real chunk boundaries —
    /// both aligned and unaligned merge splits must reproduce the one-pass
    /// fold, and so must the multi-chunk sharded build.
    #[test]
    fn chunk_boundary_crossings_stay_bit_identical() {
        let n = 2 * INGEST_CHUNK_ROWS + 137;
        let db = Database::from_fn(n, 6, |r, c| (r * 31 + c * 7) % 11 < 4);
        let params = SubsampleParams { sample_rows: 9, epsilon: 0.1 };
        let one_shot = Subsample::with_sample_count_seeded(&db, 9, 0.1, 0xC0DE);
        for split in [
            1usize,
            INGEST_CHUNK_ROWS - 1,
            INGEST_CHUNK_ROWS, // chunk-aligned: empty front on the tail partial
            INGEST_CHUNK_ROWS + 1,
            2 * INGEST_CHUNK_ROWS + 100,
        ] {
            let mut a = SubsampleBuilder::begin(db.dims(), 0xC0DE, &params);
            let mut b = SubsampleBuilder::begin_at(db.dims(), 0xC0DE, &params, split as u64);
            for r in 0..split {
                a.observe_row(&db.row_itemset(r));
            }
            for r in split..n {
                b.observe_row(&db.row_itemset(r));
            }
            a.merge(b).expect("contiguous partials merge");
            assert_eq!(a.finish().sample(), one_shot.sample(), "split={split}");
        }
        for threads in [1usize, 3] {
            let sharded = Subsample::with_sample_count_sharded(&db, 9, 0.1, 0xC0DE, threads);
            assert_eq!(sharded.sample(), one_shot.sample(), "threads={threads}");
        }
    }

    #[test]
    fn non_contiguous_merge_is_refused() {
        let params = SubsampleParams { sample_rows: 5, epsilon: 0.1 };
        let mut a = SubsampleBuilder::begin(4, 1, &params);
        a.observe_row(&Itemset::singleton(0));
        let b = SubsampleBuilder::begin_at(4, 1, &params, 10);
        match a.merge(b) {
            Err(crate::streaming::MergeError::NonContiguous { expected: 1, got: 10 }) => {}
            other => panic!("expected NonContiguous refusal, got {other:?}"),
        }
        // Mismatched seeds are structural incompatibilities.
        let c = SubsampleBuilder::begin_at(4, 2, &params, 1);
        assert!(matches!(a.merge(c), Err(crate::streaming::MergeError::Incompatible(_))));
    }

    #[test]
    fn sample_distribution_is_uniform_over_rows() {
        // Rows are distinguishable singletons; with s samples of n rows the
        // per-row hit count concentrates around s/n. This guards the
        // chunked-reservoir math (replace probability m/(o+m), telescoping
        // to 1/n per row) against off-by-one regressions.
        let n = 64;
        let db = Database::from_fn(n, n, |r, c| r == c);
        let s = 6400;
        let sketch = Subsample::with_sample_count_seeded(&db, s, 0.1, 0x77);
        let mut hits = vec![0usize; n];
        for r in 0..s {
            let row = sketch.sample().row_itemset(r);
            hits[row.items()[0] as usize] += 1;
        }
        let expected = s / n; // 100
        for (row, &h) in hits.iter().enumerate() {
            assert!((40..=180).contains(&h), "row {row} sampled {h} times, expected ~{expected}");
        }
    }

    #[test]
    fn thread_knob_does_not_change_answers() {
        let mut rng = Rng64::seeded(38);
        let db = generators::uniform(700, 24, 0.4, &mut rng);
        let serial = Subsample::with_sample_count(&db, 300, 0.1, &mut Rng64::seeded(9));
        let threaded =
            Subsample::with_sample_count(&db, 300, 0.1, &mut Rng64::seeded(9)).with_threads(4);
        assert_eq!(threaded.threads(), 4);
        let queries: Vec<Itemset> = (0..60)
            .map(|_| (0..1 + rng.below(4)).map(|_| rng.below(24) as u32).collect())
            .collect();
        assert_eq!(threaded.estimate_batch(&queries), serial.estimate_batch(&queries));
        assert_eq!(threaded.is_frequent_batch(&queries), serial.is_frequent_batch(&queries));
    }
}
