//! SUBSAMPLE (Definition 8): uniform row sampling with replacement.
//!
//! The paper's headline upper bound — and, by its lower bounds, an
//! essentially optimal one. The sketch is simply `s` rows drawn uniformly
//! with replacement; queries evaluate frequencies on the sample. Lemma 9
//! gives the sample counts for each of the four guarantees:
//!
//! | Guarantee | rows `s` |
//! |---|---|
//! | For-Each-Indicator | `O(ε⁻¹ log(1/δ))` |
//! | For-Each-Estimator | `O(ε⁻² log(1/δ))` |
//! | For-All-Indicator | `O(ε⁻¹ log(C(d,k)/δ))` |
//! | For-All-Estimator | `O(ε⁻² log(C(d,k)/δ))` |

use crate::params::{Guarantee, SketchParams};
use crate::traits::{FrequencyEstimator, FrequencyIndicator, Parallel, Sketch};
use ifs_database::{serialize, Database, Itemset};
use ifs_util::threads::clamp_threads;
use ifs_util::{tail, Rng64};

/// A uniform with-replacement row sample of the database.
#[derive(Clone, Debug)]
pub struct Subsample {
    sample: Database,
    epsilon: f64,
    threads: usize,
}

impl Subsample {
    /// Builds a sketch for the given guarantee, choosing the sample count
    /// from Lemma 9.
    pub fn build(
        db: &Database,
        params: &SketchParams,
        guarantee: Guarantee,
        rng: &mut Rng64,
    ) -> Self {
        let s = Self::sample_count(db.dims(), params, guarantee);
        Self::with_sample_count(db, s, params.epsilon, rng)
    }

    /// Builds a sketch with an explicit number of sampled rows — the knob the
    /// lower-bound experiments turn to trade space against accuracy.
    ///
    /// `s` must be positive: a 0-row sample answers no query (its frequency
    /// estimates would be `0/0`), and every Lemma 9 sample count is ≥ 1, so
    /// an `s = 0` request is always a caller bug.
    pub fn with_sample_count(db: &Database, s: usize, epsilon: f64, rng: &mut Rng64) -> Self {
        assert!(db.rows() > 0, "cannot sample an empty database");
        assert!(s > 0, "sample count must be positive: a 0-row sample answers no query");
        let indices: Vec<usize> = (0..s).map(|_| rng.below(db.rows())).collect();
        Self { sample: db.select_rows(&indices), epsilon, threads: 1 }
    }

    /// Lemma 9's sample count for the guarantee. For the indicator variants
    /// the estimate must resolve the threshold gap `[ε/2, ε]`, which is what
    /// the `16/ε` constant in [`ifs_util::tail::samples_foreach_indicator`]
    /// accounts for.
    pub fn sample_count(d: usize, params: &SketchParams, guarantee: Guarantee) -> usize {
        let (eps, delta) = (params.epsilon, params.delta);
        let s = match guarantee {
            Guarantee::ForEachIndicator => tail::samples_foreach_indicator(eps, delta),
            Guarantee::ForEachEstimator => tail::samples_foreach_estimator(eps, delta),
            Guarantee::ForAllIndicator => {
                tail::samples_forall_indicator(d as u64, params.k as u64, eps, delta)
            }
            Guarantee::ForAllEstimator => {
                tail::samples_forall_estimator(d as u64, params.k as u64, eps, delta)
            }
        };
        s as usize
    }

    /// Number of sampled rows.
    pub fn rows(&self) -> usize {
        self.sample.rows()
    }

    /// The sampled rows as a database.
    pub fn sample(&self) -> &Database {
        &self.sample
    }
}

impl Sketch for Subsample {
    fn size_bits(&self) -> u64 {
        serialize::size_bits(&self.sample)
    }
}

impl FrequencyEstimator for Subsample {
    /// Queries run on the sample's cached columnar view ([`Database::columns`]):
    /// a sketch exists to be queried many times, so the one-off transpose of
    /// the (small) sample amortizes immediately. The answer is the same
    /// integer support over the same rows as the row-major path, divided by
    /// the same row count — bit-identical to `sample().frequency(itemset)`.
    fn estimate(&self, itemset: &Itemset) -> f64 {
        self.sample.columns().frequency(itemset)
    }

    /// Batches run with the sketch's thread knob ([`Parallel`]): serial on
    /// the cached [`ColumnStore`](ifs_database::ColumnStore) at 1 thread,
    /// on the sharded store above — bit-identical either way (DESIGN.md §8).
    fn estimate_batch(&self, itemsets: &[Itemset]) -> Vec<f64> {
        self.sample.frequencies_with_threads(itemsets, self.threads)
    }
}

impl Parallel for Subsample {
    fn set_threads(&mut self, threads: usize) {
        self.threads = clamp_threads(threads);
    }

    fn threads(&self) -> usize {
        self.threads
    }
}

impl FrequencyIndicator for Subsample {
    fn is_frequent(&self, itemset: &Itemset) -> bool {
        self.estimate(itemset) >= 0.75 * self.epsilon
    }

    fn is_frequent_batch(&self, itemsets: &[Itemset]) -> Vec<bool> {
        let thresh = 0.75 * self.epsilon;
        self.estimate_batch(itemsets).into_iter().map(|f| f >= thresh).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_database::generators::{self, Plant};

    #[test]
    fn estimator_accuracy_on_planted_itemset() {
        let mut rng = Rng64::seeded(31);
        let t = Itemset::new(vec![1, 5]);
        let db = generators::planted(
            50_000,
            16,
            0.02,
            &[Plant { itemset: t.clone(), frequency: 0.3 }],
            &mut rng,
        );
        let truth = db.frequency(&t);
        let params = SketchParams::new(2, 0.05, 0.05);
        let s = Subsample::build(&db, &params, Guarantee::ForEachEstimator, &mut rng);
        let est = s.estimate(&t);
        assert!((est - truth).abs() <= params.epsilon, "est {est} truth {truth}");
    }

    #[test]
    fn indicator_separates_frequent_from_rare() {
        let mut rng = Rng64::seeded(32);
        let hot = Itemset::new(vec![0, 1]);
        let cold = Itemset::new(vec![10, 11]);
        let db = generators::planted(
            20_000,
            12,
            0.0,
            &[
                Plant { itemset: hot.clone(), frequency: 0.25 },
                Plant { itemset: cold.clone(), frequency: 0.01 },
            ],
            &mut rng,
        );
        let params = SketchParams::new(2, 0.1, 0.05);
        let s = Subsample::build(&db, &params, Guarantee::ForEachIndicator, &mut rng);
        assert!(s.is_frequent(&hot));
        assert!(!s.is_frequent(&cold));
    }

    #[test]
    fn sample_counts_ordered_by_strength() {
        // ε must be below 1/16 for the 1/ε² estimator cost to dominate the
        // indicator's 16/ε constant.
        let params = SketchParams::new(3, 0.01, 0.05);
        let fe_i = Subsample::sample_count(64, &params, Guarantee::ForEachIndicator);
        let fe_e = Subsample::sample_count(64, &params, Guarantee::ForEachEstimator);
        let fa_i = Subsample::sample_count(64, &params, Guarantee::ForAllIndicator);
        let fa_e = Subsample::sample_count(64, &params, Guarantee::ForAllEstimator);
        assert!(fa_i > fe_i, "union bound costs samples");
        assert!(fa_e > fe_e);
        assert!(fe_e > fe_i, "estimator (1/ε²) beats indicator (1/ε) in cost");
    }

    #[test]
    fn size_independent_of_n() {
        let mut rng = Rng64::seeded(33);
        let small = generators::uniform(1_000, 32, 0.2, &mut rng);
        let large = generators::uniform(50_000, 32, 0.2, &mut rng);
        let params = SketchParams::new(2, 0.1, 0.1);
        let s1 = Subsample::build(&small, &params, Guarantee::ForEachEstimator, &mut rng);
        let s2 = Subsample::build(&large, &params, Guarantee::ForEachEstimator, &mut rng);
        assert_eq!(s1.size_bits(), s2.size_bits(), "sketch size must not grow with n");
    }

    #[test]
    fn explicit_sample_count_is_respected() {
        let mut rng = Rng64::seeded(34);
        let db = generators::uniform(100, 8, 0.5, &mut rng);
        let s = Subsample::with_sample_count(&db, 17, 0.1, &mut rng);
        assert_eq!(s.rows(), 17);
    }

    #[test]
    fn batch_queries_match_scalar_queries() {
        let mut rng = Rng64::seeded(36);
        let db = generators::uniform(600, 20, 0.4, &mut rng);
        let params = SketchParams::new(3, 0.08, 0.05);
        let s = Subsample::build(&db, &params, Guarantee::ForEachEstimator, &mut rng);
        let queries: Vec<Itemset> = (0..50)
            .map(|_| (0..1 + rng.below(4)).map(|_| rng.below(20) as u32).collect())
            .chain([Itemset::empty()])
            .collect();
        let est = s.estimate_batch(&queries);
        let ind = s.is_frequent_batch(&queries);
        for (i, t) in queries.iter().enumerate() {
            assert_eq!(est[i], s.estimate(t), "estimate diverged on {t}");
            assert_eq!(ind[i], s.is_frequent(t), "indicator diverged on {t}");
        }
    }

    #[test]
    #[should_panic(expected = "empty database")]
    fn sampling_empty_db_panics() {
        let mut rng = Rng64::seeded(35);
        let db = Database::zeros(0, 4);
        Subsample::with_sample_count(&db, 5, 0.1, &mut rng);
    }

    #[test]
    #[should_panic(expected = "sample count must be positive")]
    fn zero_sample_count_is_rejected() {
        // Historically this built a 0-row sample whose frequency queries
        // were 0/0; now it is rejected at construction, before either the
        // scalar or the batched query path can observe an empty sample.
        let mut rng = Rng64::seeded(37);
        let db = Database::zeros(10, 4);
        Subsample::with_sample_count(&db, 0, 0.1, &mut rng);
    }

    #[test]
    fn lemma9_sample_counts_are_always_positive() {
        // No (ε, δ, d, k) combination may round the Lemma 9 count to 0 —
        // otherwise `build` would hit the 0-row rejection above.
        for eps in [0.01, 0.5, 0.999] {
            for delta in [1e-6, 0.5, 0.999] {
                for (d, k) in [(1usize, 1usize), (4, 2), (64, 4), (256, 8)] {
                    let params = SketchParams::new(k, eps, delta);
                    for g in [
                        Guarantee::ForEachIndicator,
                        Guarantee::ForEachEstimator,
                        Guarantee::ForAllIndicator,
                        Guarantee::ForAllEstimator,
                    ] {
                        let s = Subsample::sample_count(d, &params, g);
                        assert!(s >= 1, "s = 0 for eps={eps} delta={delta} d={d} k={k} {g:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn thread_knob_does_not_change_answers() {
        let mut rng = Rng64::seeded(38);
        let db = generators::uniform(700, 24, 0.4, &mut rng);
        let serial = Subsample::with_sample_count(&db, 300, 0.1, &mut Rng64::seeded(9));
        let threaded =
            Subsample::with_sample_count(&db, 300, 0.1, &mut Rng64::seeded(9)).with_threads(4);
        assert_eq!(threaded.threads(), 4);
        let queries: Vec<Itemset> = (0..60)
            .map(|_| (0..1 + rng.below(4)).map(|_| rng.below(24) as u32).collect())
            .collect();
        assert_eq!(threaded.estimate_batch(&queries), serial.estimate_batch(&queries));
        assert_eq!(threaded.is_frequent_batch(&queries), serial.is_frequent_batch(&queries));
    }
}
