//! Closed-form space bounds: Theorem 12 (upper) and Theorems 13–17 (lower).
//!
//! All formulas return **bits** as `f64` (they are Θ-expressions; constants
//! follow the paper's statements with the explicit constants used in our
//! implementations where the paper leaves them implicit). The experiment
//! harness tabulates these against the realized sizes of the actual sketches
//! (experiment E1) and against the recoverable-bit counts of the executable
//! lower-bound constructions (E3–E8), reproducing the tightness discussion of
//! §3.1.

use crate::params::Guarantee;
use ifs_util::combin::log2_binomial;

/// Inputs to the bound formulas: the paper's `(n, d, k, ε, δ)`.
#[derive(Clone, Copy, Debug)]
pub struct Regime {
    /// Rows.
    pub n: u64,
    /// Attributes.
    pub d: u64,
    /// Itemset cardinality.
    pub k: u64,
    /// Precision / threshold.
    pub epsilon: f64,
    /// Failure probability.
    pub delta: f64,
}

impl Regime {
    /// `log₂ C(d, k)` — the log of the query count, ubiquitous below.
    pub fn log2_queries(&self) -> f64 {
        log2_binomial(self.d, self.k)
    }
}

/// RELEASE-DB size: `n·d` bits.
pub fn release_db_bits(r: &Regime) -> f64 {
    (r.n as f64) * (r.d as f64)
}

/// RELEASE-ANSWERS size: `C(d,k)` bits for indicators,
/// `C(d,k)·log₂(1/ε)` for estimators (Definition 7 discussion).
pub fn release_answers_bits(r: &Regime, guarantee: Guarantee) -> f64 {
    let count = 2f64.powf(r.log2_queries());
    if guarantee.is_estimator() {
        count * (1.0 / r.epsilon).log2().max(1.0)
    } else {
        count
    }
}

/// SUBSAMPLE size (Lemma 9): `d` bits per row times the per-guarantee sample
/// count.
pub fn subsample_bits(r: &Regime, guarantee: Guarantee) -> f64 {
    let ln2 = std::f64::consts::LN_2;
    let d = r.d as f64;
    let eps = r.epsilon;
    let delta = r.delta;
    let ln_queries = r.log2_queries() * ln2;
    let s = match guarantee {
        Guarantee::ForEachIndicator => 16.0 * (2.0 / delta).ln() / eps,
        Guarantee::ForEachEstimator => (2.0 / delta).ln() / (eps * eps),
        Guarantee::ForAllIndicator => 16.0 / eps * (2.0f64.ln() + ln_queries + (1.0 / delta).ln()),
        Guarantee::ForAllEstimator => {
            ((2.0f64).ln() + ln_queries + (1.0 / delta).ln()) / (eps * eps)
        }
    };
    d * s
}

/// Theorem 12: the naive upper bound — the minimum of the three algorithms.
pub fn naive_upper_bound_bits(r: &Regime, guarantee: Guarantee) -> f64 {
    release_db_bits(r).min(release_answers_bits(r, guarantee)).min(subsample_bits(r, guarantee))
}

/// Which of the three naive algorithms achieves [`naive_upper_bound_bits`].
pub fn naive_winner(r: &Regime, guarantee: Guarantee) -> &'static str {
    let db = release_db_bits(r);
    let ans = release_answers_bits(r, guarantee);
    let sub = subsample_bits(r, guarantee);
    if db <= ans && db <= sub {
        "release-db"
    } else if ans <= sub {
        "release-answers"
    } else {
        "subsample"
    }
}

/// Theorem 13/14 lower bound `Ω(d/ε)` for indicator sketches
/// (both For-All, for k ≥ 2, and For-Each). The construction encodes exactly
/// `d/(2ε)` free bits, which is the constant we report.
///
/// Returns `None` outside the theorem's applicability range
/// `1/ε ≤ C(d/2, k−1)`.
pub fn indicator_lower_bound_bits(r: &Regime) -> Option<f64> {
    if r.k < 2 {
        return None;
    }
    let inv_eps = 1.0 / r.epsilon;
    if inv_eps.log2() > log2_binomial(r.d / 2, r.k - 1) {
        return None;
    }
    if (r.n as f64) < inv_eps {
        return None;
    }
    Some(r.d as f64 / (2.0 * r.epsilon))
}

/// Theorem 15 lower bound `Ω(k·d·log(d/k)/ε)` for For-All-Indicator
/// sketches, k ≥ 3 (the paper proves the constant-ε core for k ≥ 2).
///
/// Returns `None` outside the applicability range
/// `1/ε = O(C(d/3, ⌊(k−1)/2⌋))`.
pub fn forall_indicator_lower_bound_bits(r: &Regime) -> Option<f64> {
    if r.k < 3 || r.d <= r.k {
        return None;
    }
    let inv_eps = 1.0 / r.epsilon;
    if inv_eps.log2() > log2_binomial(r.d / 3, (r.k - 1) / 2) {
        return None;
    }
    let v = (r.k as f64) * ((r.d as f64) / (r.k as f64)).log2();
    if (r.n as f64) < v * (r.d as f64) * inv_eps {
        return None;
    }
    Some(v * r.d as f64 * inv_eps)
}

/// Theorem 16 lower bound `Ω(k·d·log(d/k)/(ε²·log^(q)(1/ε)))` for
/// For-All-Estimator sketches (we report with `q = 2`, i.e. a `log log`
/// slack, matching our executable construction).
pub fn forall_estimator_lower_bound_bits(r: &Regime) -> Option<f64> {
    if r.k < 3 || r.d <= r.k {
        return None;
    }
    let inv_eps2 = 1.0 / (r.epsilon * r.epsilon);
    let slack = inv_eps2.log2().log2().max(1.0);
    let v = (r.k as f64) * ((r.d as f64) / (r.k as f64)).log2();
    Some(v * r.d as f64 * inv_eps2 / slack)
}

/// Theorem 17 lower bound `Ω(d/(ε²·log^(q)(1/ε)))` for For-Each-Estimator
/// sketches (again with `q = 2` slack).
pub fn foreach_estimator_lower_bound_bits(r: &Regime) -> Option<f64> {
    if r.k < 3 {
        return None;
    }
    let inv_eps2 = 1.0 / (r.epsilon * r.epsilon);
    let slack = inv_eps2.log2().log2().max(1.0);
    Some(r.d as f64 * inv_eps2 / slack)
}

/// The strongest proven lower bound applicable to a guarantee in a regime.
pub fn best_lower_bound_bits(r: &Regime, guarantee: Guarantee) -> Option<f64> {
    match guarantee {
        Guarantee::ForAllIndicator => forall_indicator_lower_bound_bits(r)
            .or(indicator_lower_bound_bits(r))
            .or(Some(r.d as f64)),
        Guarantee::ForEachIndicator => indicator_lower_bound_bits(r).or(Some(r.d as f64)),
        Guarantee::ForAllEstimator => forall_estimator_lower_bound_bits(r)
            .or(forall_indicator_lower_bound_bits(r))
            .or(indicator_lower_bound_bits(r)),
        Guarantee::ForEachEstimator => {
            foreach_estimator_lower_bound_bits(r).or(indicator_lower_bound_bits(r))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regime() -> Regime {
        // d=256, k=5: C(d,k) ≈ 8.8e9 dwarfs the subsample size, so row
        // sampling is the naive winner — the paper's "typical usage" regime.
        Regime { n: 1_000_000_000, d: 256, k: 5, epsilon: 0.05, delta: 0.1 }
    }

    #[test]
    fn upper_bound_is_min_of_three() {
        let r = regime();
        for g in Guarantee::ALL {
            let ub = naive_upper_bound_bits(&r, g);
            assert!(ub <= release_db_bits(&r));
            assert!(ub <= release_answers_bits(&r, g));
            assert!(ub <= subsample_bits(&r, g));
        }
    }

    #[test]
    fn small_n_makes_release_db_win() {
        let r = Regime { n: 20, d: 64, k: 3, epsilon: 0.001, delta: 0.1 };
        assert_eq!(naive_winner(&r, Guarantee::ForAllEstimator), "release-db");
    }

    #[test]
    fn huge_eps_inverse_makes_release_answers_win() {
        // 1/ε enormous relative to C(d,k): precomputing answers is cheapest.
        let r = Regime { n: u64::MAX, d: 16, k: 2, epsilon: 1e-9, delta: 0.1 };
        assert_eq!(naive_winner(&r, Guarantee::ForAllIndicator), "release-answers");
    }

    #[test]
    fn typical_regime_subsample_wins() {
        let r = regime();
        assert_eq!(naive_winner(&r, Guarantee::ForAllEstimator), "subsample");
    }

    #[test]
    fn lower_bounds_below_upper_bounds() {
        // Sanity: in a regime where both are defined, LB ≤ UB (up to the
        // constants we chose, which are the construction's actual counts).
        let r = regime();
        for g in Guarantee::ALL {
            if let Some(lb) = best_lower_bound_bits(&r, g) {
                let ub = naive_upper_bound_bits(&r, g);
                assert!(lb <= ub * 20.0, "{g}: lower bound {lb} vastly exceeds upper bound {ub}");
            }
        }
    }

    #[test]
    fn theorem13_respects_applicability() {
        // 1/ε > C(d/2, k-1): bound must be inapplicable.
        let r = Regime { n: 1 << 40, d: 8, k: 2, epsilon: 1e-4, delta: 0.1 };
        assert!(indicator_lower_bound_bits(&r).is_none());
        let r = Regime { n: 1 << 40, d: 64, k: 2, epsilon: 0.1, delta: 0.1 };
        assert!(indicator_lower_bound_bits(&r).is_some());
    }

    #[test]
    fn estimator_bound_has_quadratic_eps_dependence() {
        let r1 = Regime { epsilon: 0.01, ..regime() };
        let r2 = Regime { epsilon: 0.001, ..regime() };
        let b1 = forall_estimator_lower_bound_bits(&r1).unwrap();
        let b2 = forall_estimator_lower_bound_bits(&r2).unwrap();
        let ratio = b2 / b1;
        // 10x smaller ε -> ~100x bigger bound, shaved by the loglog slack.
        assert!(ratio > 50.0 && ratio < 100.0, "ratio {ratio}");
    }

    #[test]
    fn subsample_forall_beats_foreach_in_size() {
        let r = regime();
        assert!(
            subsample_bits(&r, Guarantee::ForAllEstimator)
                > subsample_bits(&r, Guarantee::ForEachEstimator)
        );
    }
}
