//! For-Each → For-All boosting (the construction inside Theorem 17's proof).
//!
//! Given any For-Each-Estimator sketch with failure probability δ′ < 1/2, the
//! paper builds a For-All-Estimator sketch by storing `r = O(log(C(d,k)/δ))`
//! independent copies and answering queries with the **median** of the `r`
//! estimates. A Chernoff bound drives each itemset's failure probability down
//! to `δ/C(d,k)`; a union bound then covers all itemsets. The transform costs
//! a multiplicative `O(k·log(d/k))` in space, which is how Theorem 17
//! inherits the Theorem 16 lower bound.
//!
//! [`MedianBoost`] implements the estimator transform and a majority-vote
//! analog for indicators.

use crate::traits::{FrequencyEstimator, FrequencyIndicator, Sketch};
use ifs_database::Itemset;
use ifs_util::combin;

/// `r` independent copies of a base sketch, answering with median / majority.
pub struct MedianBoost<S> {
    copies: Vec<S>,
}

impl<S> MedianBoost<S> {
    /// Boosts with an explicit number of copies. `build_copy(i)` must create
    /// the `i`-th independent copy (fresh randomness per copy).
    pub fn build_with(copies: usize, mut build_copy: impl FnMut(usize) -> S) -> Self {
        assert!(copies >= 1, "need at least one copy");
        Self { copies: (0..copies).map(&mut build_copy).collect() }
    }

    /// The copy count `r = ⌈10·log₂(C(d,k)/δ)⌉` from the proof of
    /// Theorem 17, rounded up to odd so the median is a single estimate.
    pub fn copies_for(d: usize, k: usize, delta: f64) -> usize {
        assert!(delta > 0.0 && delta < 1.0);
        let log_c = combin::log2_binomial(d as u64, k as u64);
        let r = (10.0 * (log_c + (1.0 / delta).log2())).ceil().max(1.0) as usize;
        if r.is_multiple_of(2) {
            r + 1
        } else {
            r
        }
    }

    /// Number of stored copies.
    pub fn len(&self) -> usize {
        self.copies.len()
    }

    /// True if no copies are stored (unreachable via constructors).
    pub fn is_empty(&self) -> bool {
        self.copies.is_empty()
    }

    /// The underlying copies.
    pub fn copies(&self) -> &[S] {
        &self.copies
    }
}

impl<S: Sketch> Sketch for MedianBoost<S> {
    fn size_bits(&self) -> u64 {
        self.copies.iter().map(Sketch::size_bits).sum()
    }
}

impl<S: FrequencyEstimator> FrequencyEstimator for MedianBoost<S> {
    fn estimate(&self, itemset: &Itemset) -> f64 {
        let ests: Vec<f64> = self.copies.iter().map(|c| c.estimate(itemset)).collect();
        ifs_util::stats::median(&ests)
    }
}

impl<S: FrequencyIndicator> FrequencyIndicator for MedianBoost<S> {
    fn is_frequent(&self, itemset: &Itemset) -> bool {
        let votes = self.copies.iter().filter(|c| c.is_frequent(itemset)).count();
        2 * votes > self.copies.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_util::Rng64;
    use std::cell::RefCell;

    /// A deliberately unreliable estimator: correct within ±0.01 with
    /// probability 0.8, else off by 0.5.
    struct Flaky {
        truth: f64,
        rng: RefCell<Rng64>,
    }

    impl Sketch for Flaky {
        fn size_bits(&self) -> u64 {
            32
        }
    }

    impl FrequencyEstimator for Flaky {
        fn estimate(&self, _: &Itemset) -> f64 {
            let mut rng = self.rng.borrow_mut();
            if rng.bernoulli(0.8) {
                self.truth + 0.01 * (rng.unit() - 0.5)
            } else {
                (self.truth + 0.5).min(1.0)
            }
        }
    }

    #[test]
    fn median_suppresses_outliers() {
        let mut seed_rng = Rng64::seeded(41);
        let boost = MedianBoost::build_with(61, |_| Flaky {
            truth: 0.3,
            rng: RefCell::new(seed_rng.fork()),
        });
        let t = Itemset::singleton(0);
        // Each copy fails 20% of the time; the median of 61 fails only if
        // >= 31 fail, a > 6σ event even across 50 repeated queries.
        let mut worst: f64 = 0.0;
        for _ in 0..50 {
            worst = worst.max((boost.estimate(&t) - 0.3).abs());
        }
        assert!(worst < 0.05, "median error {worst}");
    }

    #[test]
    fn size_is_sum_of_copies() {
        let boost = MedianBoost::build_with(5, |_| Flaky {
            truth: 0.1,
            rng: RefCell::new(Rng64::seeded(1)),
        });
        assert_eq!(boost.size_bits(), 5 * 32);
        assert_eq!(boost.len(), 5);
    }

    #[test]
    fn copy_count_grows_with_d_and_shrinks_with_delta() {
        let base = MedianBoost::<Flaky>::copies_for(32, 3, 0.1);
        assert!(MedianBoost::<Flaky>::copies_for(256, 3, 0.1) > base);
        assert!(MedianBoost::<Flaky>::copies_for(32, 3, 0.001) > base);
        // Always odd.
        assert_eq!(base % 2, 1);
    }

    struct ConstIndicator(bool);

    impl Sketch for ConstIndicator {
        fn size_bits(&self) -> u64 {
            1
        }
    }

    impl FrequencyIndicator for ConstIndicator {
        fn is_frequent(&self, _: &Itemset) -> bool {
            self.0
        }
    }

    #[test]
    fn majority_vote_indicator() {
        // 2 yes / 3 no -> false.
        let boost = MedianBoost::build_with(5, |i| ConstIndicator(i < 2));
        assert!(!boost.is_frequent(&Itemset::empty()));
        let boost = MedianBoost::build_with(5, |i| ConstIndicator(i < 3));
        assert!(boost.is_frequent(&Itemset::empty()));
    }
}
