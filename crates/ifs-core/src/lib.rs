//! Itemset frequency sketches — the contribution surface of
//! *Space Lower Bounds for Itemset Frequency Sketches* (PODS 2016).
//!
//! A *sketch* is a pair `(S, Q)`: a (randomized) summarization algorithm `S`
//! mapping a database to a bit string, and a query procedure `Q` answering
//! itemset frequency questions from the summary alone (Definitions 1–4 of the
//! paper). Four contracts arise from crossing two axes:
//!
//! | | **Indicator** (`f_T > ε` vs `f_T < ε/2`) | **Estimator** (±ε) |
//! |---|---|---|
//! | **For-All** (all `k`-itemsets simultaneously w.p. 1−δ) | Def. 1 | Def. 2 |
//! | **For-Each** (each itemset individually w.p. 1−δ) | Def. 3 | Def. 4 |
//!
//! This crate implements the paper's three naive algorithms, which it proves
//! essentially optimal:
//!
//! * [`ReleaseDb`] (Definition 6) — store the database verbatim: `O(nd)` bits,
//!   exact answers.
//! * [`ReleaseAnswersIndicator`] / [`ReleaseAnswersEstimator`] (Definition 7)
//!   — precompute all `C(d,k)` answers: one bit each for indicators,
//!   `O(log 1/ε)` bits each for estimators.
//! * [`Subsample`] (Definition 8) — uniform row sampling with replacement,
//!   with the sample counts of Lemma 9.
//!
//! plus [`boosting`] (the For-Each → For-All median transform from the proof
//! of Theorem 17), [`bounds`] (closed-form upper bounds of Theorem 12 and
//! lower bounds of Theorems 13–17, used by the experiment harness),
//! [`streaming`] (the fold-and-merge build contracts of DESIGN.md §9:
//! every sketch build is a single-pass fold over the rows, and partial
//! builds merge bit-identically to the one-pass fold), and [`snapshot`]
//! (the versioned wire formats of DESIGN.md §10: every sketch encodes to a
//! self-describing byte string, decodes back `==`-identically, and reports
//! the encoded length as its `size_bits()`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boosting;
pub mod bounds;
mod params;
mod release_answers;
mod release_db;
pub mod snapshot;
pub mod streaming;
mod subsample;
mod traits;

pub use params::{Guarantee, SketchParams};
pub use release_answers::{
    ReleaseAnswersEstimator, ReleaseAnswersEstimatorBuilder, ReleaseAnswersIndicator,
    ReleaseAnswersIndicatorBuilder, ReleaseAnswersParams,
};
pub use release_db::{ReleaseDb, ReleaseDbBuilder};
pub use snapshot::{DecodeError, Snapshot};
pub use streaming::{MergeError, MergeableSketch, StreamingBuild};
pub use subsample::{Subsample, SubsampleBuilder, SubsampleParams};
pub use traits::{EstimatorAsIndicator, FrequencyEstimator, FrequencyIndicator, Parallel, Sketch};
