//! RELEASE-DB (Definition 6): the identity sketch.

use crate::traits::{FrequencyEstimator, FrequencyIndicator, Parallel, Sketch};
use ifs_database::{serialize, Database, Itemset};
use ifs_util::threads::clamp_threads;

/// Releases the database verbatim; queries are exact.
///
/// Space is `O(nd)` bits. Exactness means RELEASE-DB satisfies all four
/// contracts of Definitions 1–4 for every `(k, ε, δ)` simultaneously; the
/// indicator is answered with threshold `ε` against the *exact* frequency.
#[derive(Clone, Debug)]
pub struct ReleaseDb {
    db: Database,
    epsilon: f64,
    threads: usize,
}

impl ReleaseDb {
    /// Builds the sketch (a copy of the database) for threshold ε.
    pub fn build(db: &Database, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        Self { db: db.clone(), epsilon, threads: 1 }
    }

    /// The stored database.
    pub fn database(&self) -> &Database {
        &self.db
    }
}

impl Sketch for ReleaseDb {
    fn size_bits(&self) -> u64 {
        serialize::size_bits(&self.db)
    }
}

impl FrequencyEstimator for ReleaseDb {
    /// Queries run on the stored database's cached columnar view; the exact
    /// support is the same integer either way, so answers are bit-identical
    /// to `database().frequency(itemset)`.
    fn estimate(&self, itemset: &Itemset) -> f64 {
        self.db.columns().frequency(itemset)
    }

    /// Batches run with the sketch's thread knob ([`Parallel`]): the
    /// sharded store's summed per-shard popcounts are the same integers the
    /// serial store computes, so answers stay exact and bit-identical.
    fn estimate_batch(&self, itemsets: &[Itemset]) -> Vec<f64> {
        self.db.frequencies_with_threads(itemsets, self.threads)
    }
}

impl Parallel for ReleaseDb {
    fn set_threads(&mut self, threads: usize) {
        self.threads = clamp_threads(threads);
    }

    fn threads(&self) -> usize {
        self.threads
    }
}

impl FrequencyIndicator for ReleaseDb {
    fn is_frequent(&self, itemset: &Itemset) -> bool {
        // Exact frequency: any threshold inside (ε/2, ε] meets Definition 1;
        // we use ≥ ε so "frequent" matches the common f_T ≥ ε convention.
        self.estimate(itemset) >= self.epsilon
    }

    fn is_frequent_batch(&self, itemsets: &[Itemset]) -> Vec<bool> {
        self.estimate_batch(itemsets).into_iter().map(|f| f >= self.epsilon).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_are_exact() {
        let db = Database::from_rows(4, &[vec![0, 1], vec![0], vec![1], vec![0, 1]]);
        let s = ReleaseDb::build(&db, 0.3);
        let t = Itemset::new(vec![0, 1]);
        assert_eq!(s.estimate(&t), db.frequency(&t));
        assert_eq!(s.estimate(&t), 0.5);
    }

    #[test]
    fn indicator_uses_exact_threshold() {
        let db = Database::from_rows(4, &[vec![0], vec![0], vec![1], vec![2]]);
        let s = ReleaseDb::build(&db, 0.5);
        assert!(s.is_frequent(&Itemset::singleton(0))); // f = 0.5 = ε
        assert!(!s.is_frequent(&Itemset::singleton(1))); // f = 0.25
    }

    #[test]
    fn batch_queries_match_scalar_queries() {
        let db = Database::from_rows(6, &[vec![0, 1, 2], vec![0, 1], vec![2, 3], vec![], vec![1]]);
        let s = ReleaseDb::build(&db, 0.3);
        let queries = vec![
            Itemset::empty(),
            Itemset::singleton(1),
            Itemset::new(vec![0, 1]),
            Itemset::new(vec![2, 3, 5]),
        ];
        assert_eq!(
            s.estimate_batch(&queries),
            queries.iter().map(|t| s.estimate(t)).collect::<Vec<_>>()
        );
        assert_eq!(
            s.is_frequent_batch(&queries),
            queries.iter().map(|t| s.is_frequent(t)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn thread_knob_does_not_change_answers() {
        let db = Database::from_rows(6, &[vec![0, 1, 2], vec![0, 1], vec![2, 3], vec![], vec![1]]);
        let serial = ReleaseDb::build(&db, 0.3);
        let threaded = ReleaseDb::build(&db, 0.3).with_threads(8);
        assert_eq!(threaded.threads(), 8);
        let queries = vec![
            Itemset::empty(),
            Itemset::singleton(1),
            Itemset::new(vec![0, 1]),
            Itemset::new(vec![2, 3, 5]),
        ];
        assert_eq!(threaded.estimate_batch(&queries), serial.estimate_batch(&queries));
        assert_eq!(threaded.is_frequent_batch(&queries), serial.is_frequent_batch(&queries));
    }

    #[test]
    fn empty_database_estimates_zero() {
        let s = ReleaseDb::build(&Database::zeros(0, 4), 0.2);
        assert_eq!(s.estimate(&Itemset::singleton(0)), 0.0);
        assert_eq!(s.estimate_batch(&[Itemset::empty()]), vec![0.0]);
    }

    #[test]
    fn size_is_serialized_size() {
        let db = Database::zeros(10, 100);
        let s = ReleaseDb::build(&db, 0.1);
        assert_eq!(s.size_bits(), serialize::size_bits(&db));
        assert_eq!(s.size_bits(), (20 + 10 * 2 * 8) * 8);
    }
}
