//! RELEASE-DB (Definition 6): the identity sketch.

use crate::traits::{FrequencyEstimator, FrequencyIndicator, Sketch};
use ifs_database::{serialize, Database, Itemset};

/// Releases the database verbatim; queries are exact.
///
/// Space is `O(nd)` bits. Exactness means RELEASE-DB satisfies all four
/// contracts of Definitions 1–4 for every `(k, ε, δ)` simultaneously; the
/// indicator is answered with threshold `ε` against the *exact* frequency.
#[derive(Clone, Debug)]
pub struct ReleaseDb {
    db: Database,
    epsilon: f64,
}

impl ReleaseDb {
    /// Builds the sketch (a copy of the database) for threshold ε.
    pub fn build(db: &Database, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        Self { db: db.clone(), epsilon }
    }

    /// The stored database.
    pub fn database(&self) -> &Database {
        &self.db
    }
}

impl Sketch for ReleaseDb {
    fn size_bits(&self) -> u64 {
        serialize::size_bits(&self.db)
    }
}

impl FrequencyEstimator for ReleaseDb {
    fn estimate(&self, itemset: &Itemset) -> f64 {
        self.db.frequency(itemset)
    }
}

impl FrequencyIndicator for ReleaseDb {
    fn is_frequent(&self, itemset: &Itemset) -> bool {
        // Exact frequency: any threshold inside (ε/2, ε] meets Definition 1;
        // we use ≥ ε so "frequent" matches the common f_T ≥ ε convention.
        self.db.frequency(itemset) >= self.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_are_exact() {
        let db = Database::from_rows(4, &[vec![0, 1], vec![0], vec![1], vec![0, 1]]);
        let s = ReleaseDb::build(&db, 0.3);
        let t = Itemset::new(vec![0, 1]);
        assert_eq!(s.estimate(&t), db.frequency(&t));
        assert_eq!(s.estimate(&t), 0.5);
    }

    #[test]
    fn indicator_uses_exact_threshold() {
        let db = Database::from_rows(4, &[vec![0], vec![0], vec![1], vec![2]]);
        let s = ReleaseDb::build(&db, 0.5);
        assert!(s.is_frequent(&Itemset::singleton(0))); // f = 0.5 = ε
        assert!(!s.is_frequent(&Itemset::singleton(1))); // f = 0.25
    }

    #[test]
    fn size_is_serialized_size() {
        let db = Database::zeros(10, 100);
        let s = ReleaseDb::build(&db, 0.1);
        assert_eq!(s.size_bits(), serialize::size_bits(&db));
        assert_eq!(s.size_bits(), (20 + 10 * 2 * 8) * 8);
    }
}
