//! RELEASE-DB (Definition 6): the identity sketch.

use crate::snapshot::{Snapshot, KIND_RELEASE_DB};
use crate::streaming::{MergeError, MergeableSketch, StreamingBuild};
use crate::traits::{FrequencyEstimator, FrequencyIndicator, Parallel, Sketch};
use ifs_database::codec::{self, DecodeError, Reader, Writer};
use ifs_database::{BitMatrix, Database, Itemset};
use ifs_util::threads::clamp_threads;

/// Releases the database verbatim; queries are exact.
///
/// Space is `O(nd)` bits. Exactness means RELEASE-DB satisfies all four
/// contracts of Definitions 1–4 for every `(k, ε, δ)` simultaneously; the
/// indicator is answered with threshold `ε` against the *exact* frequency.
#[derive(Clone, Debug)]
pub struct ReleaseDb {
    db: Database,
    epsilon: f64,
    threads: usize,
}

impl ReleaseDb {
    /// Builds the sketch (a copy of the database) for threshold ε.
    ///
    /// Cloning the matrix and folding the rows one by one store the same
    /// bits, so this is bit-identical to a [`ReleaseDbBuilder`] fold over
    /// the same rows (asserted in `tests/streaming_builds.rs`); the clone
    /// is simply the cheaper path when the whole database is already in
    /// hand.
    pub fn build(db: &Database, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        Self { db: db.clone(), epsilon, threads: 1 }
    }

    /// The stored database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The complete framed snapshot in the **legacy v1 body layout**
    /// (ε + uncompressed database fragment). The v1 decoder is kept
    /// forever, so this is still a valid wire encoding — it exists so
    /// tests, the golden corpus, and the store's migration pass can
    /// manufacture v1 bytes from a current build.
    pub fn snapshot_bytes_v1(&self) -> Vec<u8> {
        let mut body = Writer::new();
        body.f64_bits(self.epsilon);
        codec::write_database(&mut body, &self.db);
        codec::encode_frame(KIND_RELEASE_DB, 1, &body.into_bytes())
    }
}

/// Sketch-level merge: RELEASE-DB over shard A followed by shard B *is*
/// RELEASE-DB over A‖B, so merging appends `other`'s rows — through the
/// [`Database::append_database`] fast path, which extends warm columnar
/// views in place. Associative; **not commutative** (row order is part of
/// the database's identity, though every frequency answer is order-
/// independent). The thread knob of `self` is kept.
impl MergeableSketch for ReleaseDb {
    fn merge(&mut self, other: Self) -> Result<(), MergeError> {
        if other.db.dims() != self.db.dims() {
            return Err(MergeError::Incompatible(format!(
                "ReleaseDb dimensions differ: {} vs {}",
                self.db.dims(),
                other.db.dims()
            )));
        }
        if other.epsilon.to_bits() != self.epsilon.to_bits() {
            return Err(MergeError::Incompatible(format!(
                "ReleaseDb thresholds differ: {} vs {}",
                self.epsilon, other.epsilon
            )));
        }
        self.db.append_database(&other.db);
        Ok(())
    }
}

/// Streaming builder for [`ReleaseDb`]: the fold just accumulates rows —
/// the identity sketch's "summary" is the stream itself (DESIGN.md §9).
#[derive(Clone, Debug)]
pub struct ReleaseDbBuilder {
    matrix: BitMatrix,
    epsilon: f64,
    offset: u64,
}

impl StreamingBuild for ReleaseDbBuilder {
    /// The threshold ε of the finished sketch.
    type Params = f64;
    type Output = ReleaseDb;

    fn begin_at(dims: usize, _seed: u64, epsilon: &f64, row_offset: u64) -> Self {
        assert!(*epsilon > 0.0 && *epsilon < 1.0);
        Self { matrix: BitMatrix::zeros(0, dims), epsilon: *epsilon, offset: row_offset }
    }

    fn observe_row(&mut self, row: &Itemset) {
        let r = self.matrix.rows();
        self.matrix.push_zero_rows(1);
        for &c in row.items() {
            self.matrix.set(r, c as usize, true);
        }
    }

    fn rows_seen(&self) -> u64 {
        self.matrix.rows() as u64
    }

    fn finish(self) -> ReleaseDb {
        assert_eq!(
            self.offset, 0,
            "a partial ReleaseDb build must be merged back to the stream head before finishing"
        );
        ReleaseDb { db: Database::from_matrix(self.matrix), epsilon: self.epsilon, threads: 1 }
    }
}

/// Builder merge: row-order-preserving concatenation of adjacent partials.
/// Associative, not commutative; out-of-order partials are refused.
impl MergeableSketch for ReleaseDbBuilder {
    fn merge(&mut self, other: Self) -> Result<(), MergeError> {
        if other.matrix.cols() != self.matrix.cols() {
            return Err(MergeError::Incompatible(format!(
                "ReleaseDb partials over different widths: {} vs {}",
                self.matrix.cols(),
                other.matrix.cols()
            )));
        }
        if other.epsilon.to_bits() != self.epsilon.to_bits() {
            return Err(MergeError::Incompatible(format!(
                "ReleaseDb partials with different thresholds: {} vs {}",
                self.epsilon, other.epsilon
            )));
        }
        let expected = self.offset + self.rows_seen();
        if other.offset != expected {
            return Err(MergeError::NonContiguous { expected, got: other.offset });
        }
        self.matrix.extend_rows(&other.matrix);
        Ok(())
    }
}

/// Sketch identity is the stored database plus the threshold ε (compared
/// by bit pattern); the [`Parallel`] thread knob is execution state and
/// does not participate.
impl PartialEq for ReleaseDb {
    fn eq(&self, other: &Self) -> bool {
        self.db == other.db && self.epsilon.to_bits() == other.epsilon.to_bits()
    }
}

impl Eq for ReleaseDb {}

impl Sketch for ReleaseDb {
    /// The length of the actual snapshot encoding (DESIGN.md §10) — the
    /// paper's `O(nd)` with its real constants: header, ε, and word
    /// padding included, because serving pays for those bytes too.
    fn size_bits(&self) -> u64 {
        self.snapshot_bits()
    }
}

/// Body: `epsilon` (f64 bits), then the database fragment — uncompressed
/// (v1) or run-length row groups (v2, the written layout). The v1 decoder
/// is kept forever: bytes already on disk stay decodable. Decoded sketches
/// start serial (`threads = 1`).
impl Snapshot for ReleaseDb {
    const KIND: u16 = KIND_RELEASE_DB;
    const VERSION: u16 = 2;

    fn encode_body(&self, w: &mut Writer) {
        w.f64_bits(self.epsilon);
        codec::write_database_compressed(w, &self.db);
    }

    fn decode_body(r: &mut Reader, version: u16) -> Result<Self, DecodeError> {
        let epsilon = r.f64_bits()?;
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(DecodeError::Corrupt(format!(
                "threshold must satisfy 0 < ε < 1, got {epsilon}"
            )));
        }
        let db = match version {
            1 => codec::read_database(r)?,
            _ => codec::read_database_compressed(r)?,
        };
        Ok(Self { db, epsilon, threads: 1 })
    }
}

impl FrequencyEstimator for ReleaseDb {
    /// Queries run on the stored database's cached columnar view; the exact
    /// support is the same integer either way, so answers are bit-identical
    /// to `database().frequency(itemset)`.
    fn estimate(&self, itemset: &Itemset) -> f64 {
        self.db.columns().frequency(itemset)
    }

    /// Batches run with the sketch's thread knob ([`Parallel`]): the
    /// sharded store's summed per-shard popcounts are the same integers the
    /// serial store computes, so answers stay exact and bit-identical.
    fn estimate_batch(&self, itemsets: &[Itemset]) -> Vec<f64> {
        self.db.frequencies_with_threads(itemsets, self.threads)
    }
}

impl Parallel for ReleaseDb {
    fn set_threads(&mut self, threads: usize) {
        self.threads = clamp_threads(threads);
    }

    fn threads(&self) -> usize {
        self.threads
    }
}

impl FrequencyIndicator for ReleaseDb {
    fn is_frequent(&self, itemset: &Itemset) -> bool {
        // Exact frequency: any threshold inside (ε/2, ε] meets Definition 1;
        // we use ≥ ε so "frequent" matches the common f_T ≥ ε convention.
        self.estimate(itemset) >= self.epsilon
    }

    fn is_frequent_batch(&self, itemsets: &[Itemset]) -> Vec<bool> {
        self.estimate_batch(itemsets).into_iter().map(|f| f >= self.epsilon).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_are_exact() {
        let db = Database::from_rows(4, &[vec![0, 1], vec![0], vec![1], vec![0, 1]]);
        let s = ReleaseDb::build(&db, 0.3);
        let t = Itemset::new(vec![0, 1]);
        assert_eq!(s.estimate(&t), db.frequency(&t));
        assert_eq!(s.estimate(&t), 0.5);
    }

    #[test]
    fn indicator_uses_exact_threshold() {
        let db = Database::from_rows(4, &[vec![0], vec![0], vec![1], vec![2]]);
        let s = ReleaseDb::build(&db, 0.5);
        assert!(s.is_frequent(&Itemset::singleton(0))); // f = 0.5 = ε
        assert!(!s.is_frequent(&Itemset::singleton(1))); // f = 0.25
    }

    #[test]
    fn batch_queries_match_scalar_queries() {
        let db = Database::from_rows(6, &[vec![0, 1, 2], vec![0, 1], vec![2, 3], vec![], vec![1]]);
        let s = ReleaseDb::build(&db, 0.3);
        let queries = vec![
            Itemset::empty(),
            Itemset::singleton(1),
            Itemset::new(vec![0, 1]),
            Itemset::new(vec![2, 3, 5]),
        ];
        assert_eq!(
            s.estimate_batch(&queries),
            queries.iter().map(|t| s.estimate(t)).collect::<Vec<_>>()
        );
        assert_eq!(
            s.is_frequent_batch(&queries),
            queries.iter().map(|t| s.is_frequent(t)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn thread_knob_does_not_change_answers() {
        let db = Database::from_rows(6, &[vec![0, 1, 2], vec![0, 1], vec![2, 3], vec![], vec![1]]);
        let serial = ReleaseDb::build(&db, 0.3);
        let threaded = ReleaseDb::build(&db, 0.3).with_threads(8);
        assert_eq!(threaded.threads(), 8);
        let queries = vec![
            Itemset::empty(),
            Itemset::singleton(1),
            Itemset::new(vec![0, 1]),
            Itemset::new(vec![2, 3, 5]),
        ];
        assert_eq!(threaded.estimate_batch(&queries), serial.estimate_batch(&queries));
        assert_eq!(threaded.is_frequent_batch(&queries), serial.is_frequent_batch(&queries));
    }

    #[test]
    fn empty_database_estimates_zero() {
        let s = ReleaseDb::build(&Database::zeros(0, 4), 0.2);
        assert_eq!(s.estimate(&Itemset::singleton(0)), 0.0);
        assert_eq!(s.estimate_batch(&[Itemset::empty()]), vec![0.0]);
    }

    #[test]
    fn builder_fold_matches_one_shot_build() {
        let db = Database::from_rows(5, &[vec![0, 1], vec![2], vec![], vec![1, 4]]);
        let one_shot = ReleaseDb::build(&db, 0.25);
        let streamed = crate::streaming::fold_database::<ReleaseDbBuilder>(&db, 0, &0.25);
        assert_eq!(streamed.database(), one_shot.database());
        assert_eq!(
            streamed.estimate(&Itemset::singleton(1)),
            one_shot.estimate(&Itemset::singleton(1))
        );
    }

    #[test]
    fn sketch_merge_is_row_concatenation() {
        let a = Database::from_rows(4, &[vec![0, 1], vec![2]]);
        let b = Database::from_rows(4, &[vec![3], vec![0, 3]]);
        let mut merged = ReleaseDb::build(&a, 0.25);
        let _ = merged.database().columns(); // warm view: merge must maintain it
        merged.merge(ReleaseDb::build(&b, 0.25)).expect("compatible sketches merge");
        assert_eq!(merged.database(), &a.stack(&b));
        assert!(merged.database().has_column_cache(), "merge rides the append fast path");
        // Width and threshold mismatches refuse.
        let mut x = ReleaseDb::build(&a, 0.25);
        assert!(matches!(
            x.merge(ReleaseDb::build(&Database::zeros(2, 5), 0.25)),
            Err(MergeError::Incompatible(_))
        ));
        assert!(matches!(x.merge(ReleaseDb::build(&b, 0.5)), Err(MergeError::Incompatible(_))));
    }

    #[test]
    fn builder_merge_refuses_out_of_order_partials() {
        let mut a = ReleaseDbBuilder::begin(3, 0, &0.2);
        a.observe_row(&Itemset::singleton(0));
        let mut late = ReleaseDbBuilder::begin_at(3, 0, &0.2, 5);
        late.observe_row(&Itemset::singleton(1));
        assert_eq!(a.merge(late), Err(MergeError::NonContiguous { expected: 1, got: 5 }));
        let mut adjacent = ReleaseDbBuilder::begin_at(3, 0, &0.2, 1);
        adjacent.observe_row(&Itemset::singleton(2));
        a.merge(adjacent).expect("adjacent partials merge");
        let sketch = a.finish();
        assert_eq!(sketch.database(), &Database::from_rows(3, &[vec![0], vec![2]]));
    }

    #[test]
    fn size_is_measured_from_the_snapshot_encoding() {
        let db = Database::zeros(10, 100);
        let s = ReleaseDb::build(&db, 0.1);
        let bytes = s.snapshot_bytes();
        assert_eq!(s.size_bits(), bytes.len() as u64 * 8, "size_bits must equal encoded length");
        // Frame (magic 4 + kind 2 + version 2 + len varint 1 + checksum 8)
        // + v2 body (ε 8 + rows/dims varints 1 + 1 + one run-length group
        // for the 10 identical all-zero rows: repeat 1 + mode 1 + items 1).
        assert_eq!(bytes.len(), 17 + 13);
        assert_eq!(ReleaseDb::from_snapshot(&bytes).expect("roundtrip"), s);
    }

    #[test]
    fn legacy_v1_bytes_stay_decodable() {
        let db = Database::from_rows(70, &[vec![0, 69], vec![3], vec![], vec![3], vec![3]]);
        let s = ReleaseDb::build(&db, 0.1);
        let v1 = s.snapshot_bytes_v1();
        // The v1 layout is the uncompressed fragment at frame version 1:
        // frame 17 + ε 8 + rows/dims varints 1 + 1 + 5 rows x 2 words x 8.
        assert_eq!(v1.len(), 17 + 10 + 80);
        assert_eq!(u16::from_le_bytes([v1[6], v1[7]]), 1, "legacy writer stamps version 1");
        let decoded = ReleaseDb::from_snapshot(&v1).expect("v1 decoder is kept forever");
        assert_eq!(decoded, s);
        // Same sketch, both layouts, identical answers — and the current
        // writer stamps version 2.
        let v2 = s.snapshot_bytes();
        assert_eq!(u16::from_le_bytes([v2[6], v2[7]]), 2);
        let q = Itemset::singleton(3);
        assert_eq!(ReleaseDb::from_snapshot(&v2).expect("v2").estimate(&q), decoded.estimate(&q));
    }
}
