//! Error-correcting codes for the encoding arguments of Theorems 15 and 16.
//!
//! Both proofs finish the same way: the reconstruction step recovers 96% of
//! an auxiliary bit string, so the paper lets that string be "the
//! error-corrected encoding of a vector … using a code with constant rate
//! that is uniquely decodable from 4% errors (e.g. using a Justesen code
//! [Jus72])". This crate supplies that code.
//!
//! [Jus72]: https://doi.org/10.1109/TIT.1972.1054893
//!
//! Rather than Justesen's specific construction we implement the classic
//! concatenation that Justesen codes are a variant of (see DESIGN.md §2):
//!
//! * [`gf256`] — the field GF(2⁸) with log/antilog tables.
//! * [`poly`] — polynomials over GF(2⁸).
//! * [`ReedSolomon`] — systematic RS codes over GF(2⁸) with
//!   Berlekamp–Massey + Chien + Forney decoding (corrects `(n−k)/2` symbol
//!   errors).
//! * [`BinaryLinearCode`] — an inner `[n_in, 8]` binary linear code with
//!   construction-time verified minimum distance and exhaustive
//!   maximum-likelihood decoding (256 codewords).
//! * [`ConcatenatedCode`] — the composition: constant rate, uniquely
//!   decodable from a constant adversarial bit-error fraction, with the
//!   guaranteed fraction computable from the component parameters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary;
mod concat;
pub mod gf256;
pub mod poly;
mod reed_solomon;

pub use binary::BinaryLinearCode;
pub use concat::ConcatenatedCode;
pub use reed_solomon::ReedSolomon;
