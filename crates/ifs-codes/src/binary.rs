//! Inner binary linear codes `[n_in, 8, d]` with verified minimum distance.
//!
//! The concatenation needs a small binary code for one GF(2⁸) symbol per
//! block. We draw random generator matrices (deterministically seeded) and
//! keep the first whose minimum distance — computed *exactly* by enumerating
//! all 255 nonzero codewords — meets the target. This is Gilbert–Varshamov
//! by rejection sampling: for `[32, 8]` a distance-9 code is found within a
//! few draws, and the construction is reproducible because the seed sequence
//! is fixed.
//!
//! Decoding is exhaustive maximum-likelihood over the 256 codewords, which
//! guarantees correction of up to `⌊(d−1)/2⌋` bit errors.

use ifs_util::Rng64;

/// A binary linear code encoding one byte into `n_in ≤ 64` bits.
#[derive(Clone, Debug)]
pub struct BinaryLinearCode {
    n_in: usize,
    rows: [u64; 8],
    codewords: Vec<u64>,
    min_distance: usize,
}

impl BinaryLinearCode {
    /// Searches for a code of length `n_in` with minimum distance at least
    /// `target_distance`.
    ///
    /// Returns `None` if no such code is found within `max_tries` random
    /// draws (callers should then lower the target; the defaults used by
    /// [`crate::ConcatenatedCode`] succeed deterministically).
    pub fn search(n_in: usize, target_distance: usize, max_tries: usize) -> Option<Self> {
        assert!((8..=64).contains(&n_in), "inner length must be in [8, 64]");
        for attempt in 0..max_tries {
            // Fixed seed sequence: same code every run, no RNG threading.
            let mut rng = Rng64::seeded(0x1F5_C0DE + attempt as u64);
            let mask = if n_in == 64 { u64::MAX } else { (1u64 << n_in) - 1 };
            let mut rows = [0u64; 8];
            for r in &mut rows {
                *r = rng.next_u64() & mask;
            }
            let code = Self::from_generator(n_in, rows);
            if code.min_distance >= target_distance {
                return Some(code);
            }
        }
        None
    }

    /// Builds a code from an explicit generator matrix (8 rows of `n_in`-bit
    /// words). Computes the exact minimum distance.
    pub fn from_generator(n_in: usize, rows: [u64; 8]) -> Self {
        let mut codewords = Vec::with_capacity(256);
        for msg in 0u16..256 {
            let mut cw = 0u64;
            for (bit, row) in rows.iter().enumerate() {
                if (msg >> bit) & 1 == 1 {
                    cw ^= row;
                }
            }
            codewords.push(cw);
        }
        let min_distance =
            codewords[1..].iter().map(|cw| cw.count_ones() as usize).min().unwrap_or(0);
        Self { n_in, rows, codewords, min_distance }
    }

    /// Codeword length in bits.
    pub fn block_len(&self) -> usize {
        self.n_in
    }

    /// Exact minimum distance (0 iff the generator is singular).
    pub fn min_distance(&self) -> usize {
        self.min_distance
    }

    /// Guaranteed correctable bit errors per block, `⌊(d−1)/2⌋`.
    pub fn correctable(&self) -> usize {
        self.min_distance.saturating_sub(1) / 2
    }

    /// Generator matrix rows.
    pub fn generator(&self) -> &[u64; 8] {
        &self.rows
    }

    /// Encodes one byte into an `n_in`-bit codeword (bits little-endian in
    /// the returned word).
    pub fn encode(&self, byte: u8) -> u64 {
        self.codewords[byte as usize]
    }

    /// Maximum-likelihood decoding: the message whose codeword is nearest in
    /// Hamming distance (ties broken by smaller message value).
    pub fn decode(&self, received: u64) -> u8 {
        let mut best = 0u8;
        let mut best_dist = u32::MAX;
        for (msg, &cw) in self.codewords.iter().enumerate() {
            let dist = (cw ^ received).count_ones();
            if dist < best_dist {
                best_dist = dist;
                best = msg as u8;
                if dist == 0 {
                    break;
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_code() -> BinaryLinearCode {
        BinaryLinearCode::search(32, 9, 64).expect("a [32,8,>=9] code exists in the seed stream")
    }

    #[test]
    fn search_finds_target_distance() {
        let c = default_code();
        assert!(c.min_distance() >= 9, "found distance {}", c.min_distance());
        assert!(c.correctable() >= 4);
        assert_eq!(c.block_len(), 32);
    }

    #[test]
    fn search_is_deterministic() {
        let a = BinaryLinearCode::search(32, 9, 64).unwrap();
        let b = BinaryLinearCode::search(32, 9, 64).unwrap();
        assert_eq!(a.generator(), b.generator());
    }

    #[test]
    fn encode_is_linear() {
        let c = default_code();
        for (x, y) in [(0x12u8, 0x34u8), (0xFF, 0x01), (0xAA, 0x55)] {
            assert_eq!(c.encode(x) ^ c.encode(y), c.encode(x ^ y));
        }
        assert_eq!(c.encode(0), 0);
    }

    #[test]
    fn decodes_up_to_correctable_errors() {
        let c = default_code();
        let t = c.correctable();
        let mut rng = Rng64::seeded(77);
        for _ in 0..300 {
            let msg = rng.below(256) as u8;
            let mut rx = c.encode(msg);
            let flips = rng.below(t + 1);
            for &p in &rng.distinct_sorted(c.block_len(), flips) {
                rx ^= 1u64 << p;
            }
            assert_eq!(c.decode(rx), msg, "msg {msg} with {flips} flips");
        }
    }

    #[test]
    fn distance_computation_matches_bruteforce_pairs() {
        let c = default_code();
        // For a linear code, min pairwise distance == min nonzero weight.
        let mut min_pair = usize::MAX;
        for a in 0..32u16 {
            for b in (a + 1)..32 {
                let d = (c.encode(a as u8) ^ c.encode(b as u8)).count_ones() as usize;
                min_pair = min_pair.min(d);
            }
        }
        assert!(min_pair >= c.min_distance());
    }

    #[test]
    fn impossible_target_returns_none() {
        // Singleton bound: [10, 8] cannot have distance 9.
        assert!(BinaryLinearCode::search(10, 9, 8).is_none());
    }

    #[test]
    fn degenerate_generator_distance_zero() {
        let c = BinaryLinearCode::from_generator(16, [0; 8]);
        assert_eq!(c.min_distance(), 0);
    }
}
