//! Polynomials over GF(2⁸), little-endian coefficient order
//! (`coeffs[i]` multiplies `x^i`).

use crate::gf256;

/// Removes trailing zero coefficients (normal form).
pub fn trim(p: &mut Vec<u8>) {
    while p.len() > 1 && *p.last().expect("non-empty") == 0 {
        p.pop();
    }
}

/// Degree of a normal-form polynomial (deg 0 for constants, including 0).
pub fn degree(p: &[u8]) -> usize {
    let mut d = p.len().saturating_sub(1);
    while d > 0 && p[d] == 0 {
        d -= 1;
    }
    d
}

/// Polynomial addition (= subtraction).
pub fn add(a: &[u8], b: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; a.len().max(b.len())];
    for (i, &c) in a.iter().enumerate() {
        out[i] ^= c;
    }
    for (i, &c) in b.iter().enumerate() {
        out[i] ^= c;
    }
    trim(&mut out);
    out
}

/// Polynomial multiplication.
pub fn mul(a: &[u8], b: &[u8]) -> Vec<u8> {
    if a.is_empty() || b.is_empty() {
        return vec![0];
    }
    let mut out = vec![0u8; a.len() + b.len() - 1];
    for (i, &ca) in a.iter().enumerate() {
        if ca == 0 {
            continue;
        }
        for (j, &cb) in b.iter().enumerate() {
            out[i + j] ^= gf256::mul(ca, cb);
        }
    }
    trim(&mut out);
    out
}

/// Scales by a field element.
pub fn scale(p: &[u8], s: u8) -> Vec<u8> {
    let mut out: Vec<u8> = p.iter().map(|&c| gf256::mul(c, s)).collect();
    trim(&mut out);
    out
}

/// Multiplies by `x^k` (shift up).
pub fn shift(p: &[u8], k: usize) -> Vec<u8> {
    if p == [0] {
        return vec![0];
    }
    let mut out = vec![0u8; k];
    out.extend_from_slice(p);
    out
}

/// Evaluates `p(x)` by Horner's rule.
pub fn eval(p: &[u8], x: u8) -> u8 {
    let mut acc = 0u8;
    for &c in p.iter().rev() {
        acc = gf256::mul(acc, x) ^ c;
    }
    acc
}

/// Euclidean division: returns `(quotient, remainder)` with
/// `a = q·b + r`, `deg r < deg b`. Panics if `b` is zero.
pub fn divmod(a: &[u8], b: &[u8]) -> (Vec<u8>, Vec<u8>) {
    let db = degree(b);
    assert!(!(db == 0 && b[0] == 0), "division by zero polynomial");
    let mut rem = a.to_vec();
    trim(&mut rem);
    let da = degree(&rem);
    if da < db || (da == 0 && rem[0] == 0) {
        return (vec![0], rem);
    }
    let lead_inv = gf256::inv(b[db]);
    let mut quot = vec![0u8; da - db + 1];
    for d in (db..=da).rev() {
        let coef = *rem.get(d).unwrap_or(&0);
        if coef == 0 {
            continue;
        }
        let q = gf256::mul(coef, lead_inv);
        quot[d - db] = q;
        for (i, &bc) in b.iter().enumerate().take(db + 1) {
            rem[d - db + i] ^= gf256::mul(q, bc);
        }
    }
    trim(&mut rem);
    trim(&mut quot);
    (quot, rem)
}

/// Formal derivative. Over GF(2ᵐ) even-power terms vanish:
/// `(Σ cᵢ xⁱ)' = Σ_{i odd} cᵢ x^{i−1}`.
pub fn derivative(p: &[u8]) -> Vec<u8> {
    if p.len() <= 1 {
        return vec![0];
    }
    let mut out = vec![0u8; p.len() - 1];
    for (i, &c) in p.iter().enumerate().skip(1) {
        if i % 2 == 1 {
            out[i - 1] = c;
        }
    }
    trim(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_cancels_duplicates() {
        assert_eq!(add(&[1, 2, 3], &[1, 2, 3]), vec![0]);
        assert_eq!(add(&[1, 2], &[0, 0, 5]), vec![1, 2, 5]);
    }

    #[test]
    fn mul_known_product() {
        // (1 + x)(1 + x) = 1 + x² over GF(2^m).
        assert_eq!(mul(&[1, 1], &[1, 1]), vec![1, 0, 1]);
        assert_eq!(mul(&[0], &[1, 2, 3]), vec![0]);
    }

    #[test]
    fn eval_horner() {
        // p(x) = 3 + 2x + x²  at x=2: 3 ^ mul(2,2) ^ mul(1,4) = 3 ^ 4 ^ 4 = 3.
        let p = [3u8, 2, 1];
        let x = 2u8;
        let expect = 3 ^ gf256::mul(2, x) ^ gf256::mul(1, gf256::mul(x, x));
        assert_eq!(eval(&p, x), expect);
        assert_eq!(eval(&p, 0), 3);
    }

    #[test]
    fn divmod_reconstructs() {
        let a = [5u8, 7, 1, 9, 4];
        let b = [3u8, 1, 2];
        let (q, r) = divmod(&a, &b);
        let back = add(&mul(&q, &b), &r);
        let mut a_trim = a.to_vec();
        trim(&mut a_trim);
        assert_eq!(back, a_trim);
        assert!(degree(&r) < degree(&b) || r == vec![0]);
    }

    #[test]
    fn divmod_smaller_degree() {
        let (q, r) = divmod(&[1, 2], &[0, 0, 1]);
        assert_eq!(q, vec![0]);
        assert_eq!(r, vec![1, 2]);
    }

    #[test]
    fn derivative_drops_even_terms() {
        // p = c0 + c1 x + c2 x² + c3 x³ -> p' = c1 + c3 x² (char 2).
        assert_eq!(derivative(&[9, 7, 5, 3]), vec![7, 0, 3]);
        assert_eq!(derivative(&[1]), vec![0]);
    }

    #[test]
    fn shift_multiplies_by_x_k() {
        assert_eq!(shift(&[1, 2], 2), vec![0, 0, 1, 2]);
        assert_eq!(shift(&[0], 3), vec![0]);
        let a = [4u8, 5];
        assert_eq!(shift(&a, 1), mul(&a, &[0, 1]));
    }

    #[test]
    fn roots_via_eval() {
        // (x - α)(x - α²) has roots α, α² (minus = plus in char 2).
        let a1 = gf256::alpha_pow(1);
        let a2 = gf256::alpha_pow(2);
        let p = mul(&[a1, 1], &[a2, 1]);
        assert_eq!(eval(&p, a1), 0);
        assert_eq!(eval(&p, a2), 0);
        assert_ne!(eval(&p, gf256::alpha_pow(3)), 0);
    }
}
