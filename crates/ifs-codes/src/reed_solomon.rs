//! Systematic Reed–Solomon codes over GF(2⁸).
//!
//! `RS(n, k)` with `n ≤ 255` encodes `k` data symbols into `n` symbols and
//! uniquely corrects up to `t = ⌊(n−k)/2⌋` symbol errors. Decoding is the
//! classical chain: syndromes → Berlekamp–Massey (error locator) → Chien
//! search (error positions) → Forney (error magnitudes).
//!
//! Conventions: generator `g(x) = Π_{i=1}^{n−k} (x − αⁱ)` (first consecutive
//! root 1), codeword polynomial `c(x) = Σ c_j x^j` with `c_j` the `j`-th
//! transmitted symbol, data symbols occupying the **high-degree** positions
//! `x^{n−k}..x^{n−1}` so the code is systematic.

use crate::{gf256, poly};

/// A Reed–Solomon code with fixed `(n, k)`.
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    n: usize,
    k: usize,
    generator: Vec<u8>,
}

/// Decoding failure: more errors than the code can uniquely correct.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeFailure;

impl std::fmt::Display for DecodeFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Reed-Solomon decoding failure (too many errors)")
    }
}

impl std::error::Error for DecodeFailure {}

impl ReedSolomon {
    /// Creates `RS(n, k)`. Panics unless `0 < k < n ≤ 255`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k > 0 && k < n && n <= 255, "invalid RS parameters n={n} k={k}");
        let mut generator = vec![1u8];
        for i in 1..=(n - k) {
            generator = poly::mul(&generator, &[gf256::alpha_pow(i as i64), 1]);
        }
        Self { n, k, generator }
    }

    /// Block length in symbols.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Data symbols per block.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Guaranteed correctable symbol errors `t = ⌊(n−k)/2⌋`.
    pub fn t(&self) -> usize {
        (self.n - self.k) / 2
    }

    /// Encodes `k` data symbols into an `n`-symbol codeword.
    ///
    /// Layout: `codeword[0..n−k]` are parity symbols (low-degree
    /// coefficients), `codeword[n−k..]` are the data verbatim.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), self.k, "expected {} data symbols", self.k);
        let parity_len = self.n - self.k;
        // m(x)·x^{n−k} mod g(x) gives the parity.
        let shifted = poly::shift(data, parity_len);
        let (_, rem) = poly::divmod(&shifted, &self.generator);
        let mut cw = vec![0u8; self.n];
        for (i, &c) in rem.iter().enumerate() {
            cw[i] = c;
        }
        cw[parity_len..].copy_from_slice(data);
        cw
    }

    /// Extracts the data symbols from an (error-free) codeword.
    pub fn extract_data(&self, codeword: &[u8]) -> Vec<u8> {
        codeword[self.n - self.k..].to_vec()
    }

    /// Syndromes `S_i = r(α^{i+1})`, `i = 0..n−k−1`; all zero iff `r` is a
    /// codeword.
    fn syndromes(&self, received: &[u8]) -> Vec<u8> {
        (1..=(self.n - self.k)).map(|i| poly::eval(received, gf256::alpha_pow(i as i64))).collect()
    }

    /// Berlekamp–Massey: the minimal LFSR (error locator Λ) fitting the
    /// syndrome sequence.
    fn berlekamp_massey(syndromes: &[u8]) -> Vec<u8> {
        let mut lambda = vec![1u8];
        let mut prev = vec![1u8];
        let mut l = 0usize;
        let mut m = 1usize;
        let mut b = 1u8;
        for (n_iter, &s) in syndromes.iter().enumerate() {
            // Discrepancy δ = S_n + Σ_{i=1}^{L} Λ_i S_{n−i}.
            let mut delta = s;
            for i in 1..=l.min(lambda.len() - 1) {
                delta ^= gf256::mul(lambda[i], syndromes[n_iter - i]);
            }
            if delta == 0 {
                m += 1;
            } else if 2 * l <= n_iter {
                let t = lambda.clone();
                let coef = gf256::div(delta, b);
                let adj = poly::shift(&poly::scale(&prev, coef), m);
                lambda = poly::add(&lambda, &adj);
                l = n_iter + 1 - l;
                prev = t;
                b = delta;
                m = 1;
            } else {
                let coef = gf256::div(delta, b);
                let adj = poly::shift(&poly::scale(&prev, coef), m);
                lambda = poly::add(&lambda, &adj);
                m += 1;
            }
        }
        lambda
    }

    /// Decodes in place, returning the corrected codeword, or a failure when
    /// more than `t` errors are present (detected via locator/root mismatch
    /// or out-of-range positions).
    pub fn decode(&self, received: &[u8]) -> Result<Vec<u8>, DecodeFailure> {
        assert_eq!(received.len(), self.n, "expected {} received symbols", self.n);
        let synd = self.syndromes(received);
        if synd.iter().all(|&s| s == 0) {
            return Ok(received.to_vec());
        }
        let lambda = Self::berlekamp_massey(&synd);
        let num_errors = poly::degree(&lambda);
        if num_errors == 0 || num_errors > self.t() {
            return Err(DecodeFailure);
        }
        // Chien search: position j is in error iff Λ(α^{−j}) = 0.
        let mut positions = Vec::with_capacity(num_errors);
        for j in 0..self.n {
            if poly::eval(&lambda, gf256::alpha_pow(-(j as i64))) == 0 {
                positions.push(j);
            }
        }
        if positions.len() != num_errors {
            return Err(DecodeFailure);
        }
        // Forney: Ω(x) = S(x)·Λ(x) mod x^{n−k};
        // with first consecutive root α¹ the magnitude at position j is
        // e_j = Ω(X_j⁻¹) / Λ′(X_j⁻¹), X_j = α^j. (Check: a single error of
        // magnitude e at j gives S(x)Λ(x) ≡ e·X_j and Λ′ = X_j.)
        let s_poly = synd.clone();
        let mut omega = poly::mul(&s_poly, &lambda);
        omega.truncate(self.n - self.k);
        poly::trim(&mut omega);
        let lambda_prime = poly::derivative(&lambda);
        let mut corrected = received.to_vec();
        for &j in &positions {
            let x = gf256::alpha_pow(j as i64);
            let x_inv = gf256::inv(x);
            let num = poly::eval(&omega, x_inv);
            let den = poly::eval(&lambda_prime, x_inv);
            if den == 0 {
                return Err(DecodeFailure);
            }
            let magnitude = gf256::div(num, den);
            corrected[j] ^= magnitude;
        }
        // Final verification: re-check syndromes (guards against
        // miscorrection past the design distance).
        if self.syndromes(&corrected).iter().any(|&s| s != 0) {
            return Err(DecodeFailure);
        }
        Ok(corrected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_util::Rng64;

    fn random_data(k: usize, rng: &mut Rng64) -> Vec<u8> {
        (0..k).map(|_| rng.below(256) as u8).collect()
    }

    #[test]
    fn encode_is_systematic() {
        let rs = ReedSolomon::new(15, 9);
        let data: Vec<u8> = (1..=9).collect();
        let cw = rs.encode(&data);
        assert_eq!(cw.len(), 15);
        assert_eq!(&cw[6..], &data[..]);
        assert_eq!(rs.extract_data(&cw), data);
    }

    #[test]
    fn codeword_has_zero_syndromes() {
        let rs = ReedSolomon::new(15, 9);
        let mut rng = Rng64::seeded(1);
        let cw = rs.encode(&random_data(9, &mut rng));
        assert!(rs.syndromes(&cw).iter().all(|&s| s == 0));
    }

    #[test]
    fn corrects_up_to_t_errors() {
        let mut rng = Rng64::seeded(2);
        for (n, k) in [(15usize, 9usize), (31, 15), (255, 191)] {
            let rs = ReedSolomon::new(n, k);
            let t = rs.t();
            for trial in 0..20 {
                let data = random_data(k, &mut rng);
                let cw = rs.encode(&data);
                let mut rx = cw.clone();
                let num_err = rng.below(t + 1);
                let pos = rng.distinct_sorted(n, num_err);
                for &p in &pos {
                    let e = 1 + rng.below(255) as u8;
                    rx[p] ^= e;
                }
                let decoded = rs.decode(&rx).unwrap_or_else(|_| {
                    panic!("RS({n},{k}) trial {trial}: failed with {num_err} <= t={t} errors")
                });
                assert_eq!(decoded, cw);
                assert_eq!(rs.extract_data(&decoded), data);
            }
        }
    }

    #[test]
    fn detects_or_rejects_beyond_t() {
        // Beyond t errors unique decoding is impossible; the decoder must
        // either return DecodeFailure or a valid (possibly wrong) codeword —
        // never crash. We additionally check it usually reports failure.
        let rs = ReedSolomon::new(15, 9);
        let mut rng = Rng64::seeded(3);
        let mut failures = 0;
        let trials = 50;
        for _ in 0..trials {
            let data = random_data(9, &mut rng);
            let cw = rs.encode(&data);
            let mut rx = cw.clone();
            for &p in &rng.distinct_sorted(15, rs.t() + 2) {
                rx[p] ^= 1 + rng.below(255) as u8;
            }
            if rs.decode(&rx).is_err() {
                failures += 1;
            }
        }
        assert!(failures > trials / 2, "only {failures}/{trials} detected");
    }

    #[test]
    fn zero_errors_is_identity() {
        let rs = ReedSolomon::new(31, 19);
        let mut rng = Rng64::seeded(4);
        let cw = rs.encode(&random_data(19, &mut rng));
        assert_eq!(rs.decode(&cw).unwrap(), cw);
    }

    #[test]
    fn erasures_as_errors_at_max_rate() {
        // n - k = 2 -> t = 1: single-error correcting code.
        let rs = ReedSolomon::new(10, 8);
        let mut rng = Rng64::seeded(5);
        let data = random_data(8, &mut rng);
        let cw = rs.encode(&data);
        for p in 0..10 {
            let mut rx = cw.clone();
            rx[p] ^= 0x5A;
            assert_eq!(rs.decode(&rx).unwrap(), cw, "position {p}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid RS parameters")]
    fn rejects_bad_parameters() {
        ReedSolomon::new(256, 100);
    }

    #[test]
    fn generator_has_consecutive_roots() {
        let rs = ReedSolomon::new(15, 9);
        for i in 1..=6 {
            assert_eq!(poly::eval(&rs.generator, gf256::alpha_pow(i)), 0, "root α^{i}");
        }
        assert_ne!(poly::eval(&rs.generator, gf256::alpha_pow(7)), 0);
    }
}
