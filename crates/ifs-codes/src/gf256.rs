//! Arithmetic in GF(2⁸) = GF(2)\[x\]/(x⁸+x⁴+x³+x²+1).
//!
//! The reduction polynomial `0x11D` is primitive with α = 2 as a generator,
//! the standard choice for Reed–Solomon over bytes. Multiplication and
//! inversion go through log/antilog tables built once at startup.

/// The reduction polynomial (x⁸+x⁴+x³+x²+1), including the x⁸ term.
pub const POLY: u16 = 0x11D;

/// Field order.
pub const ORDER: usize = 256;

struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        // Duplicate so exp[(a+b) mod 255] can be read without the mod.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Addition = subtraction = XOR.
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplication via log tables; 0 annihilates.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Multiplicative inverse. Panics on 0.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert_ne!(a, 0, "0 has no inverse in GF(256)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Division `a / b`. Panics when `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert_ne!(b, 0, "division by zero in GF(256)");
    if a == 0 {
        return 0;
    }
    let t = tables();
    t.exp[(t.log[a as usize] as usize + 255 - t.log[b as usize] as usize) % 255]
}

/// `α^e` for the generator α = 2 (exponent taken mod 255).
#[inline]
pub fn alpha_pow(e: i64) -> u8 {
    let t = tables();
    let e = e.rem_euclid(255) as usize;
    t.exp[e]
}

/// Discrete log base α; panics on 0.
#[inline]
pub fn log_alpha(a: u8) -> u8 {
    assert_ne!(a, 0, "log of zero");
    tables().log[a as usize]
}

/// `a^e` for arbitrary field element a.
pub fn pow(a: u8, e: u64) -> u8 {
    if e == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let t = tables();
    let la = t.log[a as usize] as u64;
    t.exp[((la * e) % 255) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_xor() {
        assert_eq!(add(0x53, 0xCA), 0x53 ^ 0xCA);
        assert_eq!(add(7, 7), 0);
    }

    #[test]
    fn multiplication_agrees_with_carryless_reference() {
        // Reference: schoolbook carry-less multiply then reduce by POLY.
        fn slow_mul(mut a: u8, b: u8) -> u8 {
            let mut acc: u16 = 0;
            let mut bb: u16 = b as u16;
            while a != 0 {
                if a & 1 != 0 {
                    acc ^= bb;
                }
                a >>= 1;
                bb <<= 1;
            }
            // Reduce.
            for bit in (8..16).rev() {
                if acc & (1 << bit) != 0 {
                    acc ^= POLY << (bit - 8);
                }
            }
            acc as u8
        }
        for a in 0..=255u8 {
            for b in [0u8, 1, 2, 3, 0x53, 0x8E, 0xFF] {
                assert_eq!(mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn division_inverts_multiplication() {
        for a in [1u8, 5, 100, 200, 255] {
            for b in [1u8, 2, 37, 254] {
                assert_eq!(div(mul(a, b), b), a);
            }
        }
        assert_eq!(div(0, 7), 0);
    }

    #[test]
    fn alpha_is_generator() {
        let mut seen = [false; 256];
        for e in 0..255 {
            let v = alpha_pow(e);
            assert!(!seen[v as usize], "alpha^{e} repeats");
            seen[v as usize] = true;
        }
        assert!(!seen[0], "generator never hits zero");
        assert_eq!(alpha_pow(255), 1, "order of alpha is 255");
        assert_eq!(alpha_pow(-1), inv(2));
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for a in [2u8, 3, 0x1D, 200] {
            let mut acc = 1u8;
            for e in 0..20u64 {
                assert_eq!(pow(a, e), acc, "a={a} e={e}");
                acc = mul(acc, a);
            }
        }
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
    }

    #[test]
    fn log_exp_roundtrip() {
        for a in 1..=255u8 {
            assert_eq!(alpha_pow(log_alpha(a) as i64), a);
        }
    }
}
