//! Concatenated codes: RS(n, k) over GF(2⁸) ∘ binary inner code.
//!
//! The composition encodes `8k` message bits into `n · L_in` codeword bits.
//! Its worst-case guarantee is exactly what the paper's encoding arguments
//! require: if an adversary flips at most
//! `γ = t_out·(t_in + 1) / (n·L_in)` of **all** codeword bits, decoding is
//! unique and exact. Proof of the bound: a wrong inner block needs at least
//! `t_in + 1` flips, so at most `flips/(t_in+1) ≤ γ·n·L_in/(t_in+1) = t_out`
//! outer symbols are wrong, which RS corrects.
//!
//! [`ConcatenatedCode::for_codeword_bits`] solves the inverse problem posed
//! by Theorem 15's construction — "here are `d·v` physical bits and a 4%
//! error guarantee; give me the largest message that survives" — by fixing
//! the inner code and maximizing the RS dimension subject to `γ ≥ 4%`.
//! A single RS block supports codewords up to `255 · 32 = 8160` bits, which
//! covers every experiment in EXPERIMENTS.md (the harness sizes `d·v`
//! accordingly).

use crate::{BinaryLinearCode, ReedSolomon};

/// A Reed–Solomon ∘ binary-linear concatenated code.
#[derive(Clone, Debug)]
pub struct ConcatenatedCode {
    rs: ReedSolomon,
    inner: BinaryLinearCode,
}

impl ConcatenatedCode {
    /// Composes explicit components.
    pub fn new(rs: ReedSolomon, inner: BinaryLinearCode) -> Self {
        Self { rs, inner }
    }

    /// The standard inner code used throughout: `[32, 8, ≥9]`, found
    /// deterministically (see [`BinaryLinearCode::search`]).
    pub fn default_inner() -> BinaryLinearCode {
        BinaryLinearCode::search(32, 9, 256)
            .expect("a [32,8,9] binary code exists within the fixed seed stream")
    }

    /// Builds the largest-rate code with codeword length **exactly**
    /// `n_bits` and guaranteed adversarial tolerance at least `gamma`.
    ///
    /// Returns `None` when `n_bits` is not a positive multiple of the inner
    /// block length, exceeds one RS block (`255 · 32` bits), or is too short
    /// to afford the parity needed for `gamma`.
    pub fn for_codeword_bits(n_bits: usize, gamma: f64) -> Option<Self> {
        let inner = Self::default_inner();
        let l_in = inner.block_len();
        if n_bits == 0 || !n_bits.is_multiple_of(l_in) {
            return None;
        }
        let n_sym = n_bits / l_in;
        if !(3..=255).contains(&n_sym) {
            return None;
        }
        // Need t_out ≥ γ·n·L_in/(t_in+1); choose the smallest such t_out and
        // the largest k = n − 2·t_out.
        let t_in = inner.correctable();
        let t_out_needed = (gamma * (n_sym * l_in) as f64 / (t_in + 1) as f64).ceil() as usize;
        if 2 * t_out_needed >= n_sym {
            return None;
        }
        let k_sym = n_sym - 2 * t_out_needed;
        Some(Self::new(ReedSolomon::new(n_sym, k_sym), inner))
    }

    /// Message length in bits (`8·k`).
    pub fn message_bits(&self) -> usize {
        8 * self.rs.k()
    }

    /// Codeword length in bits (`n · L_in`).
    pub fn codeword_bits(&self) -> usize {
        self.rs.n() * self.inner.block_len()
    }

    /// Code rate `message_bits / codeword_bits`.
    pub fn rate(&self) -> f64 {
        self.message_bits() as f64 / self.codeword_bits() as f64
    }

    /// The guaranteed worst-case correctable bit-error fraction
    /// `t_out·(t_in+1)/(n·L_in)`.
    pub fn guaranteed_error_fraction(&self) -> f64 {
        (self.rs.t() * (self.inner.correctable() + 1)) as f64 / self.codeword_bits() as f64
    }

    /// Encodes `message_bits()` bits into `codeword_bits()` bits.
    pub fn encode(&self, message: &[bool]) -> Vec<bool> {
        assert_eq!(message.len(), self.message_bits(), "message length mismatch");
        let data: Vec<u8> = message
            .chunks(8)
            .map(|byte| byte.iter().enumerate().fold(0u8, |acc, (i, &b)| acc | ((b as u8) << i)))
            .collect();
        let symbols = self.rs.encode(&data);
        let l_in = self.inner.block_len();
        let mut out = Vec::with_capacity(self.codeword_bits());
        for &sym in &symbols {
            let block = self.inner.encode(sym);
            for i in 0..l_in {
                out.push((block >> i) & 1 == 1);
            }
        }
        out
    }

    /// Decodes a (possibly corrupted) codeword. Returns `None` when the
    /// corruption exceeds what RS can uniquely correct.
    pub fn decode(&self, received: &[bool]) -> Option<Vec<bool>> {
        assert_eq!(received.len(), self.codeword_bits(), "codeword length mismatch");
        let l_in = self.inner.block_len();
        let symbols: Vec<u8> = received
            .chunks(l_in)
            .map(|block| {
                let word =
                    block.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i));
                self.inner.decode(word)
            })
            .collect();
        let corrected = self.rs.decode(&symbols).ok()?;
        let data = self.rs.extract_data(&corrected);
        let mut out = Vec::with_capacity(self.message_bits());
        for byte in data {
            for i in 0..8 {
                out.push((byte >> i) & 1 == 1);
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_util::Rng64;

    fn random_message(len: usize, rng: &mut Rng64) -> Vec<bool> {
        (0..len).map(|_| rng.bernoulli(0.5)).collect()
    }

    #[test]
    fn default_construction_meets_four_percent() {
        let code = ConcatenatedCode::for_codeword_bits(8160, 0.04).expect("full-length block");
        assert!(code.guaranteed_error_fraction() >= 0.04);
        assert!(code.rate() > 0.05, "rate {} collapsed", code.rate());
        assert_eq!(code.codeword_bits(), 8160);
    }

    #[test]
    fn roundtrip_without_errors() {
        let code = ConcatenatedCode::for_codeword_bits(1024, 0.04).unwrap();
        let mut rng = Rng64::seeded(8);
        let msg = random_message(code.message_bits(), &mut rng);
        let cw = code.encode(&msg);
        assert_eq!(cw.len(), 1024);
        assert_eq!(code.decode(&cw).unwrap(), msg);
    }

    #[test]
    fn survives_guaranteed_adversarial_fraction() {
        let code = ConcatenatedCode::for_codeword_bits(2048, 0.04).unwrap();
        let gamma = code.guaranteed_error_fraction();
        let budget = (gamma * 2048.0).floor() as usize;
        let mut rng = Rng64::seeded(9);
        let msg = random_message(code.message_bits(), &mut rng);
        let cw = code.encode(&msg);
        // Adversarial strategy: concentrate flips on the fewest inner blocks
        // possible (t_in+1 flips each) — exactly the worst case of the bound.
        let mut rx = cw.clone();
        let per_block = 5; // t_in + 1 for the default [32,8,9] inner code
        let mut spent = 0;
        let mut block = 0;
        while spent + per_block <= budget {
            for b in 0..per_block {
                rx[block * 32 + b] = !rx[block * 32 + b];
            }
            spent += per_block;
            block += 1;
        }
        // Any leftover budget scattered in one more block (harmless or not —
        // still within gamma).
        for b in 0..(budget - spent) {
            rx[block * 32 + b] = !rx[block * 32 + b];
        }
        assert_eq!(code.decode(&rx).expect("within guarantee"), msg);
    }

    #[test]
    fn survives_random_four_percent() {
        let code = ConcatenatedCode::for_codeword_bits(4096, 0.04).unwrap();
        let mut rng = Rng64::seeded(10);
        for _ in 0..10 {
            let msg = random_message(code.message_bits(), &mut rng);
            let mut rx = code.encode(&msg);
            let flips = (0.04 * rx.len() as f64) as usize;
            for &p in &rng.distinct_sorted(rx.len(), flips) {
                rx[p] = !rx[p];
            }
            assert_eq!(code.decode(&rx).expect("4% random"), msg);
        }
    }

    #[test]
    fn fails_gracefully_under_heavy_corruption() {
        let code = ConcatenatedCode::for_codeword_bits(1024, 0.04).unwrap();
        let mut rng = Rng64::seeded(11);
        let msg = random_message(code.message_bits(), &mut rng);
        let mut rx = code.encode(&msg);
        // 40% random flips: decoding must not panic; it may fail or (rarely)
        // miscorrect, but must not return the original by accident check.
        for &p in &rng.distinct_sorted(rx.len(), 410) {
            rx[p] = !rx[p];
        }
        let _ = code.decode(&rx);
    }

    #[test]
    fn rejects_invalid_sizes() {
        assert!(ConcatenatedCode::for_codeword_bits(0, 0.04).is_none());
        assert!(ConcatenatedCode::for_codeword_bits(33, 0.04).is_none()); // not multiple of 32
        assert!(ConcatenatedCode::for_codeword_bits(16_384, 0.04).is_none()); // > one RS block
        assert!(ConcatenatedCode::for_codeword_bits(96, 0.4).is_none()); // gamma too greedy
    }

    #[test]
    fn rate_increases_with_looser_gamma() {
        let strict = ConcatenatedCode::for_codeword_bits(4096, 0.04).unwrap();
        let loose = ConcatenatedCode::for_codeword_bits(4096, 0.01).unwrap();
        assert!(loose.rate() > strict.rate());
        assert!(loose.guaranteed_error_fraction() >= 0.01);
    }
}
