//! L1 and L2 decoders for the Theorem 16 pipeline.
//!
//! De's reconstruction (Lemma 20/24) receives noisy answers `y ≈ A·x/n` to
//! all row-product itemset queries and recovers the boolean column `x` by
//! **L1 minimization** — robust to a few queries having large error, which
//! is exactly the "accurate only on average" regime the amplification step
//! produces. KRSU's earlier argument used **L2 minimization** (pseudo-
//! inverse), which the paper points out breaks under average-error
//! guarantees; both are implemented so experiment E8 can show the contrast.

use crate::simplex::{Constraint, LinearProgram, Relation, SimplexOutcome};
use ifs_linalg::{qr, svd, Matrix};

/// Solves `min ‖Ax − y‖₁  s.t.  0 ≤ x ≤ 1` exactly via the LP
/// `min Σu  s.t.  −u ≤ Ax − y ≤ u, 0 ≤ x ≤ 1`.
///
/// Returns `None` if the solver reports infeasibility (cannot happen for a
/// well-formed instance) or unboundedness.
pub fn l1_box_regression(a: &Matrix, y: &[f64]) -> Option<Vec<f64>> {
    let (m, n) = (a.rows(), a.cols());
    assert_eq!(y.len(), m, "rhs length mismatch");
    // Variables: x_0..x_{n-1}, u_0..u_{m-1}.
    let nv = n + m;
    let mut objective = vec![0.0; nv];
    for obj in objective.iter_mut().skip(n) {
        *obj = 1.0;
    }
    let mut lp = LinearProgram { objective, constraints: Vec::with_capacity(2 * m + n) };
    for i in 0..m {
        // a_i·x − u_i ≤ y_i
        let mut c = vec![0.0; nv];
        c[..n].copy_from_slice(a.row(i));
        c[n + i] = -1.0;
        lp.push(Constraint::new(c, Relation::Le, y[i]));
        // −a_i·x − u_i ≤ −y_i
        let mut c = vec![0.0; nv];
        for (j, &v) in a.row(i).iter().enumerate() {
            c[j] = -v;
        }
        c[n + i] = -1.0;
        lp.push(Constraint::new(c, Relation::Le, -y[i]));
    }
    for j in 0..n {
        let mut c = vec![0.0; nv];
        c[j] = 1.0;
        lp.push(Constraint::new(c, Relation::Le, 1.0));
    }
    match lp.solve() {
        SimplexOutcome::Optimal { x, .. } => Some(x[..n].to_vec()),
        _ => None,
    }
}

/// L2 decoder (KRSU-style): `x̂ = A⁺y`, clamped to `[0, 1]`.
///
/// Uses QR least squares when `A` has full column rank, falling back to the
/// SVD pseudo-inverse otherwise.
pub fn l2_regression(a: &Matrix, y: &[f64]) -> Vec<f64> {
    let x = if a.rows() >= a.cols() {
        qr::least_squares(a, y).unwrap_or_else(|| svd::decompose(a).pinv_apply(y, 1e-10))
    } else {
        svd::decompose(a).pinv_apply(y, 1e-10)
    };
    x.into_iter().map(|v| v.clamp(0.0, 1.0)).collect()
}

/// Rounds a fractional solution to booleans at 1/2.
pub fn round_boolean(x: &[f64]) -> Vec<bool> {
    x.iter().map(|&v| v >= 0.5).collect()
}

/// Fraction of positions where the rounding disagrees with the truth.
pub fn boolean_error_rate(decoded: &[bool], truth: &[bool]) -> f64 {
    assert_eq!(decoded.len(), truth.len());
    if truth.is_empty() {
        return 0.0;
    }
    decoded.iter().zip(truth).filter(|(a, b)| a != b).count() as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifs_util::Rng64;

    fn random_instance(m: usize, n: usize, rng: &mut Rng64) -> (Matrix, Vec<bool>, Vec<f64>) {
        let a = Matrix::random_binary(m, n, rng);
        let x: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.5)).collect();
        let xf: Vec<f64> = x.iter().map(|&b| b as u8 as f64).collect();
        let y = a.matvec(&xf);
        (a, x, y)
    }

    #[test]
    fn exact_answers_recover_exactly() {
        let mut rng = Rng64::seeded(51);
        let (a, x, y) = random_instance(24, 10, &mut rng);
        let sol = l1_box_regression(&a, &y).expect("solvable");
        let rounded = round_boolean(&sol);
        assert_eq!(boolean_error_rate(&rounded, &x), 0.0);
    }

    #[test]
    fn l1_tolerates_few_gross_errors() {
        // Corrupt 10% of answers arbitrarily; L1 shrugs, L2 degrades.
        let mut rng = Rng64::seeded(52);
        let (a, x, y) = random_instance(40, 10, &mut rng);
        let mut noisy = y.clone();
        for &p in &rng.distinct_sorted(40, 4) {
            noisy[p] += 7.5; // gross error
        }
        let l1 = round_boolean(&l1_box_regression(&a, &noisy).unwrap());
        assert_eq!(boolean_error_rate(&l1, &x), 0.0, "L1 must reject outliers");
        let l2 = round_boolean(&l2_regression(&a, &noisy));
        // L2 typically breaks here; we only assert it is not better than L1.
        assert!(boolean_error_rate(&l2, &x) >= 0.0);
    }

    #[test]
    fn l1_small_uniform_noise() {
        let mut rng = Rng64::seeded(53);
        let (a, x, y) = random_instance(32, 8, &mut rng);
        let noisy: Vec<f64> = y.iter().map(|v| v + 0.2 * (rng.unit() - 0.5)).collect();
        let sol = round_boolean(&l1_box_regression(&a, &noisy).unwrap());
        assert!(boolean_error_rate(&sol, &x) <= 0.125, "one coordinate tolerance");
    }

    #[test]
    fn l2_exact_answers_recover() {
        let mut rng = Rng64::seeded(54);
        let (a, x, y) = random_instance(24, 10, &mut rng);
        let sol = round_boolean(&l2_regression(&a, &y));
        assert_eq!(boolean_error_rate(&sol, &x), 0.0);
    }

    #[test]
    fn solution_stays_in_box() {
        let mut rng = Rng64::seeded(55);
        let (a, _, y) = random_instance(20, 6, &mut rng);
        let noisy: Vec<f64> = y.iter().map(|v| v + 3.0).collect();
        let sol = l1_box_regression(&a, &noisy).unwrap();
        assert!(sol.iter().all(|&v| (-1e-7..=1.0 + 1e-7).contains(&v)), "{sol:?}");
    }

    #[test]
    fn error_rate_helper() {
        assert_eq!(boolean_error_rate(&[true, false], &[true, true]), 0.5);
        assert_eq!(boolean_error_rate(&[], &[]), 0.0);
    }
}
