//! Boolean consistency search — the Lemma 19 primitive.
//!
//! Setting: an unknown `t ∈ {0,1}^v` and, for **every** `s ∈ {0,1}^v`, a bit
//! `b_s` promised to satisfy `b_s = 1` when `⟨s,t⟩/v > ε` and `b_s = 0` when
//! `⟨s,t⟩/v < ε/2` (either bit allowed in between). A vector `t′` is
//! *consistent* when `b_s = 1 ⟹ ⟨s,t′⟩/v ≥ ε/2` and
//! `b_s = 0 ⟹ ⟨s,t′⟩/v ≤ ε`. The truth `t` is always consistent, and the
//! lemma's argument shows any consistent `t′` has Hamming distance at most
//! `2⌈εv⌉` from `t` (see [`hamming_bound`]; this matches the paper's `v/25`
//! at `ε = 1/50`).
//!
//! Finding a consistent vector:
//! * when `εv < 1`, singleton queries already pin every bit — `⟨e_j,t⟩/v`
//!   is `1/v > ε` or `0 < ε/2` — so decoding is direct (this is the regime
//!   of all the paper-scale experiments, where `v ≤ 30` and `ε = 1/50`);
//! * otherwise a violated-constraint local search with random restarts is
//!   used; every returned vector is *verified* consistent, so the Hamming
//!   guarantee holds unconditionally for successful returns.

use ifs_util::Rng64;

/// Upper bound on the Hamming distance between the truth and any consistent
/// vector: `2⌈εv⌉`.
pub fn hamming_bound(v: usize, epsilon: f64) -> usize {
    2 * (epsilon * v as f64).ceil() as usize
}

/// Popcount of the intersection of two masks.
#[inline]
fn inner(s: u64, t: u64) -> u32 {
    (s & t).count_ones()
}

/// Checks consistency of `t_candidate` against every `b_s` (2^v oracle
/// answers, provided as a slice indexed by mask).
pub fn is_consistent(v: usize, epsilon: f64, answers: &[bool], t_candidate: u64) -> bool {
    debug_assert_eq!(answers.len(), 1usize << v);
    let lo = epsilon * v as f64 / 2.0; // b=1 requires ⟨s,t'⟩ ≥ lo
    let hi = epsilon * v as f64; // b=0 requires ⟨s,t'⟩ ≤ hi
    for (s, &b) in answers.iter().enumerate() {
        let ip = inner(s as u64, t_candidate) as f64;
        if b {
            if ip < lo {
                return false;
            }
        } else if ip > hi {
            return false;
        }
    }
    true
}

/// Produces the oracle answer table for a *known* truth `t` with the given
/// dead-zone policy (used by tests and by the synthetic adversary):
/// answers are forced outside the dead zone; inside it, `dead_zone(s)`
/// decides.
pub fn honest_answers(
    v: usize,
    epsilon: f64,
    t: u64,
    mut dead_zone: impl FnMut(u64) -> bool,
) -> Vec<bool> {
    let size = 1usize << v;
    let mut out = Vec::with_capacity(size);
    for s in 0..size {
        let ratio = inner(s as u64, t) as f64 / v as f64;
        let b = if ratio > epsilon {
            true
        } else if ratio < epsilon / 2.0 {
            false
        } else {
            dead_zone(s as u64)
        };
        out.push(b);
    }
    out
}

/// Reconstructs a consistent vector from the full answer table.
///
/// Returns `Some(t′)` with `t′` verified consistent, or `None` when the
/// local search exhausts its budget (only possible in the `εv ≥ 1` regime).
pub fn reconstruct(v: usize, epsilon: f64, answers: &[bool], rng: &mut Rng64) -> Option<u64> {
    assert!(v <= 24, "answer table of size 2^{v} is too large");
    assert_eq!(answers.len(), 1usize << v);
    // Fast path: singletons are decisive when εv < 1.
    if epsilon * (v as f64) < 1.0 {
        let mut t = 0u64;
        for j in 0..v {
            if answers[1usize << j] {
                t |= 1 << j;
            }
        }
        if is_consistent(v, epsilon, answers, t) {
            return Some(t);
        }
        // An adversarial table may be inconsistent with its own singletons
        // only through dead-zone choices; fall through to search.
    }
    local_search(v, epsilon, answers, rng)
}

fn local_search(v: usize, epsilon: f64, answers: &[bool], rng: &mut Rng64) -> Option<u64> {
    let size = 1usize << v;
    let lo = epsilon * v as f64 / 2.0;
    let hi = epsilon * v as f64;
    let restarts = 40;
    let steps = 4 * size;
    for _ in 0..restarts {
        let mut t = rng.next_u64() & ((1u64 << v) - 1);
        let mut ok = true;
        for _ in 0..steps {
            // Find a violated constraint (scan from a random offset so we do
            // not always repair the same region).
            let start = rng.below(size);
            let mut violated = None;
            for off in 0..size {
                let s = (start + off) % size;
                let ip = inner(s as u64, t) as f64;
                if answers[s] {
                    if ip < lo {
                        violated = Some((s as u64, true));
                        break;
                    }
                } else if ip > hi {
                    violated = Some((s as u64, false));
                    break;
                }
            }
            match violated {
                None => break, // consistent
                Some((s, need_more)) => {
                    // Repair: flip one random coordinate inside s in the
                    // direction that reduces the violation.
                    let candidates: Vec<u32> = (0..v as u32)
                        .filter(|&j| {
                            let in_s = (s >> j) & 1 == 1;
                            let set = (t >> j) & 1 == 1;
                            in_s && (need_more != set)
                        })
                        .collect();
                    if candidates.is_empty() {
                        ok = false;
                        break;
                    }
                    let j = candidates[rng.below(candidates.len())];
                    t ^= 1 << j;
                }
            }
            ok = true;
        }
        if ok && is_consistent(v, epsilon, answers, t) {
            return Some(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hamming(a: u64, b: u64) -> usize {
        (a ^ b).count_ones() as usize
    }

    #[test]
    fn truth_is_always_consistent() {
        let mut rng = Rng64::seeded(61);
        for _ in 0..20 {
            let v = 10;
            let t = rng.next_u64() & 0x3FF;
            let answers = honest_answers(v, 0.3, t, |_| rng.bernoulli(0.5));
            assert!(is_consistent(v, 0.3, &answers, t));
        }
    }

    #[test]
    fn singleton_fast_path_exact() {
        // εv < 1: reconstruction is exact, not just close.
        let mut rng = Rng64::seeded(62);
        let v = 12;
        let eps = 1.0 / 50.0;
        for _ in 0..20 {
            let t = rng.next_u64() & 0xFFF;
            let answers = honest_answers(v, eps, t, |_| false);
            let rec = reconstruct(v, eps, &answers, &mut rng).expect("fast path");
            assert_eq!(rec, t);
        }
    }

    #[test]
    fn adversarial_dead_zone_stays_within_bound() {
        // εv > 1 so the dead zone is non-trivial and singletons are mute.
        let mut rng = Rng64::seeded(63);
        let v = 14;
        let eps = 0.25; // εv = 3.5; dead zone: inner products in [1.75, 3.5]
        for trial in 0..10 {
            let t = rng.next_u64() & 0x3FFF;
            // Adversarial dead zone: always answer the "wrong-looking" bit.
            let mut adversary = Rng64::seeded(1000 + trial);
            let answers = honest_answers(v, eps, t, |_| adversary.bernoulli(0.5));
            let rec = reconstruct(v, eps, &answers, &mut rng)
                .expect("consistent point exists (the truth)");
            assert!(is_consistent(v, eps, &answers, rec));
            let bound = hamming_bound(v, eps);
            assert!(
                hamming(rec, t) <= bound,
                "trial {trial}: distance {} > bound {bound}",
                hamming(rec, t)
            );
        }
    }

    #[test]
    fn hamming_bound_matches_paper_constant() {
        // ε = 1/50, v = 50: bound = 2·⌈1⌉ = 2 = v/25.
        assert_eq!(hamming_bound(50, 1.0 / 50.0), 2);
        // General shape 2⌈εv⌉.
        assert_eq!(hamming_bound(14, 0.25), 8);
    }

    #[test]
    fn inconsistent_candidate_rejected() {
        let v = 8;
        let eps = 0.25;
        let t = 0b1111_0000u64;
        let answers = honest_answers(v, eps, t, |_| false);
        // The complement of t violates many constraints.
        assert!(!is_consistent(v, eps, &answers, !t & 0xFF));
    }

    #[test]
    fn all_zero_and_all_one_truths() {
        let mut rng = Rng64::seeded(64);
        for (t, v) in [(0u64, 10usize), ((1 << 10) - 1, 10)] {
            let answers = honest_answers(v, 0.3, t, |_| false);
            let rec = reconstruct(v, 0.3, &answers, &mut rng).expect("solvable");
            assert!(hamming(rec, t) <= hamming_bound(v, 0.3));
        }
    }
}
