//! Optimization routines backing the executable lower-bound proofs.
//!
//! * [`simplex`] — a two-phase dense simplex solver for linear programs in
//!   the form `min cᵀx  s.t.  Ax ⋈ b, x ≥ 0` with per-row relations from
//!   {≤, =, ≥}. Bland's rule guards against cycling. This is the workhorse
//!   behind De's LP decoder (Theorem 16 / Lemma 20): reconstruction from
//!   *average-error* answers needs L1 minimization, and L1 minimization is
//!   an LP.
//! * [`l1`] — the decoder-shaped wrapper: `min ‖Ax − y‖₁  s.t.  x ∈ [0,1]ⁿ`,
//!   plus the L2 (KRSU-style) alternative via least squares for the E8
//!   ablation.
//! * [`repair`] — the Lemma 19 primitive: reconstruct a boolean vector from
//!   threshold answers `b_s` over all subset-sum queries `⟨s, t⟩/v`,
//!   returning any *consistent* vector, which the lemma proves is within
//!   Hamming distance `2⌈εv⌉` of the truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod l1;
pub mod repair;
pub mod simplex;

pub use simplex::{Constraint, LinearProgram, Relation, SimplexOutcome};
